#include <gtest/gtest.h>

#include <stdexcept>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "hpc/factory.hpp"
#include "hpc/noise.hpp"
#include "hpc/perf_backend.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/models/models.hpp"

namespace advh::hpc {
namespace {

TEST(Events, NamesRoundTrip) {
  for (hpc_event e : all_events()) {
    EXPECT_EQ(event_from_string(to_string(e)), e);
  }
  EXPECT_THROW(event_from_string("bogus-event"), invariant_error);
}

TEST(Events, CoreAndAblationSetsMatchPaper) {
  EXPECT_EQ(core_events().size(), 5u);   // N = 5 in the main evaluation
  EXPECT_EQ(cache_ablation_events().size(), 4u);  // N = 4 in the ablation
  EXPECT_EQ(all_events().size(), 9u);
  EXPECT_EQ(to_string(core_events()[4]), "cache-misses");
  EXPECT_EQ(to_string(cache_ablation_events()[0]), "L1-dcache-load-misses");
}

TEST(Events, ExtractMapsAllFields) {
  uarch::uarch_counts c;
  c.instructions = 1;
  c.branches = 2;
  c.branch_misses = 3;
  c.cache_references = 4;
  c.cache_misses = 5;
  c.l1d_load_misses = 6;
  c.l1i_load_misses = 7;
  c.llc_load_misses = 8;
  c.llc_store_misses = 9;
  std::uint64_t expected = 1;
  for (hpc_event e : all_events()) {
    EXPECT_EQ(extract(c, e), expected++);
  }
}

TEST(Noise, ZeroModelIsDeterministic) {
  noise_model none = noise_model::none();
  rng gen(1);
  for (hpc_event e : all_events()) {
    EXPECT_DOUBLE_EQ(none.sample(e, 1234.0, gen), 1234.0);
  }
}

TEST(Noise, MeanApproximatesTruthPlusBackground) {
  noise_model nm;
  rng gen(2);
  const double truth = 100000.0;
  double acc = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    acc += nm.sample(hpc_event::cache_misses, truth, gen);
  }
  const double expected = truth + nm.spec(hpc_event::cache_misses).background_mean;
  EXPECT_NEAR(acc / n, expected, expected * 0.01);
}

TEST(Noise, NeverNegative) {
  noise_model nm;
  nm.spec(hpc_event::cache_misses) = {2.0, 0.0};  // wild multiplicative noise
  rng gen(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(nm.sample(hpc_event::cache_misses, 10.0, gen), 0.0);
  }
}

class SimBackendTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = nn::make_model(nn::architecture::case_study_cnn,
                            shape{1, 16, 16}, 4, /*seed=*/11)
                 .release();
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }
  static nn::model* model_;
};

nn::model* SimBackendTest::model_ = nullptr;

TEST_F(SimBackendTest, MeasurementShapeMatchesRequest) {
  sim_backend mon(*model_);
  rng gen(4);
  tensor x = tensor::rand_uniform(shape{1, 1, 16, 16}, gen, 0.0f, 1.0f);
  const auto events = core_events();
  auto m = mon.measure(x, events, 10);
  EXPECT_EQ(m.mean_counts.size(), events.size());
  EXPECT_EQ(m.stddev_counts.size(), events.size());
  EXPECT_LT(m.predicted, 4u);
}

TEST_F(SimBackendTest, NoiseFreeMeasurementIsExact) {
  sim_backend mon(*model_, {}, noise_model::none());
  rng gen(5);
  tensor x = tensor::rand_uniform(shape{1, 1, 16, 16}, gen, 0.0f, 1.0f);
  std::size_t pred = 0;
  const auto counts = mon.profile(x, pred);
  auto m = mon.measure(x, core_events(), 10);
  EXPECT_DOUBLE_EQ(m.mean_counts[4],
                   static_cast<double>(counts.cache_misses));
  EXPECT_DOUBLE_EQ(m.stddev_counts[4], 0.0);
}

TEST_F(SimBackendTest, SameInputSameTrueCounts) {
  sim_backend mon(*model_, {}, noise_model::none());
  rng gen(6);
  tensor x = tensor::rand_uniform(shape{1, 1, 16, 16}, gen, 0.0f, 1.0f);
  auto a = mon.measure(x, core_events(), 3);
  auto b = mon.measure(x, core_events(), 3);
  for (std::size_t e = 0; e < a.mean_counts.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.mean_counts[e], b.mean_counts[e]);
  }
}

TEST_F(SimBackendTest, RepeatsReduceNoiseInMean) {
  sim_backend mon1(*model_, {}, noise_model{}, /*seed=*/1);
  sim_backend mon2(*model_, {}, noise_model{}, /*seed=*/1);
  rng gen(7);
  tensor x = tensor::rand_uniform(shape{1, 1, 16, 16}, gen, 0.0f, 1.0f);
  // Spread of the mean across re-measurements must shrink with R.
  auto spread = [&](sim_backend& mon, std::size_t repeats) {
    stats::running_stats rs;
    for (int i = 0; i < 30; ++i) {
      auto m = mon.measure(x, std::vector<hpc_event>{hpc_event::cache_misses},
                           repeats);
      rs.push(m.mean_counts[0]);
    }
    return rs.stddev();
  };
  EXPECT_LT(spread(mon1, 20), spread(mon2, 1));
}

TEST_F(SimBackendTest, DifferentInputsDifferentFootprints) {
  sim_backend mon(*model_, {}, noise_model::none());
  rng gen(8);
  tensor a = tensor::rand_uniform(shape{1, 1, 16, 16}, gen, 0.0f, 1.0f);
  tensor b = tensor::rand_uniform(shape{1, 1, 16, 16}, gen, 0.0f, 1.0f);
  std::size_t pa = 0, pb = 0;
  const auto ca = mon.profile(a, pa);
  const auto cb = mon.profile(b, pb);
  // Shape-driven events agree; data-driven events differ.
  EXPECT_EQ(ca.instructions, cb.instructions);
  EXPECT_NE(ca.cache_references, cb.cache_references);
}

TEST_F(SimBackendTest, RepeatsMustBePositive) {
  sim_backend mon(*model_);
  tensor x(shape{1, 1, 16, 16});
  // Rejected at the hpc_monitor::measure boundary, before any backend code
  // runs: a zero-repetition request is a caller bug, not a measurement
  // failure, so it surfaces as invalid_argument.
  EXPECT_THROW(mon.measure(x, core_events(), 0), std::invalid_argument);
  EXPECT_THROW(mon.measure_batch(std::vector<tensor>{x}, core_events(), 0),
               std::invalid_argument);
}

TEST_F(SimBackendTest, SingleRepetitionHasZeroStddev) {
  sim_backend mon(*model_);
  tensor x(shape{1, 1, 16, 16});
  const auto m = mon.measure(x, core_events(), 1);
  ASSERT_EQ(m.stddev_counts.size(), core_events().size());
  for (double s : m.stddev_counts) EXPECT_EQ(s, 0.0);  // 0, never NaN
}

TEST(PerfBackend, UnavailableThrowsCleanly) {
  auto model = nn::make_model(nn::architecture::case_study_cnn,
                              shape{1, 16, 16}, 4, 1);
  if (perf_events_available()) {
    // Real counters present (rare in CI): measuring must work end to end.
    perf_backend mon(*model);
    rng gen(9);
    tensor x = tensor::rand_uniform(shape{1, 1, 16, 16}, gen, 0.0f, 1.0f);
    auto m = mon.measure(x, std::vector<hpc_event>{hpc_event::instructions}, 3);
    EXPECT_GT(m.mean_counts[0], 0.0);
  } else {
    EXPECT_THROW(perf_backend{*model}, backend_unavailable);
  }
}

TEST(Factory, AutoDetectAlwaysProducesMonitor) {
  auto model = nn::make_model(nn::architecture::case_study_cnn,
                              shape{1, 16, 16}, 4, 1);
  auto mon = make_monitor(*model);
  ASSERT_NE(mon, nullptr);
  if (!perf_events_available()) {
    // Substring match: under ADVH_FAULT_RATE the factory wraps the base
    // backend in the fault-injection and resilience decorators.
    EXPECT_NE(mon->backend_name().find("simulator"), std::string::npos);
  }
}

TEST(Factory, ExplicitSimulator) {
  auto model = nn::make_model(nn::architecture::case_study_cnn,
                              shape{1, 16, 16}, 4, 1);
  auto mon = make_monitor(*model, backend_kind::simulator);
  EXPECT_NE(mon->backend_name().find("simulator"), std::string::npos);
}

}  // namespace
}  // namespace advh::hpc
