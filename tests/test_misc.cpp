// Coverage for the smaller shared facilities: logging levels, layer-kind
// names, trace bookkeeping, sequential container semantics, and noise-spec
// editing.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "hpc/noise.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/simple_layers.hpp"

namespace advh {
namespace {

TEST(Logging, LevelGating) {
  const auto saved = log::get_level();
  log::set_level(log::level::warn);
  EXPECT_EQ(log::get_level(), log::level::warn);
  // debug/info below threshold: must be no-ops (no crash, no way to
  // observe stderr here, but the gating branch is exercised).
  log::debug("dropped ", 1);
  log::info("dropped ", 2);
  log::warn("emitted ", 3);
  log::set_level(log::level::off);
  log::error("also dropped");
  log::set_level(saved);
}

TEST(LayerKind, AllNamesDistinct) {
  using nn::layer_kind;
  const layer_kind kinds[] = {
      layer_kind::input,        layer_kind::conv2d,
      layer_kind::depthwise_conv2d, layer_kind::linear,
      layer_kind::relu,         layer_kind::maxpool2d,
      layer_kind::avgpool2d,    layer_kind::global_avgpool,
      layer_kind::batchnorm2d,  layer_kind::dropout,
      layer_kind::flatten,      layer_kind::residual_add,
      layer_kind::concat};
  std::set<std::string> names;
  for (auto k : kinds) names.insert(nn::to_string(k));
  EXPECT_EQ(names.size(), std::size(kinds));
}

TEST(InferenceTrace, TotalActiveNeuronsSums) {
  nn::inference_trace t;
  nn::layer_trace_entry a;
  a.active_outputs = {1, 2, 3};
  nn::layer_trace_entry b;
  b.active_outputs = {7};
  t.layers.push_back(a);
  t.layers.push_back(b);
  EXPECT_EQ(t.total_active_neurons(), 4u);
}

TEST(Sequential, ForwardBackwardOrder) {
  rng gen(1);
  nn::sequential seq("seq");
  seq.emplace<nn::linear>("fc1", 4, 8, gen);
  seq.emplace<nn::relu>("act");
  seq.emplace<nn::linear>("fc2", 8, 2, gen);
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.at(1).kind(), nn::layer_kind::relu);
  EXPECT_THROW(seq.at(3), invariant_error);

  nn::forward_ctx ctx;
  tensor x = tensor::randn(shape{2, 4}, gen);
  tensor y = seq.forward(x, ctx);
  EXPECT_EQ(y.dims(), shape({2, 2}));
  tensor gx = seq.backward(tensor::full(y.dims(), 1.0f));
  EXPECT_EQ(gx.dims(), x.dims());

  std::vector<nn::parameter*> params;
  seq.collect_params(params);
  EXPECT_EQ(params.size(), 4u);  // two weights + two biases
}

TEST(Sequential, RejectsNullLayer) {
  nn::sequential seq("seq");
  EXPECT_THROW(seq.add(nullptr), invariant_error);
}

TEST(NoiseSpec, EditablePerEvent) {
  hpc::noise_model nm;
  nm.spec(hpc::hpc_event::cache_misses) = {0.5, 1000.0};
  EXPECT_DOUBLE_EQ(nm.spec(hpc::hpc_event::cache_misses).rel_sigma, 0.5);
  // Other events untouched.
  EXPECT_LT(nm.spec(hpc::hpc_event::instructions).rel_sigma, 0.5);
}

TEST(Dropout, BackwardMatchesMask) {
  rng gen(2);
  nn::dropout d("d", 0.5f, gen);
  nn::forward_ctx ctx;
  ctx.training = true;
  tensor x = tensor::full(shape{1000}, 1.0f);
  tensor y = d.forward(x, ctx);
  tensor g = d.backward(tensor::full(shape{1000}, 1.0f));
  for (std::size_t i = 0; i < 1000; ++i) {
    // Gradient flows exactly where the forward pass kept the unit.
    EXPECT_EQ(g[i], y[i]);
  }
}

TEST(Relu, TraceSkippedForBatches) {
  // Tracing demands batch size 1; batched forward with a trace must throw.
  nn::relu act("r");
  nn::inference_trace trace;
  nn::forward_ctx ctx;
  ctx.trace = &trace;
  tensor x(shape{2, 1, 2, 2});
  EXPECT_THROW(act.forward(x, ctx), invariant_error);
}

}  // namespace
}  // namespace advh
