#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace advh {
namespace {

TEST(Shape, RankAndNumel) {
  shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.numel(), 120u);
  EXPECT_EQ(s[2], 4u);
}

TEST(Shape, ScalarShape) {
  shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1u);
}

TEST(Shape, Equality) {
  EXPECT_EQ(shape({2, 3}), shape({2, 3}));
  EXPECT_NE(shape({2, 3}), shape({3, 2}));
  EXPECT_NE(shape({2, 3}), shape({2, 3, 1}));
}

TEST(Shape, StridesRowMajor) {
  shape s{2, 3, 4, 5};
  const auto st = s.strides();
  EXPECT_EQ(st[0], 60u);
  EXPECT_EQ(st[1], 20u);
  EXPECT_EQ(st[2], 5u);
  EXPECT_EQ(st[3], 1u);
}

TEST(Shape, IndexOutOfRangeThrows) {
  shape s{2, 3};
  EXPECT_THROW(s[2], invariant_error);
}

TEST(Shape, ToStringReadable) {
  EXPECT_EQ(shape({1, 3, 32, 32}).to_string(), "[1, 3, 32, 32]");
}

TEST(Tensor, ZeroInitialised) {
  tensor t(shape{2, 3});
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FullFills) {
  tensor t = tensor::full(shape{4}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, ConstructFromDataValidatesSize) {
  EXPECT_THROW(tensor(shape{3}, std::vector<float>{1.0f, 2.0f}),
               invariant_error);
}

TEST(Tensor, At4dMatchesFlatLayout) {
  tensor t(shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[1 * 60 + 2 * 20 + 3 * 5 + 4], 7.0f);
}

TEST(Tensor, At2dMatchesFlatLayout) {
  tensor t(shape{3, 4});
  t.at(2, 1) = 9.0f;
  EXPECT_EQ(t[2 * 4 + 1], 9.0f);
}

TEST(Tensor, AtBoundsChecked) {
  tensor t(shape{1, 1, 2, 2});
  EXPECT_THROW(t.at(0, 0, 2, 0), invariant_error);
  EXPECT_THROW(t.at(0, 1, 0, 0), invariant_error);
}

TEST(Tensor, ReshapePreservesData) {
  tensor t(shape{2, 3});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  tensor r = t.reshaped(shape{3, 2});
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
  EXPECT_THROW(t.reshaped(shape{4, 2}), invariant_error);
}

TEST(Tensor, RandnStatistics) {
  rng gen(5);
  tensor t = tensor::randn(shape{4, 1000}, gen, 2.0f);
  double sum = 0.0, sumsq = 0.0;
  for (float v : t.data()) {
    sum += v;
    sumsq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(t.numel());
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  EXPECT_NEAR(sumsq / n, 4.0, 0.2);
}

TEST(Tensor, RandUniformBounds) {
  rng gen(5);
  tensor t = tensor::rand_uniform(shape{1000}, gen, -1.0f, 1.0f);
  for (float v : t.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Tensor, FillOverwrites) {
  tensor t(shape{10}, 3.0f);
  t.fill(-1.0f);
  for (float v : t.data()) EXPECT_EQ(v, -1.0f);
}

TEST(Tensor, IndexingBoundsChecked) {
  tensor t(shape{2});
  EXPECT_THROW(t[2], invariant_error);
}

}  // namespace
}  // namespace advh
