#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace advh::stats {
namespace {

TEST(Stats, MeanBasic) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  std::vector<double> v;
  EXPECT_DOUBLE_EQ(mean(v), 0.0);
}

TEST(Stats, VariancePopulationVsSample) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_NEAR(sample_variance(v), 32.0 / 7.0, 1e-12);
}

TEST(Stats, StddevIsSqrtOfVariance) {
  std::vector<double> v{1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(variance(v)));
}

TEST(Stats, MinMax) {
  std::vector<double> v{3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(min(v), -1.0);
  EXPECT_DOUBLE_EQ(max(v), 7.0);
}

TEST(Stats, MinThrowsOnEmpty) {
  std::vector<double> v;
  EXPECT_THROW(min(v), invariant_error);
}

TEST(Stats, MedianOdd) {
  std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Stats, MedianEvenInterpolates) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Stats, QuantileEndpoints) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 3.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Stats, PearsonAnticorrelation) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  rng gen(9);
  std::vector<double> v;
  running_stats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = gen.normal(5.0, 2.0);
    v.push_back(x);
    rs.push(x);
  }
  EXPECT_NEAR(rs.mean(), mean(v), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(v), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min(v));
  EXPECT_DOUBLE_EQ(rs.max(), max(v));
  EXPECT_EQ(rs.count(), v.size());
}

TEST(RunningStats, MergeEqualsCombined) {
  rng gen(10);
  running_stats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = gen.uniform(-1.0, 4.0);
    (i % 2 ? a : b).push(x);
    all.push(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(RunningStats, MergeWithEmpty) {
  running_stats a, empty;
  a.push(1.0);
  a.push(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(Histogram, CountsAndClamping) {
  histogram h(0.0, 10.0, 10);
  h.push(0.5);   // bin 0
  h.push(9.5);   // bin 9
  h.push(-5.0);  // clamped to bin 0
  h.push(15.0);  // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, FrequencyNormalised) {
  histogram h(0.0, 1.0, 2);
  h.push(0.1);
  h.push(0.2);
  h.push(0.9);
  EXPECT_NEAR(h.frequency(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.frequency(1), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, BinGeometry) {
  histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(histogram(1.0, 1.0, 4), invariant_error);
  EXPECT_THROW(histogram(0.0, 1.0, 0), invariant_error);
}

TEST(AutoHistogram, CoversData) {
  std::vector<double> v{1.0, 2.0, 3.0};
  auto h = auto_histogram(v, 4);
  for (double x : v) h.push(x);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_LT(h.bin_lo(0), 1.0);
  EXPECT_GT(h.bin_hi(3), 3.0);
}

TEST(AutoHistogram, DegenerateDataWidens) {
  std::vector<double> v{2.0, 2.0, 2.0};
  auto h = auto_histogram(v, 4);
  h.push(2.0);
  EXPECT_EQ(h.total(), 1u);
}

}  // namespace
}  // namespace advh::stats
