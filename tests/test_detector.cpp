// Detector-core tests: template bookkeeping, GMM bank + thresholds,
// verdict semantics, and the detection metrics.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/detector.hpp"
#include "core/metrics.hpp"

namespace advh::core {
namespace {

detector_config two_event_config() {
  detector_config cfg;
  cfg.events = {hpc::hpc_event::cache_misses, hpc::hpc_event::instructions};
  cfg.repeats = 5;
  cfg.k_max = 3;
  return cfg;
}

/// Template with class 0 clustered around (1000, 5000) and class 1 bimodal
/// on the first event.
benign_template synthetic_template(std::size_t rows_per_class = 40) {
  benign_template tpl(2, 2);
  rng gen(42);
  for (std::size_t m = 0; m < rows_per_class; ++m) {
    const double a = gen.normal(1000.0, 10.0);
    const double b = gen.normal(5000.0, 20.0);
    tpl.add_row(0, std::vector<double>{a, b});
    const double mode = gen.bernoulli(0.5) ? 2000.0 : 2600.0;
    tpl.add_row(1, std::vector<double>{gen.normal(mode, 15.0),
                                       gen.normal(7000.0, 25.0)});
  }
  return tpl;
}

TEST(BenignTemplate, RowBookkeeping) {
  benign_template tpl(3, 2);
  EXPECT_EQ(tpl.rows(0), 0u);
  tpl.add_row(1, std::vector<double>{1.0, 2.0});
  tpl.add_row(1, std::vector<double>{3.0, 4.0});
  EXPECT_EQ(tpl.rows(1), 2u);
  EXPECT_EQ(tpl.column(1, 0), (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(tpl.column(1, 1), (std::vector<double>{2.0, 4.0}));
}

TEST(BenignTemplate, WidthValidated) {
  benign_template tpl(2, 2);
  EXPECT_THROW(tpl.add_row(0, std::vector<double>{1.0}), invariant_error);
  EXPECT_THROW(tpl.add_row(5, std::vector<double>{1.0, 2.0}),
               invariant_error);
}

TEST(Detector, CleanValuesBelowThreshold) {
  auto tpl = synthetic_template();
  auto det = detector::fit(tpl, two_event_config());
  rng gen(7);
  std::size_t false_flags = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const std::vector<double> x{gen.normal(1000.0, 10.0),
                                gen.normal(5000.0, 20.0)};
    auto v = det.score(0, x);
    if (v.adversarial_any) ++false_flags;
  }
  // Three-sigma rule: a small single-digit-percent false-positive rate.
  EXPECT_LT(static_cast<double>(false_flags) / n, 0.10);
}

TEST(Detector, OutlierValuesFlagged) {
  auto tpl = synthetic_template();
  auto det = detector::fit(tpl, two_event_config());
  // 20 sigma away on the first event.
  auto v = det.score(0, std::vector<double>{1200.0, 5000.0});
  EXPECT_TRUE(v.flagged[0]);
  EXPECT_FALSE(v.flagged[1]);
  EXPECT_TRUE(v.adversarial_any);
}

TEST(Detector, LowOutliersAlsoFlagged) {
  // NLL is high at both tails; an abnormally *low* count is anomalous too.
  auto tpl = synthetic_template();
  auto det = detector::fit(tpl, two_event_config());
  auto v = det.score(0, std::vector<double>{800.0, 5000.0});
  EXPECT_TRUE(v.flagged[0]);
}

TEST(Detector, BimodalClassAcceptsBothModes) {
  auto tpl = synthetic_template();
  auto det = detector::fit(tpl, two_event_config());
  auto v1 = det.score(1, std::vector<double>{2000.0, 7000.0});
  auto v2 = det.score(1, std::vector<double>{2600.0, 7000.0});
  EXPECT_FALSE(v1.flagged[0]);
  EXPECT_FALSE(v2.flagged[0]);
  // The valley between the modes is unlikely under the mixture.
  auto mid = det.score(1, std::vector<double>{2300.0, 7000.0});
  EXPECT_GT(mid.nll[0], v1.nll[0]);
}

TEST(Detector, BicFindsBimodalStructure) {
  auto tpl = synthetic_template(60);
  auto det = detector::fit(tpl, two_event_config());
  const auto& bimodal_model = det.model_for(1, 0);
  ASSERT_TRUE(bimodal_model.has_value());
  EXPECT_GE(bimodal_model->model.order(), 2u);
  const auto& unimodal_model = det.model_for(0, 0);
  ASSERT_TRUE(unimodal_model.has_value());
  EXPECT_EQ(unimodal_model->model.order(), 1u);
}

TEST(Detector, ThresholdIsMeanPlusThreeSigma) {
  auto tpl = synthetic_template();
  detector_config cfg = two_event_config();
  auto det = detector::fit(tpl, cfg);
  const auto& em = det.model_for(0, 0);
  ASSERT_TRUE(em.has_value());
  EXPECT_NEAR(em->threshold, em->nll_mean + 3.0 * em->nll_stddev, 1e-9);
}

TEST(Detector, SigmaMultiplierAdjustsThreshold) {
  auto tpl = synthetic_template();
  detector_config strict = two_event_config();
  strict.sigma_multiplier = 1.0;
  detector_config lax = two_event_config();
  lax.sigma_multiplier = 5.0;
  auto det_strict = detector::fit(tpl, strict);
  auto det_lax = detector::fit(tpl, lax);
  EXPECT_LT(det_strict.model_for(0, 0)->threshold,
            det_lax.model_for(0, 0)->threshold);
}

TEST(Detector, UnmodelledClassFlagsByDefault) {
  benign_template tpl(2, 1);
  rng gen(1);
  for (int i = 0; i < 30; ++i) {
    tpl.add_row(0, std::vector<double>{gen.normal(10.0, 1.0)});
  }
  detector_config cfg;
  cfg.events = {hpc::hpc_event::cache_misses};
  auto det = detector::fit(tpl, cfg);
  // Class 1 had no template rows: the defender never observed its
  // behaviour, so the fail-closed default treats it as suspicious.
  auto v = det.score(1, std::vector<double>{1e9});
  EXPECT_FALSE(v.modeled);
  EXPECT_TRUE(v.adversarial_any);
  EXPECT_FALSE(det.model_for(1, 0).has_value());
  // A modelled class reports modeled regardless of the verdict.
  auto v0 = det.score(0, std::vector<double>{10.0});
  EXPECT_TRUE(v0.modeled);
}

TEST(Detector, UnmodelledClassPassesWhenPolicyDisabled) {
  benign_template tpl(2, 1);
  rng gen(1);
  for (int i = 0; i < 30; ++i) {
    tpl.add_row(0, std::vector<double>{gen.normal(10.0, 1.0)});
  }
  detector_config cfg;
  cfg.events = {hpc::hpc_event::cache_misses};
  cfg.flag_unmodeled = false;
  auto det = detector::fit(tpl, cfg);
  auto v = det.score(1, std::vector<double>{1e9});
  EXPECT_FALSE(v.modeled);
  EXPECT_FALSE(v.adversarial_any);
  // No event carries evidence either way.
  for (bool f : v.flagged) EXPECT_FALSE(f);
}

TEST(Detector, MeasurementWidthValidated) {
  auto tpl = synthetic_template();
  auto det = detector::fit(tpl, two_event_config());
  EXPECT_THROW(det.score(0, std::vector<double>{1.0}), invariant_error);
  EXPECT_THROW(det.score(7, std::vector<double>{1.0, 2.0}), invariant_error);
}

TEST(Detector, ConfigTemplateEventMismatchThrows) {
  benign_template tpl(1, 3);
  EXPECT_THROW(detector::fit(tpl, two_event_config()), invariant_error);
}

TEST(Metrics, ConfusionCounts) {
  detection_confusion c;
  c.push(true, true);    // TP
  c.push(true, false);   // FN
  c.push(false, true);   // FP
  c.push(false, false);  // TN
  EXPECT_EQ(c.true_positives(), 1u);
  EXPECT_EQ(c.false_negatives(), 1u);
  EXPECT_EQ(c.false_positives(), 1u);
  EXPECT_EQ(c.true_negatives(), 1u);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.recall(), 0.5);
  EXPECT_DOUBLE_EQ(c.f1(), 0.5);
}

TEST(Metrics, PerfectDetector) {
  detection_confusion c;
  for (int i = 0; i < 10; ++i) {
    c.push(true, true);
    c.push(false, false);
  }
  EXPECT_DOUBLE_EQ(c.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(c.f1(), 1.0);
}

TEST(Metrics, NeverFlagsGivesZeroF1) {
  detection_confusion c;
  for (int i = 0; i < 10; ++i) {
    c.push(true, false);
    c.push(false, false);
  }
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(Metrics, EmptyConfusionSafe) {
  detection_confusion c;
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(Metrics, MergeAccumulates) {
  detection_confusion a, b;
  a.push(true, true);
  b.push(false, true);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.false_positives(), 1u);
}

}  // namespace
}  // namespace advh::core
