// Drift-aware operation tests: sequential drift detectors (CUSUM,
// Page–Hinkley, windowed KS), the canary/victim controller with its
// quarantine + rolling-recalibration loop, poisoning rejection, the ADET
// v4 checkpoint format (atomic writes, corrupt-file rejection, resume),
// the drift-injecting backend, and the strict chaos-knob env parsing.
// Everything here is seeded and deterministic.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fs.hpp"
#include "common/rng.hpp"
#include "core/detector_io.hpp"
#include "core/drift.hpp"
#include "hpc/drift_backend.hpp"
#include "hpc/factory.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/models/models.hpp"

namespace advh::core {
namespace {

// ------------------------------------------------------------ fixtures --

/// Deterministic pseudo-gaussian NLL stream around the cell's reference.
double ref_nll(rng& gen, double mean, double stddev) {
  return gen.normal(mean, stddev);
}

drift_cell feed(const drift_policy& policy, std::size_t n, double mean,
                double stddev, double offset_sigmas, rng& gen) {
  drift_cell cell;
  for (std::size_t i = 0; i < n; ++i) {
    cell_observe(cell, policy, ref_nll(gen, mean, stddev) +
                                   offset_sigmas * stddev,
                 mean, stddev);
  }
  return cell;
}

constexpr double kMean = 50.0;
constexpr double kStd = 4.0;

/// Two classes, two events, well-separated per-class count distributions.
detector synthetic_detector() {
  benign_template tpl(2, 2);
  rng gen(1234);
  for (std::size_t i = 0; i < 40; ++i) {
    tpl.add_row(0, std::vector<double>{gen.normal(1000.0, 20.0),
                                       gen.normal(500.0, 10.0)});
    tpl.add_row(1, std::vector<double>{gen.normal(2000.0, 30.0),
                                       gen.normal(800.0, 15.0)});
  }
  detector_config cfg;
  cfg.events = {hpc::hpc_event::cache_misses, hpc::hpc_event::llc_load_misses};
  return detector::fit(tpl, cfg, 1);
}

hpc::measurement meas(std::size_t cls, std::vector<double> counts) {
  hpc::measurement m;
  m.predicted = cls;
  m.mean_counts = std::move(counts);
  m.stddev_counts.assign(m.mean_counts.size(), 0.0);
  return m;
}

/// A fresh baseline-distribution canary row for the class.
std::vector<double> baseline_row(std::size_t cls, rng& gen,
                                 double factor = 1.0) {
  if (cls == 0) {
    return {factor * gen.normal(1000.0, 20.0), factor * gen.normal(500.0, 10.0)};
  }
  return {factor * gen.normal(2000.0, 30.0), factor * gen.normal(800.0, 15.0)};
}

std::string scratch_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "." + std::to_string(::getpid()) + ".adet"))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

/// Scoped env-var override that restores the prior value on destruction
/// (the chaos CI job exports these knobs for the whole suite).
class env_guard {
 public:
  explicit env_guard(const char* name) : name_(name) {
    if (const char* prior = std::getenv(name)) prior_ = prior;
  }
  ~env_guard() {
    if (prior_.has_value()) {
      ::setenv(name_, prior_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  void set(const char* value) { ::setenv(name_, value, 1); }
  void unset() { ::unsetenv(name_); }

 private:
  const char* name_;
  std::optional<std::string> prior_;
};

// ------------------------------------------------------ sequential cells --

TEST(DriftCell, StationaryStreamNeverAlarms) {
  // Warn is advisory and a long unit-variance stream may brush it; the
  // action-driving contract is that a stationary stream never *alarms*.
  const drift_policy policy;
  rng gen(7);
  drift_cell cell;
  for (std::size_t i = 0; i < 400; ++i) {
    cell_observe(cell, policy, ref_nll(gen, kMean, kStd), kMean, kStd);
    ASSERT_NE(cell_status(cell, policy), drift_status::alarm) << "sample " << i;
  }
  EXPECT_LT(std::max(cell.cusum_pos, cell.cusum_neg), policy.cusum_warn);
}

TEST(DriftCell, UpwardStepAlarmsQuickly) {
  const drift_policy policy;
  rng gen(7);
  drift_cell cell = feed(policy, 100, kMean, kStd, 0.0, gen);
  ASSERT_NE(cell_status(cell, policy), drift_status::alarm);
  // A genuine baseline step drives the clamped residual to ~z_clamp every
  // sample; the alarm must fire within a handful of observations.
  std::size_t samples_to_alarm = 0;
  while (cell_status(cell, policy) != drift_status::alarm) {
    cell_observe(cell, policy, ref_nll(gen, kMean, kStd) + 50.0 * kStd, kMean,
                 kStd);
    ASSERT_LT(++samples_to_alarm, 10u);
  }
  EXPECT_LE(samples_to_alarm,
            static_cast<std::size_t>(std::ceil(
                policy.cusum_alarm / (policy.z_clamp - policy.cusum_slack))) +
                1);
  EXPECT_GT(cell.cusum_pos, cell.cusum_neg);
}

TEST(DriftCell, DownwardStepAlarmsOnNegativeSide) {
  const drift_policy policy;
  rng gen(11);
  drift_cell cell = feed(policy, 100, kMean, kStd, 0.0, gen);
  for (std::size_t i = 0; i < 10; ++i) {
    cell_observe(cell, policy, ref_nll(gen, kMean, kStd) - 50.0 * kStd, kMean,
                 kStd);
  }
  EXPECT_EQ(cell_status(cell, policy), drift_status::alarm);
  EXPECT_GT(cell.cusum_neg, cell.cusum_pos);
}

TEST(DriftCell, RampWarnsBeforeAlarm) {
  const drift_policy policy;
  rng gen(23);
  drift_cell cell = feed(policy, 100, kMean, kStd, 0.0, gen);
  bool warned_before_alarm = false;
  for (std::size_t i = 0; i < 400; ++i) {
    const double offset = 0.05 * static_cast<double>(i);  // sigmas per step
    cell_observe(cell, policy, ref_nll(gen, kMean, kStd) + offset * kStd,
                 kMean, kStd);
    const auto s = cell_status(cell, policy);
    if (s == drift_status::warn) warned_before_alarm = true;
    if (s == drift_status::alarm) break;
  }
  EXPECT_TRUE(warned_before_alarm);
  EXPECT_EQ(cell_status(cell, policy), drift_status::alarm);
}

TEST(DriftCell, BurnInAbsorbsPinnedStreamOffset) {
  // A pinned canary set sits at a fixed offset from the template-wide
  // mean. With burn-in the cell centres on the stream and stays stable;
  // with burn-in disabled the same stationary stream integrates to alarm.
  drift_policy with_burn_in;
  rng gen_a(5);
  const auto centred = feed(with_burn_in, 400, kMean, kStd, 3.0, gen_a);
  EXPECT_EQ(cell_status(centred, with_burn_in), drift_status::stable);
  EXPECT_NEAR(centred.ref_offset, 3.0, 1.0);

  drift_policy no_burn_in = with_burn_in;
  no_burn_in.burn_in = 0;
  rng gen_b(5);
  const auto raw = feed(no_burn_in, 400, kMean, kStd, 3.0, gen_b);
  EXPECT_EQ(cell_status(raw, no_burn_in), drift_status::alarm);
}

TEST(DriftCell, SingleSpikeDoesNotAlarm) {
  const drift_policy policy;
  rng gen(17);
  drift_cell cell = feed(policy, 100, kMean, kStd, 0.0, gen);
  // NLL grows quadratically in the tail: one noisy probe of an outlier
  // input can land hundreds of sigmas out. The clamp bounds its
  // contribution to z_clamp - slack, far below the alarm.
  cell_observe(cell, policy, kMean + 1e4 * kStd, kMean, kStd);
  EXPECT_NE(cell_status(cell, policy), drift_status::alarm);
  for (std::size_t i = 0; i < 50; ++i) {
    cell_observe(cell, policy, ref_nll(gen, kMean, kStd), kMean, kStd);
    EXPECT_NE(cell_status(cell, policy), drift_status::alarm);
  }
}

TEST(DriftCell, WindowIsBoundedByPolicy) {
  drift_policy policy;
  policy.ks_window = 16;
  rng gen(3);
  const auto cell = feed(policy, 100, kMean, kStd, 0.0, gen);
  EXPECT_EQ(cell.window.size(), policy.ks_window);
}

TEST(KsStatistic, SeparatesMatchedFromShiftedSamples) {
  rng gen(41);
  std::vector<double> matched, shifted;
  for (std::size_t i = 0; i < 64; ++i) {
    matched.push_back(gen.normal(kMean, kStd));
    shifted.push_back(gen.normal(kMean + 6.0 * kStd, kStd));
  }
  EXPECT_LT(ks_statistic(matched, kMean, kStd), 0.3);
  EXPECT_GT(ks_statistic(shifted, kMean, kStd), 0.9);
}

TEST(DriftPolicy, InvalidThresholdsRejected) {
  const detector det = synthetic_detector();
  drift_policy bad;
  bad.cusum_alarm = bad.cusum_warn / 2.0;  // alarm below warn
  EXPECT_THROW(drift_controller(det, bad), invariant_error);
  drift_policy bad2;
  bad2.reservoir_capacity = 4;
  bad2.min_refit_rows = 8;  // cannot ever accumulate enough rows
  EXPECT_THROW(drift_controller(det, bad2), invariant_error);
}

// ------------------------------------------------------------ controller --

TEST(DriftController, CanaryDriftQuarantinesThenRecalibrates) {
  const detector det = synthetic_detector();
  drift_controller ctl(det, drift_policy{});
  rng gen(99);

  // Pre-drift canaries: burn-in plus steady-state, no alarms.
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t cls = 0; cls < 2; ++cls) {
      ASSERT_TRUE(ctl.observe_canary(meas(cls, baseline_row(cls, gen)), cls));
    }
  }
  ASSERT_EQ(ctl.report().quarantined_cells, 0u);
  ASSERT_FALSE(ctl.report().drift_suspected);

  // The machine's baseline doubles. Canary alarms must quarantine every
  // modelled cell of both classes within a few probes.
  std::size_t probes = 0;
  while (ctl.report().quarantined_cells < 4) {
    for (std::size_t cls = 0; cls < 2; ++cls) {
      ctl.observe_canary(meas(cls, baseline_row(cls, gen, 2.0)), cls);
    }
    ASSERT_LT(++probes, 12u);
  }
  EXPECT_TRUE(ctl.report().drift_suspected);

  // Fail-closed window: with every cell of the predicted class
  // quarantined, a victim verdict must abstain (and flag by policy),
  // never silently pass or fail on drifted evidence.
  const auto v = ctl.score_victim(meas(0, baseline_row(0, gen, 2.0)));
  EXPECT_TRUE(v.abstained);
  EXPECT_TRUE(v.degraded);
  EXPECT_TRUE(v.adversarial_any);
  EXPECT_EQ(ctl.state().quarantined_verdicts, 1u);

  // Post-alarm canaries fill the reservoirs; the refit lifts the
  // quarantine and the new baseline scores as benign again.
  while (!ctl.recalibration_due()) {
    for (std::size_t cls = 0; cls < 2; ++cls) {
      ctl.observe_canary(meas(cls, baseline_row(cls, gen, 2.0)), cls);
    }
  }
  const auto refitted = ctl.recalibrate(1);
  EXPECT_EQ(refitted.size(), 2u);
  EXPECT_EQ(ctl.report().quarantined_cells, 0u);
  EXPECT_EQ(ctl.report().recalibrations, 2u);  // one per refitted class

  const auto post = ctl.score_victim(meas(0, {2.0 * 1000.0, 2.0 * 500.0}));
  EXPECT_FALSE(post.abstained);
  EXPECT_FALSE(post.adversarial_any);
  // And the old baseline now looks anomalous — the refit really moved.
  const auto old = ctl.score_victim(meas(0, {1000.0, 500.0}));
  EXPECT_TRUE(old.adversarial_any);
}

TEST(DriftController, AttackOnlyShiftNeverRecalibrates) {
  const detector det = synthetic_detector();
  drift_controller ctl(det, drift_policy{});
  rng gen(77);

  // Canaries stay on the calibrated baseline the whole time.
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t cls = 0; cls < 2; ++cls) {
      ctl.observe_canary(meas(cls, baseline_row(cls, gen)), cls);
    }
  }
  // Victim stream shifts hard (an attack wave): victim cells may alarm,
  // but that is telemetry — no quarantine, no recalibration, ever.
  for (std::size_t i = 0; i < 40; ++i) {
    const auto v = ctl.score_victim(meas(0, baseline_row(0, gen, 2.0)));
    EXPECT_FALSE(v.abstained);
    EXPECT_FALSE(ctl.recalibration_due());
  }
  const auto rep = ctl.report();
  EXPECT_TRUE(rep.attack_suspected);
  EXPECT_FALSE(rep.drift_suspected);
  EXPECT_EQ(rep.quarantined_cells, 0u);
  EXPECT_EQ(rep.recalibrations, 0u);
}

TEST(DriftController, PoisonedCanariesRejected) {
  const detector det = synthetic_detector();
  drift_controller ctl(det, drift_policy{});
  rng gen(31);

  // Misprediction: the "canary" no longer behaves like its pinned label.
  auto wrong = meas(0, baseline_row(0, gen));
  wrong.predicted = 1;
  EXPECT_FALSE(ctl.observe_canary(wrong, 0));

  // Degraded measurement: a faulted counter must not write the baseline.
  auto degraded = meas(0, baseline_row(0, gen));
  degraded.q.available = {1, 0};
  EXPECT_FALSE(ctl.observe_canary(degraded, 0));

  EXPECT_EQ(ctl.state().canaries_rejected, 2u);
  EXPECT_EQ(ctl.state().canaries_accepted, 0u);
  EXPECT_TRUE(ctl.state().reservoir[0].empty());
}

TEST(DriftController, ReservoirRestartsAtAlarmAndStaysBounded) {
  const detector det = synthetic_detector();
  drift_policy policy;
  policy.reservoir_capacity = 16;
  drift_controller ctl(det, policy);
  rng gen(59);

  for (std::size_t i = 0; i < 30; ++i) {
    ctl.observe_canary(meas(0, baseline_row(0, gen)), 0);
  }
  EXPECT_EQ(ctl.state().reservoir[0].size(), policy.reservoir_capacity);

  // First drifted probes trip the alarm; the pre-alarm rows describe the
  // old baseline and must be gone.
  for (std::size_t i = 0; i < 4; ++i) {
    ctl.observe_canary(meas(0, baseline_row(0, gen, 2.0)), 0);
  }
  ASSERT_GT(ctl.report().quarantined_cells, 0u);
  EXPECT_LE(ctl.state().reservoir[0].size(), 4u);
}

TEST(DriftController, RecalibrateIsThreadInvariant) {
  const detector det = synthetic_detector();
  const auto run = [&](std::size_t threads) {
    drift_controller ctl(det, drift_policy{});
    rng gen(13);
    for (std::size_t i = 0; i < 16; ++i) {
      ctl.observe_canary(meas(0, baseline_row(0, gen)), 0);
    }
    for (std::size_t i = 0; i < 12; ++i) {
      ctl.observe_canary(meas(0, baseline_row(0, gen, 2.0)), 0);
    }
    ctl.recalibrate(threads);
    const std::string path = scratch_path("advh_drift_thr" +
                                          std::to_string(threads));
    save_checkpoint(ctl, path);
    const std::string bytes = slurp(path);
    std::remove(path.c_str());
    return bytes;
  };
  const auto one = run(1);
  const auto four = run(4);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, four);
}

// --------------------------------------------------------- persistence --

TEST(DriftCheckpoint, RoundTripIsBitExactAndPreservesVerdicts) {
  const detector det = synthetic_detector();
  drift_controller ctl(det, drift_policy{});
  rng gen(19);
  // Mid-episode state: steady canaries, then a partially-progressed drift
  // episode with live quarantine and a part-filled reservoir.
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t cls = 0; cls < 2; ++cls) {
      ctl.observe_canary(meas(cls, baseline_row(cls, gen)), cls);
    }
  }
  for (std::size_t i = 0; i < 5; ++i) {
    ctl.observe_canary(meas(0, baseline_row(0, gen, 2.0)), 0);
    ctl.score_victim(meas(1, baseline_row(1, gen)));
  }
  ASSERT_GT(ctl.report().quarantined_cells, 0u);

  const std::string path_a = scratch_path("advh_drift_rt_a");
  const std::string path_b = scratch_path("advh_drift_rt_b");
  save_checkpoint(ctl, path_a);

  auto loaded = core::load_checkpoint(path_a);
  ASSERT_TRUE(loaded.drift.has_value());
  drift_controller resumed(std::move(loaded.det), std::move(*loaded.drift));

  // Serialisation is canonical: re-saving the resumed controller must
  // reproduce the original file byte for byte.
  save_checkpoint(resumed, path_b);
  EXPECT_EQ(slurp(path_a), slurp(path_b));

  // And the resumed loop behaves identically: same verdicts, same
  // recalibration trajectory.
  rng probe_gen(101);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto row = baseline_row(0, probe_gen, 2.0);
    const auto va = ctl.score_victim(meas(0, row));
    const auto vb = resumed.score_victim(meas(0, row));
    EXPECT_EQ(va.adversarial_any, vb.adversarial_any);
    EXPECT_EQ(va.abstained, vb.abstained);
    EXPECT_EQ(va.nll, vb.nll);
    ctl.observe_canary(meas(0, row), 0);
    resumed.observe_canary(meas(0, row), 0);
    EXPECT_EQ(ctl.recalibration_due(), resumed.recalibration_due());
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(DriftCheckpoint, EveryTruncationIsRejected) {
  const detector det = synthetic_detector();
  drift_controller ctl(det, drift_policy{});
  rng gen(43);
  for (std::size_t i = 0; i < 12; ++i) {
    ctl.observe_canary(meas(0, baseline_row(0, gen)), 0);
  }
  const std::string path = scratch_path("advh_drift_trunc");
  save_checkpoint(ctl, path);
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 64u);

  // A kill -9 mid-write can never surface a prefix as the checkpoint
  // (atomic rename), but a corrupt disk can: every proper prefix must be
  // rejected as unreadable, not half-loaded.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    atomic_write_file(path, std::string_view(bytes).substr(0, len));
    EXPECT_THROW(core::load_checkpoint(path), io_error) << "prefix " << len;
  }
  std::remove(path.c_str());
}

TEST(DriftCheckpoint, StaleTmpFileNeverShadowsTheCheckpoint) {
  const std::string path = scratch_path("advh_drift_stale");
  const std::string tmp = path + kAtomicTmpSuffix;
  std::remove(path.c_str());

  // A crash between staging and rename leaves only the temp file: the
  // destination must read as absent/unloadable, and the next save must
  // clobber the stale staging bytes.
  {
    std::ofstream os(tmp, std::ios::binary);
    os << "garbage from a crashed writer";
  }
  EXPECT_THROW(core::load_checkpoint(path), io_error);

  const detector det = synthetic_detector();
  drift_controller ctl(det, drift_policy{});
  save_checkpoint(ctl, path);
  EXPECT_FALSE(std::filesystem::exists(tmp));
  const auto loaded = core::load_checkpoint(path);
  EXPECT_TRUE(loaded.drift.has_value());
  std::remove(path.c_str());
}

TEST(DriftCheckpoint, SaveDetectorCarriesNoDriftSection) {
  const detector det = synthetic_detector();
  const std::string path = scratch_path("advh_drift_nodrift");
  save_detector(det, path);
  const auto loaded = core::load_checkpoint(path);
  EXPECT_FALSE(loaded.drift.has_value());
  // and load_detector accepts a checkpoint file, dropping the state.
  drift_controller ctl(det, drift_policy{});
  save_checkpoint(ctl, path);
  EXPECT_NO_THROW(core::load_detector(path));
  std::remove(path.c_str());
}

TEST(DriftCheckpoint, InconsistentPolicyRejected) {
  const detector det = synthetic_detector();
  // A z_clamp value whose byte pattern cannot collide with anything else
  // in the file, so it can be located and corrupted surgically.
  drift_policy policy;
  policy.z_clamp = 7.12890625;
  drift_controller ctl(det, policy);
  const std::string path = scratch_path("advh_drift_badpol");
  save_checkpoint(ctl, path);
  std::string bytes = slurp(path);

  const char* raw = reinterpret_cast<const char*>(&policy.z_clamp);
  const std::size_t needle =
      bytes.find(std::string(raw, raw + sizeof(double)));
  ASSERT_NE(needle, std::string::npos);
  const double bad = -3.0;  // z_clamp must be positive
  bytes.replace(needle, sizeof(double),
                std::string(reinterpret_cast<const char*>(&bad),
                            sizeof(double)));
  atomic_write_file(path, bytes);
  EXPECT_THROW(core::load_checkpoint(path), io_error);
  std::remove(path.c_str());
}

// -------------------------------------------------------- drift backend --

TEST(DriftBackend, FactorFollowsStepAndRampShapes) {
  auto model = nn::make_model(nn::architecture::case_study_cnn,
                              shape{1, 16, 16}, 4, 1);
  hpc::drift_profile step;
  step.shape = hpc::drift_profile::shape_kind::step;
  step.magnitude = 2.0;
  step.onset_stream = 100;
  hpc::drift_backend stepped(std::make_unique<hpc::sim_backend>(*model), step);
  EXPECT_DOUBLE_EQ(stepped.factor_at(0), 1.0);
  EXPECT_DOUBLE_EQ(stepped.factor_at(99), 1.0);
  EXPECT_DOUBLE_EQ(stepped.factor_at(100), 2.0);
  EXPECT_DOUBLE_EQ(stepped.factor_at(1u << 20), 2.0);

  hpc::drift_profile ramp = step;
  ramp.shape = hpc::drift_profile::shape_kind::ramp;
  ramp.ramp_streams = 100;
  hpc::drift_backend ramped(std::make_unique<hpc::sim_backend>(*model), ramp);
  EXPECT_DOUBLE_EQ(ramped.factor_at(99), 1.0);
  EXPECT_NEAR(ramped.factor_at(150), 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(ramped.factor_at(200), 2.0);
  EXPECT_DOUBLE_EQ(ramped.factor_at(10000), 2.0);
}

TEST(DriftBackend, ScalesOnlyAffectedEvents) {
  auto model = nn::make_model(nn::architecture::case_study_cnn,
                              shape{1, 16, 16}, 4, 1);
  tensor x(shape{1, 1, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(0.1 + 0.01 * static_cast<double>(i % 7));
  }
  const std::vector<hpc::hpc_event> events = {
      hpc::hpc_event::cache_misses, hpc::hpc_event::instructions};

  hpc::sim_backend plain(*model);
  const auto base = plain.read_repetitions(x, events, 4, 42);

  hpc::drift_profile profile;
  profile.magnitude = 2.0;
  profile.onset_stream = 0;
  profile.events = {hpc::hpc_event::cache_misses};
  hpc::drift_backend drifted(std::make_unique<hpc::sim_backend>(*model),
                             profile);
  const auto shifted = drifted.read_repetitions(x, events, 4, 42);

  ASSERT_EQ(shifted.repetitions, base.repetitions);
  for (std::size_t rep = 0; rep < base.repetitions; ++rep) {
    EXPECT_NEAR(shifted.value_at(rep, 0), 2.0 * base.value_at(rep, 0),
                1e-6 * base.value_at(rep, 0));
    EXPECT_DOUBLE_EQ(shifted.value_at(rep, 1), base.value_at(rep, 1));
  }
}

// ------------------------------------------------------------ chaos env --

TEST(ChaosEnv, DriftRateParsesStrictly) {
  env_guard guard("ADVH_DRIFT_RATE");
  guard.unset();
  EXPECT_FALSE(hpc::drift_profile_from_env().has_value());
  guard.set("0");
  EXPECT_FALSE(hpc::drift_profile_from_env().has_value());
  guard.set("0.5");
  const auto p = hpc::drift_profile_from_env();
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->magnitude, 1.5);
  EXPECT_EQ(p->onset_stream, 0u);
  for (const char* bad : {"bogus", "", "0.1x", "-0.2", "1e999", "nan"}) {
    guard.set(bad);
    EXPECT_THROW(hpc::drift_profile_from_env(), std::invalid_argument)
        << "value: " << bad;
  }
}

TEST(ChaosEnv, FaultRateParsesStrictly) {
  env_guard guard("ADVH_FAULT_RATE");
  guard.unset();
  EXPECT_FALSE(hpc::fault_config_from_env().has_value());
  guard.set("0.05");
  const auto fc = hpc::fault_config_from_env();
  ASSERT_TRUE(fc.has_value());
  EXPECT_DOUBLE_EQ(fc->read_failure_rate, 0.05);
  EXPECT_DOUBLE_EQ(fc->spike_rate, 0.025);
  for (const char* bad : {"junk", "", "-0.1", "1.5", "0.05 "}) {
    guard.set(bad);
    EXPECT_THROW(hpc::fault_config_from_env(), std::invalid_argument)
        << "value: " << bad;
  }
}

}  // namespace
}  // namespace advh::core
