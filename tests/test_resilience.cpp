// Resilient-measurement stack tests: retry policy, deterministic fault
// injection, robust aggregation, graceful degradation, and the detector's
// degraded-input handling. The fault storms here run at fixed seeds, so
// every assertion is on deterministic behaviour — including the bitwise
// thread-invariance checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "core/detector.hpp"
#include "hpc/fault_backend.hpp"
#include "hpc/resilient_monitor.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/models/models.hpp"

namespace advh::hpc {
namespace {

using core::detector;
using core::detector_config;
using core::benign_template;

// ---------------------------------------------------------------- retry --

TEST(RetryPolicy, DelayIsCappedExponential) {
  retry_policy p;
  p.base_delay = std::chrono::milliseconds(2);
  p.max_delay = std::chrono::milliseconds(10);
  p.multiplier = 2.0;
  EXPECT_EQ(p.delay(0), std::chrono::milliseconds(2));
  EXPECT_EQ(p.delay(1), std::chrono::milliseconds(4));
  EXPECT_EQ(p.delay(2), std::chrono::milliseconds(8));
  EXPECT_EQ(p.delay(3), std::chrono::milliseconds(10));  // capped
  EXPECT_EQ(p.delay(20), std::chrono::milliseconds(10));
}

TEST(RetryPolicy, DegenerateParametersStayNonNegative) {
  retry_policy p;
  p.base_delay = std::chrono::milliseconds(0);
  EXPECT_EQ(p.delay(5), std::chrono::milliseconds(0));
  p.base_delay = std::chrono::milliseconds(3);
  p.multiplier = 0.0;  // treated as "no growth"
  EXPECT_EQ(p.delay(4), std::chrono::milliseconds(3));
}

TEST(RetryPolicy, RunWithRetryReportsAttemptsUsed) {
  retry_policy p;
  p.max_attempts = 3;
  p.base_delay = std::chrono::milliseconds(0);
  std::size_t calls = 0;
  const auto succeed_third = [&](std::size_t) { return ++calls == 3; };
  EXPECT_EQ(run_with_retry(p, succeed_third), 3u);
  calls = 0;
  const auto never = [&](std::size_t) {
    ++calls;
    return false;
  };
  EXPECT_EQ(run_with_retry(p, never), 0u);  // 0 = budget exhausted
  EXPECT_EQ(calls, 3u);
}

// ------------------------------------------------------------- fixtures --

std::unique_ptr<nn::model> make_test_model() {
  return nn::make_model(nn::architecture::case_study_cnn, shape{1, 16, 16}, 4,
                        1);
}

tensor test_input(double scale = 1.0) {
  tensor x(shape{1, 1, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] =
        static_cast<float>(scale * (0.1 + 0.01 * static_cast<double>(i % 7)));
  }
  return x;
}

std::vector<tensor> test_batch(std::size_t n) {
  std::vector<tensor> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(test_input(0.5 + 0.1 * static_cast<double>(i)));
  }
  return out;
}

/// sim -> fault -> resilient stack over a shared model; `fault_out`
/// receives a borrowed pointer to the fault layer when non-null.
monitor_ptr make_stack(nn::model& m, const fault_config& fc,
                       const resilience_config& rc = resilience_config{},
                       fault_backend** fault_out = nullptr) {
  auto sim = std::make_unique<sim_backend>(m);
  auto faulty = std::make_unique<fault_backend>(std::move(sim), fc);
  if (fault_out != nullptr) *fault_out = faulty.get();
  return std::make_unique<resilient_monitor>(std::move(faulty), rc);
}

fault_config transient_faults(double rate, std::uint64_t seed = 13) {
  fault_config fc;
  fc.read_failure_rate = rate;
  fc.spike_rate = rate / 2.0;
  fc.stuck_rate = rate / 4.0;
  fc.seed = seed;
  return fc;
}

// -------------------------------------------------------- fault backend --

TEST(FaultBackend, RequiresRawReaderInner) {
  auto model = make_test_model();
  // A resilient_monitor is not a raw_reader, so it cannot sit under the
  // fault layer.
  auto resilient = std::make_unique<resilient_monitor>(
      std::make_unique<sim_backend>(*model));
  EXPECT_THROW(fault_backend(std::move(resilient), fault_config{}),
               unsupported_error);
}

TEST(FaultBackend, FaultPatternIsPureFunctionOfSeedAndStream) {
  auto model = make_test_model();
  const fault_config fc = transient_faults(0.2);
  fault_backend a(std::make_unique<sim_backend>(*model), fc);
  fault_backend b(std::make_unique<sim_backend>(*model), fc);

  const tensor x = test_input();
  const auto ba = a.read_repetitions(x, core_events(), 10, 7);
  const auto bb = b.read_repetitions(x, core_events(), 10, 7);
  EXPECT_EQ(ba.values, bb.values);
  EXPECT_EQ(ba.status, bb.status);
  // ...and some faults actually happened at this rate/seed.
  const std::size_t failures = static_cast<std::size_t>(
      std::count(ba.status.begin(), ba.status.end(),
                 reading_block::read_status::transient_failure));
  EXPECT_GT(failures, 0u);

  // A different stream index produces a different fault pattern.
  const auto bc = a.read_repetitions(x, core_events(), 10, 8);
  EXPECT_NE(ba.status, bc.status);
}

TEST(FaultBackend, PermanentLossIsMonotoneInStream) {
  auto model = make_test_model();
  fault_config fc;
  fc.permanent_loss_rate = 0.01;
  fc.seed = 21;
  fault_backend mon(std::make_unique<sim_backend>(*model), fc);

  const tensor x = test_input();
  const auto events = core_events();
  for (std::size_t idx = 0; idx < events.size(); ++idx) {
    const std::uint64_t onset = mon.loss_onset(events[idx]);
    if (onset == 0 || onset > 1u << 14) continue;
    const auto before = mon.read_repetitions(x, events, 2, onset - 1);
    const auto after = mon.read_repetitions(x, events, 2, onset);
    EXPECT_NE(before.status_at(0, idx), reading_block::read_status::event_lost);
    EXPECT_EQ(after.status_at(0, idx), reading_block::read_status::event_lost);
  }
  // rate 1 kills every event from stream 0.
  fc.permanent_loss_rate = 1.0;
  fault_backend dead(std::make_unique<sim_backend>(*model), fc);
  for (hpc_event e : all_events()) EXPECT_EQ(dead.loss_onset(e), 0u);
  // rate 0 never kills anything.
  fc.permanent_loss_rate = 0.0;
  fault_backend alive(std::make_unique<sim_backend>(*model), fc);
  for (hpc_event e : all_events()) EXPECT_GT(alive.loss_onset(e), 1u << 30);
}

// --------------------------------------------------- resilient recovery --

TEST(ResilientMonitor, RecoversTransientFailuresWithinRetryBudget) {
  auto model = make_test_model();
  auto mon = make_stack(*model, transient_faults(0.1));

  const auto batch = test_batch(32);
  const auto ms = mon->measure_batch(batch, core_events(), 10, 1);
  std::size_t fully_recovered = 0;
  for (const auto& m : ms) {
    for (std::size_t e = 0; e < core_events().size(); ++e) {
      EXPECT_TRUE(m.q.event_available(e));
      EXPECT_TRUE(std::isfinite(m.mean_counts[e]));
      EXPECT_GT(m.mean_counts[e], 0.0);
    }
    EXPECT_EQ(m.q.repetitions, 10u);
    if (m.q.failed_repetitions == 0) ++fully_recovered;
  }
  // At a 10% transient rate the 4-attempt budget refills essentially every
  // repetition (deterministic at this seed; the bench sweeps this).
  EXPECT_GE(static_cast<double>(fully_recovered) / ms.size(), 0.99);
}

TEST(ResilientMonitor, RobustAggregationRejectsSpikes) {
  auto model = make_test_model();
  const tensor x = test_input();

  // Fault-free reference measurement.
  sim_backend clean(*model);
  const auto ref = clean.measure(x, core_events(), 10);

  fault_config fc;
  fc.spike_rate = 0.15;
  fc.spike_magnitude = 8.0;
  fc.seed = 13;

  // Naive path: fault_backend used directly as a monitor trusts spikes.
  fault_backend naive(std::make_unique<sim_backend>(*model), fc);
  const auto raw = naive.measure(x, core_events(), 10);

  auto robust = make_stack(*model, fc);
  const auto rm = robust->measure(x, core_events(), 10);

  double worst_naive = 0.0, worst_robust = 0.0;
  std::uint32_t rejected = rm.q.outliers_rejected;
  for (std::size_t e = 0; e < core_events().size(); ++e) {
    const double denom = std::max(1.0, std::abs(ref.mean_counts[e]));
    worst_naive = std::max(
        worst_naive, std::abs(raw.mean_counts[e] - ref.mean_counts[e]) / denom);
    worst_robust = std::max(
        worst_robust, std::abs(rm.mean_counts[e] - ref.mean_counts[e]) / denom);
  }
  EXPECT_GT(worst_naive, 0.2);     // spikes drag the naive mean hard
  EXPECT_LT(worst_robust, 0.02);   // MAD trimming holds the robust mean
  EXPECT_GT(rejected, 0u);         // and the trim is surfaced in quality
}

TEST(ResilientMonitor, SerialAndBatchAgreeBitwise) {
  auto model = make_test_model();
  const fault_config fc = transient_faults(0.15);
  auto serial = make_stack(*model, fc);
  auto batched = make_stack(*model, fc);

  const auto batch = test_batch(12);
  std::vector<measurement> one_by_one;
  for (const auto& x : batch) {
    one_by_one.push_back(serial->measure(x, core_events(), 10));
  }
  const auto ms = batched->measure_batch(batch, core_events(), 10, 1);
  ASSERT_EQ(ms.size(), one_by_one.size());
  for (std::size_t i = 0; i < ms.size(); ++i) {
    EXPECT_EQ(ms[i].mean_counts, one_by_one[i].mean_counts);
    EXPECT_EQ(ms[i].stddev_counts, one_by_one[i].stddev_counts);
    EXPECT_EQ(ms[i].predicted, one_by_one[i].predicted);
    EXPECT_EQ(ms[i].q.available, one_by_one[i].q.available);
    EXPECT_EQ(ms[i].q.retries, one_by_one[i].q.retries);
    EXPECT_EQ(ms[i].q.failed_repetitions, one_by_one[i].q.failed_repetitions);
  }
}

TEST(ResilientMonitor, FaultStormBitwiseIdenticalAcrossThreadCounts) {
  auto model = make_test_model();
  fault_config fc = transient_faults(0.2);
  fc.permanent_loss_rate = 0.001;
  auto t1 = make_stack(*model, fc);
  auto t4 = make_stack(*model, fc);

  const auto batch = test_batch(24);
  const auto m1 = t1->measure_batch(batch, core_events(), 10, 1);
  const auto m4 = t4->measure_batch(batch, core_events(), 10, 4);
  ASSERT_EQ(m1.size(), m4.size());
  for (std::size_t i = 0; i < m1.size(); ++i) {
    EXPECT_EQ(m1[i].mean_counts, m4[i].mean_counts);
    EXPECT_EQ(m1[i].stddev_counts, m4[i].stddev_counts);
    EXPECT_EQ(m1[i].predicted, m4[i].predicted);
    EXPECT_EQ(m1[i].q.available, m4[i].q.available);
    EXPECT_EQ(m1[i].q.retries, m4[i].q.retries);
    EXPECT_EQ(m1[i].q.outliers_rejected, m4[i].q.outliers_rejected);
    EXPECT_EQ(m1[i].q.failed_repetitions, m4[i].q.failed_repetitions);
  }
}

TEST(ResilientMonitor, RetryBudgetValidatedAgainstStride) {
  auto model = make_test_model();
  resilience_config rc;
  rc.retry.max_attempts = resilient_monitor::attempt_stride + 1;
  EXPECT_THROW(
      resilient_monitor(std::make_unique<sim_backend>(*model), rc),
      invariant_error);
}

// ------------------------------------------------- graceful degradation --

/// Raw-reader decorator that permanently kills a fixed set of event
/// indices — a controlled stand-in for a PMU losing counters mid-session.
class event_killer final : public hpc_monitor, public raw_reader {
 public:
  event_killer(monitor_ptr inner, std::vector<std::size_t> dead_indices)
      : inner_(std::move(inner)), dead_(std::move(dead_indices)) {
    reader_ = dynamic_cast<raw_reader*>(inner_.get());
    ADVH_CHECK(reader_ != nullptr);
  }

  std::string backend_name() const override {
    return "killer(" + inner_->backend_name() + ")";
  }

  reading_block read_repetitions(const tensor& x,
                                 std::span<const hpc_event> events,
                                 std::size_t repeats,
                                 std::uint64_t stream) override {
    reading_block block = reader_->read_repetitions(x, events, repeats, stream);
    for (std::size_t r = 0; r < block.repetitions; ++r) {
      for (std::size_t dead : dead_) {
        if (dead < block.num_events) {
          block.status[r * block.num_events + dead] =
              reading_block::read_status::event_lost;
        }
      }
    }
    return block;
  }

 protected:
  measurement do_measure(const tensor& x, std::span<const hpc_event> events,
                         std::size_t repeats) override {
    (void)x;
    (void)events;
    (void)repeats;
    throw unsupported_error("event_killer is raw_reader-only in tests");
  }

 private:
  monitor_ptr inner_;
  raw_reader* reader_ = nullptr;
  std::vector<std::size_t> dead_;
};

/// Detector whose per-class models are fitted from fault-free sim
/// measurements of the test inputs, so degraded classifications land in
/// modelled classes.
detector fit_sim_detector(nn::model& m, const detector_config& cfg) {
  sim_backend clean(m);
  benign_template tpl(4, cfg.events.size());
  rng gen(5);
  for (int i = 0; i < 40; ++i) {
    tensor x = test_input(0.5 + 0.02 * gen.uniform());
    const auto meas = clean.measure(x, cfg.events, cfg.repeats);
    tpl.add_row(meas.predicted, meas.mean_counts);
  }
  return detector::fit(tpl, cfg);
}

detector_config sim_detector_config() {
  detector_config cfg;
  cfg.events = core_events();
  cfg.repeats = 10;
  cfg.k_max = 2;
  return cfg;
}

TEST(DegradedDetection, LostEventMasksRoundTripThroughClassifyBatch) {
  auto model = make_test_model();
  const auto cfg = sim_detector_config();
  const auto det = fit_sim_detector(*model, cfg);

  auto killer = std::make_unique<event_killer>(
      std::make_unique<sim_backend>(*model), std::vector<std::size_t>{2});
  resilient_monitor mon(std::move(killer));

  const auto batch = test_batch(8);
  const auto verdicts = det.classify_batch(mon, batch, 2);
  ASSERT_EQ(verdicts.size(), batch.size());
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.degraded);       // event 2 was unavailable
    EXPECT_FALSE(v.abstained);     // 4 of 5 events still scored
    EXPECT_TRUE(v.modeled);
    // The lost event can contribute no evidence.
    EXPECT_EQ(v.nll[2], 0.0);
    EXPECT_FALSE(v.flagged[2]);
  }
  // The monitor's session-level report names exactly the dead event.
  const auto lost = mon.lost_events();
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], cfg.events[2]);
  EXPECT_EQ(mon.surviving(cfg.events).size(), cfg.events.size() - 1);
}

TEST(DegradedDetection, AbstainFiresAtConfiguredSurvivorThreshold) {
  auto model = make_test_model();
  auto cfg = sim_detector_config();
  cfg.min_events_for_verdict = 5;  // need every event
  cfg.flag_on_abstain = true;
  const auto det = fit_sim_detector(*model, cfg);

  auto killer = std::make_unique<event_killer>(
      std::make_unique<sim_backend>(*model), std::vector<std::size_t>{0, 4});
  resilient_monitor mon(std::move(killer));

  const auto v = det.classify(mon, test_input());
  EXPECT_TRUE(v.degraded);
  EXPECT_TRUE(v.abstained);
  EXPECT_TRUE(v.adversarial_any);  // fail-closed abstain policy

  // Same mask, fail-open policy: abstains but passes the input.
  auto open_cfg = cfg;
  open_cfg.flag_on_abstain = false;
  const auto open_det = fit_sim_detector(*model, open_cfg);
  auto killer2 = std::make_unique<event_killer>(
      std::make_unique<sim_backend>(*model), std::vector<std::size_t>{0, 4});
  resilient_monitor mon2(std::move(killer2));
  const auto v2 = open_det.classify(mon2, test_input());
  EXPECT_TRUE(v2.abstained);
  EXPECT_FALSE(v2.adversarial_any);
}

TEST(DegradedDetection, AllEventsLostNeverCrashes) {
  auto model = make_test_model();
  const auto cfg = sim_detector_config();
  const auto det = fit_sim_detector(*model, cfg);

  fault_config fc;
  fc.permanent_loss_rate = 1.0;  // every event dead from stream 0
  auto mon = make_stack(*model, fc);

  const auto verdicts = det.classify_batch(*mon, test_batch(6), 2);
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.degraded);
    EXPECT_TRUE(v.abstained);
    EXPECT_TRUE(v.adversarial_any);  // default policy fails closed
  }
}

TEST(DegradedDetection, ScoreMaskRenormalisesFusion) {
  auto model = make_test_model();
  const auto cfg = sim_detector_config();
  const auto det = fit_sim_detector(*model, cfg);

  sim_backend clean(*model);
  const auto m = clean.measure(test_input(), cfg.events, cfg.repeats);

  // Unmasked score: all events contribute.
  const auto full = det.score(m.predicted, m.mean_counts);
  EXPECT_FALSE(full.degraded);

  // Mask off one event: the verdict fuses over the survivors only.
  std::vector<std::uint8_t> mask(cfg.events.size(), 1);
  mask[1] = 0;
  const auto partial = det.score(m.predicted, m.mean_counts, mask);
  EXPECT_TRUE(partial.degraded);
  EXPECT_EQ(partial.nll[1], 0.0);
  for (std::size_t e = 0; e < cfg.events.size(); ++e) {
    if (e == 1 || !full.modeled) continue;
    EXPECT_EQ(partial.nll[e], full.nll[e]);
  }
  // Mask width is validated.
  EXPECT_THROW(det.score(m.predicted, m.mean_counts,
                         std::vector<std::uint8_t>{1, 0}),
               invariant_error);
}

}  // namespace
}  // namespace advh::hpc
