#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "data/scenarios.hpp"
#include "data/synthetic.hpp"
#include "tensor/ops.hpp"

namespace advh::data {
namespace {

synthetic_spec tiny_spec() {
  synthetic_spec s;
  s.name = "tiny";
  s.channels = 1;
  s.height = 16;
  s.width = 16;
  s.classes = 4;
  s.seed = 9;
  return s;
}

TEST(Synthetic, ShapeAndLabels) {
  auto d = make_synthetic(tiny_spec(), 10);
  EXPECT_EQ(d.size(), 40u);
  EXPECT_EQ(d.images.dims(), shape({40, 1, 16, 16}));
  EXPECT_EQ(d.num_classes, 4u);
  std::map<std::size_t, std::size_t> counts;
  for (std::size_t l : d.labels) ++counts[l];
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(counts[c], 10u);
}

TEST(Synthetic, PixelsInUnitRange) {
  auto d = make_synthetic(tiny_spec(), 5);
  for (float v : d.images.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Synthetic, DeterministicForSameSpec) {
  auto a = make_synthetic(tiny_spec(), 5);
  auto b = make_synthetic(tiny_spec(), 5);
  for (std::size_t i = 0; i < a.images.numel(); ++i) {
    EXPECT_EQ(a.images[i], b.images[i]);
  }
}

TEST(Synthetic, SampleSeedChangesSamplesNotClasses) {
  auto spec = tiny_spec();
  auto a = make_synthetic(spec, 5);
  spec.sample_seed = 1;
  auto b = make_synthetic(spec, 5);
  // Different draws...
  bool any_diff = false;
  for (std::size_t i = 0; i < a.images.numel() && !any_diff; ++i) {
    any_diff = a.images[i] != b.images[i];
  }
  EXPECT_TRUE(any_diff);
  // ...but same class structure: images of class c in both sets are much
  // closer to each other than to other classes (prototype distance).
  const std::size_t stride = 16 * 16;
  auto class_mean = [&](const dataset& d, std::size_t cls) {
    std::vector<double> mean(stride, 0.0);
    const auto idx = d.indices_of_class(cls);
    for (std::size_t i : idx) {
      for (std::size_t j = 0; j < stride; ++j) {
        mean[j] += d.images[i * stride + j];
      }
    }
    for (auto& v : mean) v /= static_cast<double>(idx.size());
    return mean;
  };
  auto dist = [&](const std::vector<double>& x, const std::vector<double>& y) {
    double acc = 0.0;
    for (std::size_t j = 0; j < stride; ++j) {
      acc += (x[j] - y[j]) * (x[j] - y[j]);
    }
    return acc;
  };
  for (std::size_t c = 0; c < 4; ++c) {
    const auto ma = class_mean(a, c);
    const auto mb = class_mean(b, c);
    const auto other = class_mean(b, (c + 2) % 4);  // avoid the twin (c+1)
    EXPECT_LT(dist(ma, mb), dist(ma, other));
  }
}

TEST(Synthetic, DifferentSeedDifferentTask) {
  auto spec = tiny_spec();
  auto a = make_synthetic(spec, 3);
  spec.seed = 1234;
  auto b = make_synthetic(spec, 3);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.images.numel() && !any_diff; ++i) {
    any_diff = a.images[i] != b.images[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, ConfusablePairsAreCloserThanOtherClasses) {
  auto spec = tiny_spec();
  spec.confusable_pairs = true;
  spec.confusable_delta = 0.1;
  auto d = make_synthetic(spec, 20);
  const std::size_t stride = 16 * 16;
  auto class_mean = [&](std::size_t cls) {
    std::vector<double> mean(stride, 0.0);
    const auto idx = d.indices_of_class(cls);
    for (std::size_t i : idx) {
      for (std::size_t j = 0; j < stride; ++j) {
        mean[j] += d.images[i * stride + j];
      }
    }
    for (auto& v : mean) v /= static_cast<double>(idx.size());
    return mean;
  };
  auto dist = [&](const std::vector<double>& x, const std::vector<double>& y) {
    double acc = 0.0;
    for (std::size_t j = 0; j < stride; ++j) {
      acc += (x[j] - y[j]) * (x[j] - y[j]);
    }
    return acc;
  };
  const auto m0 = class_mean(0), m1 = class_mean(1), m2 = class_mean(2);
  EXPECT_LT(dist(m0, m1), dist(m0, m2));  // twin closer than stranger
}

TEST(Synthetic, NamedSpecsMatchPaperShapes) {
  const auto fm = fashion_mnist_like();
  EXPECT_EQ(fm.channels, 1u);
  EXPECT_EQ(fm.height, 28u);
  EXPECT_EQ(fm.classes, 10u);
  EXPECT_EQ(fm.class_names[6], "shirt");  // paper's S1 target class

  const auto c10 = cifar10_like();
  EXPECT_EQ(c10.channels, 3u);
  EXPECT_EQ(c10.height, 32u);
  EXPECT_EQ(c10.class_names[6], "frog");  // paper's S2 target class

  const auto gt = gtsrb_like();
  EXPECT_EQ(gt.classes, 43u);
  EXPECT_EQ(gt.class_names[1], "speed limit (30km/h)");  // S3 target
  EXPECT_EQ(gt.class_names.size(), 43u);
}

TEST(Dataset, IndicesOfClass) {
  auto d = make_synthetic(tiny_spec(), 4);
  const auto idx = d.indices_of_class(2);
  EXPECT_EQ(idx.size(), 4u);
  for (std::size_t i : idx) EXPECT_EQ(d.labels[i], 2u);
}

TEST(Dataset, SubsetPreservesRows) {
  auto d = make_synthetic(tiny_spec(), 4);
  auto s = subset(d, {0, 5, 10});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.labels[1], d.labels[5]);
  const std::size_t stride = 16 * 16;
  for (std::size_t j = 0; j < stride; ++j) {
    EXPECT_EQ(s.images[1 * stride + j], d.images[5 * stride + j]);
  }
}

TEST(Dataset, StratifiedSplitKeepsClassBalance) {
  auto d = make_synthetic(tiny_spec(), 20);
  auto [first, second] = stratified_split(d, 0.25, 1);
  EXPECT_EQ(first.size(), 20u);
  EXPECT_EQ(second.size(), 60u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(first.indices_of_class(c).size(), 5u);
    EXPECT_EQ(second.indices_of_class(c).size(), 15u);
  }
}

TEST(Dataset, ExampleShape) {
  auto d = make_synthetic(tiny_spec(), 2);
  EXPECT_EQ(d.example_shape(), shape({1, 16, 16}));
}

TEST(Scenarios, AllThreeDefined) {
  const auto scenarios = all_scenarios();
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_EQ(scenarios[0].label, "S1");
  EXPECT_EQ(scenarios[0].arch, nn::architecture::efficientnet_lite);
  EXPECT_EQ(scenarios[1].dataset_spec.name, "cifar10_like");
  EXPECT_EQ(scenarios[1].target_class_name, "frog");
  EXPECT_EQ(scenarios[2].dataset_spec.classes, 43u);
  EXPECT_EQ(scenarios[2].target_class, 1u);
}

TEST(Scenarios, RoundTripNames) {
  for (auto id : {scenario_id::s1, scenario_id::s2, scenario_id::s3}) {
    EXPECT_EQ(scenario_from_string(to_string(id)), id);
  }
  EXPECT_THROW(scenario_from_string("S9"), invariant_error);
}

}  // namespace
}  // namespace advh::data
