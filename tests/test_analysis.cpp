// Tests for the model-graph static verifier (src/analysis): every
// diagnostic class gets one deliberately-broken model that must trigger it
// with the right layer attribution, and every factory model must verify
// clean at its scenario-matched input shape.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>

#include "analysis/verifier.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/models/models.hpp"
#include "nn/pooling.hpp"
#include "nn/serialize.hpp"
#include "nn/simple_layers.hpp"

using namespace advh;
using analysis::diag_code;
using analysis::severity;

namespace {

/// Finds the first diagnostic with `code`, or nullptr.
const analysis::diagnostic* find_diag(const analysis::verification_report& r,
                                      diag_code code) {
  for (const auto& d : r.diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::unique_ptr<nn::model> wrap(std::unique_ptr<nn::sequential> net,
                                shape input, std::size_t classes) {
  return std::make_unique<nn::model>("broken", std::move(net), input, classes);
}

/// A small, clean 3x8x8 -> 4-logit CNN used as the base for breakage.
std::unique_ptr<nn::sequential> small_net(rng& gen, std::size_t classes = 4) {
  auto net = std::make_unique<nn::sequential>("net");
  nn::conv2d_config c;
  c.in_channels = 3;
  c.out_channels = 4;
  net->emplace<nn::conv2d>("conv1", c, gen);
  net->emplace<nn::relu>("relu1");
  net->emplace<nn::maxpool2d>("pool1", 2);
  net->emplace<nn::flatten>("flat");
  net->emplace<nn::linear>("fc", std::size_t{4 * 4 * 4}, classes, gen);
  return net;
}

/// Layer that computes but declares no trace contribution: the exact
/// defect the trace-coverage pass exists to catch.
class silent_relu final : public nn::layer {
 public:
  explicit silent_relu(std::string name) : name_(std::move(name)) {}
  tensor forward(const tensor& x, nn::forward_ctx&) override { return x; }
  tensor backward(const tensor& g) override { return g; }
  nn::layer_kind kind() const override { return nn::layer_kind::relu; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override { return in; }
  // No trace_info() override: inherits the empty default contract.

 private:
  std::string name_;
};

/// Layer registering the same parameter twice — the gradient would be
/// applied twice per optimizer step.
class double_registering final : public nn::layer {
 public:
  explicit double_registering(std::string name)
      : name_(std::move(name)), w_(name_ + ".weight", tensor(shape{4, 4})) {
    w_.value.fill(0.5f);
  }
  tensor forward(const tensor& x, nn::forward_ctx&) override { return x; }
  tensor backward(const tensor& g) override { return g; }
  void collect_params(std::vector<nn::parameter*>& out) override {
    out.push_back(&w_);
    out.push_back(&w_);  // the bug under test
  }
  nn::layer_kind kind() const override { return nn::layer_kind::linear; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override { return in; }
  nn::trace_contract trace_info() const override { return {true, true, false}; }

 private:
  std::string name_;
  nn::parameter w_;
};

/// Layer with no static shape inference (keeps the base-class default).
class opaque_layer final : public nn::layer {
 public:
  explicit opaque_layer(std::string name) : name_(std::move(name)) {}
  tensor forward(const tensor& x, nn::forward_ctx&) override { return x; }
  tensor backward(const tensor& g) override { return g; }
  nn::layer_kind kind() const override { return nn::layer_kind::input; }
  std::string name() const override { return name_; }
  nn::trace_contract trace_info() const override { return {true, false, false}; }

 private:
  std::string name_;
};

}  // namespace

TEST(analysis, factory_models_verify_clean) {
  struct {
    nn::architecture arch;
    shape input;
    std::size_t classes;
  } zoo[] = {
      {nn::architecture::case_study_cnn, shape{3, 32, 32}, 10},
      {nn::architecture::efficientnet_lite, shape{1, 28, 28}, 10},
      {nn::architecture::resnet_small, shape{3, 32, 32}, 10},
      {nn::architecture::densenet_small, shape{3, 32, 32}, 43},
  };
  for (const auto& z : zoo) {
    auto m = nn::make_model(z.arch, z.input, z.classes, 7);
    const auto report = analysis::verify_model(*m);
    EXPECT_FALSE(report.has_errors())
        << nn::to_string(z.arch) << ":\n" << report.to_text();
    EXPECT_EQ(report.warning_count(), 0u)
        << nn::to_string(z.arch) << ":\n" << report.to_text();
    EXPECT_GT(report.layers_checked, 0u);
    EXPECT_NO_THROW(analysis::ensure_verified(*m, nn::to_string(z.arch)));
  }
}

TEST(analysis, shape_mismatch_pins_offending_layer) {
  rng gen(1);
  auto net = std::make_unique<nn::sequential>("net");
  nn::conv2d_config c;
  c.in_channels = 8;  // input has 3 channels
  c.out_channels = 4;
  net->emplace<nn::conv2d>("conv1", c, gen);
  net->emplace<nn::relu>("relu1");
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);

  const auto report = analysis::verify_model(*m);
  ASSERT_TRUE(report.has_errors());
  const auto* d = find_diag(report, diag_code::shape_mismatch);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_EQ(d->layer_index, 0u);
  EXPECT_EQ(d->layer_path, "conv1");
  EXPECT_NE(d->message.find("channel"), std::string::npos) << d->message;
}

TEST(analysis, linear_fed_rank4_suggests_flatten) {
  rng gen(1);
  auto net = std::make_unique<nn::sequential>("net");
  nn::conv2d_config c;
  c.in_channels = 3;
  c.out_channels = 4;
  net->emplace<nn::conv2d>("conv1", c, gen);
  net->emplace<nn::linear>("fc", std::size_t{256}, std::size_t{4}, gen);

  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);
  const auto report = analysis::verify_model(*m);
  const auto* d = find_diag(report, diag_code::shape_mismatch);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_EQ(d->layer_index, 1u);
  EXPECT_EQ(d->layer_path, "fc");
  EXPECT_NE(d->message.find("flatten"), std::string::npos) << d->message;
}

TEST(analysis, wrong_head_width_is_output_head_mismatch) {
  rng gen(1);
  auto m = wrap(small_net(gen, /*classes=*/7), shape{3, 8, 8},
                /*model says*/ 4);
  const auto report = analysis::verify_model(*m);
  const auto* d = find_diag(report, diag_code::output_head_mismatch);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_EQ(d->layer_index, 4u);  // the fc layer, last in small_net
  EXPECT_EQ(d->layer_path, "fc");
}

TEST(analysis, no_shape_inference_layer_is_reported) {
  rng gen(1);
  auto net = small_net(gen);
  net->emplace<opaque_layer>("mystery");
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);
  const auto report = analysis::verify_model(*m);
  const auto* d = find_diag(report, diag_code::no_shape_inference);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_EQ(d->layer_index, 5u);
  EXPECT_EQ(d->layer_path, "mystery");
}

TEST(analysis, zeroed_weight_is_uninitialized_param) {
  rng gen(1);
  auto net = small_net(gen);
  static_cast<nn::linear&>(net->at(4)).weight().value.fill(0.0f);
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);
  const auto report = analysis::verify_model(*m);
  const auto* d = find_diag(report, diag_code::uninitialized_param);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_EQ(d->layer_index, 4u);
  EXPECT_EQ(d->layer_path, "fc");
}

TEST(analysis, nan_weight_is_non_finite_param) {
  rng gen(1);
  auto net = small_net(gen);
  auto& conv = static_cast<nn::conv2d&>(net->at(0));
  conv.weight().value.data()[3] = std::numeric_limits<float>::quiet_NaN();
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);
  const auto report = analysis::verify_model(*m);
  const auto* d = find_diag(report, diag_code::non_finite_param);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_EQ(d->layer_index, 0u);
  EXPECT_EQ(d->layer_path, "conv1");
  EXPECT_NE(d->message.find("1/"), std::string::npos) << d->message;
}

TEST(analysis, silent_layer_is_missing_trace_contract) {
  rng gen(1);
  auto net = small_net(gen);
  net->emplace<silent_relu>("stealth");
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);
  const auto report = analysis::verify_model(*m);
  const auto* d = find_diag(report, diag_code::missing_trace_contract);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_EQ(d->layer_index, 5u);
  EXPECT_EQ(d->layer_path, "stealth");
}

TEST(analysis, duplicate_registration_is_reported) {
  rng gen(1);
  auto net = small_net(gen);
  net->emplace<double_registering>("twice");
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);
  const auto report = analysis::verify_model(*m);
  const auto* d = find_diag(report, diag_code::duplicate_param);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_NE(d->layer_path.find("twice"), std::string::npos);
  EXPECT_NE(d->message.find("2 times"), std::string::npos) << d->message;
}

TEST(analysis, empty_nested_sequential_is_dead_layer) {
  rng gen(1);
  auto net = small_net(gen);
  net->emplace<nn::sequential>("ghost_block");
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);
  const auto report = analysis::verify_model(*m);
  const auto* d = find_diag(report, diag_code::dead_layer);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_EQ(d->sev, severity::error);
  EXPECT_EQ(d->layer_index, 5u);
  EXPECT_EQ(d->layer_path, "ghost_block");
}

TEST(analysis, relu_after_logits_is_trailing_activation) {
  rng gen(1);
  auto net = small_net(gen);
  net->emplace<nn::relu>("oops");
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);
  const auto report = analysis::verify_model(*m);
  const auto* d = find_diag(report, diag_code::trailing_activation);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_EQ(d->sev, severity::error);
  EXPECT_EQ(d->layer_index, 5u);
  EXPECT_EQ(d->layer_path, "oops");
}

TEST(analysis, double_relu_is_dead_layer_warning) {
  rng gen(1);
  auto net = std::make_unique<nn::sequential>("net");
  nn::conv2d_config c;
  c.in_channels = 3;
  c.out_channels = 4;
  net->emplace<nn::conv2d>("conv1", c, gen);
  net->emplace<nn::relu>("relu1");
  net->emplace<nn::relu>("relu1b");
  net->emplace<nn::flatten>("flat");
  net->emplace<nn::linear>("fc", std::size_t{4 * 8 * 8}, std::size_t{4}, gen);
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);

  const auto report = analysis::verify_model(*m);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  const auto* d = find_diag(report, diag_code::dead_layer);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_EQ(d->sev, severity::warning);
  EXPECT_EQ(d->layer_index, 2u);
  EXPECT_EQ(d->layer_path, "relu1b");
}

TEST(analysis, batchnorm_hyperparameter_contracts) {
  rng gen(1);
  auto net = std::make_unique<nn::sequential>("net");
  nn::conv2d_config c;
  c.in_channels = 3;
  c.out_channels = 4;
  net->emplace<nn::conv2d>("conv1", c, gen);
  net->emplace<nn::batchnorm2d>("bn_bad", std::size_t{4}, /*momentum=*/1.5f,
                                /*epsilon=*/0.0f);
  net->emplace<nn::relu>("relu1");
  net->emplace<nn::flatten>("flat");
  net->emplace<nn::linear>("fc", std::size_t{4 * 8 * 8}, std::size_t{4}, gen);
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);

  const auto report = analysis::verify_model(*m);
  const auto* eps = find_diag(report, diag_code::batchnorm_epsilon);
  ASSERT_NE(eps, nullptr) << report.to_text();
  EXPECT_EQ(eps->sev, severity::error);
  EXPECT_EQ(eps->layer_index, 1u);
  EXPECT_EQ(eps->layer_path, "bn_bad");
  const auto* mom = find_diag(report, diag_code::batchnorm_momentum);
  ASSERT_NE(mom, nullptr) << report.to_text();
  EXPECT_EQ(mom->layer_index, 1u);
}

TEST(analysis, pass_toggles_limit_scope) {
  rng gen(1);
  auto net = small_net(gen);
  static_cast<nn::linear&>(net->at(4)).weight().value.fill(0.0f);
  net->emplace<nn::relu>("oops");
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);

  analysis::verify_options only_params;
  only_params.check_shapes = false;
  only_params.check_trace = false;
  only_params.check_structure = false;
  const auto report = analysis::verify_model(*m, only_params);
  EXPECT_NE(find_diag(report, diag_code::uninitialized_param), nullptr);
  EXPECT_EQ(find_diag(report, diag_code::trailing_activation), nullptr);
}

TEST(analysis, ensure_verified_throws_with_report) {
  rng gen(1);
  auto net = small_net(gen);
  net->emplace<nn::relu>("oops");
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);
  try {
    analysis::ensure_verified(*m, "unit-test");
    FAIL() << "expected verification_error";
  } catch (const analysis::verification_error& e) {
    EXPECT_TRUE(e.report().has_errors());
    EXPECT_NE(find_diag(e.report(), diag_code::trailing_activation), nullptr);
    EXPECT_NE(std::string(e.what()).find("unit-test"), std::string::npos);
  }
}

TEST(analysis, load_state_refuses_non_finite_weights) {
  const std::string path = "test_analysis_nan_state.advh";
  {
    auto m = nn::make_model(nn::architecture::case_study_cnn, shape{3, 32, 32},
                            10, 3);
    m->params()[0]->value.data()[0] = std::numeric_limits<float>::infinity();
    nn::save_state(*m, path);
  }
  auto fresh = nn::make_model(nn::architecture::case_study_cnn,
                              shape{3, 32, 32}, 10, 4);
  EXPECT_THROW(nn::load_state(*fresh, path),
               analysis::verification_error);
  // The escape hatch still loads the bytes.
  EXPECT_NO_THROW(nn::load_state(*fresh, path, /*verify=*/false));
  std::remove(path.c_str());
}

TEST(analysis, report_renders_text_and_json) {
  rng gen(1);
  auto net = small_net(gen);
  net->emplace<nn::relu>("oops");
  auto m = wrap(std::move(net), shape{3, 8, 8}, 4);
  const auto report = analysis::verify_model(*m);

  const std::string text = report.to_text();
  EXPECT_NE(text.find("trailing-activation"), std::string::npos) << text;
  EXPECT_NE(text.find("oops"), std::string::npos) << text;

  const std::string json = report.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"code\":\"trailing-activation\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
}
