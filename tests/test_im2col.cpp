#include "tensor/im2col.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/matmul.hpp"

namespace advh::ops {
namespace {

TEST(ConvGeometry, OutputDims) {
  conv_geometry g{3, 32, 32, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 32u);
  EXPECT_EQ(g.out_w(), 32u);
  conv_geometry strided{3, 32, 32, 3, 3, 2, 1};
  EXPECT_EQ(strided.out_h(), 16u);
  conv_geometry unpadded{1, 5, 5, 3, 3, 1, 0};
  EXPECT_EQ(unpadded.out_h(), 3u);
}

TEST(Im2col, IdentityKernelReproducesInput) {
  // 1x1 kernel, stride 1, no pad: columns are exactly the flattened input.
  tensor x(shape{1, 2, 3, 3});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  conv_geometry g{2, 3, 3, 1, 1, 1, 0};
  tensor cols = im2col(x, 0, g);
  EXPECT_EQ(cols.dims(), shape({2, 9}));
  for (std::size_t i = 0; i < cols.numel(); ++i) {
    EXPECT_EQ(cols[i], static_cast<float>(i));
  }
}

TEST(Im2col, PaddingProducesZeros) {
  tensor x(shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  conv_geometry g{1, 2, 2, 3, 3, 1, 1};
  tensor cols = im2col(x, 0, g);
  // kernel position (0,0) at output (0,0) reads the padded corner.
  EXPECT_EQ(cols.at(0, 0), 0.0f);
  // center kernel position reproduces the image.
  const std::size_t center_row = 1 * 3 + 1;  // kh=1, kw=1
  EXPECT_EQ(cols.at(center_row, 0), 1.0f);
  EXPECT_EQ(cols.at(center_row, 3), 4.0f);
}

TEST(Im2col, KnownConvolutionResult) {
  // 2x2 image, 2x2 all-ones kernel, no pad: single output = sum of pixels.
  tensor x(shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  conv_geometry g{1, 2, 2, 2, 2, 1, 0};
  tensor cols = im2col(x, 0, g);
  tensor w(shape{1, 4}, std::vector<float>{1, 1, 1, 1});
  tensor y = matmul(w, cols);
  EXPECT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 10.0f);
}

TEST(Im2col, StrideSkipsPositions) {
  tensor x(shape{1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  conv_geometry g{1, 4, 4, 2, 2, 2, 0};
  tensor cols = im2col(x, 0, g);
  EXPECT_EQ(cols.dims(), shape({4, 4}));
  // First kernel element of the 4 output positions: 0, 2, 8, 10.
  EXPECT_EQ(cols.at(0, 0), 0.0f);
  EXPECT_EQ(cols.at(0, 1), 2.0f);
  EXPECT_EQ(cols.at(0, 2), 8.0f);
  EXPECT_EQ(cols.at(0, 3), 10.0f);
}

TEST(Im2col, BatchIndexSelectsImage) {
  tensor x(shape{2, 1, 2, 2});
  for (std::size_t i = 0; i < 4; ++i) x[i] = 1.0f;
  for (std::size_t i = 4; i < 8; ++i) x[i] = 2.0f;
  conv_geometry g{1, 2, 2, 1, 1, 1, 0};
  EXPECT_EQ(im2col(x, 0, g)[0], 1.0f);
  EXPECT_EQ(im2col(x, 1, g)[0], 2.0f);
}

TEST(Im2col, GeometryValidation) {
  tensor x(shape{1, 1, 2, 2});
  conv_geometry bad{2, 2, 2, 1, 1, 1, 0};  // channel mismatch
  EXPECT_THROW(im2col(x, 0, bad), invariant_error);
  conv_geometry big_kernel{1, 2, 2, 5, 5, 1, 0};
  EXPECT_THROW(im2col(x, 0, big_kernel), invariant_error);
}

TEST(Col2im, RoundTripAdjoint) {
  // <im2col(x), y> must equal <x, col2im(y)> (adjoint property), which
  // guarantees the conv backward pass computes correct input gradients.
  rng gen(3);
  tensor x = tensor::randn(shape{1, 2, 5, 5}, gen);
  conv_geometry g{2, 5, 5, 3, 3, 2, 1};
  tensor cols = im2col(x, 0, g);

  tensor y = tensor::randn(cols.dims(), gen);
  tensor back(x.dims());
  col2im_accumulate(y, 0, g, back);

  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) lhs += cols[i] * y[i];
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Col2im, Accumulates) {
  conv_geometry g{1, 2, 2, 1, 1, 1, 0};
  tensor ones(shape{1, 4}, std::vector<float>{1, 1, 1, 1});
  tensor grad(shape{1, 1, 2, 2});
  col2im_accumulate(ones, 0, g, grad);
  col2im_accumulate(ones, 0, g, grad);
  for (float v : grad.data()) EXPECT_FLOAT_EQ(v, 2.0f);
}

}  // namespace
}  // namespace advh::ops
