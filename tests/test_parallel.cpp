// Deterministic parallel measurement engine: pool mechanics, exception
// propagation, and the bitwise thread-count-invariance contract that the
// rest of the library (template collection, batch classification, GMM
// fitting) is built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/models/models.hpp"
#include "nn/trainer.hpp"

namespace advh {
namespace {

TEST(Parallel, ResolveThreadsTakesExplicitRequestLiterally) {
  EXPECT_EQ(parallel::resolve_threads(1), 1u);
  EXPECT_EQ(parallel::resolve_threads(7), 7u);
  EXPECT_GE(parallel::resolve_threads(0), 1u);
  EXPECT_GE(parallel::hardware_threads(), 1u);
}

TEST(Parallel, EnvOverrideControlsDefaultThreads) {
  // The chaos CI job runs the suite with ADVH_THREADS already exported;
  // restore whatever was set so sibling tests see the job's environment.
  const char* prior_raw = std::getenv("ADVH_THREADS");
  const std::optional<std::string> prior =
      prior_raw ? std::optional<std::string>(prior_raw) : std::nullopt;
  ASSERT_EQ(::setenv("ADVH_THREADS", "3", 1), 0);
  EXPECT_EQ(parallel::default_threads(), 3u);
  EXPECT_EQ(parallel::resolve_threads(0), 3u);
  // Explicit requests still win over the environment.
  EXPECT_EQ(parallel::resolve_threads(2), 2u);
  // ADVH_THREADS=0 means "all cores".
  ASSERT_EQ(::setenv("ADVH_THREADS", "0", 1), 0);
  EXPECT_EQ(parallel::default_threads(), parallel::hardware_threads());
  // Malformed values must fail loudly, not silently change thread count
  // (a silent fallback would mask a typo'd deployment knob).
  for (const char* bad : {"bogus", "3x", "-1", "", "9999999999999"}) {
    ASSERT_EQ(::setenv("ADVH_THREADS", bad, 1), 0);
    EXPECT_THROW(parallel::default_threads(), std::invalid_argument) << bad;
    EXPECT_THROW(parallel::resolve_threads(0), std::invalid_argument) << bad;
  }
  if (prior.has_value()) {
    ASSERT_EQ(::setenv("ADVH_THREADS", prior->c_str(), 1), 0);
  } else {
    ASSERT_EQ(::unsetenv("ADVH_THREADS"), 0);
  }
}

TEST(ThreadPool, ChunksCoverEveryIndexExactlyOnce) {
  parallel::thread_pool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  const std::size_t n = 103;  // deliberately not divisible by 4
  std::vector<std::atomic<int>> hits(n);
  std::atomic<bool> bad_worker{false};
  pool.run_chunks(n, [&](std::size_t begin, std::size_t end,
                         std::size_t worker) {
    if (worker >= pool.size() || begin > end || end > n) bad_worker = true;
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  EXPECT_FALSE(bad_worker);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ReusableAcrossDispatches) {
  parallel::thread_pool pool(3);
  for (int round = 0; round < 4; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.run_chunks(10, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 45u);
  }
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  parallel::thread_pool pool(4);
  bool called = false;
  pool.run_chunks(0, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, WorkerExceptionRethrownOnCaller) {
  parallel::thread_pool pool(4);
  // Index n-1 lands in the last spawned worker's chunk, never the caller's.
  EXPECT_THROW(
      pool.run_chunks(8,
                      [](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t i = begin; i < end; ++i) {
                          if (i == 7) throw std::runtime_error("worker boom");
                        }
                      }),
      std::runtime_error);
  // The pool survives a throwing dispatch.
  std::atomic<std::size_t> count{0};
  pool.run_chunks(8, [&](std::size_t begin, std::size_t end, std::size_t) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), 8u);
}

TEST(ThreadPool, CallerChunkExceptionAlsoPropagates) {
  parallel::thread_pool pool(4);
  // Index 0 is always in worker 0's chunk, which runs on the caller.
  EXPECT_THROW(
      pool.run_chunks(8,
                      [](std::size_t begin, std::size_t, std::size_t) {
                        if (begin == 0) throw std::runtime_error("caller boom");
                      }),
      std::runtime_error);
}

TEST(ParallelFor, CoversRangeAtAnyWidth) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::size_t n = 17;
    std::vector<std::atomic<int>> hits(n);
    parallel::parallel_for(n, threads, [&](std::size_t i, std::size_t worker) {
      EXPECT_LT(worker, threads);
      hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelFor, EmptyAndSingleItemRanges) {
  bool called = false;
  parallel::parallel_for(0, 8, [&](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);

  std::size_t seen_index = 99, seen_worker = 99, calls = 0;
  parallel::parallel_for(1, 8, [&](std::size_t i, std::size_t worker) {
    seen_index = i;
    seen_worker = worker;
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(seen_index, 0u);
  EXPECT_EQ(seen_worker, 0u);  // single items run serially on the caller
}

TEST(ParallelFor, ExceptionPropagates) {
  EXPECT_THROW(parallel::parallel_for(
                   20, 4,
                   [](std::size_t i, std::size_t) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(RngStream, IndependentOfDerivationOrder) {
  auto draw3 = [](rng g) {
    return std::vector<std::uint64_t>{g(), g(), g()};
  };
  const auto forward = draw3(rng::stream(42, 5));
  // Deriving other streams first (in any order) must not perturb stream 5.
  rng::stream(42, 0)();
  rng::stream(42, 9)();
  EXPECT_EQ(draw3(rng::stream(42, 5)), forward);
  EXPECT_NE(draw3(rng::stream(42, 6)), forward);
  EXPECT_NE(draw3(rng::stream(43, 5)), forward);
}

TEST(RunningStats, MergeMatchesSingleAccumulator) {
  rng gen(31);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = gen.normal(5.0, 2.5);

  stats::running_stats whole;
  for (double x : xs) whole.push(x);

  // Four uneven partials merged pairwise, as the parallel reductions do.
  stats::running_stats parts[4];
  const std::size_t cuts[5] = {0, 130, 411, 700, 1000};
  for (int p = 0; p < 4; ++p) {
    for (std::size_t i = cuts[p]; i < cuts[p + 1]; ++i) parts[p].push(xs[i]);
  }
  stats::running_stats merged = parts[0];
  for (int p = 1; p < 4; ++p) merged.merge(parts[p]);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());

  // Merging an empty accumulator changes nothing.
  stats::running_stats empty;
  merged.merge(empty);
  EXPECT_EQ(merged.count(), whole.count());
}

class ParallelMeasureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = nn::make_model(nn::architecture::case_study_cnn,
                            shape{1, 16, 16}, 4, /*seed=*/11)
                 .release();
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  static std::vector<tensor> make_inputs(std::size_t n, std::uint64_t seed) {
    rng gen(seed);
    std::vector<tensor> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs.push_back(tensor::rand_uniform(shape{1, 1, 16, 16}, gen, 0.0f, 1.0f));
    }
    return xs;
  }

  static void expect_same(const hpc::measurement& a,
                          const hpc::measurement& b) {
    EXPECT_EQ(a.predicted, b.predicted);
    EXPECT_EQ(a.mean_counts, b.mean_counts);      // bitwise, no tolerance
    EXPECT_EQ(a.stddev_counts, b.stddev_counts);
  }

  static nn::model* model_;
};

nn::model* ParallelMeasureTest::model_ = nullptr;

TEST_F(ParallelMeasureTest, BatchMatchesSerialMeasureBitwise) {
  const auto inputs = make_inputs(6, 12);
  const auto events = hpc::core_events();

  hpc::sim_backend serial(*model_, {}, hpc::noise_model{}, /*seed=*/99);
  std::vector<hpc::measurement> expected;
  for (const auto& x : inputs) expected.push_back(serial.measure(x, events, 5));

  hpc::sim_backend batch(*model_, {}, hpc::noise_model{}, /*seed=*/99);
  const auto got = batch.measure_batch(inputs, events, 5, /*threads=*/4);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) expect_same(got[i], expected[i]);
}

TEST_F(ParallelMeasureTest, BatchIsThreadCountInvariant) {
  const auto inputs = make_inputs(7, 13);
  const auto events = hpc::core_events();

  std::vector<std::vector<hpc::measurement>> runs;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    hpc::sim_backend mon(*model_, {}, hpc::noise_model{}, /*seed=*/55);
    runs.push_back(mon.measure_batch(inputs, events, 4, threads));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[r].size(); ++i) {
      expect_same(runs[r][i], runs[0][i]);
    }
  }
}

TEST_F(ParallelMeasureTest, BatchAndSerialConsumeTheSameStreamSequence) {
  // A batch of k inputs must advance the monitor's stream counter exactly
  // as k serial measures would, so mixing the two APIs stays reproducible.
  const auto inputs = make_inputs(4, 14);
  const auto events = hpc::core_events();

  hpc::sim_backend mixed(*model_, {}, hpc::noise_model{}, /*seed=*/21);
  std::vector<hpc::measurement> a;
  {
    std::span<const tensor> head(inputs.data(), 3);
    auto batch = mixed.measure_batch(head, events, 4, /*threads=*/3);
    a.assign(batch.begin(), batch.end());
    a.push_back(mixed.measure(inputs[3], events, 4));
  }

  hpc::sim_backend serial(*model_, {}, hpc::noise_model{}, /*seed=*/21);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    expect_same(a[i], serial.measure(inputs[i], events, 4));
  }
}

TEST_F(ParallelMeasureTest, PipelineBitwiseIdenticalAcrossThreadCounts) {
  // Label random images with the (untrained) model's own predictions so
  // collect_template's prediction-agreement filter accepts every sample —
  // the template comparison below must not be vacuously empty.
  data::dataset train;
  train.name = "parallel";
  train.num_classes = 4;
  train.class_names = {"c0", "c1", "c2", "c3"};
  rng dgen(91);
  train.images = tensor::rand_uniform(shape{80, 1, 16, 16}, dgen, 0.0f, 1.0f);
  for (std::size_t i = 0; i < 80; ++i) {
    train.labels.push_back(
        model_->predict_one(nn::single_example(train.images, i)));
  }
  const auto eval_inputs = make_inputs(8, 15);

  core::detector_config dcfg;
  dcfg.events = {hpc::hpc_event::cache_misses,
                 hpc::hpc_event::llc_load_misses};
  dcfg.repeats = 4;

  std::optional<core::benign_template> base_tpl;
  std::optional<core::detector> base_det;
  std::vector<core::verdict> base_verdicts;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    // Fresh monitor per run: identical stream state for both thread counts.
    hpc::sim_backend mon(*model_, {}, hpc::noise_model{}, /*seed=*/5);
    auto tpl = core::collect_template(mon, dcfg, train, /*per_class=*/6,
                                      /*seed=*/7, threads);
    auto det = core::detector::fit(tpl, dcfg, threads);
    auto verdicts = det.classify_batch(mon, eval_inputs, threads);

    if (!base_tpl) {
      // The self-labelled dataset guarantees a non-vacuous comparison.
      std::size_t total_rows = 0;
      for (std::size_t cls = 0; cls < tpl.num_classes(); ++cls) {
        total_rows += tpl.rows(cls);
      }
      ASSERT_GT(total_rows, 0u);
      base_tpl = std::move(tpl);
      base_det.emplace(std::move(det));
      base_verdicts = std::move(verdicts);
      continue;
    }
    ASSERT_EQ(tpl.num_classes(), base_tpl->num_classes());
    for (std::size_t cls = 0; cls < tpl.num_classes(); ++cls) {
      for (std::size_t e = 0; e < tpl.num_events(); ++e) {
        EXPECT_EQ(tpl.column(cls, e), base_tpl->column(cls, e))
            << "class " << cls << " event " << e;
      }
    }
    for (std::size_t cls = 0; cls < det.num_classes(); ++cls) {
      for (std::size_t e = 0; e < dcfg.events.size(); ++e) {
        const auto& m1 = base_det->model_for(cls, e);
        const auto& mN = det.model_for(cls, e);
        ASSERT_EQ(m1.has_value(), mN.has_value());
        if (!m1) continue;
        EXPECT_EQ(m1->threshold, mN->threshold);
        EXPECT_EQ(m1->nll_mean, mN->nll_mean);
        EXPECT_EQ(m1->nll_stddev, mN->nll_stddev);
        EXPECT_EQ(m1->template_size, mN->template_size);
      }
    }
    ASSERT_EQ(verdicts.size(), base_verdicts.size());
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      EXPECT_EQ(verdicts[i].predicted, base_verdicts[i].predicted);
      EXPECT_EQ(verdicts[i].nll, base_verdicts[i].nll);
      EXPECT_EQ(verdicts[i].flagged, base_verdicts[i].flagged);
      EXPECT_EQ(verdicts[i].adversarial_any, base_verdicts[i].adversarial_any);
      EXPECT_EQ(verdicts[i].modeled, base_verdicts[i].modeled);
    }
  }
}

}  // namespace
}  // namespace advh
