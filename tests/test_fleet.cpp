// Fleet-layer tests: strict env knobs and the split-brain safety
// validations (worker and controller side), ownership math (replicated
// slots), the lease boundary, the replicated controller group (failure
// detection, leader election, durable terms), the deterministic
// simulated network (at-send delivery fate, reliable retransmission
// schedules, partitions), checkpoint fencing (epoch regression across
// controller terms, foreign shards, truncation — satellite:
// cross-version load is a typed error, never a partial apply), durable
// ban ledgers, fingerprint-range handoff, and whole-fleet discrete-event
// scenarios: quiet serving, crash failover with ban survival, leader
// kill and partition failover, speculative secondary serving, stall
// fencing, recalibration rollout/rollback, and bitwise thread invariance
// under chaos.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/fs.hpp"
#include "core/detector_io.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/config.hpp"
#include "fleet/events.hpp"
#include "fleet/fault_plan.hpp"
#include "fleet/integrity.hpp"
#include "fleet/membership.hpp"
#include "fleet/net.hpp"
#include "fleet/sim.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/models/models.hpp"
#include "serve/clock.hpp"
#include "track/tracker.hpp"

namespace advh::fleet {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- fixtures --

/// Sets an environment variable for one scope, always restoring on exit.
struct env_guard {
  const char* name;
  env_guard(const char* n, const char* v) : name(n) { ::setenv(n, v, 1); }
  ~env_guard() { ::unsetenv(name); }
};

/// Fresh per-test scratch directory under the gtest temp root.
std::string test_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "advh_fleet_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::unique_ptr<nn::model> make_test_model() {
  return nn::make_model(nn::architecture::case_study_cnn, shape{1, 16, 16}, 4,
                        1);
}

/// Deterministic benign input at the given intensity scale.
tensor test_input(double scale = 1.0) {
  tensor x(shape{1, 1, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] =
        static_cast<float>(scale * (0.1 + 0.01 * static_cast<double>(i % 7)));
  }
  return x;
}

/// Attack-probe content: values at quantization-bin centres so `perturb`
/// below step/2 quantizes away and every probe fingerprint-collides
/// (mirrors the track test fixture).
tensor probe_input(std::uint64_t variant, double perturb = 0.0) {
  tensor x(shape{1, 1, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    std::uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ULL +
                      (variant + 1) * 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 31;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 29;
    const auto bin = static_cast<double>(h % 23);
    x.data()[i] = static_cast<float>(0.05 + 0.1 * bin +
                                     perturb * ((i % 2 == 0) ? 1.0 : -1.0));
  }
  return x;
}

core::detector_config test_detector_config() {
  core::detector_config cfg;
  const auto events = hpc::core_events();
  cfg.events = {events[0], events[1]};
  cfg.repeats = 4;
  return cfg;
}

/// Small, fast fleet geometry satisfying lease + max_delay <
/// failure_timeout, with track thresholds low enough to ban within a
/// handful of colliding probes.
fleet_config small_cfg() {
  fleet_config cfg;
  cfg.replicas = 3;
  cfg.class_shards = 2;
  cfg.ring_ranges = 8;
  cfg.hb_interval = 1;
  cfg.failure_timeout = 8;
  cfg.lease = 5;
  cfg.ctl_failure_timeout = 8;
  cfg.ctl_lease = 4;
  cfg.request_timeout = 6;
  cfg.speculate_after = 3;
  cfg.checkpoint_interval = 10;
  cfg.canary_interval = 4;
  cfg.handoff_batch = 4;
  cfg.min_delay = 0;
  cfg.max_delay = 1;
  cfg.retransmit = 2;
  cfg.track.fp.window = 8;
  cfg.track.fp.top_k = 32;
  cfg.track.elevate_hits = 2.0;
  cfg.track.ban_hits = 4.0;
  return cfg;
}

/// Deterministic baseline step drift keyed on the measurement-call count:
/// readings multiply by `magnitude` from the `onset_calls`-th call on.
/// Call order is the replicas' sequential canary loop, so the step is
/// reproducible without depending on backend stream-unit accounting.
class step_drift_monitor final : public hpc::hpc_monitor {
 public:
  step_drift_monitor(std::unique_ptr<hpc::hpc_monitor> inner,
                     std::size_t onset_calls, double magnitude)
      : inner_(std::move(inner)), onset_(onset_calls), magnitude_(magnitude) {}

  std::string backend_name() const override { return "test-step-drift"; }

 protected:
  hpc::measurement do_measure(const tensor& x,
                              std::span<const hpc::hpc_event> events,
                              std::size_t repeats) override {
    hpc::measurement m = inner_->measure(x, events, repeats);
    if (calls_++ >= onset_) {
      for (double& c : m.mean_counts) c *= magnitude_;
    }
    return m;
  }

 private:
  std::unique_ptr<hpc::hpc_monitor> inner_;
  std::size_t onset_;
  double magnitude_;
  std::size_t calls_ = 0;
};

/// Everything one fleet scenario needs: a genesis detector fitted through
/// the same simulated backend the replicas will measure through, plus a
/// labelled canary pool drawn from the fit distribution.
struct fleet_rig {
  std::unique_ptr<nn::model> model;
  std::vector<std::pair<std::size_t, tensor>> canaries;
  core::detector det;
  std::string dir;
  fleet_config cfg;

  explicit fleet_rig(const std::string& name, fleet_config c = small_cfg())
      : model(make_test_model()),
        det(fit_genesis(*model, canaries)),
        dir(test_dir(name)),
        cfg(c) {}

  static core::detector fit_genesis(
      nn::model& model, std::vector<std::pair<std::size_t, tensor>>& canaries) {
    const auto dcfg = test_detector_config();
    hpc::sim_backend fit_monitor(model);
    core::benign_template tpl(4, dcfg.events.size());
    for (std::size_t i = 0; i < 32; ++i) {
      const tensor x = test_input(0.4 + 0.05 * static_cast<double>(i % 12));
      const auto m = fit_monitor.measure(x, dcfg.events, dcfg.repeats);
      tpl.add_row(m.predicted, m.mean_counts);
      if (i < 12) canaries.emplace_back(m.predicted, x);
    }
    return core::detector::fit(tpl, dcfg, 1);
  }

  /// Fleet deps over fresh per-boot sim backends; `drift_magnitude` > 0
  /// wraps each in a step drift that engages after `drift_onset_calls`
  /// measurements. The onset must land AFTER the drift cells' burn-in:
  /// a shift present from the very first probe is absorbed by burn-in as
  /// stationary canary-set bias (by design) and never alarms.
  fleet_deps deps(double drift_magnitude = 0.0,
                  std::size_t drift_onset_calls = 0) {
    fleet_deps d;
    d.base = &det;
    d.dir = dir;
    d.canary_pool = &canaries;
    nn::model* m = model.get();
    d.make_monitor = [m, drift_magnitude, drift_onset_calls](
                         std::size_t) -> std::unique_ptr<hpc::hpc_monitor> {
      auto inner = std::make_unique<hpc::sim_backend>(*m);
      if (drift_magnitude <= 0.0) return inner;
      return std::make_unique<step_drift_monitor>(
          std::move(inner), drift_onset_calls, drift_magnitude);
    };
    return d;
  }

  /// Distinct predicted classes in the canary pool — one measure call per
  /// class per canary step, which converts steps to monitor calls.
  std::size_t canary_classes() const {
    std::vector<std::size_t> cls;
    for (const auto& [c, x] : canaries) cls.push_back(c);
    std::sort(cls.begin(), cls.end());
    cls.erase(std::unique(cls.begin(), cls.end()), cls.end());
    return cls.size();
  }
};

membership_view genesis_view() {
  return membership_view{view_epoch(1, 1), {2, 3, 4}};
}

/// Smallest client id whose fingerprint range is owned by `node` under
/// the genesis view.
std::uint64_t client_owned_by(std::uint32_t node, const fleet_config& cfg) {
  const membership_view v = genesis_view();
  for (std::uint64_t c = 1;; ++c) {
    if (range_owner(v, range_of_client(c, cfg)) == node) return c;
  }
}

std::vector<arrival> benign_arrivals(std::size_t n, std::uint64_t start_tick,
                                     std::uint64_t base_client) {
  std::vector<arrival> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({start_tick + i, base_client + i,
                   test_input(0.4 + 0.05 * static_cast<double>(i % 12))});
  }
  return out;
}

/// One colliding probe per tick from a single client — a near-duplicate
/// query campaign.
std::vector<arrival> probe_campaign(std::uint64_t client,
                                    std::uint64_t start_tick, std::size_t n) {
  std::vector<arrival> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        {start_tick + i, client, probe_input(7, 0.01 * double(i % 2))});
  }
  return out;
}

std::uint64_t resolved_total(const fleet_stats& s) {
  return std::accumulate(s.by_outcome.begin(), s.by_outcome.end(),
                         std::uint64_t{0});
}

std::uint64_t served_total(const fleet_stats& s) {
  return s.outcome(req_outcome::served_clean) +
         s.outcome(req_outcome::served_flagged);
}

// --------------------------------------------------------------- config --

TEST(FleetConfig, EnvOverridesApply) {
  {
    env_guard r("ADVH_FLEET_REPLICAS", "5");
    env_guard l("ADVH_FLEET_LOSS_RATE", "0.25");
    env_guard c("ADVH_FLEET_CONTROLLERS", "5");
    env_guard k("ADVH_FLEET_REPLICATION", "3");
    const fleet_config cfg = fleet_config_from_env();
    EXPECT_EQ(cfg.replicas, 5u);
    EXPECT_DOUBLE_EQ(cfg.loss_rate, 0.25);
    EXPECT_EQ(cfg.controllers, 5u);
    EXPECT_EQ(cfg.replication, 3u);
  }
  // Unset knobs leave the base untouched.
  fleet_config base = small_cfg();
  base.replicas = 7;
  const fleet_config cfg = fleet_config_from_env(base);
  EXPECT_EQ(cfg.replicas, 7u);
  EXPECT_DOUBLE_EQ(cfg.loss_rate, 0.0);
}

TEST(FleetConfig, MalformedReplicasKnobThrows) {
  for (const char* bad : {"0", "65", "-3", "abc", "3.5", "", "4x", "1e300"}) {
    env_guard g("ADVH_FLEET_REPLICAS", bad);
    EXPECT_THROW(fleet_config_from_env(), std::invalid_argument)
        << "ADVH_FLEET_REPLICAS=\"" << bad << "\" must fail loudly";
  }
}

TEST(FleetConfig, MalformedLossRateKnobThrows) {
  for (const char* bad : {"0.96", "1.5", "-0.1", "nan", "lossy", ""}) {
    env_guard g("ADVH_FLEET_LOSS_RATE", bad);
    EXPECT_THROW(fleet_config_from_env(), std::invalid_argument)
        << "ADVH_FLEET_LOSS_RATE=\"" << bad << "\" must fail loudly";
  }
  env_guard g("ADVH_FLEET_LOSS_RATE", "0");
  EXPECT_DOUBLE_EQ(fleet_config_from_env().loss_rate, 0.0);
}

// Satellite: set-but-malformed controller-group knobs throw, matching
// the strict ADVH_* contract (nothing silently mis-sizes the quorum).
TEST(FleetConfig, MalformedControllersKnobThrows) {
  for (const char* bad : {"0", "8", "-1", "abc", "2.5", "", "3x"}) {
    env_guard g("ADVH_FLEET_CONTROLLERS", bad);
    EXPECT_THROW(fleet_config_from_env(), std::invalid_argument)
        << "ADVH_FLEET_CONTROLLERS=\"" << bad << "\" must fail loudly";
  }
  env_guard g("ADVH_FLEET_CONTROLLERS", "1");
  EXPECT_EQ(fleet_config_from_env().controllers, 1u);
}

TEST(FleetConfig, MalformedReplicationKnobThrows) {
  for (const char* bad : {"0", "5", "-2", "xyz", "1.5", "", "2e1"}) {
    env_guard g("ADVH_FLEET_REPLICATION", bad);
    EXPECT_THROW(fleet_config_from_env(), std::invalid_argument)
        << "ADVH_FLEET_REPLICATION=\"" << bad << "\" must fail loudly";
  }
  env_guard g("ADVH_FLEET_REPLICATION", "4");
  EXPECT_EQ(fleet_config_from_env().replication, 4u);
}

// Satellite: the integrity knobs obey the same strict contract — any
// set-but-malformed value throws std::invalid_argument instead of
// silently disabling the scrub or the chaos.
TEST(FleetConfig, MalformedScrubPeriodKnobThrows) {
  for (const char* bad : {"0", "-5", "abc", "2.5", "", "10x", "1e300"}) {
    env_guard g("ADVH_FLEET_SCRUB_PERIOD", bad);
    EXPECT_THROW(fleet_config_from_env(), std::invalid_argument)
        << "ADVH_FLEET_SCRUB_PERIOD=\"" << bad << "\" must fail loudly";
  }
  env_guard g("ADVH_FLEET_SCRUB_PERIOD", "12");
  EXPECT_EQ(fleet_config_from_env().scrub_period, 12u);
}

TEST(FleetConfig, MalformedCorruptRateKnobThrows) {
  for (const char* bad : {"0.6", "1.0", "-0.01", "nan", "rotten", ""}) {
    env_guard g("ADVH_FLEET_CORRUPT_RATE", bad);
    EXPECT_THROW(fleet_config_from_env(), std::invalid_argument)
        << "ADVH_FLEET_CORRUPT_RATE=\"" << bad << "\" must fail loudly";
  }
  env_guard g("ADVH_FLEET_CORRUPT_RATE", "0.05");
  EXPECT_DOUBLE_EQ(fleet_config_from_env().corrupt_rate, 0.05);
}

TEST(FleetConfig, ValidateRejectsSplitBrainHazard) {
  fleet_config cfg = small_cfg();
  EXPECT_NO_THROW(validate(cfg));
  // lease + max_delay == failure_timeout is already unsafe: the beacon in
  // flight when the lease expires could land exactly as ranges move.
  cfg.lease = cfg.failure_timeout - cfg.max_delay;
  EXPECT_THROW(validate(cfg), std::invalid_argument);
  // The controller-side mirror: a deposed leader's lease plus one
  // in-flight beacon must run out strictly before a successor can act.
  cfg = small_cfg();
  cfg.ctl_lease = cfg.ctl_failure_timeout - cfg.max_delay;
  EXPECT_THROW(validate(cfg), std::invalid_argument);
}

TEST(FleetConfig, ValidateRejectsInconsistentGeometry) {
  {
    fleet_config cfg = small_cfg();
    cfg.request_timeout = cfg.max_delay;  // router abstains before arrival
    EXPECT_THROW(validate(cfg), std::invalid_argument);
  }
  {
    fleet_config cfg = small_cfg();
    cfg.replicas = 0;
    EXPECT_THROW(validate(cfg), std::invalid_argument);
  }
  {
    fleet_config cfg = small_cfg();
    cfg.min_delay = 3;  // > max_delay
    EXPECT_THROW(validate(cfg), std::invalid_argument);
  }
  {
    fleet_config cfg = small_cfg();
    cfg.loss_rate = 0.99;
    EXPECT_THROW(validate(cfg), std::invalid_argument);
  }
  {
    fleet_config cfg = small_cfg();
    cfg.controllers = 8;  // quorum math is capped at 7
    EXPECT_THROW(validate(cfg), std::invalid_argument);
  }
  {
    fleet_config cfg = small_cfg();
    cfg.replication = 0;
    EXPECT_THROW(validate(cfg), std::invalid_argument);
  }
  {
    fleet_config cfg = small_cfg();
    cfg.speculate_after = cfg.request_timeout;  // secondary can't respond
    EXPECT_THROW(validate(cfg), std::invalid_argument);
  }
}

// ----------------------------------------------------------- membership --

TEST(Membership, OwnershipIsTotalAndDeterministic) {
  const fleet_config cfg = small_cfg();
  const membership_view v = genesis_view();
  for (std::uint32_t r = 0; r < cfg.ring_ranges; ++r) {
    const auto owner = range_owner(v, r);
    ASSERT_TRUE(owner.has_value());
    EXPECT_TRUE(std::find(v.live.begin(), v.live.end(), *owner) !=
                v.live.end());
    EXPECT_EQ(range_owner(v, r), owner);  // pure function of the view
  }
  for (std::uint64_t s = 0; s < cfg.class_shards; ++s) {
    const auto owner = shard_owner(v, s);
    ASSERT_TRUE(owner.has_value());
    EXPECT_TRUE(std::find(v.live.begin(), v.live.end(), *owner) !=
                v.live.end());
  }
  // Clients map into the configured range space.
  for (std::uint64_t c = 1; c <= 200; ++c) {
    EXPECT_LT(range_of_client(c, cfg), cfg.ring_ranges);
  }
}

TEST(Membership, EmptyViewOwnsNothing) {
  const membership_view dead{3, {}};
  EXPECT_FALSE(range_owner(dead, 0).has_value());
  EXPECT_FALSE(shard_owner(dead, 0).has_value());
}

TEST(Membership, RangesOwnedPartitionTheRing) {
  const fleet_config cfg = small_cfg();
  const membership_view v = genesis_view();
  std::vector<std::uint32_t> all;
  for (const std::uint32_t node : v.live) {
    const auto owned = ranges_owned(v, node, cfg.ring_ranges);
    for (const std::uint32_t r : owned) {
      EXPECT_EQ(range_owner(v, r), node);
      all.push_back(r);
    }
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), cfg.ring_ranges);
  for (std::uint32_t r = 0; r < cfg.ring_ranges; ++r) EXPECT_EQ(all[r], r);
}

// Satellite: THE lease boundary. Holder and acquirer both run on
// lease_held, so the boundary tick anchor+lease belongs to the holder
// ONLY — held through it inclusive, acquirable from the next tick. This
// pins the off-by-one a >=/> mismatch between the serving-lease check
// and the acquisition-grace check would reintroduce.
TEST(Membership, LeaseBoundaryTickBelongsToHolderOnly) {
  constexpr std::uint64_t anchor = 100;
  constexpr std::uint64_t lease = 5;
  EXPECT_TRUE(lease_held(anchor, anchor, lease));
  EXPECT_TRUE(lease_held(anchor + lease, anchor, lease));  // last held tick
  EXPECT_FALSE(lease_held(anchor + lease + 1, anchor, lease));  // first free
  // Degenerate lease: held at the anchor itself, gone one tick later.
  EXPECT_TRUE(lease_held(7, 7, 0));
  EXPECT_FALSE(lease_held(8, 7, 0));
}

TEST(Membership, ViewEpochsComposeTermAndSequence) {
  // A later term dominates ANY epoch an earlier leader could mint, so the
  // replicas' plain `<` fences keep working across leader changes.
  EXPECT_LT(view_epoch(1, 0xffffffffULL), view_epoch(2, 1));
  EXPECT_LT(view_epoch(2, 1), view_epoch(2, 2));
  EXPECT_EQ(epoch_term(view_epoch(7, 42)), 7u);
  EXPECT_EQ(epoch_seq(view_epoch(7, 42)), 42u);
}

TEST(Membership, OwnerSlotsAreDistinctAndCapped) {
  const fleet_config cfg = small_cfg();
  const membership_view v = genesis_view();
  for (std::uint32_t r = 0; r < cfg.ring_ranges; ++r) {
    const auto p = range_owner_k(v, r, 0);
    const auto s = range_owner_k(v, r, 1);
    ASSERT_TRUE(p.has_value());
    ASSERT_TRUE(s.has_value());
    EXPECT_NE(*p, *s);  // replicated slots land on distinct nodes
    EXPECT_EQ(range_owner_k(v, r, 0), range_owner(v, r));
    EXPECT_EQ(owner_slot(v, r, *p, 2).value(), 0u);
    EXPECT_EQ(owner_slot(v, r, *s, 2).value(), 1u);
    // The third live node holds no slot at replication 2...
    for (const std::uint32_t n : v.live) {
      if (n != *p && n != *s) {
        EXPECT_FALSE(owner_slot(v, r, n, 2).has_value());
      }
    }
    // ...and at replication 1 only the primary does.
    EXPECT_FALSE(owner_slot(v, r, *s, 1).has_value());
  }
  // More slots than live nodes: the tail is nullopt, never a wrap-around
  // duplicate of the primary.
  const membership_view two{view_epoch(1, 2), {2, 3}};
  EXPECT_FALSE(range_owner_k(two, 0, 2).has_value());
}

TEST(Membership, ControllerDeclaresDeadThenReadmits) {
  // A single-controller group: the genesis leader's failure detector and
  // two-phase view activation, driven by scripted heartbeat messages.
  fleet_config cfg = small_cfg();
  cfg.controllers = 1;
  event_log log;
  sim_net net(cfg);
  controller ctl(0, cfg, test_dir("ctl_detect"), net, log);
  EXPECT_EQ(ctl.view().epoch, view_epoch(1, 1));
  EXPECT_EQ(ctl.view().live, genesis_view().live);
  EXPECT_TRUE(ctl.acting(0));

  const auto hb = [&](std::uint32_t src, std::uint64_t t) {
    message m;
    m.kind = msg_kind::heartbeat;
    m.src = src;
    m.dst = ctl.node();
    m.send_tick = t;
    ctl.enqueue(std::move(m));
  };

  // Nodes 2 and 3 heartbeat every tick; node 4 goes silent from tick 0.
  std::uint64_t death_announced = 0;
  std::uint64_t death_activated = 0;
  for (std::uint64_t t = 1; t <= 3 * cfg.failure_timeout; ++t) {
    hb(2, t);
    hb(3, t);
    ctl.on_tick(t);
    if (death_announced == 0 && ctl.announced().epoch == view_epoch(1, 2)) {
      death_announced = t;
    }
    if (death_activated == 0 && ctl.view().epoch == view_epoch(1, 2)) {
      death_activated = t;
    }
  }
  ASSERT_GT(death_announced, 0u);
  EXPECT_GE(death_announced, cfg.failure_timeout);
  // Two-phase activation: the authoritative flip waits out one full
  // ownership lease after the announcement.
  ASSERT_GT(death_activated, 0u);
  EXPECT_EQ(death_activated, death_announced + cfg.lease + 1);
  EXPECT_EQ(ctl.view().live, (std::vector<std::uint32_t>{2, 3}));

  // A fresh heartbeat readmits the node under the next epoch of the SAME
  // term — the genesis leader never re-elects itself.
  const std::uint64_t back = 3 * cfg.failure_timeout + 1;
  hb(4, back);
  hb(2, back);
  hb(3, back);
  ctl.on_tick(back);
  EXPECT_EQ(ctl.announced().epoch, view_epoch(1, 3));
  EXPECT_EQ(ctl.announced().live, genesis_view().live);
  EXPECT_EQ(ctl.term(), 1u);
}

// --------------------------------------------------------- ctl election --

/// A controller group wired to a private sim_net, pumped with the same
/// (on_tick, then deliver) phase order the fleet sim uses. Beacons to
/// worker/router node ids are dropped — these tests watch the election
/// protocol only.
struct ctl_group {
  fleet_config cfg;
  event_log log;
  sim_net net;
  std::vector<std::unique_ptr<controller>> ctls;
  std::uint64_t tick = 0;

  explicit ctl_group(const std::string& name, fleet_config c = small_cfg())
      : cfg(c), net(cfg) {
    const std::string dir = test_dir(name);
    for (std::size_t j = 0; j < cfg.controllers; ++j) {
      ctls.push_back(std::make_unique<controller>(j, cfg, dir, net, log));
    }
  }

  void run_to(std::uint64_t end) {
    for (; tick < end; ++tick) {
      // Scripted worker heartbeats to the whole group, so an elected
      // leader has a warm failure-detection table and publishes views
      // with the full live list.
      for (auto& c : ctls) {
        for (std::size_t i = 0; i < cfg.replicas; ++i) {
          message hb;
          hb.kind = msg_kind::heartbeat;
          hb.src = replica_node(i);
          hb.dst = c->node();
          hb.send_tick = tick;
          c->enqueue(std::move(hb));
        }
      }
      for (auto& c : ctls) c->on_tick(tick);
      for (message& m : net.deliver_until(tick)) {
        if (!is_controller_node(m.dst)) continue;
        const std::size_t j = m.dst - kControllerBase;
        if (j < ctls.size() && ctls[j]->up()) {
          ctls[j]->enqueue(std::move(m));
        }
      }
    }
  }

  const controller* acting() const {
    for (const auto& c : ctls) {
      if (c->up() && c->acting(tick)) return c.get();
    }
    return nullptr;
  }
};

TEST(CtlElection, GenesisLeaderHoldsQuietGroup) {
  ctl_group g("ctl_quiet");
  g.run_to(60);
  const controller* leader = g.acting();
  ASSERT_NE(leader, nullptr);
  EXPECT_EQ(leader->node(), controller_node(0));
  EXPECT_EQ(leader->term(), 1u);
  // A live leader starves every stagger: nobody ever ran for office.
  EXPECT_EQ(g.log.stats().elections, 0u);
  for (const auto& c : g.ctls) EXPECT_LE(c->term(), 1u);
}

TEST(CtlElection, LeaderCrashElectsStandbyUnderHigherTerm) {
  ctl_group g("ctl_kill");
  g.run_to(10);
  g.ctls[0]->crash(10);
  g.run_to(100);

  const controller* leader = g.acting();
  ASSERT_NE(leader, nullptr);
  EXPECT_NE(leader->node(), controller_node(0));
  EXPECT_GE(leader->term(), 2u);
  EXPECT_GE(g.log.stats().elections, 1u);
  // The new regime's views dominate everything term 1 ever minted.
  EXPECT_GE(leader->view().epoch, view_epoch(leader->term(), 1));
  // Exactly one controller is acting.
  std::size_t acting = 0;
  for (const auto& c : g.ctls) {
    if (c->up() && c->acting(g.tick)) ++acting;
  }
  EXPECT_EQ(acting, 1u);

  // The old leader recovers into the new regime: its durable term record
  // and the live leader's beacons pin it to standby — no term-1 revival,
  // no competing election.
  const std::uint64_t elections = g.log.stats().elections;
  g.ctls[0]->recover(100);
  g.run_to(160);
  EXPECT_EQ(g.ctls[0]->role(), ctl_role::standby);
  EXPECT_EQ(g.acting(), leader);
  EXPECT_EQ(g.log.stats().elections, elections);
  EXPECT_NE(g.log.text().find("ctl-leader"), std::string::npos);
}

TEST(CtlElection, QuorumLossFailsClosed) {
  // A 1-of-3 survivor can never assemble a quorum, however long it
  // waits: it cycles candidacies without ever becoming leader, so the
  // group stops publishing views entirely rather than risk two regimes.
  ctl_group g("ctl_minority");
  g.run_to(10);
  g.ctls[0]->crash(10);
  g.ctls[2]->crash(10);
  g.run_to(120);
  EXPECT_EQ(g.acting(), nullptr);  // no quorum, nobody acts — fail closed
  EXPECT_EQ(g.log.stats().elections, 0u);
  EXPECT_NE(g.ctls[1]->role(), ctl_role::leader);
}

// ------------------------------------------------------------------ net --

std::vector<message> drain_scripted(sim_net& net, const fleet_config& cfg) {
  for (std::uint64_t t = 0; t < 40; ++t) {
    message req;
    req.kind = msg_kind::request;
    req.src = kRouterNode;
    req.dst = replica_node(t % cfg.replicas);
    req.req_id = t + 1;
    net.send(req, t);
    if (t % 3 == 0) {
      message beacon;
      beacon.kind = msg_kind::view_beacon;
      beacon.src = controller_node(0);
      beacon.dst = replica_node(t % cfg.replicas);
      beacon.req_id = 1000 + t;
      net.send_reliable(beacon, t);
    }
  }
  return net.deliver_until(1000);
}

TEST(SimNet, DeliveryFateIsDeterministic) {
  fleet_config cfg = small_cfg();
  cfg.loss_rate = 0.3;
  cfg.max_delay = 2;
  sim_net a(cfg), b(cfg);
  const auto da = drain_scripted(a, cfg);
  const auto db = drain_scripted(b, cfg);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].kind, db[i].kind);
    EXPECT_EQ(da[i].dst, db[i].dst);
    EXPECT_EQ(da[i].req_id, db[i].req_id);
  }
  EXPECT_EQ(a.stats().sent, b.stats().sent);
  EXPECT_EQ(a.stats().lost, b.stats().lost);
  EXPECT_EQ(a.stats().retransmissions, b.stats().retransmissions);
  EXPECT_GT(a.stats().lost, 0u);  // 30% loss over 40 best-effort sends
}

TEST(SimNet, ReliableMessagesSurviveHeavyLoss) {
  fleet_config cfg = small_cfg();
  cfg.loss_rate = 0.9;
  sim_net net(cfg);
  constexpr std::size_t kMsgs = 50;
  for (std::size_t i = 0; i < kMsgs; ++i) {
    message m;
    m.kind = msg_kind::ban_announce;
    m.src = replica_node(0);
    m.dst = replica_node(1);
    m.req_id = i;
    net.send_reliable(m, 0);
  }
  // 64 attempts * retransmit period + max delay bounds the schedule.
  const auto delivered = net.deliver_until(64 * cfg.retransmit + cfg.max_delay);
  EXPECT_EQ(delivered.size(), kMsgs);
  EXPECT_GT(net.stats().retransmissions, 0u);
  EXPECT_EQ(net.stats().lost, 0u);  // loss only counts abandoned messages
}

TEST(SimNet, DeliveryOrderIsTotal) {
  fleet_config cfg = small_cfg();
  cfg.min_delay = 0;
  cfg.max_delay = 2;
  sim_net net(cfg);
  for (std::uint64_t i = 0; i < 20; ++i) {
    message m;
    m.kind = msg_kind::response;
    m.req_id = i;
    net.send(m, 0);
  }
  const auto out = net.deliver_until(100);
  // Same deliver tick resolves by send sequence: req_ids with equal delay
  // stay in send order, and delivery ticks never decrease.
  ASSERT_EQ(out.size() + net.stats().lost, 20u);
}

// ----------------------------------------------------------- checkpoint --
// Satellite: cross-version / cross-shard checkpoint loads are typed
// errors, never a partial apply.

struct checkpoint_rig {
  fleet_rig rig;
  core::checkpoint_meta meta;

  explicit checkpoint_rig(const std::string& name) : rig(name) {
    meta.epoch = 3;
    meta.shard_index = 0;
    meta.shard_count = rig.cfg.class_shards;
    meta.content_version = 2;
  }
};

TEST(Checkpoint, ShardRoundtripPreservesShardModelsOnly) {
  checkpoint_rig r("ckpt_roundtrip");
  const std::string path =
      save_shard_checkpoint(r.rig.det, r.rig.cfg, r.rig.dir, 0, r.meta);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_TRUE(fs::exists(shard_latest_path(r.rig.dir, 0)));

  const core::checkpoint cp =
      load_shard_checkpoint(path, 0, r.rig.cfg, 3, 1);
  ASSERT_TRUE(cp.meta.has_value());
  EXPECT_EQ(cp.meta->epoch, 3u);
  EXPECT_EQ(cp.meta->content_version, 2u);
  ASSERT_EQ(cp.det.num_classes(), r.rig.det.num_classes());
  for (std::size_t c = 0; c < cp.det.num_classes(); ++c) {
    for (std::size_t e = 0; e < 2; ++e) {
      const auto& orig = r.rig.det.model_for(c, e);
      const auto& got = cp.det.model_for(c, e);
      if (shard_of_class(c, r.rig.cfg) != 0) {
        EXPECT_FALSE(got.has_value());  // foreign classes restricted away
      } else {
        ASSERT_EQ(got.has_value(), orig.has_value());
        if (got) {
          EXPECT_DOUBLE_EQ(got->threshold, orig->threshold);
          EXPECT_DOUBLE_EQ(got->nll_mean, orig->nll_mean);
        }
      }
    }
  }
}

TEST(Checkpoint, StageDoesNotFlipLatestAlias) {
  checkpoint_rig r("ckpt_stage");
  save_shard_checkpoint(r.rig.det, r.rig.cfg, r.rig.dir, 0, r.meta);
  core::checkpoint_meta staged = r.meta;
  staged.content_version = 3;
  stage_shard_checkpoint(r.rig.det, r.rig.cfg, r.rig.dir, 0, staged);
  // The alias still names the promoted v2 — a staged (possibly poisoned)
  // recalibration can never become what a recovering replica loads.
  const auto cp =
      load_shard_checkpoint(shard_latest_path(r.rig.dir, 0), 0, r.rig.cfg, 0, 0);
  ASSERT_TRUE(cp.meta.has_value());
  EXPECT_EQ(cp.meta->content_version, 2u);
}

TEST(Checkpoint, LoadFencesEpochRegression) {
  checkpoint_rig r("ckpt_epoch");
  const auto path =
      save_shard_checkpoint(r.rig.det, r.rig.cfg, r.rig.dir, 0, r.meta);
  try {
    load_shard_checkpoint(path, 0, r.rig.cfg, /*min_epoch=*/4, 0);
    FAIL() << "epoch-regressed checkpoint must fence";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find("epoch regression"),
              std::string::npos);
  }
}

// Satellite: the epoch fence holds ACROSS controller terms. Composed
// view epochs make a term-2 checkpoint dominate every term-1 epoch any
// earlier leader could mint (however high its sequence), and regress
// against any term-3 epoch — the same plain `<` with no special casing.
TEST(Checkpoint, FencesAcrossControllerTerms) {
  checkpoint_rig r("ckpt_terms");
  r.meta.epoch = view_epoch(2, 1);
  const auto path =
      save_shard_checkpoint(r.rig.det, r.rig.cfg, r.rig.dir, 0, r.meta);
  // Accepted under any term-1 floor, even a late-sequence one.
  const auto cp =
      load_shard_checkpoint(path, 0, r.rig.cfg, view_epoch(1, 9000), 0);
  ASSERT_TRUE(cp.meta.has_value());
  EXPECT_EQ(cp.meta->epoch, view_epoch(2, 1));
  // Fenced under the very first epoch of a later term.
  try {
    load_shard_checkpoint(path, 0, r.rig.cfg, view_epoch(3, 1), 0);
    FAIL() << "checkpoint from a burned term must fence";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find("epoch regression"),
              std::string::npos);
  }
}

TEST(Checkpoint, LoadFencesNonAdvancingVersion) {
  checkpoint_rig r("ckpt_version");
  const auto path =
      save_shard_checkpoint(r.rig.det, r.rig.cfg, r.rig.dir, 0, r.meta);
  try {
    load_shard_checkpoint(path, 0, r.rig.cfg, 0, /*min_version_exclusive=*/2);
    FAIL() << "stale content version must fence";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find("did not advance"),
              std::string::npos);
  }
}

TEST(Checkpoint, LoadFencesForeignShard) {
  checkpoint_rig r("ckpt_shard");
  const auto path =
      save_shard_checkpoint(r.rig.det, r.rig.cfg, r.rig.dir, 0, r.meta);
  EXPECT_THROW(load_shard_checkpoint(path, 1, r.rig.cfg, 0, 0), io_error);
}

TEST(Checkpoint, LoadFencesForeignShardGeometry) {
  checkpoint_rig r("ckpt_geometry");
  const auto path =
      save_shard_checkpoint(r.rig.det, r.rig.cfg, r.rig.dir, 0, r.meta);
  fleet_config other = r.rig.cfg;
  other.class_shards = 3;
  try {
    load_shard_checkpoint(path, 0, other, 0, 0);
    FAIL() << "foreign shard geometry must fence";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find("foreign shard geometry"),
              std::string::npos);
  }
}

TEST(Checkpoint, LoadFencesLegacyFileWithoutFleetSection) {
  checkpoint_rig r("ckpt_legacy");
  // A plain detector save (ADET v4, byte-identical to earlier revisions)
  // carries no fleet section — a fleet must never trust it as a shard.
  const std::string path = r.rig.dir + "/legacy.adet";
  core::save_detector(r.rig.det, path);
  try {
    load_shard_checkpoint(path, 0, r.rig.cfg, 0, 0);
    FAIL() << "legacy checkpoint must fence";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find("no fleet section"),
              std::string::npos);
  }
}

TEST(Checkpoint, TruncatedFileIsTypedErrorNeverPartial) {
  checkpoint_rig r("ckpt_trunc");
  const auto path =
      save_shard_checkpoint(r.rig.det, r.rig.cfg, r.rig.dir, 0, r.meta);
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 32u);
  // Cut the file at several depths, including inside the trailing fleet
  // section; every cut must surface as a typed io_error, never a
  // checkpoint with silently missing pieces.
  for (const std::size_t keep :
       {bytes.size() / 4, bytes.size() / 2, bytes.size() - 5}) {
    const std::string cut = r.rig.dir + "/cut.adet";
    atomic_write_file(cut, std::string_view(bytes).substr(0, keep));
    EXPECT_THROW(load_shard_checkpoint(cut, 0, r.rig.cfg, 0, 0), io_error)
        << "truncation at " << keep << " of " << bytes.size();
  }
}

TEST(Checkpoint, BanLedgerRoundtrip) {
  const std::string dir = test_dir("ban_ledger");
  const std::string path = ban_ledger_path(dir, replica_node(0));
  EXPECT_TRUE(read_ban_ledger(path).empty());  // missing = no bans recorded

  const std::vector<std::uint64_t> bans{5, 7, 900000001};
  write_ban_ledger(path, bans);
  EXPECT_EQ(read_ban_ledger(path), bans);

  // Rewrites are atomic whole-file replacements.
  write_ban_ledger(path, {42});
  EXPECT_EQ(read_ban_ledger(path), std::vector<std::uint64_t>{42});
}

TEST(Checkpoint, CorruptBanLedgerIsTypedError) {
  const std::string dir = test_dir("ban_corrupt");
  const std::string path = ban_ledger_path(dir, replica_node(0));
  atomic_write_file(path, "not a ledger at all");
  EXPECT_THROW(read_ban_ledger(path), io_error);
  const ban_ledger_read header = read_ban_ledger_checked(path);
  EXPECT_TRUE(header.header_corrupt);
  EXPECT_TRUE(header.clients.empty());
}

// Satellite: a torn ADBL tail ("the ledger ends here") is tolerated —
// the checked reader returns every fully persisted, checksum-verified
// record before the tear and reports the damage instead of throwing.
TEST(Checkpoint, TornBanLedgerTailYieldsVerifiedPrefix) {
  const std::string dir = test_dir("ban_torn");
  const std::string path = ban_ledger_path(dir, replica_node(0));
  write_ban_ledger(path, {1, 2, 3});
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }

  // Cut mid-final-record (a crash between append and flush): records 1
  // and 2 survive with their checksums, record 3 is reported dropped.
  atomic_write_file(path, std::string_view(bytes).substr(0, bytes.size() - 4));
  const ban_ledger_read torn = read_ban_ledger_checked(path);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_FALSE(torn.header_corrupt);
  EXPECT_EQ(torn.clients, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(torn.dropped_records, 1u);
  // The lenient reader agrees (prefix, no throw) — replicas replaying
  // ledgers at boot never lose the bans that were durably persisted.
  EXPECT_EQ(read_ban_ledger(path), (std::vector<std::uint64_t>{1, 2}));

  // Flip one bit inside the SECOND record's payload: the prefix shrinks
  // to the records whose checksums still verify.
  std::string flipped = bytes;
  const std::size_t second_record = 16 + 12;  // header, then 12B records
  flipped[second_record] = static_cast<char>(flipped[second_record] ^ 0x01);
  atomic_write_file(path, flipped);
  const ban_ledger_read bitrot = read_ban_ledger_checked(path);
  EXPECT_TRUE(bitrot.torn_tail);
  EXPECT_EQ(bitrot.clients, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(bitrot.dropped_records, 2u);
}

// Tentpole: a single flipped bit anywhere in a shard checkpoint breaks
// the whole-file checksum trailer, and the load surfaces a typed fencing
// error — never a detector rebuilt from rotted bytes.
TEST(Checkpoint, BitFlippedShardChecksumIsTypedFencingError) {
  checkpoint_rig r("ckpt_bitflip");
  const auto path =
      save_shard_checkpoint(r.rig.det, r.rig.cfg, r.rig.dir, 0, r.meta);
  EXPECT_TRUE(verify_checkpoint_file(path));

  std::string bytes = read_file_bytes(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  atomic_write_file(path, bytes);

  EXPECT_FALSE(verify_checkpoint_file(path));
  try {
    load_shard_checkpoint(path, 0, r.rig.cfg, 0, 0);
    FAIL() << "bit-flipped checkpoint must fence";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

// Satellite: atomic_write_file creates and makes durable any missing
// ancestor directories, and surfaces failures as typed errors.
TEST(Checkpoint, AtomicWriteCreatesAncestorsAndSurfacesErrors) {
  const std::string dir = test_dir("fs_durability");
  const std::string nested = dir + "/a/b/c/ledger.bin";
  atomic_write_file(nested, "payload");
  std::ifstream is(nested, std::ios::binary);
  const std::string got{std::istreambuf_iterator<char>(is),
                        std::istreambuf_iterator<char>()};
  EXPECT_EQ(got, "payload");

  // A file in the ancestor chain cannot become a directory.
  EXPECT_THROW(atomic_write_file(nested + "/impossible.bin", "x"), io_error);
}

// ------------------------------------------------------------ integrity --
// Satellite: digest determinism. The anti-entropy leaves are CRC32C over
// a canonical serialisation, so equal content must digest bitwise
// identically at any fit thread count and any shard-load order.

TEST(Integrity, ShardDigestIsThreadInvariant) {
  const auto dcfg = test_detector_config();
  auto model = make_test_model();
  hpc::sim_backend monitor(*model);
  core::benign_template tpl(4, dcfg.events.size());
  for (std::size_t i = 0; i < 32; ++i) {
    const tensor x = test_input(0.4 + 0.05 * static_cast<double>(i % 12));
    const auto m = monitor.measure(x, dcfg.events, dcfg.repeats);
    tpl.add_row(m.predicted, m.mean_counts);
  }
  const core::detector d1 = core::detector::fit(tpl, dcfg, 1);
  const core::detector d4 = core::detector::fit(tpl, dcfg, 4);
  const fleet_config cfg = small_cfg();
  const auto m1 = models_of(d1);
  const auto m4 = models_of(d4);
  std::vector<std::uint32_t> l1, l4;
  for (std::uint64_t s = 0; s < cfg.class_shards; ++s) {
    EXPECT_EQ(shard_content_digest(m1, s, cfg),
              shard_content_digest(m4, s, cfg))
        << "shard " << s;
    l1.push_back(shard_content_digest(m1, s, cfg));
    l4.push_back(shard_content_digest(m4, s, cfg));
  }
  EXPECT_EQ(digest_root(l1), digest_root(l4));
}

TEST(Integrity, ShardDigestIsLoadOrderInvariant) {
  checkpoint_rig r("digest_order");
  const fleet_config& cfg = r.rig.cfg;
  core::checkpoint_meta meta1 = r.meta;
  meta1.shard_index = 1;
  const auto p0 = save_shard_checkpoint(r.rig.det, cfg, r.rig.dir, 0, r.meta);
  const auto p1 = save_shard_checkpoint(r.rig.det, cfg, r.rig.dir, 1, meta1);
  const core::checkpoint cp0 = load_shard_checkpoint(p0, 0, cfg, 0, 0);
  const core::checkpoint cp1 = load_shard_checkpoint(p1, 1, cfg, 0, 0);

  // Overlay the shipped shards onto an EMPTY mirror in both orders: the
  // digests must agree with each other and with the original content.
  auto blank = models_of(r.rig.det);
  for (auto& row : blank) {
    for (auto& cell : row) cell.reset();
  }
  auto a = blank;
  merge_shard(a, cp0.det, 0, cfg);
  merge_shard(a, cp1.det, 1, cfg);
  auto b = blank;
  merge_shard(b, cp1.det, 1, cfg);
  merge_shard(b, cp0.det, 0, cfg);

  const auto full = models_of(r.rig.det);
  for (std::uint64_t s = 0; s < cfg.class_shards; ++s) {
    EXPECT_EQ(shard_content_digest(a, s, cfg),
              shard_content_digest(b, s, cfg))
        << "shard " << s;
    EXPECT_EQ(shard_content_digest(a, s, cfg),
              shard_content_digest(full, s, cfg))
        << "shard " << s;
  }
  // The digest sees presence: at least one shard carries fitted models
  // (the genesis fit only models the classes the CNN actually predicts),
  // and a populated shard reads differently from the blank mirror.
  bool differs = false;
  for (std::uint64_t s = 0; s < cfg.class_shards; ++s) {
    differs = differs || shard_content_digest(blank, s, cfg) !=
                             shard_content_digest(a, s, cfg);
  }
  EXPECT_TRUE(differs);
}

TEST(Integrity, BanSetDigestAndRootAreCanonical) {
  std::set<std::uint64_t> x;
  for (const std::uint64_t c : {9ULL, 1ULL, 5ULL}) x.insert(c);
  std::set<std::uint64_t> y;
  for (const std::uint64_t c : {5ULL, 9ULL, 1ULL}) y.insert(c);
  EXPECT_EQ(ban_set_digest(x), ban_set_digest(y));
  y.erase(5);
  EXPECT_NE(ban_set_digest(x), ban_set_digest(y));
  EXPECT_NE(ban_set_digest({}), ban_set_digest(x));
  EXPECT_EQ(digest_root({}), 0u);
  EXPECT_EQ(digest_root({7u}), 7u);  // odd leaf promoted unpaired
  EXPECT_EQ(digest_root({7u, 9u}), digest_root({7u, 9u}));
  EXPECT_NE(digest_root({7u, 9u}), digest_root({9u, 7u}));  // order-sensitive
}

// -------------------------------------------------------------- handoff --

TEST(TrackHandoff, ExportImportPreservesEscalation) {
  serve::virtual_clock clock;
  fleet_config cfg = small_cfg();
  track::query_tracker a(clock, cfg.track);
  track::query_tracker b(clock, cfg.track);

  // Elevate (not ban) a client on A with colliding probes.
  const std::uint64_t client = 77;
  for (int i = 0; i < 3; ++i) {
    a.observe(client, probe_input(3, 0.01 * (i % 2)));
  }
  ASSERT_EQ(a.level(client), track::escalation::elevated);

  const std::uint32_t r = range_of_client(client, cfg);
  auto batch = a.export_clients(
      16, [&](std::uint64_t c) { return range_of_client(c, cfg) == r; });
  ASSERT_FALSE(batch.empty());
  // Snapshot-plus-removal: the state now lives only in the batch.
  EXPECT_EQ(a.level(client), track::escalation::none);

  b.import_clients(batch);
  EXPECT_EQ(b.level(client), track::escalation::elevated);
  // History travelled too: the next colliding probe keeps escalating
  // where the old owner left off, and eventually bans.
  for (int i = 0; i < 4; ++i) {
    b.observe(client, probe_input(3, 0.01 * (i % 2)));
  }
  EXPECT_EQ(b.level(client), track::escalation::banned);
}

// ------------------------------------------------------------ fleet sim --

TEST(FleetSim, QuietFleetServesEverything) {
  fleet_rig rig("quiet");
  fleet_sim sim(rig.cfg, rig.deps(), fault_plan{});
  sim.run(benign_arrivals(30, 1, 100), 60);

  const fleet_stats s = sim.stats();
  EXPECT_EQ(s.submitted, 30u);
  EXPECT_EQ(resolved_total(s), 30u);  // every request resolves exactly once
  EXPECT_EQ(served_total(s), 30u);
  EXPECT_EQ(s.split_brain_serves, 0u);
  EXPECT_EQ(s.view_changes, 0u);
  EXPECT_EQ(s.crashes, 0u);
  EXPECT_EQ(sim.route().pending(), 0u);
  // Periodic checkpoint publication ran and shard files exist on disk.
  EXPECT_GT(s.checkpoints_published, 0u);
  for (std::uint64_t sh = 0; sh < rig.cfg.class_shards; ++sh) {
    EXPECT_TRUE(fs::exists(shard_latest_path(rig.dir, sh)));
  }
}

TEST(FleetSim, CrashFailoverKeepsServingWithZeroSplitBrain) {
  fleet_rig rig("failover");
  fault_plan plan({{10, fault_kind::crash, 1}, {50, fault_kind::recover, 1}});
  fleet_sim sim(rig.cfg, rig.deps(), plan);
  sim.run(benign_arrivals(80, 1, 500), 120);

  const fleet_stats s = sim.stats();
  EXPECT_EQ(s.submitted, 80u);
  EXPECT_EQ(resolved_total(s), 80u);
  EXPECT_EQ(s.crashes, 1u);
  EXPECT_EQ(s.recoveries, 1u);
  // Down at tick 10 (epoch 2 once detected), readmitted after tick 50.
  EXPECT_GE(s.view_changes, 2u);
  EXPECT_EQ(s.split_brain_serves, 0u);
  // Only requests routed into the detection window can abstain; the
  // fleet keeps serving through the failure.
  EXPECT_GE(served_total(s), 55u);
  EXPECT_EQ(sim.route().pending(), 0u);
  EXPECT_TRUE(sim.worker(1).up());
  // The recovered replica rejoined the authoritative view.
  const auto& live = sim.authoritative_view().live;
  EXPECT_TRUE(std::find(live.begin(), live.end(), replica_node(1)) !=
              live.end());
}

TEST(FleetSim, BanSurvivesOwnerCrashAndRecovery) {
  fleet_rig rig("ban_survival");
  // An attacker whose fingerprint range is owned by replica 1 — the
  // replica we will crash after the ban lands.
  const std::uint64_t attacker = client_owned_by(replica_node(1), rig.cfg);
  fault_plan plan({{30, fault_kind::crash, 1}, {50, fault_kind::recover, 1}});
  fleet_sim sim(rig.cfg, rig.deps(), plan);
  sim.run(probe_campaign(attacker, 1, 90), 130);

  const fleet_stats s = sim.stats();
  EXPECT_EQ(s.submitted, 90u);
  EXPECT_EQ(resolved_total(s), 90u);
  EXPECT_EQ(s.split_brain_serves, 0u);
  EXPECT_EQ(s.bans_decided, 1u);
  EXPECT_TRUE(sim.route().banned(attacker));
  // The colliding campaign banned quickly; the long tail was rejected.
  EXPECT_GE(s.outcome(req_outcome::rejected_banned), 50u);

  // Zero lost ban decisions: once the ban is journalled, the attacker is
  // never served again — through the owner's crash and recovery.
  const std::string& journal = sim.log().text();
  const std::string ban_line = "ban client=" + std::to_string(attacker);
  const auto ban_at = journal.find(ban_line);
  ASSERT_NE(ban_at, std::string::npos);
  EXPECT_EQ(journal.find(ban_line, ban_at + 1), std::string::npos);
  const std::string served_attacker =
      "client=" + std::to_string(attacker) + " outcome=served";
  EXPECT_EQ(journal.find(served_attacker, ban_at), std::string::npos);

  // The recovered owner replayed the durable ledger: it knows the ban
  // even though its tracker state died with the crash.
  ASSERT_TRUE(sim.worker(1).up());
  EXPECT_EQ(sim.worker(1).tracker()->level(attacker),
            track::escalation::banned);
  EXPECT_FALSE(
      read_ban_ledger(ban_ledger_path(rig.dir, replica_node(1))).empty());
}

TEST(FleetSim, StalledReplicaIsFencedNotSplitBrained) {
  fleet_rig rig("stall");
  fault_plan plan({{10, fault_kind::stall, 1}, {40, fault_kind::unstall, 1}});
  fleet_sim sim(rig.cfg, rig.deps(), plan);
  sim.run(benign_arrivals(60, 1, 900), 100);

  const fleet_stats s = sim.stats();
  EXPECT_EQ(s.submitted, 60u);
  EXPECT_EQ(resolved_total(s), 60u);
  EXPECT_EQ(s.stalls, 1u);
  // The stalled replica was declared dead and later readmitted.
  EXPECT_GE(s.view_changes, 2u);
  // The acceptance property: a stalled replica resuming with a stale
  // view and expired lease abstains; it never serves a stale verdict.
  EXPECT_EQ(s.split_brain_serves, 0u);
  EXPECT_GT(served_total(s), 0u);
  EXPECT_EQ(sim.route().pending(), 0u);
}

TEST(FleetSim, LeaderCrashFailsOverWithZeroSplitBrain) {
  // Kill the ACTING CONTROLLER, not a worker: a standby must win a
  // quorum ballot, wait out the dead leader's lease, and resume
  // publishing views — while every verdict served before, during and
  // after the handover still checks out against the elected regime.
  fleet_rig rig("ctl_failover");
  fault_plan plan({{15, fault_kind::crash, 0, fault_target::controller}});
  fleet_sim sim(rig.cfg, rig.deps(), plan);
  sim.run(benign_arrivals(100, 1, 1400), 170);

  const fleet_stats s = sim.stats();
  EXPECT_EQ(s.submitted, 100u);
  EXPECT_EQ(resolved_total(s), 100u);
  EXPECT_EQ(s.split_brain_serves, 0u);
  EXPECT_GE(s.elections, 1u);
  // The failover window fences some requests; serving resumes under the
  // successor and dominates the run.
  EXPECT_GE(served_total(s), 40u);
  EXPECT_EQ(sim.route().pending(), 0u);
  // The authoritative view now belongs to a term the dead leader never
  // led, published by a different controller.
  EXPECT_GE(epoch_term(sim.authoritative_view().epoch), 2u);
  const controller* leader = sim.acting_leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_NE(leader->node(), controller_node(0));
  const std::string& journal = sim.log().text();
  EXPECT_NE(journal.find("ctl-crash node=100"), std::string::npos);
  EXPECT_NE(journal.find("ctl-leader"), std::string::npos);
}

TEST(FleetSim, PartitionedLeaderCedesWithZeroSplitBrain) {
  // Symmetric partition instead of a crash: the genesis leader is cut
  // off from the whole fleet. Its lease starves (no quorum of acks), the
  // majority side elects a successor, and after the heal the deposed
  // leader hears the higher term and steps down — at no point do two
  // regimes both act.
  fleet_rig rig("ctl_partition");
  fault_plan plan;
  plan.partition(20, 90, {{controller_node(0)}});
  fleet_sim sim(rig.cfg, rig.deps(), plan);
  sim.run(benign_arrivals(100, 1, 5200), 190);

  const fleet_stats s = sim.stats();
  EXPECT_EQ(s.submitted, 100u);
  EXPECT_EQ(resolved_total(s), 100u);
  EXPECT_EQ(s.split_brain_serves, 0u);
  EXPECT_GE(s.elections, 1u);
  EXPECT_GT(s.net.severed, 0u);
  EXPECT_GE(served_total(s), 40u);
  EXPECT_GE(epoch_term(sim.authoritative_view().epoch), 2u);
  const controller* leader = sim.acting_leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_NE(leader->node(), controller_node(0));
  // The healed genesis leader conceded to the new term.
  EXPECT_EQ(sim.ctl(0).role(), ctl_role::standby);
  EXPECT_NE(sim.log().text().find("ctl-stepdown node=100"),
            std::string::npos);
}

TEST(FleetSim, ThreeWayPartitionFailsClosedThenReElects) {
  // A 3-way split puts each controller in a different island (leader +
  // one worker, one standby + one worker, one standby + the router +
  // one worker): no island holds a controller quorum, so the leader's
  // lease starves and NOBODY can win a ballot — the fleet fails closed
  // under the last activated view until the heal, after which a quorum
  // re-forms and elects. Zero split-brain throughout.
  fleet_rig rig("ctl_threeway");
  fault_plan plan;
  plan.partition(20, 80, {{controller_node(0), replica_node(0)},
                          {controller_node(1), replica_node(1)}});
  fleet_sim sim(rig.cfg, rig.deps(), plan);

  sim.run(benign_arrivals(50, 1, 7300), 60);
  // Mid-partition: quorum lost everywhere, no acting leader anywhere.
  EXPECT_EQ(sim.acting_leader(), nullptr);
  EXPECT_EQ(sim.stats().split_brain_serves, 0u);

  sim.run(benign_arrivals(50, 90, 7400), 200);
  const fleet_stats s = sim.stats();
  EXPECT_EQ(s.submitted, 100u);
  EXPECT_EQ(resolved_total(s), 100u);
  EXPECT_EQ(s.split_brain_serves, 0u);
  EXPECT_GT(s.net.severed, 0u);
  // The heal restored a quorum: someone acts again, under a term the
  // partition-era candidacies could never have won.
  const controller* leader = sim.acting_leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GE(leader->term(), 2u);
  EXPECT_GE(s.elections, 1u);
  EXPECT_GE(epoch_term(sim.authoritative_view().epoch), 2u);
}

TEST(FleetSim, CrashedPrimarySpeculatesToSecondary) {
  // Crash a worker and immediately aim traffic at its ranges: before the
  // controller can even declare it dead, the router's speculative
  // re-route hands the silent primary's requests to the secondary owner
  // slot, which serves them under a degraded-confidence tag instead of
  // letting them burn into abstain_timeout.
  fleet_rig rig("speculate");
  std::vector<std::uint64_t> clients;
  for (std::uint64_t c = 1; clients.size() < 10; ++c) {
    if (range_owner(genesis_view(), range_of_client(c, rig.cfg)) ==
        replica_node(1)) {
      clients.push_back(c);
    }
  }
  std::vector<arrival> arrivals;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    arrivals.push_back({11 + i, clients[i],
                        test_input(0.4 + 0.05 * static_cast<double>(i))});
  }
  fault_plan plan({{10, fault_kind::crash, 1}});
  fleet_sim sim(rig.cfg, rig.deps(), plan);
  sim.run(std::move(arrivals), 90);

  const fleet_stats s = sim.stats();
  EXPECT_EQ(s.submitted, 10u);
  EXPECT_EQ(resolved_total(s), 10u);
  EXPECT_EQ(s.split_brain_serves, 0u);
  EXPECT_GE(s.speculative_routes, 1u);
  EXPECT_GE(s.served_secondary, 1u);
  // A degraded serve IS a serve: requests resolved with verdicts.
  EXPECT_GE(served_total(s), 1u);
  const std::string& journal = sim.log().text();
  EXPECT_NE(journal.find("speculate req="), std::string::npos);
  EXPECT_NE(journal.find(" conf=degraded"), std::string::npos);
  // Full-confidence serves are never tagged: every tag in the journal is
  // one of the secondary-slot serves (a degraded response that loses the
  // delivery race journals as something else, so <=).
  std::size_t tagged = 0;
  for (auto at = journal.find(" conf=degraded"); at != std::string::npos;
       at = journal.find(" conf=degraded", at + 1)) {
    ++tagged;
  }
  EXPECT_GE(tagged, 1u);
  EXPECT_LE(tagged, s.served_secondary);
}

TEST(FleetSim, MembershipChangeHandsOffTrackedClients) {
  fleet_rig rig("handoff");
  // Track a client on its genesis owner, then crash a *different*
  // replica: the ring reshuffles and the tracked client's range can move
  // between the two survivors, carrying its history along.
  std::vector<arrival> arrivals;
  // Elevate several clients spread across the ring so at least one lives
  // in a range that changes owner between survivors.
  for (std::uint64_t c = 1; c <= 24; ++c) {
    for (std::size_t i = 0; i < 3; ++i) {
      arrivals.push_back({1 + 3 * (c - 1) + i, c, probe_input(c, 0.0)});
    }
  }
  fault_plan plan({{80, fault_kind::crash, 2}});
  fleet_sim sim(rig.cfg, rig.deps(), plan);
  sim.run(std::move(arrivals), 140);

  const fleet_stats s = sim.stats();
  EXPECT_EQ(s.crashes, 1u);
  EXPECT_GE(s.view_changes, 1u);
  EXPECT_EQ(s.split_brain_serves, 0u);
  EXPECT_GT(s.handoff_clients, 0u);
}

TEST(FleetSim, ChaosRunIsBitwiseThreadInvariant) {
  // The acceptance gate in miniature: the same chaotic campaign — crash
  // + stall faults, 5% message loss, colliding attack probes — replayed
  // at 1 and 4 measurement threads must produce byte-identical journals.
  fleet_config cfg = small_cfg();
  cfg.loss_rate = 0.05;
  // Seeded worker chaos PLUS a scripted controller kill mid-run: the
  // election traffic and failover churn must replay bitwise too.
  auto events = fault_plan::chaos(cfg, 120, 0.02, 42).events();
  events.push_back({30, fault_kind::crash, 0, fault_target::controller});
  events.push_back({85, fault_kind::recover, 0, fault_target::controller});
  const fault_plan plan(std::move(events));

  auto arrivals = [] {
    auto a = benign_arrivals(70, 1, 2000);
    const auto probes = probe_campaign(31, 5, 30);
    a.insert(a.end(), probes.begin(), probes.end());
    return a;
  };

  fleet_rig rig1("chaos_t1", cfg);
  rig1.cfg.serve.threads = 1;
  fleet_sim sim1(rig1.cfg, rig1.deps(), plan);
  sim1.run(arrivals(), 120);

  fleet_rig rig4("chaos_t4", cfg);
  rig4.cfg.serve.threads = 4;
  fleet_sim sim4(rig4.cfg, rig4.deps(), plan);
  sim4.run(arrivals(), 120);

  EXPECT_EQ(sim1.log().text(), sim4.log().text());
  const fleet_stats s1 = sim1.stats();
  const fleet_stats s4 = sim4.stats();
  EXPECT_EQ(s1.submitted, s4.submitted);
  EXPECT_EQ(s1.by_outcome, s4.by_outcome);
  EXPECT_EQ(s1.split_brain_serves, 0u);
  EXPECT_EQ(s4.split_brain_serves, 0u);
  EXPECT_EQ(s1.bans_decided, s4.bans_decided);
  EXPECT_EQ(resolved_total(s1), s1.submitted);
}

TEST(FleetSim, DriftTriggersQuorumGatedRecalibration) {
  fleet_rig rig("recal");
  // Every replica's baseline steps to 1.5x after 12 canary rounds — past
  // the cells' burn-in, so the shift reads as genuine drift, not
  // canary-set bias. Canary NLLs run hot against the genesis fit and the
  // cells alarm.
  const std::size_t onset = 12 * rig.canary_classes();
  fleet_sim sim(rig.cfg, rig.deps(/*drift_magnitude=*/1.5, onset),
                fault_plan{});
  sim.run({}, 200);

  const fleet_stats s = sim.stats();
  EXPECT_GT(s.canary_probes, 0u);
  EXPECT_GE(s.drift_alarms, 1u);
  // The rollout went through ballot -> quorum -> staged validation ->
  // fleet-wide promotion; peers applied the shipped checkpoint.
  EXPECT_GE(s.rollouts, 1u);
  EXPECT_EQ(s.rollbacks, 0u);
  EXPECT_GT(s.checkpoints_applied, 0u);
  bool advanced = false;
  for (std::size_t i = 0; i < rig.cfg.replicas; ++i) {
    for (std::uint64_t sh = 0; sh < rig.cfg.class_shards; ++sh) {
      advanced = advanced || sim.worker(i).applied_version(sh) >= 2;
    }
  }
  EXPECT_TRUE(advanced);
}

TEST(FleetSim, PoisonedRecalibrationRollsBack) {
  fleet_rig rig("rollback");
  fault_plan plan;
  // The first staged recalibration of each shard is v2 (genesis is v1).
  // Poison both: canary validation must fail and the rollout must roll
  // back to the old parameters (republished under a higher version).
  plan.poison(0, 2);
  plan.poison(1, 2);
  const std::size_t onset = 12 * rig.canary_classes();
  fleet_sim sim(rig.cfg, rig.deps(/*drift_magnitude=*/1.5, onset), plan);
  sim.run({}, 200);

  const fleet_stats s = sim.stats();
  EXPECT_GE(s.drift_alarms, 1u);
  EXPECT_GE(s.rollbacks, 1u);
  const std::string& journal = sim.log().text();
  EXPECT_NE(journal.find("rollback=1"), std::string::npos);
  // Version monotonicity: the rollback republish advanced the content
  // version past the poisoned stage.
  bool rolled = false;
  for (std::size_t i = 0; i < rig.cfg.replicas; ++i) {
    for (std::uint64_t sh = 0; sh < rig.cfg.class_shards; ++sh) {
      rolled = rolled || sim.worker(i).applied_version(sh) >= 3;
    }
  }
  EXPECT_TRUE(rolled);
}

TEST(FleetSim, RepeatedRunsAreByteIdentical) {
  fleet_config cfg = small_cfg();
  cfg.loss_rate = 0.1;
  fault_plan plan({{12, fault_kind::crash, 1},
                   {40, fault_kind::recover, 1},
                   {60, fault_kind::stall, 2},
                   {75, fault_kind::unstall, 2},
                   {25, fault_kind::crash, 0, fault_target::controller},
                   {70, fault_kind::recover, 0, fault_target::controller}});
  plan.partition(90, 100, {{controller_node(2)}});
  std::string first;
  for (int run = 0; run < 2; ++run) {
    fleet_rig rig("repeat_" + std::to_string(run), cfg);
    fleet_sim sim(rig.cfg, rig.deps(), plan);
    sim.run(benign_arrivals(50, 1, 300), 110);
    if (run == 0) {
      first = sim.log().text();
    } else {
      EXPECT_EQ(sim.log().text(), first);
    }
  }
  EXPECT_FALSE(first.empty());
}

// Tentpole: a replica that reboots onto a rotted shard checkpoint fences
// the shard (fails closed), then anti-entropy pulls the content back
// from the surviving ownership-slot holder, unfences it, and converges
// every replica to byte-identical state.
TEST(FleetSim, CorruptShardFencesRepairsAndConverges) {
  fleet_config cfg = small_cfg();
  cfg.scrub_period = 6;
  fleet_rig rig("corrupt_repair", cfg);
  const auto owner = shard_owner_k(genesis_view(), 0, 0);
  ASSERT_TRUE(owner.has_value());
  const std::size_t pidx = *owner - 2;
  // Publish at t=10, crash the owner, flip a bit in the shared shard 0
  // latest file while it is down, recover: the boot load fails its
  // checksum and the shard is corrupt-fenced, never served from rot.
  fault_plan plan({{12, fault_kind::crash, pidx},
                   {16, fault_kind::recover, pidx}});
  plan.corrupt({14, corrupt_kind::bit_flip, corrupt_target::shard_file, pidx,
                0, 99});
  fleet_sim sim(rig.cfg, rig.deps(), plan);
  sim.run(benign_arrivals(40, 1, 4200), 90);

  const fleet_stats s = sim.stats();
  EXPECT_EQ(s.corrupt_faults, 1u);
  EXPECT_GE(s.shards_fenced_corrupt, 1u);
  const std::string& journal = sim.log().text();
  EXPECT_NE(journal.find("corrupt-fence shard=0"), std::string::npos);
  // Fail closed while fenced: no full-confidence verdict ever left the
  // corrupted shard, and no request was lost (abstains resolve).
  EXPECT_EQ(s.corrupt_full_conf_serves, 0u);
  EXPECT_EQ(s.split_brain_serves, 0u);
  EXPECT_EQ(resolved_total(s), s.submitted);
  // Anti-entropy detected the divergence, pulled from the surviving slot
  // holder, and unfenced the shard.
  EXPECT_GE(s.digest_mismatches, 1u);
  EXPECT_GE(s.repairs_requested, 1u);
  EXPECT_GE(s.repairs_served, 1u);
  EXPECT_GE(s.repairs_completed, 1u);
  EXPECT_NE(journal.find("repair shard=0"), std::string::npos);
  EXPECT_NE(journal.find("unfenced=1"), std::string::npos);
  EXPECT_TRUE(sim.worker(pidx).corrupt_shards().empty());
  // Convergence is byte-identical: every replica's canonical shard
  // digests agree, and the healed on-disk latest verifies again.
  for (std::uint64_t sh = 0; sh < rig.cfg.class_shards; ++sh) {
    const std::uint32_t want = sim.worker(0).content_digest(sh);
    for (std::size_t i = 1; i < rig.cfg.replicas; ++i) {
      EXPECT_EQ(sim.worker(i).content_digest(sh), want)
          << "replica " << i << " shard " << sh;
    }
    EXPECT_TRUE(verify_checkpoint_file(shard_latest_path(rig.dir, sh)));
  }
}

// Tentpole, the replication-1 leg: with no surviving slot holder there
// is no authorized repair source, so the fenced shard must FAIL CLOSED —
// abstaining forever — rather than resurrect from a bystander's copy.
TEST(FleetSim, ReplicationOneCorruptionFailsClosed) {
  fleet_config cfg = small_cfg();
  cfg.replication = 1;
  cfg.scrub_period = 6;
  fleet_rig rig("corrupt_r1", cfg);
  // Fence the shard that actually carries fitted content: the genesis
  // fit models only the classes the CNN predicts for benign inputs, so
  // this is the shard live verdicts land in — suppression is observable.
  const auto full = models_of(rig.det);
  std::uint64_t shard = 0;
  for (std::size_t cls = 0; cls < full.size(); ++cls) {
    for (const auto& em : full[cls]) {
      if (em.has_value()) shard = shard_of_class(cls, rig.cfg);
    }
  }
  const auto owner = shard_owner_k(genesis_view(), shard, 0);
  ASSERT_TRUE(owner.has_value());
  const std::size_t pidx = *owner - 2;
  fault_plan plan({{12, fault_kind::crash, pidx},
                   {16, fault_kind::recover, pidx}});
  plan.corrupt({14, corrupt_kind::bit_flip, corrupt_target::shard_file, pidx,
                shard, 31});
  fleet_sim sim(rig.cfg, rig.deps(), plan);
  sim.run(benign_arrivals(40, 1, 6100), 90);

  const fleet_stats s = sim.stats();
  EXPECT_EQ(s.corrupt_faults, 1u);
  EXPECT_GE(s.shards_fenced_corrupt, 1u);
  // No authorized source, no repair: not even a request goes out.
  EXPECT_EQ(s.repairs_requested, 0u);
  EXPECT_EQ(s.repairs_served, 0u);
  EXPECT_EQ(s.repairs_completed, 0u);
  ASSERT_TRUE(sim.worker(pidx).up());
  EXPECT_TRUE(sim.worker(pidx).shard_fenced(shard));
  // Failing closed means abstaining, not serving rot: verdicts that
  // landed on the fenced shard were suppressed and resolved as typed
  // integrity abstains, and nothing full-confidence escaped.
  EXPECT_EQ(s.corrupt_full_conf_serves, 0u);
  EXPECT_EQ(s.split_brain_serves, 0u);
  EXPECT_GE(s.verdicts_suppressed_corrupt, 1u);
  EXPECT_GE(s.outcome(req_outcome::abstain_corrupt), 1u);
  EXPECT_EQ(resolved_total(s), s.submitted);
}

// Tentpole: a durable ban decision survives its own ledger rotting. The
// owner reboots onto a damaged ledger (tolerated, verified-prefix read),
// loses the record, and the next digest exchange ban_syncs the decision
// back from its peers — re-persisted locally. Zero lost durable bans.
TEST(FleetSim, BanSurvivesLedgerCorruptionViaAntiEntropy) {
  fleet_config cfg = small_cfg();
  cfg.scrub_period = 6;
  fleet_rig rig("corrupt_ledger", cfg);
  const std::uint64_t attacker = client_owned_by(replica_node(1), rig.cfg);
  fault_plan plan({{31, fault_kind::crash, 1}, {35, fault_kind::recover, 1}});
  plan.corrupt({33, corrupt_kind::bit_flip, corrupt_target::ledger_file, 1, 0,
                12});
  fleet_sim sim(rig.cfg, rig.deps(), plan);
  sim.run(probe_campaign(attacker, 1, 30), 90);

  const fleet_stats s = sim.stats();
  EXPECT_EQ(s.bans_decided, 1u);
  EXPECT_EQ(s.corrupt_faults, 1u);
  EXPECT_EQ(s.split_brain_serves, 0u);
  EXPECT_TRUE(sim.route().banned(attacker));
  // The ban was re-synced into the rebooted owner...
  ASSERT_TRUE(sim.worker(1).up());
  EXPECT_EQ(sim.worker(1).tracker()->level(attacker),
            track::escalation::banned);
  // ...and once journalled, the attacker was never served again.
  const std::string& journal = sim.log().text();
  const std::string ban_line = "ban client=" + std::to_string(attacker);
  const auto ban_at = journal.find(ban_line);
  ASSERT_NE(ban_at, std::string::npos);
  const std::string served_attacker =
      "client=" + std::to_string(attacker) + " outcome=served";
  EXPECT_EQ(journal.find(served_attacker, ban_at), std::string::npos);
  // The decision is durable again in the owner's own rewritten ledger,
  // which reads back clean.
  const ban_ledger_read led =
      read_ban_ledger_checked(ban_ledger_path(rig.dir, replica_node(1)));
  EXPECT_FALSE(led.header_corrupt);
  EXPECT_FALSE(led.torn_tail);
  EXPECT_NE(std::find(led.clients.begin(), led.clients.end(), attacker),
            led.clients.end());
}

// Satellite: the full corruption chaos — seeded disk faults on top of
// crash/stall chaos, message loss, and a scripted digest blackout —
// replays bitwise identically at 1 and 4 measurement threads. The
// journalled scrub roots make digest determinism part of the byte
// identity being asserted.
TEST(FleetSim, CorruptionChaosIsBitwiseThreadInvariant) {
  fleet_config cfg = small_cfg();
  cfg.loss_rate = 0.03;
  cfg.scrub_period = 6;
  fault_plan plan(fault_plan::chaos(cfg, 110, 0.015, 11).events());
  plan.add_corruption_chaos(cfg, 110, 0.25, 77);
  plan.digest_blackout(40, 52);

  auto arrivals = [] {
    auto a = benign_arrivals(60, 1, 5000);
    const auto probes = probe_campaign(47, 4, 25);
    a.insert(a.end(), probes.begin(), probes.end());
    return a;
  };

  fleet_rig rig1("cchaos_t1", cfg);
  rig1.cfg.serve.threads = 1;
  fleet_sim sim1(rig1.cfg, rig1.deps(), plan);
  sim1.run(arrivals(), 110);

  fleet_rig rig4("cchaos_t4", cfg);
  rig4.cfg.serve.threads = 4;
  fleet_sim sim4(rig4.cfg, rig4.deps(), plan);
  sim4.run(arrivals(), 110);

  EXPECT_EQ(sim1.log().text(), sim4.log().text());
  const fleet_stats s1 = sim1.stats();
  const fleet_stats s4 = sim4.stats();
  EXPECT_GE(s1.corrupt_faults, 1u);  // the chaos actually bit
  EXPECT_GE(s1.scrub_rounds, 1u);
  EXPECT_EQ(s1.corrupt_full_conf_serves, 0u);
  EXPECT_EQ(s4.corrupt_full_conf_serves, 0u);
  EXPECT_EQ(s1.split_brain_serves, 0u);
  EXPECT_EQ(s4.split_brain_serves, 0u);
  EXPECT_EQ(s1.submitted, s4.submitted);
  EXPECT_EQ(s1.by_outcome, s4.by_outcome);
  EXPECT_EQ(s1.bans_decided, s4.bans_decided);
  EXPECT_EQ(resolved_total(s1), s1.submitted);
}

}  // namespace
}  // namespace advh::fleet
