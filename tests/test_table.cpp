#include "common/table.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/ascii_plot.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"

namespace advh {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  text_table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  text_table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), invariant_error);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(text_table::num(3.14159, 2), "3.14");
  EXPECT_EQ(text_table::num(98.976, 2), "98.98");
  EXPECT_EQ(text_table::num(0.5, 4), "0.5000");
}

TEST(TextTable, CsvQuotesCommas) {
  text_table t;
  t.set_header({"label", "x"});
  t.add_row({"speed limit (30km/h), targeted", "1"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"speed limit (30km/h), targeted\""), std::string::npos);
}

TEST(TextTable, CsvRoundTripRows) {
  text_table t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, AccessorsWork) {
  text_table t;
  t.set_header({"a"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 1u);
  EXPECT_EQ(t.row(0)[0], "x");
  EXPECT_THROW(t.row(1), invariant_error);
}

TEST(WriteFile, CreatesParentDirectories) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "advh_test" / "sub" / "f.txt")
          .string();
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "advh_test");
  write_file(path, "hello");
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "hello");
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "advh_test");
}

TEST(AsciiPlot, DualHistogramMentionsLabels) {
  std::vector<double> a{1.0, 1.1, 1.2, 2.0};
  std::vector<double> b{5.0, 5.1, 5.2, 6.0};
  const std::string s = plot::dual_histogram(a, b, "clean", "adv", 20, 5);
  EXPECT_NE(s.find("clean"), std::string::npos);
  EXPECT_NE(s.find("adv"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('o'), std::string::npos);
}

TEST(AsciiPlot, DualHistogramOverlapUsesPercent) {
  std::vector<double> a{1.0, 2.0, 3.0};
  const std::string s = plot::dual_histogram(a, a, "x", "y", 10, 4);
  EXPECT_NE(s.find('%'), std::string::npos);
}

TEST(AsciiPlot, BarChartScalesBars) {
  std::vector<std::string> labels{"low", "high"};
  std::vector<double> values{0.1, 1.0};
  const std::string s = plot::bar_chart(labels, values, 1.0, 20);
  // The 1.0 bar must contain more '#' than the 0.1 bar.
  const auto low_pos = s.find("low");
  const auto high_pos = s.find("high");
  ASSERT_NE(low_pos, std::string::npos);
  ASSERT_NE(high_pos, std::string::npos);
  const auto count_hashes = [&](std::size_t from) {
    std::size_t n = 0;
    for (std::size_t i = from; i < s.size() && s[i] != '\n'; ++i) {
      if (s[i] == '#') ++n;
    }
    return n;
  };
  EXPECT_GT(count_hashes(high_pos), count_hashes(low_pos));
}

TEST(AsciiPlot, LinePlotRendersLegendAndMarks) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<plot::series> curves;
  curves.push_back({"f1", {0.2, 0.5, 0.9}, {}});
  const std::string s = plot::line_plot(x, curves, 30, 8);
  EXPECT_NE(s.find("f1"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
}

TEST(AsciiPlot, LinePlotBandRendersDots) {
  std::vector<double> x{1.0, 2.0};
  std::vector<plot::series> curves;
  curves.push_back({"f1", {0.5, 0.5}, {0.2, 0.2}});
  const std::string s = plot::line_plot(x, curves, 20, 10);
  EXPECT_NE(s.find('.'), std::string::npos);
}

TEST(AsciiPlot, LinePlotChecksLengths) {
  std::vector<double> x{1.0, 2.0};
  std::vector<plot::series> curves;
  curves.push_back({"bad", {0.5}, {}});
  EXPECT_THROW(plot::line_plot(x, curves), invariant_error);
}

TEST(Cli, ParsesFlagsInAllForms) {
  cli_parser p("prog", "test");
  p.add_flag("alpha", "0", "an int");
  p.add_flag("beta", "x", "a string");
  p.add_flag("gamma", "false", "a bool");
  const char* argv[] = {"prog", "--alpha", "42", "--beta=hello", "--gamma"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.get_int("alpha"), 42);
  EXPECT_EQ(p.get("beta"), "hello");
  EXPECT_TRUE(p.get_bool("gamma"));
}

TEST(Cli, DefaultsApply) {
  cli_parser p("prog", "test");
  p.add_flag("x", "3.5", "a double");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_DOUBLE_EQ(p.get_double("x"), 3.5);
}

TEST(Cli, UnknownFlagThrows) {
  cli_parser p("prog", "test");
  p.add_flag("known", "1", "");
  const char* argv[] = {"prog", "--unknown", "2"};
  EXPECT_THROW(p.parse(3, argv), invariant_error);
}

TEST(Cli, HelpReturnsFalse) {
  cli_parser p("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

}  // namespace
}  // namespace advh
