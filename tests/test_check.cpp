// Tests for the advh_check static-analysis stack (src/analysis +
// core/detector_io's linter + the policy/envelope passes): golden
// diagnostic codes over the seeded-defect corpus in tests/data/, clean
// passes over the shipped model zoo and honestly-fitted detectors, the
// abstract-trace fidelity contract behind the envelope pass, walk
// hardening against malformed for_each_child wiring, and the runtime
// choke points (load_checkpoint, detector::fit, detection_service
// construction) rejecting with the same codes the CLI reports.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/abstract_trace.hpp"
#include "analysis/check.hpp"
#include "analysis/envelope_pass.hpp"
#include "analysis/policy_pass.hpp"
#include "analysis/verifier.hpp"
#include "analysis/walk.hpp"
#include "common/error.hpp"
#include "core/detector.hpp"
#include "core/detector_io.hpp"
#include "hpc/events.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/models/models.hpp"
#include "nn/serialize.hpp"
#include "serve/service.hpp"

using namespace advh;

namespace {

std::string data_path(const std::string& name) {
  return std::string(ADVH_TEST_DATA_DIR) + "/" + name;
}

std::string repo_path(const std::string& name) {
  return std::string(ADVH_REPO_DIR) + "/" + name;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::unique_ptr<nn::model> make_test_model() {
  return nn::make_model(nn::architecture::case_study_cnn, shape{1, 16, 16}, 4,
                        1);
}

tensor test_input(double scale = 1.0) {
  tensor x(shape{1, 1, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] =
        static_cast<float>(scale * (0.1 + 0.01 * static_cast<double>(i % 7)));
  }
  return x;
}

core::detector_config test_detector_config() {
  core::detector_config cfg;
  const auto events = hpc::core_events();
  cfg.events = {events[0], events[1]};
  cfg.repeats = 10;
  return cfg;
}

/// Fits a detector honestly: template measured through the same simulated
/// backend (default cost model, default noise) the envelope pass assumes.
/// sim_backend is constructed directly — never through hpc::factory — so
/// the chaos-CI env knobs cannot perturb what must be a clean fit.
core::detector fit_test_detector(hpc::hpc_monitor& monitor,
                                 const core::detector_config& cfg) {
  core::benign_template tpl(4, cfg.events.size());
  for (std::size_t i = 0; i < 32; ++i) {
    const tensor x = test_input(0.4 + 0.05 * static_cast<double>(i % 12));
    const auto m = monitor.measure(x, cfg.events, cfg.repeats);
    tpl.add_row(m.predicted, m.mean_counts);
  }
  return core::detector::fit(tpl, cfg, 1);
}

/// Lints one corpus file and returns the report (the checkpoint must have
/// been rejected for error-class artifacts).
analysis::check_report lint(const std::string& name, bool expect_loadable) {
  analysis::check_report rep;
  const auto ckpt = core::lint_checkpoint_file(data_path(name), rep);
  EXPECT_EQ(ckpt.has_value(), expect_loadable) << rep.to_text();
  return rep;
}

// -------------------------------------------------- broken layer zoo ----

/// Layer whose for_each_child reports *itself* — the unbounded-recursion
/// wiring bug the checked walk must contain and diagnose.
class self_child final : public nn::layer {
 public:
  explicit self_child(std::string name) : name_(std::move(name)) {}
  tensor forward(const tensor& x, nn::forward_ctx&) override { return x; }
  tensor backward(const tensor& g) override { return g; }
  nn::layer_kind kind() const override { return nn::layer_kind::relu; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override { return in; }
  nn::trace_contract trace_info() const override { return {true, false, true}; }
  void for_each_child(
      const std::function<void(const nn::layer&)>& fn) const override {
    fn(*this);  // the bug under test
  }

 private:
  std::string name_;
};

/// Container that claims a borrowed layer as its child. Two of these
/// sharing one leaf model the aliased-wiring bug (one layer object
/// reachable through two parents).
class borrowing_parent final : public nn::layer {
 public:
  borrowing_parent(std::string name, const nn::layer& child)
      : name_(std::move(name)), child_(child) {}
  tensor forward(const tensor& x, nn::forward_ctx&) override { return x; }
  tensor backward(const tensor& g) override { return g; }
  nn::layer_kind kind() const override { return nn::layer_kind::input; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override { return in; }
  nn::trace_contract trace_info() const override { return {true, false, true}; }
  void for_each_child(
      const std::function<void(const nn::layer&)>& fn) const override {
    fn(child_);
  }

 private:
  std::string name_;
  const nn::layer& child_;
};

}  // namespace

// ------------------------------------------------- corpus golden codes --

TEST(check_corpus, bad_magic_is_e201) {
  const auto rep = lint("bad_magic.adet", false);
  EXPECT_TRUE(rep.has_code(201)) << rep.to_text();
  EXPECT_TRUE(rep.has_errors());
}

TEST(check_corpus, bad_weights_is_e231) {
  const auto rep = lint("bad_weights.adet", false);
  EXPECT_TRUE(rep.has_code(231)) << rep.to_text();
}

TEST(check_corpus, negative_variance_is_e233) {
  const auto rep = lint("negative_variance.adet", false);
  EXPECT_TRUE(rep.has_code(233)) << rep.to_text();
}

TEST(check_corpus, tampered_threshold_is_e237) {
  const auto rep = lint("tampered_threshold.adet", false);
  EXPECT_TRUE(rep.has_code(237)) << rep.to_text();
}

TEST(check_corpus, duplicate_event_is_e212) {
  const auto rep = lint("dup_events.adet", false);
  EXPECT_TRUE(rep.has_code(212)) << rep.to_text();
}

TEST(check_corpus, truncated_drift_is_e203) {
  const auto rep = lint("truncated_drift.adet", false);
  EXPECT_TRUE(rep.has_code(203)) << rep.to_text();
}

TEST(check_corpus, victim_quarantine_is_e246) {
  const auto rep = lint("victim_quarantine.adet", false);
  EXPECT_TRUE(rep.has_code(246)) << rep.to_text();
}

TEST(check_corpus, envelope_infeasible_lints_clean_but_fails_envelope) {
  // The 2xx linter cannot see this defect: the file is structurally and
  // numerically sound. Only the 3xx cross-check against a model's static
  // envelope exposes the impossible mass.
  analysis::check_report rep;
  const auto ckpt =
      core::lint_checkpoint_file(data_path("envelope_infeasible.adet"), rep);
  ASSERT_TRUE(ckpt.has_value()) << rep.to_text();
  EXPECT_TRUE(rep.findings.empty()) << rep.to_text();

  auto m = make_test_model();
  analysis::check_envelope(*m, ckpt->det, analysis::envelope_options{}, rep);
  EXPECT_TRUE(rep.has_code(301)) << rep.to_text();
  EXPECT_TRUE(rep.has_errors());
}

TEST(check_corpus, contradictory_serve_config_is_e447_e453) {
  const serve::serve_config cfg =
      serve::load_serve_config(data_path("contradictory_serve.conf"));
  analysis::check_report rep;
  analysis::check_serve_policy(cfg, core::detector_config{}, rep);
  EXPECT_TRUE(rep.has_code(447)) << rep.to_text();
  EXPECT_TRUE(rep.has_code(453)) << rep.to_text();
  EXPECT_EQ(rep.exit_code(), 2);
}

// --------------------------------------------- loader gating contract --

TEST(check_loader, load_checkpoint_rejects_with_cli_codes) {
  // The loader must fail on exactly the linter-fatal files and embed the
  // same ADVH-Exxx identifiers the CLI prints, so an operator can paste
  // the code from a service crash straight into the corpus table.
  struct {
    const char* file;
    const char* code;
  } cases[] = {
      {"bad_magic.adet", "ADVH-E201"},
      {"bad_weights.adet", "ADVH-E231"},
      {"negative_variance.adet", "ADVH-E233"},
      {"tampered_threshold.adet", "ADVH-E237"},
      {"dup_events.adet", "ADVH-E212"},
      {"truncated_drift.adet", "ADVH-E203"},
      {"victim_quarantine.adet", "ADVH-E246"},
  };
  for (const auto& c : cases) {
    try {
      (void)core::load_checkpoint(data_path(c.file));
      FAIL() << c.file << " loaded despite linter-fatal defect";
    } catch (const advh::io_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.code), std::string::npos)
          << c.file << " threw without its code: " << e.what();
    }
  }
  EXPECT_THROW((void)core::load_detector(data_path("bad_weights.adet")),
               advh::io_error);
}

TEST(check_loader, warning_findings_never_block_a_load) {
  // envelope_infeasible.adet lints with zero findings standalone; it must
  // load (the envelope defect needs a model to be visible).
  const core::checkpoint ckpt =
      core::load_checkpoint(data_path("envelope_infeasible.adet"));
  EXPECT_EQ(ckpt.det.config().events.size(), 2u);
}

TEST(check_loader, fitted_detector_round_trips_clean) {
  auto m = make_test_model();
  hpc::sim_backend monitor(*m);
  const core::detector det = fit_test_detector(monitor, test_detector_config());

  const std::string path = temp_path("check_roundtrip.adet");
  core::save_detector(det, path);

  analysis::check_report rep;
  const auto ckpt = core::lint_checkpoint_file(path, rep);
  ASSERT_TRUE(ckpt.has_value()) << rep.to_text();
  EXPECT_TRUE(rep.findings.empty()) << rep.to_text();

  // The policy pass over the stored config is clean too (the CLI runs
  // both passes on every ADET target).
  analysis::check_detector_policy(ckpt->det.config(), rep);
  EXPECT_TRUE(rep.findings.empty()) << rep.to_text();
  std::remove(path.c_str());
}

// ------------------------------------------------ shipped-artifact pass --

TEST(check_clean, shipped_model_zoo_has_zero_findings) {
  struct {
    const char* file;
    nn::architecture arch;
    shape input;
    std::size_t classes;
  } zoo[] = {
      {"advh_models/S1_efficientnet_lite.advh",
       nn::architecture::efficientnet_lite, shape{1, 28, 28}, 10},
      {"advh_models/S2_resnet_small.advh", nn::architecture::resnet_small,
       shape{3, 32, 32}, 10},
      {"advh_models/S3_densenet_small.advh", nn::architecture::densenet_small,
       shape{3, 32, 32}, 43},
      {"advh_models/fig1_case_study_cnn.advh",
       nn::architecture::case_study_cnn, shape{3, 32, 32}, 10},
  };
  for (const auto& z : zoo) {
    auto m = nn::make_model(z.arch, z.input, z.classes, 1234);
    nn::load_state(*m, repo_path(z.file), /*verify=*/false);
    analysis::check_report rep;
    rep.target = z.file;
    analysis::append_graph_findings(analysis::verify_model(*m), rep);
    EXPECT_TRUE(rep.findings.empty()) << rep.to_text();
    EXPECT_EQ(rep.exit_code(), 0);
  }
}

// ------------------------------------------------------- envelope pass --

TEST(check_envelope, honest_fit_is_inside_the_envelope) {
  auto m = make_test_model();
  hpc::sim_backend monitor(*m);
  const core::detector det = fit_test_detector(monitor, test_detector_config());

  analysis::check_report rep;
  analysis::check_envelope(*m, det, analysis::envelope_options{}, rep);
  EXPECT_TRUE(rep.findings.empty()) << rep.to_text();
}

TEST(check_envelope, mismatched_cost_model_is_flagged) {
  // Acceptance case from the issue: a template fitted under one uarch
  // cost model, checked against another, must be flagged — that IS the
  // miscalibration defect the pass exists for. Inflating the
  // per-output-element instruction cost 10x shifts the instruction
  // envelope an order of magnitude above the honestly-fitted mass.
  auto m = make_test_model();
  hpc::sim_backend monitor(*m);
  const core::detector det = fit_test_detector(monitor, test_detector_config());

  analysis::envelope_options opts;
  opts.cost_model.insn_per_out *= 10;
  analysis::check_report rep;
  analysis::check_envelope(*m, det, opts, rep);
  EXPECT_TRUE(rep.has_code(301)) << rep.to_text();
  EXPECT_TRUE(rep.has_errors());
}

TEST(check_envelope, noise_free_profile_lies_inside_every_interval) {
  // Soundness spot-check: the simulator's deterministic (noise-free)
  // counts of a concrete input must lie inside the static envelope with
  // zero margin — the envelope bounds *any* input, margins only absorb
  // measurement noise.
  auto m = make_test_model();
  hpc::sim_backend monitor(*m);
  std::size_t predicted = 0;
  const uarch::uarch_counts c = monitor.profile(test_input(), predicted);
  const uarch::static_envelope env = analysis::model_envelope(*m);

  const struct {
    const char* name;
    double value;
    uarch::count_interval iv;
  } rows[] = {
      {"instructions", double(c.instructions), env.instructions},
      {"branches", double(c.branches), env.branches},
      {"branch_misses", double(c.branch_misses), env.branch_misses},
      {"cache_references", double(c.cache_references), env.cache_references},
      {"cache_misses", double(c.cache_misses), env.cache_misses},
      {"l1d_load_misses", double(c.l1d_load_misses), env.l1d_load_misses},
      {"l1i_load_misses", double(c.l1i_load_misses), env.l1i_load_misses},
      {"llc_load_misses", double(c.llc_load_misses), env.llc_load_misses},
      {"llc_store_misses", double(c.llc_store_misses), env.llc_store_misses},
  };
  for (const auto& r : rows) {
    EXPECT_TRUE(r.iv.contains(r.value))
        << r.name << " = " << r.value << " outside [" << r.iv.lo << ", "
        << r.iv.hi << "]";
  }
}

TEST(check_envelope, abstract_trace_matches_concrete_trace) {
  // Fidelity contract of analysis/abstract_trace: the statically-derived
  // trace matches a real traced forward entry-for-entry on every field
  // except the data-dependent active sets. Exercised across the plain,
  // residual and dense composites.
  struct {
    nn::architecture arch;
    shape input;
    std::size_t classes;
  } zoo[] = {
      {nn::architecture::case_study_cnn, shape{1, 16, 16}, 4},
      {nn::architecture::resnet_small, shape{3, 32, 32}, 10},
      {nn::architecture::densenet_small, shape{3, 32, 32}, 43},
  };
  for (const auto& z : zoo) {
    auto m = nn::make_model(z.arch, z.input, z.classes, 7);
    const nn::inference_trace abstract = analysis::abstract_inference_trace(*m);

    tensor x(shape{1, z.input[0], z.input[1], z.input[2]});
    for (std::size_t i = 0; i < x.numel(); ++i) {
      x.data()[i] = static_cast<float>(0.05 + 0.01 * static_cast<double>(i % 9));
    }
    std::size_t predicted = 0;
    const nn::inference_trace concrete = m->trace_inference(x, predicted);

    ASSERT_EQ(abstract.layers.size(), concrete.layers.size())
        << nn::to_string(z.arch);
    for (std::size_t i = 0; i < concrete.layers.size(); ++i) {
      const auto& a = abstract.layers[i];
      const auto& c = concrete.layers[i];
      SCOPED_TRACE(nn::to_string(z.arch) + " entry " + std::to_string(i) +
                   " (" + c.name + ")");
      EXPECT_EQ(a.kind, c.kind);
      EXPECT_EQ(a.name, c.name);
      EXPECT_EQ(a.in_numel, c.in_numel);
      EXPECT_EQ(a.out_numel, c.out_numel);
      EXPECT_EQ(a.weight_bytes, c.weight_bytes);
      EXPECT_EQ(a.in_channels, c.in_channels);
      EXPECT_EQ(a.in_spatial, c.in_spatial);
      EXPECT_EQ(a.out_channels, c.out_channels);
      EXPECT_EQ(a.out_spatial, c.out_spatial);
      EXPECT_TRUE(a.active_inputs.empty());
      EXPECT_TRUE(a.active_outputs.empty());
    }
  }
}

// ------------------------------------------------------ walk hardening --

TEST(check_walk, self_referential_child_is_a_bounded_cycle_anomaly) {
  nn::sequential net("net");
  net.emplace<self_child>("ouroboros");
  const analysis::walk_result w = analysis::walk_graph_checked(net);
  ASSERT_EQ(w.anomalies.size(), 1u);
  EXPECT_EQ(w.anomalies[0].k, analysis::walk_anomaly::kind::cycle);
  EXPECT_EQ(w.anomalies[0].node_name, "ouroboros");
  // The walk stayed bounded: the node appears once.
  EXPECT_EQ(w.entries.size(), 1u);
}

TEST(check_walk, shared_child_is_an_alias_anomaly) {
  const self_child shared("shared_leaf");  // any leaf layer works
  nn::sequential net("net");
  net.emplace<borrowing_parent>("parent_a", shared);
  net.emplace<borrowing_parent>("parent_b", shared);
  const analysis::walk_result w = analysis::walk_graph_checked(net);
  bool saw_alias = false;
  for (const auto& a : w.anomalies) {
    if (a.k == analysis::walk_anomaly::kind::aliased &&
        a.node_name == "shared_leaf" && a.top_index == 1) {
      saw_alias = true;
    }
  }
  EXPECT_TRUE(saw_alias);
}

TEST(check_walk, verifier_reports_cycle_with_code_140) {
  auto net = std::make_unique<nn::sequential>("net");
  net->emplace<self_child>("ouroboros");
  nn::model m("broken", std::move(net), shape{3, 8, 8}, 4);
  analysis::check_report rep;
  analysis::append_graph_findings(analysis::verify_model(m), rep);
  EXPECT_TRUE(rep.has_code(140)) << rep.to_text();
  EXPECT_TRUE(rep.has_errors());
}

// --------------------------------------------------------- policy pass --

TEST(check_policy, shipped_defaults_are_clean) {
  analysis::check_report rep;
  analysis::check_detector_policy(test_detector_config(), rep);
  EXPECT_TRUE(rep.findings.empty()) << rep.to_text();
  analysis::check_serve_policy(serve::serve_config{}, test_detector_config(),
                               rep);
  EXPECT_TRUE(rep.findings.empty()) << rep.to_text();
}

TEST(check_policy, detector_defect_classes_each_fire) {
  {  // E420 zero events
    analysis::check_report rep;
    analysis::check_detector_policy(core::detector_config{}, rep);
    EXPECT_TRUE(rep.has_code(420));
  }
  {  // E424 fail-open zero evidence floor
    core::detector_config cfg = test_detector_config();
    cfg.min_events_for_verdict = 0;
    analysis::check_report rep;
    analysis::check_detector_policy(cfg, rep);
    EXPECT_TRUE(rep.has_code(424));
  }
  {  // E425 floor above event count
    core::detector_config cfg = test_detector_config();
    cfg.min_events_for_verdict = cfg.events.size() + 1;
    analysis::check_report rep;
    analysis::check_detector_policy(cfg, rep);
    EXPECT_TRUE(rep.has_code(425));
  }
  {  // E423 bad sigma, W427/W428 fail-open smells
    core::detector_config cfg = test_detector_config();
    cfg.sigma_multiplier = 0.0;
    cfg.flag_unmodeled = false;
    cfg.flag_on_abstain = false;
    analysis::check_report rep;
    analysis::check_detector_policy(cfg, rep);
    EXPECT_TRUE(rep.has_code(423));
    EXPECT_TRUE(rep.has_code(427));
    EXPECT_TRUE(rep.has_code(428));
    EXPECT_EQ(rep.error_count(), 1u);
    EXPECT_EQ(rep.warning_count(), 2u);
  }
}

TEST(check_policy, shed_below_abstain_floor_is_fail_open_error) {
  // The tentpole contradiction: the deepest rung sheds to 1 event, the
  // detector demands 2 for a verdict, and abstain is fail-open — every
  // overloaded verdict would pass as benign with no evidence.
  core::detector_config det = test_detector_config();
  det.min_events_for_verdict = 2;
  det.flag_on_abstain = false;
  serve::serve_config cfg;
  cfg.kept_events_when_shedding = 1;

  analysis::check_report rep;
  analysis::check_serve_policy(cfg, det, rep);
  EXPECT_TRUE(rep.has_code(451)) << rep.to_text();

  // Same ladder under fail-closed abstain degrades to a warning: every
  // shed verdict is the abstain policy, which is safe but evidence-free.
  det.flag_on_abstain = true;
  analysis::check_report rep2;
  analysis::check_serve_policy(cfg, det, rep2);
  EXPECT_FALSE(rep2.has_code(451));
  EXPECT_TRUE(rep2.has_code(452)) << rep2.to_text();
  EXPECT_FALSE(rep2.has_errors());
}

TEST(check_policy, service_construction_rejects_contradictory_config) {
  auto m = make_test_model();
  hpc::sim_backend monitor(*m);
  const core::detector det = fit_test_detector(monitor, test_detector_config());
  serve::virtual_clock clock;

  serve::serve_config cfg;
  cfg.queue_capacity = 0;  // E440
  try {
    serve::detection_service svc(det, monitor, clock, cfg);
    FAIL() << "zero-capacity queue accepted";
  } catch (const analysis::check_error& e) {
    EXPECT_TRUE(e.report().has_code(440)) << e.what();
  }
  // check_error derives from invariant_error: pre-framework callers that
  // treat misconfiguration as a precondition violation keep working.
  serve::serve_config bad = cfg;
  EXPECT_THROW(serve::detection_service(det, monitor, clock, bad),
               advh::invariant_error);
}

TEST(check_policy, detector_fit_rejects_fail_open_config) {
  core::benign_template tpl(4, 2);
  core::detector_config cfg = test_detector_config();
  cfg.min_events_for_verdict = 0;
  try {
    (void)core::detector::fit(tpl, cfg, 1);
    FAIL() << "fail-open config accepted by fit";
  } catch (const analysis::check_error& e) {
    EXPECT_TRUE(e.report().has_code(424)) << e.what();
  }
}

// --------------------------------------------------- serve config file --

TEST(check_serve_config, parses_keys_and_rungs) {
  const std::string path = temp_path("check_serve_ok.conf");
  {
    std::ofstream os(path);
    os << "# comment\n"
       << "queue_capacity = 32\n"
       << "default_deadline_ms = 25\n"
       << "batch_admit_occupancy = 0.4\n"
       << "rung = 0.00 10 unlimited 1 0\n"
       << "rung = 0.50 5 2 0 0\n"
       << "rung = 0.90 1 1 0 1\n";
  }
  const serve::serve_config cfg = serve::load_serve_config(path);
  EXPECT_EQ(cfg.queue_capacity, 32u);
  EXPECT_EQ(cfg.default_deadline.count(),
            std::chrono::duration_cast<serve::clock_duration>(
                std::chrono::milliseconds(25))
                .count());
  ASSERT_EQ(cfg.ladder.size(), 3u);
  EXPECT_EQ(cfg.ladder[1].repeats, 5u);
  EXPECT_FALSE(cfg.ladder[1].allow_backoff);
  EXPECT_TRUE(cfg.ladder[2].shed_events);

  analysis::check_report rep;
  analysis::check_serve_policy(cfg, test_detector_config(), rep);
  EXPECT_FALSE(rep.has_errors()) << rep.to_text();
  std::remove(path.c_str());
}

TEST(check_serve_config, strict_parse_rejects_garbage) {
  const std::string path = temp_path("check_serve_bad.conf");
  {
    std::ofstream os(path);
    os << "queue_capacity = not_a_number\n";
  }
  EXPECT_THROW((void)serve::load_serve_config(path), advh::io_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------- report rendering --

TEST(check_report, codes_counts_and_exit_contract) {
  analysis::check_report rep;
  rep.target = "unit";
  EXPECT_EQ(rep.exit_code(), 0);
  rep.add(analysis::severity::warning, 238, "cell", "near miss");
  EXPECT_EQ(rep.exit_code(), 1);
  rep.add(analysis::severity::error, 231, "cell", "weights do not sum to 1");
  EXPECT_EQ(rep.exit_code(), 2);
  EXPECT_TRUE(rep.has_code(231));
  EXPECT_TRUE(rep.has_code(238));
  EXPECT_FALSE(rep.has_code(237));
  EXPECT_EQ(analysis::make_code(analysis::severity::error, 231), "ADVH-E231");
  EXPECT_EQ(analysis::make_code(analysis::severity::warning, 238),
            "ADVH-W238");
  EXPECT_EQ(rep.error_codes(), "ADVH-E231");
  // JSON stays parseable-ish: both codes and the target appear.
  const std::string j = rep.to_json();
  EXPECT_NE(j.find("\"ADVH-E231\""), std::string::npos);
  EXPECT_NE(j.find("\"unit\""), std::string::npos);
}
