// Model-level tests: architectures, loss, optimizers, training,
// serialization, and trace capture.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "nn/loss.hpp"
#include "nn/models/models.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace advh::nn {
namespace {

TEST(Loss, UniformLogitsGiveLogC) {
  tensor logits(shape{2, 4});
  auto r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.value, std::log(4.0), 1e-5);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  rng gen(1);
  tensor logits = tensor::randn(shape{3, 5}, gen);
  auto r = softmax_cross_entropy(logits, {1, 2, 4});
  for (std::size_t b = 0; b < 3; ++b) {
    double s = 0.0;
    for (std::size_t c = 0; c < 5; ++c) s += r.grad_logits.at(b, c);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Loss, GradientMatchesFiniteDifference) {
  rng gen(2);
  tensor logits = tensor::randn(shape{2, 3}, gen);
  const std::vector<std::size_t> labels{2, 0};
  auto r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    tensor lp = logits;
    lp[i] += eps;
    tensor lm = logits;
    lm[i] -= eps;
    const double fd = (softmax_cross_entropy(lp, labels).value -
                       softmax_cross_entropy(lm, labels).value) /
                      (2.0 * eps);
    EXPECT_NEAR(r.grad_logits[i], fd, 1e-3);
  }
}

TEST(Loss, PerfectPredictionNearZeroLoss) {
  tensor logits(shape{1, 3}, std::vector<float>{20.0f, 0.0f, 0.0f});
  auto r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.value, 1e-6);
}

TEST(Loss, LabelOutOfRangeThrows) {
  tensor logits(shape{1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), invariant_error);
}

TEST(Loss, NllGradSingleIsShiftedSoftmax) {
  tensor logits(shape{1, 3}, std::vector<float>{1.0f, 2.0f, 3.0f});
  tensor g = nll_grad_single(logits, 1);
  tensor p = ops::softmax_rows(logits);
  EXPECT_NEAR(g[0], p[0], 1e-6);
  EXPECT_NEAR(g[1], p[1] - 1.0f, 1e-6);
  EXPECT_NEAR(g[2], p[2], 1e-6);
}

TEST(Optimizer, SgdDescendsQuadratic) {
  // Minimise f(w) = 0.5 * w^2 by hand-fed gradients.
  parameter w("w", tensor(shape{1}, 4.0f));
  sgd opt({&w}, 0.1f, 0.0f);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    w.grad[0] = w.value[0];
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 0.0, 1e-3);
}

TEST(Optimizer, MomentumAcceleratesDescent) {
  parameter a("a", tensor(shape{1}, 4.0f));
  parameter b("b", tensor(shape{1}, 4.0f));
  sgd plain({&a}, 0.02f, 0.0f);
  sgd heavy({&b}, 0.02f, 0.9f);
  for (int i = 0; i < 30; ++i) {
    plain.zero_grad();
    a.grad[0] = a.value[0];
    plain.step();
    heavy.zero_grad();
    b.grad[0] = b.value[0];
    heavy.step();
  }
  EXPECT_LT(std::fabs(b.value[0]), std::fabs(a.value[0]));
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  parameter w("w", tensor(shape{1}, 1.0f));
  sgd opt({&w}, 0.1f, 0.0f, 0.5f);
  opt.zero_grad();  // zero gradient: only decay acts
  opt.step();
  EXPECT_LT(w.value[0], 1.0f);
}

TEST(Optimizer, AdamDescendsQuadratic) {
  parameter w("w", tensor(shape{1}, 4.0f));
  adam opt({&w}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    w.grad[0] = w.value[0];
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 0.0, 1e-2);
}

TEST(Models, AllArchitecturesForwardCorrectShapes) {
  struct spec {
    architecture arch;
    shape input;
    std::size_t classes;
  };
  const std::vector<spec> specs{
      {architecture::case_study_cnn, shape{3, 32, 32}, 10},
      {architecture::efficientnet_lite, shape{1, 28, 28}, 10},
      {architecture::resnet_small, shape{3, 32, 32}, 10},
      {architecture::densenet_small, shape{3, 32, 32}, 43},
  };
  for (const auto& s : specs) {
    auto m = make_model(s.arch, s.input, s.classes, 1);
    tensor x(shape{2, s.input[0], s.input[1], s.input[2]});
    tensor y = m->forward(x);
    EXPECT_EQ(y.dims(), shape({2, s.classes}))
        << to_string(s.arch);
    EXPECT_GT(m->param_count(), 100u) << to_string(s.arch);
  }
}

TEST(Models, ArchitectureNamesRoundTrip) {
  for (auto a : {architecture::case_study_cnn, architecture::efficientnet_lite,
                 architecture::resnet_small, architecture::densenet_small}) {
    EXPECT_EQ(architecture_from_string(to_string(a)), a);
  }
  EXPECT_THROW(architecture_from_string("vgg"), invariant_error);
}

TEST(Models, SameSeedSameWeights) {
  auto a = make_model(architecture::resnet_small, shape{3, 32, 32}, 10, 7);
  auto b = make_model(architecture::resnet_small, shape{3, 32, 32}, 10, 7);
  auto pa = a->params();
  auto pb = b->params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j) {
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
}

TEST(Models, InputShapeValidated) {
  auto m = make_model(architecture::resnet_small, shape{3, 32, 32}, 10, 1);
  EXPECT_THROW(m->forward(tensor(shape{1, 1, 32, 32})), invariant_error);
}

TEST(Models, TraceInferenceRecordsParametricLayers) {
  auto m = make_model(architecture::case_study_cnn, shape{1, 16, 16}, 4, 1);
  rng gen(3);
  tensor x = tensor::rand_uniform(shape{1, 1, 16, 16}, gen, 0.0f, 1.0f);
  std::size_t pred = 0;
  auto trace = m->trace_inference(x, pred);
  std::size_t convs = 0, linears = 0, relus = 0;
  for (const auto& e : trace.layers) {
    if (e.kind == layer_kind::conv2d) ++convs;
    if (e.kind == layer_kind::linear) ++linears;
    if (e.kind == layer_kind::relu) ++relus;
  }
  EXPECT_EQ(convs, 4u);    // paper's case-study CNN: 4 conv
  EXPECT_EQ(linears, 2u);  // + 2 fully connected
  EXPECT_EQ(relus, 5u);    // ReLU after all but the last layer
  EXPECT_GT(trace.total_active_neurons(), 0u);
}

TEST(Models, TraceGeometryConsistent) {
  auto m = make_model(architecture::case_study_cnn, shape{1, 16, 16}, 4, 1);
  rng gen(4);
  tensor x = tensor::rand_uniform(shape{1, 1, 16, 16}, gen, 0.0f, 1.0f);
  std::size_t pred = 0;
  auto trace = m->trace_inference(x, pred);
  for (const auto& e : trace.layers) {
    if (e.kind == layer_kind::conv2d || e.kind == layer_kind::linear) {
      EXPECT_EQ(e.in_channels * e.in_spatial, e.in_numel) << e.name;
      EXPECT_EQ(e.out_channels * e.out_spatial, e.out_numel) << e.name;
      EXPECT_GT(e.weight_bytes, 0u) << e.name;
      for (std::uint32_t i : e.active_inputs) EXPECT_LT(i, e.in_numel);
    }
  }
}

TEST(Training, LearnsSeparableTask) {
  data::synthetic_spec spec;
  spec.channels = 1;
  spec.height = 16;
  spec.width = 16;
  spec.classes = 3;
  spec.seed = 21;
  spec.confusable_pairs = false;
  spec.hard_fraction = 0.0;
  auto train = data::make_synthetic(spec, 40);
  spec.sample_seed = 1;
  auto test = data::make_synthetic(spec, 15);

  auto m = make_model(architecture::case_study_cnn, shape{1, 16, 16}, 3, 2);
  train_config cfg;
  cfg.epochs = 4;
  cfg.batch_size = 16;
  auto result = train_classifier(*m, train.images, train.labels, cfg);
  ASSERT_EQ(result.epoch_loss.size(), 4u);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
  EXPECT_GT(m->accuracy(test.images, test.labels), 0.9);
}

TEST(Training, GatherBatchSelectsRows) {
  tensor images(shape{3, 1, 2, 2});
  for (std::size_t i = 0; i < 12; ++i) images[i] = static_cast<float>(i);
  tensor batch = gather_batch(images, {2, 0});
  EXPECT_EQ(batch.dims(), shape({2, 1, 2, 2}));
  EXPECT_EQ(batch[0], 8.0f);
  EXPECT_EQ(batch[4], 0.0f);
}

TEST(Serialize, RoundTripPreservesPredictions) {
  auto m = make_model(architecture::resnet_small, shape{3, 32, 32}, 10, 3);
  rng gen(5);
  tensor x = tensor::rand_uniform(shape{4, 3, 32, 32}, gen, 0.0f, 1.0f);
  tensor before = m->forward(x);

  const std::string path =
      (std::filesystem::temp_directory_path() / "advh_state_test.bin").string();
  save_state(*m, path);

  // Fresh model with different seed: different predictions until loaded.
  auto m2 = make_model(architecture::resnet_small, shape{3, 32, 32}, 10, 99);
  load_state(*m2, path);
  tensor after = m2->forward(x);
  ASSERT_EQ(before.numel(), after.numel());
  for (std::size_t i = 0; i < before.numel(); ++i) {
    EXPECT_FLOAT_EQ(before[i], after[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, ArchitectureMismatchDetected) {
  auto m = make_model(architecture::case_study_cnn, shape{1, 16, 16}, 4, 3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "advh_state_arch.bin").string();
  save_state(*m, path);
  auto other = make_model(architecture::resnet_small, shape{3, 32, 32}, 10, 3);
  EXPECT_THROW(load_state(*other, path), invariant_error);
  std::remove(path.c_str());
}

TEST(Serialize, IsStateFileDetectsFormat) {
  auto m = make_model(architecture::case_study_cnn, shape{1, 16, 16}, 4, 3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "advh_state_magic.bin").string();
  save_state(*m, path);
  EXPECT_TRUE(is_state_file(path));
  EXPECT_FALSE(is_state_file("/nonexistent/nope.bin"));
  std::remove(path.c_str());
}

TEST(Serialize, BatchNormBuffersIncluded) {
  auto m = make_model(architecture::resnet_small, shape{3, 32, 32}, 10, 3);
  std::vector<tensor*> state;
  m->net().collect_state(state);
  std::vector<parameter*> params = m->params();
  // Running mean/var are state but not parameters.
  EXPECT_GT(state.size(), params.size());
}

}  // namespace
}  // namespace advh::nn
