// Tests for the extension modules: prefetcher, joint multivariate
// detector, ROC analysis, detector persistence, and the minimal-epsilon
// adaptive attack.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "attack/min_eps.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/detector_io.hpp"
#include "core/joint_detector.hpp"
#include "core/roc.hpp"
#include "data/synthetic.hpp"
#include "nn/models/models.hpp"
#include "nn/trainer.hpp"
#include "uarch/hierarchy.hpp"
#include "uarch/prefetcher.hpp"

namespace advh {
namespace {

// ---------------------------------------------------------------------------
// Prefetcher.

TEST(Prefetcher, NoneNeverIssues) {
  uarch::prefetcher p(uarch::prefetcher_kind::none);
  for (std::uint64_t l = 1; l < 100; ++l) EXPECT_EQ(p.observe(l), 0u);
  EXPECT_EQ(p.stats().issued, 0u);
}

TEST(Prefetcher, NextLinePrefetchesSuccessor) {
  uarch::prefetcher p(uarch::prefetcher_kind::next_line);
  EXPECT_EQ(p.observe(10), 11u);
  EXPECT_EQ(p.observe(42), 43u);
  EXPECT_EQ(p.stats().issued, 2u);
}

TEST(Prefetcher, StrideDetectsStreamAfterConfirmation) {
  uarch::prefetcher p(uarch::prefetcher_kind::stride);
  EXPECT_EQ(p.observe(10), 0u);  // no history yet
  EXPECT_EQ(p.observe(14), 0u);  // first stride observed, unconfirmed
  EXPECT_EQ(p.observe(18), 22u);  // stride 4 confirmed
  EXPECT_EQ(p.observe(22), 26u);
}

TEST(Prefetcher, StrideResetsOnIrregularPattern) {
  uarch::prefetcher p(uarch::prefetcher_kind::stride);
  p.observe(10);
  p.observe(14);
  EXPECT_NE(p.observe(18), 0u);
  EXPECT_EQ(p.observe(100), 0u);  // stream broken
  EXPECT_EQ(p.observe(107), 0u);  // new stride, unconfirmed
}

TEST(Prefetcher, HierarchySweepMissesDropWithNextLine) {
  // A long sequential sweep: next-line prefetching must remove most
  // demand misses compared to no prefetching.
  uarch::hierarchy_config plain;
  uarch::hierarchy_config pf = plain;
  pf.l1d_prefetch = uarch::prefetcher_kind::next_line;

  uarch::memory_hierarchy a(plain), b(pf);
  for (std::uint64_t l = 0; l < 4096; ++l) {
    a.data_access(0x100000 + l * 64, uarch::access_type::load);
    b.data_access(0x100000 + l * 64, uarch::access_type::load);
  }
  EXPECT_LT(b.l1d().stats().load_misses, a.l1d().stats().load_misses / 2);
  EXPECT_GT(b.l1d().stats().prefetch_fills, 0u);
}

TEST(Prefetcher, RandomAccessesGainLittle) {
  uarch::hierarchy_config pf;
  pf.l1d_prefetch = uarch::prefetcher_kind::stride;
  uarch::memory_hierarchy mem(pf);
  rng gen(5);
  for (int i = 0; i < 4000; ++i) {
    mem.data_access(gen.uniform_index(1 << 24) * 64, uarch::access_type::load);
  }
  // Stride prefetcher should stay almost silent on random traffic.
  EXPECT_LT(mem.l1d_prefetcher().stats().issued, 400u);
}

// ---------------------------------------------------------------------------
// Joint detector.

core::benign_template correlated_template() {
  // Class 0: two events strongly correlated (x, x + noise).
  core::benign_template tpl(1, 2);
  rng gen(9);
  for (int i = 0; i < 80; ++i) {
    const double x = gen.normal(1000.0, 30.0);
    tpl.add_row(0, std::vector<double>{x, x + gen.normal(0.0, 3.0)});
  }
  return tpl;
}

core::detector_config two_event_cfg() {
  core::detector_config cfg;
  cfg.events = {hpc::hpc_event::cache_misses,
                hpc::hpc_event::llc_load_misses};
  return cfg;
}

TEST(JointDetector, AcceptsInDistributionPoints) {
  auto det = core::joint_detector::fit(correlated_template(), two_event_cfg());
  rng gen(10);
  std::size_t flagged = 0;
  for (int i = 0; i < 100; ++i) {
    const double x = gen.normal(1000.0, 30.0);
    const auto v = det.score(0, std::vector<double>{x, x + gen.normal(0.0, 3.0)});
    if (v.adversarial) ++flagged;
  }
  EXPECT_LT(flagged, 12u);
}

TEST(JointDetector, CatchesCorrelationBreakers) {
  // Marginally plausible but jointly impossible: x high, y low.
  // The per-event detector cannot flag this; the joint detector must.
  const auto tpl = correlated_template();
  const auto cfg = two_event_cfg();
  auto joint = core::joint_detector::fit(tpl, cfg);
  auto marginal = core::detector::fit(tpl, cfg);

  const std::vector<double> breaker{1050.0, 950.0};  // each within range
  EXPECT_TRUE(joint.score(0, breaker).adversarial);
  const auto mv = marginal.score(0, breaker);
  EXPECT_FALSE(mv.flagged[0]);
  EXPECT_FALSE(mv.flagged[1]);
}

TEST(JointDetector, UnmodelledClassNeverFlags) {
  core::benign_template tpl(2, 2);
  rng gen(11);
  for (int i = 0; i < 30; ++i) {
    tpl.add_row(0, std::vector<double>{gen.normal(5.0, 1.0),
                                       gen.normal(5.0, 1.0)});
  }
  auto det = core::joint_detector::fit(tpl, two_event_cfg());
  EXPECT_FALSE(det.score(1, std::vector<double>{1e9, 1e9}).adversarial);
  EXPECT_FALSE(det.model_for(1).has_value());
}

TEST(JointDetector, ThresholdFollowsSigmaRule) {
  auto det = core::joint_detector::fit(correlated_template(), two_event_cfg());
  const auto& jm = det.model_for(0);
  ASSERT_TRUE(jm.has_value());
  EXPECT_NEAR(jm->threshold, jm->nll_mean + 3.0 * jm->nll_stddev, 1e-9);
}

// ---------------------------------------------------------------------------
// ROC.

TEST(Roc, PerfectSeparationGivesUnitAuc) {
  std::vector<double> clean{1.0, 2.0, 3.0};
  std::vector<double> adv{10.0, 11.0, 12.0};
  const auto roc = core::compute_roc(clean, adv);
  EXPECT_NEAR(roc.auc, 1.0, 1e-9);
  EXPECT_NEAR(roc.tpr_at_fpr(0.0), 1.0, 1e-9);
}

TEST(Roc, IdenticalDistributionsNearHalf) {
  rng gen(12);
  std::vector<double> clean, adv;
  for (int i = 0; i < 500; ++i) {
    clean.push_back(gen.normal(0.0, 1.0));
    adv.push_back(gen.normal(0.0, 1.0));
  }
  const auto roc = core::compute_roc(clean, adv);
  EXPECT_NEAR(roc.auc, 0.5, 0.05);
}

TEST(Roc, MonotoneNonDecreasing) {
  rng gen(13);
  std::vector<double> clean, adv;
  for (int i = 0; i < 200; ++i) {
    clean.push_back(gen.normal(0.0, 1.0));
    adv.push_back(gen.normal(1.5, 1.0));
  }
  const auto roc = core::compute_roc(clean, adv);
  for (std::size_t i = 1; i < roc.points.size(); ++i) {
    EXPECT_GE(roc.points[i].fpr, roc.points[i - 1].fpr);
    EXPECT_GE(roc.points[i].tpr, roc.points[i - 1].tpr);
  }
  EXPECT_GT(roc.auc, 0.7);
  EXPECT_LT(roc.auc, 1.0);
}

TEST(Roc, EmptyPopulationRejected) {
  std::vector<double> empty, some{1.0};
  EXPECT_THROW(core::compute_roc(empty, some), invariant_error);
}

// ---------------------------------------------------------------------------
// Detector persistence.

TEST(DetectorIo, RoundTripPreservesVerdicts) {
  core::benign_template tpl(3, 2);
  rng gen(14);
  for (std::size_t cls = 0; cls < 3; ++cls) {
    for (int i = 0; i < 40; ++i) {
      const double base = 100.0 * static_cast<double>(cls + 1);
      tpl.add_row(cls, std::vector<double>{gen.normal(base, 5.0),
                                           gen.normal(2.0 * base, 8.0)});
    }
  }
  auto cfg = two_event_cfg();
  const auto det = core::detector::fit(tpl, cfg);

  const std::string path =
      (std::filesystem::temp_directory_path() / "advh_det.bin").string();
  core::save_detector(det, path);
  const auto loaded = core::load_detector(path);

  EXPECT_EQ(loaded.num_classes(), det.num_classes());
  EXPECT_EQ(loaded.config().events, det.config().events);
  rng probe(15);
  for (int i = 0; i < 50; ++i) {
    const std::size_t cls = probe.uniform_index(3);
    const std::vector<double> x{probe.uniform(50.0, 700.0),
                                probe.uniform(100.0, 1400.0)};
    const auto a = det.score(cls, x);
    const auto b = loaded.score(cls, x);
    EXPECT_EQ(a.adversarial_any, b.adversarial_any);
    for (std::size_t e = 0; e < 2; ++e) {
      EXPECT_NEAR(a.nll[e], b.nll[e], 1e-9);
      EXPECT_EQ(a.flagged[e], b.flagged[e]);
    }
  }
  std::remove(path.c_str());
}

TEST(DetectorIo, CorruptFileRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "advh_det_bad.bin").string();
  write_file(path, "not a detector");
  EXPECT_THROW(core::load_detector(path), io_error);
  std::remove(path.c_str());
}

// Saves a small fitted detector and returns the raw file bytes, so the
// corruption tests can flip specific fields. File layout (little-endian):
// magic(4) version(4) n_events(8) event_enum(4)xN repeats(8) k_max(8)
// sigma(8) flag_unmodeled(1) min_events_for_verdict(8) flag_on_abstain(1)
// n_classes(8), then per (class, event) cell:
// present(1) threshold(8) nll_mean(8) nll_stddev(8) template_size(8)
// order(8) order x {weight(8) mean(8) variance(8)},
// then the v4 drift-section presence byte (0 for save_detector output).
std::string fitted_detector_bytes() {
  core::benign_template tpl(2, 2);
  rng gen(77);
  for (std::size_t cls = 0; cls < 2; ++cls) {
    for (int i = 0; i < 30; ++i) {
      const double base = 100.0 * static_cast<double>(cls + 1);
      tpl.add_row(cls, std::vector<double>{gen.normal(base, 5.0),
                                           gen.normal(3.0 * base, 9.0)});
    }
  }
  const auto det = core::detector::fit(tpl, two_event_cfg());
  // Pid-unique name: ctest runs each corruption test as its own process,
  // and a shared scratch path would let them clobber each other's bytes.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("advh_det_src." + std::to_string(::getpid()) + ".bin"))
          .string();
  core::save_detector(det, path);
  std::ifstream is(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return bytes;
}

// Writes `bytes` to a temp file and returns the load_detector error text
// (empty if the load unexpectedly succeeded).
std::string load_error_for(const std::string& bytes) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("advh_det_mut." + std::to_string(::getpid()) + ".bin"))
          .string();
  write_file(path, bytes);
  std::string message;
  try {
    core::load_detector(path);
  } catch (const io_error& e) {
    message = e.what();
  }
  std::remove(path.c_str());
  return message;
}

TEST(DetectorIo, TruncatedFileRejected) {
  const auto bytes = fitted_detector_bytes();
  // Cut mid-header and mid-model: both must fail as truncation, never as
  // a partial-but-plausible detector.
  EXPECT_NE(load_error_for(bytes.substr(0, 6)).find("truncated"),
            std::string::npos);
  EXPECT_NE(load_error_for(bytes.substr(0, bytes.size() - 5)).find("truncated"),
            std::string::npos);
}

TEST(DetectorIo, BadMagicRejected) {
  auto bytes = fitted_detector_bytes();
  bytes[0] = static_cast<char>(bytes[0] ^ 0x5A);
  EXPECT_NE(load_error_for(bytes).find("not an AdvHunter detector"),
            std::string::npos);
}

TEST(DetectorIo, UnsupportedVersionRejected) {
  auto bytes = fitted_detector_bytes();
  const std::uint32_t version = 99;
  std::memcpy(bytes.data() + 4, &version, sizeof(version));
  EXPECT_NE(load_error_for(bytes).find("unsupported detector format version"),
            std::string::npos);
}

TEST(DetectorIo, ZeroEventsRejected) {
  auto bytes = fitted_detector_bytes();
  const std::uint64_t n_events = 0;
  std::memcpy(bytes.data() + 8, &n_events, sizeof(n_events));
  EXPECT_NE(load_error_for(bytes).find("zero events"), std::string::npos);
}

TEST(DetectorIo, UnknownEventEnumRejected) {
  auto bytes = fitted_detector_bytes();
  const std::uint32_t bogus = 0xFFu;  // far past llc_store_misses
  std::memcpy(bytes.data() + 16, &bogus, sizeof(bogus));
  EXPECT_NE(load_error_for(bytes).find("unknown hpc_event"), std::string::npos);
}

TEST(DetectorIo, ZeroRepeatsRejected) {
  auto bytes = fitted_detector_bytes();
  // repeats sits after magic(4) + version(4) + n_events(8) + 2 events(4x2).
  const std::uint64_t repeats = 0;
  std::memcpy(bytes.data() + 24, &repeats, sizeof(repeats));
  EXPECT_NE(load_error_for(bytes).find("repeat count is zero"),
            std::string::npos);
}

TEST(DetectorIo, NaNVarianceRejected) {
  auto bytes = fitted_detector_bytes();
  // The last cell's final component variance sits just before the v4
  // drift-section presence byte that terminates the file.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(bytes.data() + bytes.size() - 1 - sizeof(nan), &nan,
              sizeof(nan));
  EXPECT_NE(load_error_for(bytes).find("variance"), std::string::npos);
}

TEST(DetectorIo, BadWeightSumRejected) {
  auto bytes = fitted_detector_bytes();
  // The first component's weight sits past the first cell's present byte
  // and five 8-byte fields; the cell starts right after the 66-byte header.
  const std::size_t first_weight = 66 + 1 + 5 * 8;
  double w = 0.0;
  std::memcpy(&w, bytes.data() + first_weight, sizeof(w));
  w += 0.25;  // weights no longer sum to 1
  std::memcpy(bytes.data() + first_weight, &w, sizeof(w));
  EXPECT_NE(load_error_for(bytes).find("weights sum"), std::string::npos);
}

TEST(DetectorIo, RoundTripPreservesUnmodeledPolicy) {
  core::benign_template tpl(2, 2);
  rng gen(78);
  for (int i = 0; i < 30; ++i) {
    tpl.add_row(0, std::vector<double>{gen.normal(100.0, 5.0),
                                       gen.normal(300.0, 9.0)});
  }
  auto cfg = two_event_cfg();
  cfg.flag_unmodeled = false;
  const auto det = core::detector::fit(tpl, cfg);
  const std::string path =
      (std::filesystem::temp_directory_path() / "advh_det_policy.bin").string();
  core::save_detector(det, path);
  const auto loaded = core::load_detector(path);
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.config().flag_unmodeled);
  // Class 1 has no template rows; the persisted fail-open policy applies.
  const auto v = loaded.score(1, std::vector<double>{1e9, 1e9});
  EXPECT_FALSE(v.modeled);
  EXPECT_FALSE(v.adversarial_any);
}

// ---------------------------------------------------------------------------
// Minimal-epsilon adaptive attack.

class MinEpsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::synthetic_spec spec;
    spec.channels = 1;
    spec.height = 16;
    spec.width = 16;
    spec.classes = 3;
    spec.seed = 61;
    spec.confusable_pairs = false;
    spec.hard_fraction = 0.0;
    auto train = data::make_synthetic(spec, 50);
    model_ = nn::make_model(nn::architecture::case_study_cnn,
                            shape{1, 16, 16}, 3, 4)
                 .release();
    nn::train_config cfg;
    cfg.epochs = 3;
    nn::train_classifier(*model_, train.images, train.labels, cfg);
    spec.sample_seed = 1;
    eval_ = new data::dataset(data::make_synthetic(spec, 5));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete eval_;
    model_ = nullptr;
    eval_ = nullptr;
  }
  static nn::model* model_;
  static data::dataset* eval_;
};

nn::model* MinEpsTest::model_ = nullptr;
data::dataset* MinEpsTest::eval_ = nullptr;

TEST_F(MinEpsTest, FindsSuccessfulMinimalAttack) {
  attack::min_eps_config cfg;
  cfg.kind = attack::attack_kind::pgd;
  std::size_t found = 0;
  for (std::size_t i = 0; i < eval_->size(); ++i) {
    tensor x = nn::single_example(eval_->images, i);
    if (model_->predict_one(x) != eval_->labels[i]) continue;
    auto r = attack::find_minimal_epsilon(*model_, x, eval_->labels[i], cfg);
    if (!r.found) continue;
    ++found;
    EXPECT_TRUE(r.result.success);
    EXPECT_LE(r.result.linf_distortion, r.epsilon + 1e-5);

    // Minimality: a clearly weaker attack at eps/2 fails (bisection is
    // within tolerance of the success boundary).
    attack::attack_config half;
    half.epsilon = r.epsilon * 0.5f;
    half.steps = cfg.pgd_steps;
    auto weaker = attack::make_attack(cfg.kind, half)
                      ->run(*model_, x, eval_->labels[i]);
    if (r.epsilon > 4.0f * cfg.tolerance) {
      EXPECT_FALSE(weaker.success);
    }
  }
  EXPECT_GT(found, 5u);
}

TEST_F(MinEpsTest, MinimalEpsilonSmallerThanDefault) {
  attack::min_eps_config cfg;
  cfg.kind = attack::attack_kind::pgd;
  for (std::size_t i = 0; i < 4; ++i) {
    tensor x = nn::single_example(eval_->images, i);
    if (model_->predict_one(x) != eval_->labels[i]) continue;
    auto r = attack::find_minimal_epsilon(*model_, x, eval_->labels[i], cfg);
    if (r.found) {
      EXPECT_LT(r.epsilon, cfg.eps_hi + 1e-6);
    }
  }
}

TEST_F(MinEpsTest, DeepFoolRejected) {
  attack::min_eps_config cfg;
  cfg.kind = attack::attack_kind::deepfool;
  tensor x = nn::single_example(eval_->images, 0);
  EXPECT_THROW(attack::find_minimal_epsilon(*model_, x, 0, cfg),
               invariant_error);
}

}  // namespace
}  // namespace advh
