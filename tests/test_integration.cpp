// End-to-end integration tests: train a small model on a synthetic task,
// run the full AdvHunter offline + online pipeline through the simulator
// backend, and check the detection behaviour the paper reports — strong
// cache-miss detection, chance-level instruction/branch detection, low
// false-positive rate on clean inputs.
#include <gtest/gtest.h>

#include "attack/metrics.hpp"
#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/models/models.hpp"
#include "nn/trainer.hpp"

namespace advh {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::synthetic_spec spec;
    spec.name = "integration";
    spec.channels = 1;
    spec.height = 16;
    spec.width = 16;
    spec.classes = 4;
    spec.seed = 2024;
    spec.confusable_pairs = false;
    spec.hard_fraction = 0.05;
    train_ = new data::dataset(data::make_synthetic(spec, 70));
    spec.sample_seed = 1;
    test_ = new data::dataset(data::make_synthetic(spec, 30));

    model_ = nn::make_model(nn::architecture::case_study_cnn,
                            shape{1, 16, 16}, 4, 3)
                 .release();
    nn::train_config cfg;
    cfg.epochs = 4;
    nn::train_classifier(*model_, train_->images, train_->labels, cfg);
    ASSERT_GT(model_->accuracy(test_->images, test_->labels), 0.85);

    monitor_ = new hpc::sim_backend(*model_);

    core::detector_config dcfg;
    dcfg.events = hpc::core_events();
    dcfg.repeats = 10;
    const auto tpl = core::collect_template(*monitor_, dcfg, *train_, 30, 7);
    detector_ = new core::detector(core::detector::fit(tpl, dcfg));
  }

  static void TearDownTestSuite() {
    delete detector_;
    delete monitor_;
    delete model_;
    delete test_;
    delete train_;
    detector_ = nullptr;
    monitor_ = nullptr;
    model_ = nullptr;
    test_ = nullptr;
    train_ = nullptr;
  }

  static std::size_t event_index(hpc::hpc_event e) {
    const auto events = hpc::core_events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i] == e) return i;
    }
    throw invariant_error("event not in core set");
  }

  static nn::model* model_;
  static data::dataset* train_;
  static data::dataset* test_;
  static hpc::sim_backend* monitor_;
  static core::detector* detector_;
};

nn::model* IntegrationTest::model_ = nullptr;
data::dataset* IntegrationTest::train_ = nullptr;
data::dataset* IntegrationTest::test_ = nullptr;
hpc::sim_backend* IntegrationTest::monitor_ = nullptr;
core::detector* IntegrationTest::detector_ = nullptr;

TEST_F(IntegrationTest, CleanInputsRarelyFlaggedOnCacheMisses) {
  const std::size_t cm = event_index(hpc::hpc_event::cache_misses);
  std::size_t flagged = 0, total = 0;
  for (std::size_t i = 0; i < test_->size(); ++i) {
    tensor x = nn::single_example(test_->images, i);
    if (model_->predict_one(x) != test_->labels[i]) continue;
    const auto v = detector_->classify(*monitor_, x);
    ++total;
    if (v.flagged[cm]) ++flagged;
  }
  ASSERT_GT(total, 50u);
  // Three-sigma rule: single-digit-percent false positives.
  EXPECT_LT(static_cast<double>(flagged) / static_cast<double>(total), 0.15);
}

TEST_F(IntegrationTest, AdversarialInputsFlaggedOnCacheMisses) {
  const std::size_t cm = event_index(hpc::hpc_event::cache_misses);
  attack::attack_config cfg;
  cfg.epsilon = 0.3f;
  auto atk = attack::make_attack(attack::attack_kind::fgsm, cfg);

  std::size_t adv_flagged = 0, total = 0;
  for (std::size_t i = 0; i < test_->size() && total < 40; ++i) {
    tensor x = nn::single_example(test_->images, i);
    if (model_->predict_one(x) != test_->labels[i]) continue;
    auto r = atk->run(*model_, x, test_->labels[i]);
    if (!r.success) continue;
    const auto v = detector_->classify(*monitor_, r.adversarial);
    ++total;
    if (v.flagged[cm]) ++adv_flagged;
  }
  ASSERT_GT(total, 10u);
  const double adv_rate =
      static_cast<double>(adv_flagged) / static_cast<double>(total);

  // Clean baseline flag rate on the same event.
  std::size_t clean_flagged = 0, clean_total = 0;
  for (std::size_t i = 0; i < test_->size() && clean_total < 40; ++i) {
    tensor x = nn::single_example(test_->images, i);
    if (model_->predict_one(x) != test_->labels[i]) continue;
    ++clean_total;
    if (detector_->classify(*monitor_, x).flagged[cm]) ++clean_flagged;
  }
  const double clean_rate =
      static_cast<double>(clean_flagged) / static_cast<double>(clean_total);

  // The tiny 16x16 fixture has less data-flow signal than the full
  // 32x32 scenarios, so assert the *relative* property: AEs are flagged
  // far more often than clean inputs, and at a substantial absolute rate.
  EXPECT_GT(adv_rate, 0.3);
  EXPECT_GT(adv_rate, 3.0 * clean_rate);
}

TEST_F(IntegrationTest, InstructionEventIsChanceLevel) {
  // Instructions are shape-driven: AEs should NOT be reliably flagged.
  const std::size_t insn = event_index(hpc::hpc_event::instructions);
  attack::attack_config cfg;
  cfg.epsilon = 0.1f;
  auto atk = attack::make_attack(attack::attack_kind::fgsm, cfg);

  std::size_t flagged = 0, total = 0;
  for (std::size_t i = 0; i < test_->size() && total < 30; ++i) {
    tensor x = nn::single_example(test_->images, i);
    if (model_->predict_one(x) != test_->labels[i]) continue;
    auto r = atk->run(*model_, x, test_->labels[i]);
    if (!r.success) continue;
    const auto v = detector_->classify(*monitor_, r.adversarial);
    ++total;
    if (v.flagged[insn]) ++flagged;
  }
  ASSERT_GT(total, 10u);
  EXPECT_LT(static_cast<double>(flagged) / static_cast<double>(total), 0.3);
}

TEST_F(IntegrationTest, VerdictFieldsConsistent) {
  tensor x = nn::single_example(test_->images, 0);
  const auto v = detector_->classify(*monitor_, x);
  EXPECT_EQ(v.nll.size(), hpc::core_events().size());
  EXPECT_EQ(v.flagged.size(), hpc::core_events().size());
  bool any = false;
  for (bool f : v.flagged) any = any || f;
  EXPECT_EQ(v.adversarial_any, any);
  EXPECT_LT(v.predicted, 4u);
}

TEST_F(IntegrationTest, TemplateBuilderSkipsMisclassified) {
  core::detector_config dcfg;
  dcfg.events = {hpc::hpc_event::cache_misses};
  dcfg.repeats = 2;
  core::template_builder builder(*monitor_, dcfg, 4);
  // Feed images with deliberately wrong labels: all must be rejected.
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    tensor x = nn::single_example(test_->images, i);
    const std::size_t wrong = (test_->labels[i] + 1) % 4;
    if (model_->predict_one(x) == wrong) continue;  // skip lucky collisions
    if (builder.add_sample(x, wrong)) ++accepted;
  }
  EXPECT_EQ(accepted, 0u);
}

TEST_F(IntegrationTest, EvaluateInputsAccumulates) {
  std::vector<tensor> inputs;
  inputs.push_back(nn::single_example(test_->images, 0));
  inputs.push_back(nn::single_example(test_->images, 1));
  core::detection_eval eval;
  core::evaluate_inputs(*detector_, *monitor_, inputs, false, eval);
  EXPECT_EQ(eval.fused.total(), 2u);
  core::evaluate_inputs(*detector_, *monitor_, inputs, true, eval);
  EXPECT_EQ(eval.fused.total(), 4u);
  EXPECT_EQ(eval.per_event.size(), hpc::core_events().size());
}

}  // namespace
}  // namespace advh
