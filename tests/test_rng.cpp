#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace advh {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  rng g(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  rng g(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = g.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  rng g(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += g.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexBounded) {
  rng g(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(g.uniform_index(17), 17u);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  rng g(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(g.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMomentsMatch) {
  rng g(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = g.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  rng g(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += g.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambdaSmall) {
  rng g(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(g.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambdaLarge) {
  rng g(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(g.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroLambda) {
  rng g(1);
  EXPECT_EQ(g.poisson(0.0), 0u);
  EXPECT_EQ(g.poisson(-1.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
  rng g(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (g.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesDecorrelatedStream) {
  rng parent(42);
  rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, RepeatedSplitsDistinct) {
  rng parent(42);
  rng c1 = parent.split();
  rng c2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1() == c2()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, PermutationIsPermutation) {
  rng g(3);
  auto p = g.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, ShuffleKeepsElements) {
  rng g(3);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto orig = v;
  g.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace advh
