// Serving-layer tests: injectable clocks, the bounded priority queue,
// decaying latency estimation, circuit-breaker transitions, admission
// control, the degradation ladder (engage + hysteresis release), graceful
// drain, deadline-budgeted measurement, cancellation-aware retry, strict
// env knobs, and the bitwise thread-invariance of a whole simulated
// overload run. Everything virtual-clock-driven here is deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/retry.hpp"
#include "hpc/fault_backend.hpp"
#include "hpc/resilient_monitor.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/models/models.hpp"
#include "serve/service.hpp"
#include "track/tracker.hpp"

namespace advh::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

// ------------------------------------------------------------- fixtures --

std::unique_ptr<nn::model> make_test_model() {
  return nn::make_model(nn::architecture::case_study_cnn, shape{1, 16, 16}, 4,
                        1);
}

tensor test_input(double scale = 1.0) {
  tensor x(shape{1, 1, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] =
        static_cast<float>(scale * (0.1 + 0.01 * static_cast<double>(i % 7)));
  }
  return x;
}

core::detector_config test_detector_config() {
  core::detector_config cfg;
  const auto events = hpc::core_events();
  cfg.events = {events[0], events[1]};
  cfg.repeats = 10;
  return cfg;
}

/// Detector fitted from the same simulated monitor the service will
/// measure through, so benign traffic scores benign.
core::detector fit_test_detector(hpc::hpc_monitor& monitor,
                                 const core::detector_config& cfg) {
  core::benign_template tpl(4, cfg.events.size());
  for (std::size_t i = 0; i < 32; ++i) {
    const tensor x = test_input(0.4 + 0.05 * static_cast<double>(i % 12));
    const auto m = monitor.measure(x, cfg.events, cfg.repeats);
    tpl.add_row(m.predicted, m.mean_counts);
  }
  return core::detector::fit(tpl, cfg, 1);
}

/// Everything one serve test needs, wired over a simulated backend.
struct serve_rig {
  std::unique_ptr<nn::model> model;
  std::unique_ptr<hpc::hpc_monitor> monitor;
  core::detector det;
  virtual_clock clock;
  std::unique_ptr<detection_service> service;

  explicit serve_rig(serve_config cfg = serve_config{},
                     core::detector_config dcfg = test_detector_config())
      : model(make_test_model()),
        monitor(std::make_unique<hpc::sim_backend>(*model)),
        det(fit_test_detector(*monitor, dcfg)) {
    service = std::make_unique<detection_service>(det, *monitor, clock, cfg);
  }
};

/// Backend whose measurement path can be switched dead/alive, for breaker
/// tests. Dead = every measure call throws.
class switchable_monitor final : public hpc::hpc_monitor {
 public:
  explicit switchable_monitor(hpc::hpc_monitor& inner) : inner_(inner) {}

  std::string backend_name() const override { return "switchable"; }
  void set_dead(bool dead) { dead_ = dead; }

 protected:
  hpc::measurement do_measure(const tensor& x,
                              std::span<const hpc::hpc_event> events,
                              std::size_t repeats) override {
    if (dead_) throw backend_unavailable("measurement backend down");
    return inner_.measure(x, events, repeats);
  }

 private:
  hpc::hpc_monitor& inner_;
  std::atomic<bool> dead_{false};
};

// ---------------------------------------------------------------- clock --

TEST(VirtualClock, AdvancesMonotonically) {
  virtual_clock c;
  EXPECT_EQ(c.now().count(), 0);
  c.advance(milliseconds(5));
  EXPECT_EQ(c.now(), clock_duration(milliseconds(5)));
  c.advance(clock_duration(-10));  // ignored: time never rewinds
  EXPECT_EQ(c.now(), clock_duration(milliseconds(5)));
  c.advance_to(clock_duration(milliseconds(3)));  // in the past: no-op
  EXPECT_EQ(c.now(), clock_duration(milliseconds(5)));
  c.advance_to(clock_duration(milliseconds(9)));
  EXPECT_EQ(c.now(), clock_duration(milliseconds(9)));
}

TEST(SteadyClockFace, MovesForward) {
  steady_clock_face c;
  const auto a = c.now();
  std::this_thread::sleep_for(milliseconds(2));
  EXPECT_GT(c.now(), a);
}

// -------------------------------------------------------------- latency --

TEST(DecayingMean, AdoptsFirstSampleThenDecays) {
  decaying_mean m(0.5, 0.0);
  m.observe(100.0);  // unseeded tracker adopts the first sample outright
  EXPECT_DOUBLE_EQ(m.value(), 100.0);
  m.observe(200.0);
  EXPECT_DOUBLE_EQ(m.value(), 150.0);
  EXPECT_EQ(m.samples(), 2u);
}

// Regression: the old clamp admitted the closed endpoints. alpha == 0
// multiplied every observation by zero — the estimate stayed frozen at its
// seed forever, so admission control never learned the real service cost.
TEST(DecayingMean, AlphaZeroStillLearns) {
  decaying_mean m(0.0, 100.0);
  for (int i = 0; i < 200; ++i) m.observe(0.0);
  EXPECT_LT(m.value(), 90.0) << "alpha=0 froze the estimate at its seed";
}

// Regression: alpha == 1 kept only the last sample — no smoothing at all,
// so one outlier measurement rewrote the whole estimate.
TEST(DecayingMean, AlphaOneStillSmooths) {
  decaying_mean m(1.0, 0.0);
  m.observe(100.0);  // adopted (unseeded)
  m.observe(0.0);    // an outlier must not erase all history
  EXPECT_GT(m.value(), 0.0);
}

TEST(DecayingMean, NanAlphaFallsBackToDefault) {
  decaying_mean m(std::nan(""), 0.0);
  m.observe(100.0);
  m.observe(0.0);
  EXPECT_DOUBLE_EQ(m.value(), 80.0);  // the documented default alpha 0.2
}

TEST(LatencyTracker, EstimateScalesWithUnits) {
  latency_tracker t(0.2, microseconds(100), microseconds(200));
  const auto small = t.estimate(1, 1);
  const auto big = t.estimate(10, 2);
  EXPECT_EQ(small, clock_duration(microseconds(300)));
  EXPECT_EQ(big, clock_duration(microseconds(200) + 20 * microseconds(100)));
  // Feed faster-than-seeded observations: the estimate converges down.
  for (int i = 0; i < 50; ++i) t.observe(microseconds(400), 10, 2);
  EXPECT_LT(t.estimate(10, 2), big);
}

// ---------------------------------------------------------------- queue --

request make_request(std::uint64_t id, priority p) {
  request r;
  r.id = id;
  r.input = test_input();
  r.prio = p;
  return r;
}

TEST(RequestQueue, PriorityOrderWithFifoInsideClass) {
  request_queue q(8);
  auto b1 = make_request(1, priority::batch);
  auto i1 = make_request(2, priority::interactive);
  auto b2 = make_request(3, priority::batch);
  auto c1 = make_request(4, priority::canary);
  auto i2 = make_request(5, priority::interactive);
  ASSERT_TRUE(q.try_push(b1));
  ASSERT_TRUE(q.try_push(i1));
  ASSERT_TRUE(q.try_push(b2));
  ASSERT_TRUE(q.try_push(c1));
  ASSERT_TRUE(q.try_push(i2));
  std::vector<std::uint64_t> order;
  while (auto r = q.try_pop()) order.push_back(r->id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{4, 2, 5, 1, 3}));
}

TEST(RequestQueue, BoundRejectsTrafficButNeverCanaries) {
  request_queue q(2);
  auto a = make_request(1, priority::interactive);
  auto b = make_request(2, priority::batch);
  auto c = make_request(3, priority::interactive);
  ASSERT_TRUE(q.try_push(a));
  ASSERT_TRUE(q.try_push(b));
  EXPECT_FALSE(q.try_push(c));  // full for traffic...
  EXPECT_EQ(c.id, 3u);          // ...and the rejected request is untouched
  auto canary = make_request(4, priority::canary);
  EXPECT_TRUE(q.try_push(canary));  // ...but canaries bypass the bound
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.total_depth(), 3u);
  EXPECT_EQ(q.depth(priority::canary), 1u);
}

// Audit regression: the exact-full boundary. Capacity counts interactive
// and batch together; at exactly `capacity` queued the next push of either
// lane is rejected, and popping one slot reopens exactly one.
TEST(RequestQueue, ExactFullBoundaryAcrossLanes) {
  request_queue q(2);
  auto i1 = make_request(1, priority::interactive);
  auto b1 = make_request(2, priority::batch);
  EXPECT_EQ(q.push(i1), push_result::accepted);
  EXPECT_EQ(q.push(b1), push_result::accepted);
  // Exactly full: both bounded lanes reject, per-lane accounting cannot
  // sneak a third request in through the other lane.
  auto i2 = make_request(3, priority::interactive);
  auto b2 = make_request(4, priority::batch);
  EXPECT_EQ(q.push(i2), push_result::rejected_full);
  EXPECT_EQ(q.push(b2), push_result::rejected_full);
  ASSERT_TRUE(q.try_pop().has_value());
  EXPECT_EQ(q.push(i2), push_result::accepted);  // one slot, one admit
  auto b3 = make_request(5, priority::batch);
  EXPECT_EQ(q.push(b3), push_result::rejected_full);
  EXPECT_EQ(q.accepted(), 3u);
  EXPECT_EQ(q.rejected_full(), 3u);
}

// Audit regression: a push racing a drain. The old queue accepted pushes
// after close(), stranding admitted requests in a queue whose blocked
// consumers had already woken and left.
TEST(RequestQueue, ClosedQueueRejectsEveryPush) {
  request_queue q(4);
  auto before = make_request(1, priority::interactive);
  ASSERT_EQ(q.push(before), push_result::accepted);
  q.close();
  auto late = make_request(2, priority::interactive);
  auto canary = make_request(3, priority::canary);
  EXPECT_EQ(q.push(late), push_result::rejected_closed);
  EXPECT_EQ(q.push(canary), push_result::rejected_closed);  // canaries too
  EXPECT_EQ(q.rejected_closed(), 2u);
  // Already-queued work stays poppable for the drain's flush.
  auto r = q.try_pop();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->id, 1u);
}

// The queue's counters are updated under the same lock as the decision,
// so accepted + rejected_full + rejected_closed == pushes, always.
TEST(RequestQueue, CounterIdentityUnderChurn) {
  request_queue q(3);
  std::uint64_t pushes = 0;
  for (int round = 0; round < 40; ++round) {
    auto r = make_request(static_cast<std::uint64_t>(round),
                          round % 3 == 0 ? priority::batch
                                         : priority::interactive);
    (void)q.push(r);
    ++pushes;
    if (round % 4 == 0) (void)q.try_pop();
    if (round == 30) q.close();
  }
  EXPECT_EQ(q.accepted() + q.rejected_full() + q.rejected_closed(), pushes);
  EXPECT_GT(q.rejected_full(), 0u);
  EXPECT_GT(q.rejected_closed(), 0u);
}

TEST(RequestQueue, CloseWakesBlockedPop) {
  request_queue q(4);
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    (void)q.pop_wait(std::chrono::seconds(30));
    woke.store(true);
  });
  std::this_thread::sleep_for(milliseconds(10));
  q.close();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

// -------------------------------------------------------------- breaker --

TEST(CircuitBreaker, FullTransitionCycle) {
  virtual_clock clock;
  breaker_config cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown = milliseconds(100);
  cfg.half_open_probes = 2;
  circuit_breaker b(clock, cfg);

  EXPECT_EQ(b.state(), breaker_state::closed);
  for (int i = 0; i < 3; ++i) {
    breaker_epoch e = 0;
    EXPECT_TRUE(b.allow(&e));
    b.record_failure(e);
  }
  EXPECT_EQ(b.state(), breaker_state::open);
  EXPECT_EQ(b.trips(), 1u);
  EXPECT_FALSE(b.allow());  // open: shed instantly

  clock.advance(milliseconds(99));
  EXPECT_FALSE(b.allow());  // cooldown not yet elapsed
  clock.advance(milliseconds(1));
  breaker_epoch p1 = 0;
  breaker_epoch p2 = 0;
  EXPECT_TRUE(b.allow(&p1));  // -> half-open, probe 1
  EXPECT_EQ(b.state(), breaker_state::half_open);
  EXPECT_TRUE(b.allow(&p2));  // probe 2
  EXPECT_EQ(p1, p2);          // same half-open window
  EXPECT_FALSE(b.allow());    // probe budget exhausted
  b.record_success(p1);
  b.record_success(p2);  // enough consecutive successes close the breaker
  EXPECT_EQ(b.state(), breaker_state::closed);

  // A failure during half-open re-opens immediately and restarts cooldown.
  for (int i = 0; i < 3; ++i) {
    breaker_epoch e = 0;
    ASSERT_TRUE(b.allow(&e));
    b.record_failure(e);
  }
  clock.advance(milliseconds(100));
  breaker_epoch e = 0;
  EXPECT_TRUE(b.allow(&e));
  b.record_failure(e);
  EXPECT_EQ(b.state(), breaker_state::open);
  EXPECT_EQ(b.trips(), 3u);
}

TEST(CircuitBreaker, ReleaseReturnsProbeSlot) {
  virtual_clock clock;
  breaker_config cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown = milliseconds(10);
  cfg.half_open_probes = 1;
  circuit_breaker b(clock, cfg);
  breaker_epoch e = 0;
  EXPECT_TRUE(b.allow(&e));
  b.record_failure(e);
  clock.advance(milliseconds(10));
  EXPECT_TRUE(b.allow(&e));  // the single half-open probe
  EXPECT_FALSE(b.allow());   // no slot left
  b.release(e);              // the probe was shed before it ran
  EXPECT_TRUE(b.allow(&e));  // the slot is usable again
}

TEST(CircuitBreaker, StaleReportFromEarlierWindowIsDropped) {
  // Regression: a probe admitted in one half-open window reports after
  // that window already failed. Without generation stamps its stale
  // success/release would leak into the NEXT window — closing the breaker
  // on evidence from a window that already transitioned away (a
  // double-transition).
  virtual_clock clock;
  breaker_config cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown = milliseconds(10);
  cfg.half_open_probes = 1;
  circuit_breaker b(clock, cfg);

  breaker_epoch first = 0;
  ASSERT_TRUE(b.allow(&first));
  b.record_failure(first);  // trip open
  clock.advance(milliseconds(10));

  breaker_epoch probe1 = 0;
  ASSERT_TRUE(b.allow(&probe1));  // half-open window 1
  breaker_epoch probe1b = 0;
  EXPECT_FALSE(b.allow(&probe1b));  // budget exhausted
  b.record_failure(probe1);         // window 1 fails -> open again
  EXPECT_EQ(b.state(), breaker_state::open);
  clock.advance(milliseconds(10));

  breaker_epoch probe2 = 0;
  ASSERT_TRUE(b.allow(&probe2));  // half-open window 2
  EXPECT_NE(probe1, probe2);

  // The stale window-1 stamps must be inert in window 2.
  b.record_success(probe1);  // would close the breaker if counted
  EXPECT_EQ(b.state(), breaker_state::half_open);
  b.release(probe1);  // would free window 2's only probe slot if counted
  EXPECT_FALSE(b.allow());

  // The current window still works normally.
  b.record_success(probe2);
  EXPECT_EQ(b.state(), breaker_state::closed);
}

// ---------------------------------------------------- cancellable retry --

TEST(CancelToken, CutsBackoffShort) {
  retry_policy p;
  p.max_attempts = 10;
  p.base_delay = milliseconds(200);
  p.max_delay = milliseconds(200);
  cancel_token token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(milliseconds(20));
    token.cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  const auto never = [](std::size_t) { return false; };
  EXPECT_EQ(run_with_retry(p, never, &token), 0u);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  canceller.join();
  // Without cancellation this would sleep ~9 * 200ms.
  EXPECT_LT(elapsed, milliseconds(1000));
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, PreCancelledStillPermitsOneAttempt) {
  retry_policy p;
  p.max_attempts = 5;
  p.base_delay = milliseconds(0);
  cancel_token token;
  token.cancel();
  std::size_t calls = 0;
  const auto count = [&](std::size_t) {
    ++calls;
    return false;
  };
  EXPECT_EQ(run_with_retry(p, count, &token), 0u);
  EXPECT_EQ(calls, 1u);  // first try runs; retries are cancelled

  calls = 0;
  const auto succeed = [&](std::size_t) {
    ++calls;
    return true;
  };
  EXPECT_EQ(run_with_retry(p, succeed, &token), 1u);
  EXPECT_EQ(calls, 1u);
}

// ----------------------------------------------------- measure budgets --

TEST(MeasureBudget, ZeroRoundsSkipsRetries) {
  auto model = make_test_model();
  hpc::fault_config fc;
  fc.read_failure_rate = 0.4;
  fc.seed = 21;
  hpc::resilience_config rc;
  rc.retry.base_delay = milliseconds(0);
  hpc::resilient_monitor monitor(
      std::make_unique<hpc::fault_backend>(
          std::make_unique<hpc::sim_backend>(*model), fc),
      rc);
  const auto events = hpc::core_events();
  const tensor x = test_input();

  hpc::measure_budget first_read_only;
  first_read_only.max_retry_rounds = 0;
  const auto tight = monitor.measure(x, events, 10, first_read_only);
  EXPECT_EQ(tight.q.retries, 0u);
  EXPECT_GT(tight.q.failed_repetitions, 0u);  // faults stayed unrepaired

  const auto relaxed = monitor.measure(x, events, 10);
  EXPECT_GT(relaxed.q.retries, 0u);
  EXPECT_LT(relaxed.q.failed_repetitions, tight.q.failed_repetitions);
}

TEST(MeasureBudget, BudgetedBatchIsThreadInvariant) {
  auto model = make_test_model();
  const auto events = hpc::core_events();
  std::vector<tensor> inputs;
  for (std::size_t i = 0; i < 6; ++i) {
    inputs.push_back(test_input(0.5 + 0.1 * static_cast<double>(i)));
  }
  hpc::measure_budget budget;
  budget.max_retry_rounds = 1;
  budget.allow_backoff = false;

  const auto run = [&](std::size_t threads) {
    hpc::fault_config fc;
    fc.read_failure_rate = 0.3;
    fc.seed = 77;
    hpc::resilience_config rc;
    rc.retry.base_delay = milliseconds(0);
    hpc::resilient_monitor monitor(
        std::make_unique<hpc::fault_backend>(
            std::make_unique<hpc::sim_backend>(*model), fc),
        rc);
    return monitor.measure_batch(inputs, events, 10, threads, budget);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].predicted, parallel[i].predicted);
    EXPECT_EQ(serial[i].mean_counts, parallel[i].mean_counts);  // bitwise
    EXPECT_EQ(serial[i].q.retries, parallel[i].q.retries);
    EXPECT_EQ(serial[i].q.failed_repetitions,
              parallel[i].q.failed_repetitions);
  }
}

TEST(MeasureBudget, CancelledTokenStopsRetries) {
  auto model = make_test_model();
  hpc::fault_config fc;
  fc.read_failure_rate = 0.4;
  fc.seed = 21;
  hpc::resilience_config rc;
  rc.retry.base_delay = milliseconds(0);
  hpc::resilient_monitor monitor(
      std::make_unique<hpc::fault_backend>(
          std::make_unique<hpc::sim_backend>(*model), fc),
      rc);
  cancel_token token;
  token.cancel();
  hpc::measure_budget budget;
  budget.cancel = &token;
  const auto m = monitor.measure(test_input(), hpc::core_events(), 10, budget);
  EXPECT_EQ(m.q.retries, 0u);  // drain mode: first-read evidence only
}

// ------------------------------------------------------------ admission --

TEST(DetectionService, RejectsInfeasibleDeadline) {
  serve_config cfg;
  cfg.queue_capacity = 8;
  serve_rig rig(cfg);
  // Seeded estimate: 200us fixed + 10 repeats x 2 events x 100us = 2.2ms;
  // margin 2 makes anything under ~4.4ms infeasible.
  const auto tight =
      rig.service->submit(test_input(), priority::interactive,
                          clock_duration(milliseconds(1)));
  EXPECT_EQ(tight.status, admit_status::rejected_deadline);
  const auto roomy =
      rig.service->submit(test_input(), priority::interactive,
                          clock_duration(milliseconds(100)));
  EXPECT_TRUE(roomy.admitted());
  const auto s = rig.service->stats();
  EXPECT_EQ(s.rejected_deadline, 1u);
  EXPECT_EQ(s.admitted, 1u);
}

TEST(DetectionService, RejectsWhenQueueFull) {
  serve_config cfg;
  cfg.queue_capacity = 2;
  serve_rig rig(cfg);
  EXPECT_TRUE(rig.service
                  ->submit(test_input(), priority::interactive, no_deadline)
                  .admitted());
  EXPECT_TRUE(rig.service->submit(test_input(), priority::batch, no_deadline)
                  .admitted());
  EXPECT_EQ(rig.service->submit(test_input(), priority::batch, no_deadline)
                .status,
            admit_status::rejected_queue_full);
  // Canaries bypass the capacity bound entirely.
  EXPECT_TRUE(rig.service->submit(test_input(), priority::canary).admitted());
}

TEST(DetectionService, BatchAdmissionProjectsInteractivePressure) {
  serve_config cfg;
  cfg.queue_capacity = 64;
  serve_rig rig(cfg);
  // Seeded estimate: 2.2ms per request. Admit interactive every 1ms — a
  // sustained stream faster than the service rate — so the decaying
  // inter-admission gap learns the pressure.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rig.service
                    ->submit(test_input(), priority::interactive, no_deadline)
                    .admitted());
    rig.clock.advance(milliseconds(1));
  }
  // 100ms would satisfy backlog + margin (8 x 2.2ms x 2 = ~35ms), but the
  // projected interactive work overtaking the batch request during those
  // 100ms (one 2.2ms request per 1ms gap) makes the deadline infeasible.
  EXPECT_EQ(rig.service
                ->submit(test_input(), priority::batch,
                         clock_duration(milliseconds(100)))
                .status,
            admit_status::rejected_deadline);
  // Once the interactive stream goes quiet, the effective gap widens with
  // the silence and batch becomes admissible again.
  rig.service->flush();
  rig.clock.advance(milliseconds(500));
  EXPECT_TRUE(rig.service
                  ->submit(test_input(), priority::batch,
                           clock_duration(milliseconds(100)))
                  .admitted());
}

TEST(DetectionService, BatchBackpressureKeepsQueueShallow) {
  serve_config cfg;
  cfg.queue_capacity = 8;
  cfg.batch_admit_occupancy = 0.5;  // batch admitted into <= 4 of 8 slots
  serve_rig rig(cfg);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(rig.service->submit(test_input(), priority::batch, no_deadline)
                    .admitted());
  }
  EXPECT_EQ(rig.service->submit(test_input(), priority::batch, no_deadline)
                .status,
            admit_status::rejected_backpressure);
  // Only batch feels backpressure: interactive still fills to capacity.
  EXPECT_TRUE(rig.service
                  ->submit(test_input(), priority::interactive, no_deadline)
                  .admitted());
  const auto s = rig.service->stats();
  EXPECT_EQ(s.rejected_backpressure, 1u);
  EXPECT_EQ(s.admitted, 5u);
}

// ----------------------------------------------------- degradation ladder --

TEST(DetectionService, DefaultLadderMatchesPaperRepeats) {
  serve_rig rig;
  const auto& ladder = rig.service->ladder();
  ASSERT_EQ(ladder.size(), 4u);
  EXPECT_EQ(ladder[0].repeats, 10u);
  EXPECT_EQ(ladder[1].repeats, 5u);
  EXPECT_EQ(ladder[2].repeats, 3u);
  EXPECT_EQ(ladder[3].repeats, 1u);
  EXPECT_TRUE(ladder[3].shed_events);
  EXPECT_FALSE(ladder[0].shed_events);
}

TEST(DetectionService, LadderDescendsUnderLoadAndRecovers) {
  serve_config cfg;
  cfg.queue_capacity = 20;
  cfg.batch_size = 2;
  serve_rig rig(cfg);
  // Saturate to occupancy 0.9: the deepest rung engages.
  for (std::size_t i = 0; i < 18; ++i) {
    ASSERT_TRUE(
        rig.service->submit(test_input(), priority::batch, no_deadline)
            .admitted());
  }
  auto first = rig.service->service_batch();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(rig.service->rung(), 3u);
  for (const auto& r : first) {
    EXPECT_EQ(r.outcome, response::kind::served);
    EXPECT_EQ(r.repeats_used, 1u);  // R shed 10 -> 1 at the deepest rung
    EXPECT_TRUE(r.events_shed);
    EXPECT_TRUE(r.v.degraded);  // reduced evidence is never silent
    EXPECT_EQ(r.rung, 3u);
  }
  // Keep servicing: occupancy falls, the ladder releases with hysteresis,
  // and the final requests run at full fidelity again.
  const auto rest = rig.service->flush();
  ASSERT_EQ(rest.size(), 16u);
  EXPECT_EQ(rest.back().repeats_used, 10u);
  EXPECT_EQ(rest.back().rung, 0u);
  EXPECT_FALSE(rest.back().events_shed);
  EXPECT_EQ(rig.service->rung(), 0u);
  const auto s = rig.service->stats();
  EXPECT_EQ(s.max_rung_engaged, 3u);
  EXPECT_EQ(s.served, 18u);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_GT(s.repeats_shed, 0u);
  EXPECT_GT(s.events_shed_requests, 0u);
}

TEST(DetectionService, HysteresisHoldsRungNearThreshold) {
  serve_config cfg;
  cfg.queue_capacity = 10;
  cfg.batch_size = 1;
  serve_rig rig(cfg);
  for (std::size_t i = 0; i < 5; ++i) {  // occupancy 0.5: rung 1 engages
    ASSERT_TRUE(
        rig.service->submit(test_input(), priority::batch, no_deadline)
            .admitted());
  }
  (void)rig.service->service_batch();
  EXPECT_EQ(rig.service->rung(), 1u);
  // Occupancy 0.4 is inside the hysteresis band (release below 0.35):
  // the rung holds rather than flapping.
  (void)rig.service->service_batch();
  EXPECT_EQ(rig.service->rung(), 1u);
  // 0.3 clears the band: release back to rung 0.
  (void)rig.service->service_batch();
  EXPECT_EQ(rig.service->rung(), 0u);
}

TEST(DetectionService, CanariesNeverShedUnderSaturation) {
  serve_config cfg;
  cfg.queue_capacity = 10;
  cfg.batch_size = 4;
  serve_rig rig(cfg);
  for (std::size_t i = 0; i < 9; ++i) {  // occupancy 0.9: deepest rung
    ASSERT_TRUE(
        rig.service->submit(test_input(), priority::batch, no_deadline)
            .admitted());
  }
  ASSERT_TRUE(rig.service->submit(test_input(), priority::canary).admitted());
  const auto responses = rig.service->flush();
  ASSERT_EQ(responses.size(), 10u);
  // The canary is served first (priority) and at full fidelity even
  // though every batch request around it is maximally degraded.
  const auto& canary = responses.front();
  EXPECT_EQ(canary.prio, priority::canary);
  EXPECT_EQ(canary.outcome, response::kind::served);
  EXPECT_EQ(canary.repeats_used, 10u);
  EXPECT_FALSE(canary.events_shed);
  EXPECT_FALSE(canary.v.degraded);
  const auto s = rig.service->stats();
  EXPECT_EQ(s.canary_submitted, 1u);
  EXPECT_EQ(s.canary_served, 1u);
  EXPECT_EQ(s.canary_shed, 0u);
}

// ----------------------------------------------------------------- drain --

TEST(DetectionService, DrainStopsAdmissionButFlushesAdmittedWork) {
  serve_config cfg;
  cfg.queue_capacity = 8;
  serve_rig rig(cfg);
  ASSERT_TRUE(rig.service
                  ->submit(test_input(), priority::interactive, no_deadline)
                  .admitted());
  ASSERT_TRUE(rig.service->submit(test_input(), priority::canary).admitted());
  rig.service->drain();
  EXPECT_TRUE(rig.service->draining());
  EXPECT_EQ(rig.service->submit(test_input(), priority::interactive).status,
            admit_status::rejected_draining);
  EXPECT_EQ(rig.service->submit(test_input(), priority::canary).status,
            admit_status::rejected_draining);
  const auto responses = rig.service->flush();
  ASSERT_EQ(responses.size(), 2u);
  for (const auto& r : responses) {
    EXPECT_EQ(r.outcome, response::kind::served);
  }
  const auto s = rig.service->stats();
  EXPECT_EQ(s.rejected_draining, 2u);
  EXPECT_EQ(s.canary_shed, 0u);  // shutdown rejections are not shedding
  EXPECT_EQ(rig.service->queue_depth(), 0u);
}

// --------------------------------------------------- breaker integration --

TEST(DetectionService, DeadBackendTripsBreakerAndRecovers) {
  auto model = make_test_model();
  hpc::sim_backend sim(*model);
  const auto dcfg = test_detector_config();
  core::detector det = fit_test_detector(sim, dcfg);
  switchable_monitor monitor(sim);
  virtual_clock clock;
  serve_config cfg;
  cfg.queue_capacity = 16;
  cfg.batch_size = 4;
  cfg.breaker.failure_threshold = 4;
  cfg.breaker.cooldown = milliseconds(50);
  cfg.breaker.half_open_probes = 2;
  detection_service service(det, monitor, clock, cfg);

  monitor.set_dead(true);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.submit(test_input(), priority::batch, no_deadline)
                    .admitted());
  }
  const auto failed = service.service_batch();
  ASSERT_EQ(failed.size(), 4u);
  for (const auto& r : failed) {
    EXPECT_EQ(r.outcome, response::kind::failed_backend);
  }
  EXPECT_EQ(service.breaker(), breaker_state::open);
  EXPECT_EQ(service.submit(test_input(), priority::batch, no_deadline).status,
            admit_status::rejected_breaker);

  // After the cooldown the breaker admits a bounded probe set; a healed
  // backend closes it again and traffic flows.
  monitor.set_dead(false);
  clock.advance(milliseconds(50));
  ASSERT_TRUE(service.submit(test_input(), priority::batch, no_deadline)
                  .admitted());
  ASSERT_TRUE(service.submit(test_input(), priority::batch, no_deadline)
                  .admitted());
  EXPECT_EQ(service.submit(test_input(), priority::batch, no_deadline).status,
            admit_status::rejected_breaker);  // probe budget exhausted
  const auto probes = service.flush();
  ASSERT_EQ(probes.size(), 2u);
  EXPECT_EQ(probes[0].outcome, response::kind::served);
  EXPECT_EQ(service.breaker(), breaker_state::closed);
  EXPECT_EQ(service.stats().breaker_trips, 1u);
}

// ----------------------------------------------------------- env knobs --

TEST(ServeConfigEnv, AppliesValidOverrides) {
  ::setenv("ADVH_QUEUE_DEPTH", "128", 1);
  ::setenv("ADVH_DEADLINE_MS", "2.5", 1);
  const auto cfg = serve_config_from_env();
  ::unsetenv("ADVH_QUEUE_DEPTH");
  ::unsetenv("ADVH_DEADLINE_MS");
  EXPECT_EQ(cfg.queue_capacity, 128u);
  EXPECT_EQ(cfg.default_deadline,
            std::chrono::duration_cast<clock_duration>(microseconds(2500)));
}

TEST(ServeConfigEnv, MalformedKnobsThrow) {
  const auto expect_throws = [](const char* name, const char* value) {
    ::setenv(name, value, 1);
    EXPECT_THROW((void)serve_config_from_env(), std::invalid_argument)
        << name << "=" << value;
    ::unsetenv(name);
  };
  expect_throws("ADVH_QUEUE_DEPTH", "abc");
  expect_throws("ADVH_QUEUE_DEPTH", "0");
  expect_throws("ADVH_QUEUE_DEPTH", "-4");
  expect_throws("ADVH_QUEUE_DEPTH", "12.5");  // not an integer
  expect_throws("ADVH_QUEUE_DEPTH", "16x");
  expect_throws("ADVH_QUEUE_DEPTH", "");
  expect_throws("ADVH_DEADLINE_MS", "fast");
  expect_throws("ADVH_DEADLINE_MS", "0");
  expect_throws("ADVH_DEADLINE_MS", "-1.5");
  expect_throws("ADVH_DEADLINE_MS", "10ms");
}

TEST(ServeConfigEnv, UnsetKnobsKeepDefaults) {
  ::unsetenv("ADVH_QUEUE_DEPTH");
  ::unsetenv("ADVH_DEADLINE_MS");
  serve_config base;
  base.queue_capacity = 7;
  const auto cfg = serve_config_from_env(base);
  EXPECT_EQ(cfg.queue_capacity, 7u);
  EXPECT_EQ(cfg.default_deadline, base.default_deadline);
}

// ---------------------------------------------------------- determinism --

/// One scripted overload epoch against a fresh rig; returns every
/// response plus final stats for bitwise comparison.
std::pair<std::vector<response>, serve_stats> scripted_run(
    std::size_t threads) {
  serve_config cfg;
  cfg.queue_capacity = 12;
  cfg.batch_size = 3;
  cfg.threads = threads;
  serve_rig rig(cfg);
  std::vector<response> all;
  std::uint64_t tick = 0;
  for (std::size_t step = 0; step < 12; ++step) {
    for (std::size_t k = 0; k < 3; ++k) {
      const priority p = (tick % 5 == 0) ? priority::canary
                         : (tick % 3 == 0) ? priority::batch
                                           : priority::interactive;
      const auto deadline = (tick % 4 == 0)
                                ? clock_duration(milliseconds(30))
                                : clock_duration(milliseconds(200));
      (void)rig.service->submit(
          test_input(0.4 + 0.02 * static_cast<double>(tick % 9)), p,
          p == priority::canary ? std::optional<clock_duration>{} : deadline);
      ++tick;
    }
    auto batch = rig.service->service_batch();
    all.insert(all.end(), batch.begin(), batch.end());
    rig.clock.advance(milliseconds(1));
  }
  rig.service->drain();
  auto rest = rig.service->flush();
  all.insert(all.end(), rest.begin(), rest.end());
  return {std::move(all), rig.service->stats()};
}

void expect_identical(const std::vector<response>& a,
                      const std::vector<response>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].outcome, b[i].outcome);
    EXPECT_EQ(a[i].prio, b[i].prio);
    EXPECT_EQ(a[i].completed.count(), b[i].completed.count());
    EXPECT_EQ(a[i].repeats_used, b[i].repeats_used);
    EXPECT_EQ(a[i].rung, b[i].rung);
    EXPECT_EQ(a[i].events_shed, b[i].events_shed);
    EXPECT_EQ(a[i].deadline_missed, b[i].deadline_missed);
    EXPECT_EQ(a[i].v.adversarial_any, b[i].v.adversarial_any);
    EXPECT_EQ(a[i].v.nll, b[i].v.nll);  // bitwise
  }
}

TEST(DetectionService, SimulatedRunIsBitwiseThreadInvariant) {
  const auto serial = scripted_run(1);
  const auto parallel = scripted_run(4);
  expect_identical(serial.first, parallel.first);
  EXPECT_EQ(serial.second.submitted, parallel.second.submitted);
  EXPECT_EQ(serial.second.admitted, parallel.second.admitted);
  EXPECT_EQ(serial.second.served, parallel.second.served);
  EXPECT_EQ(serial.second.shed_deadline, parallel.second.shed_deadline);
  EXPECT_EQ(serial.second.deadline_misses, parallel.second.deadline_misses);
  EXPECT_EQ(serial.second.rejected_deadline,
            parallel.second.rejected_deadline);
  EXPECT_EQ(serial.second.max_rung_engaged, parallel.second.max_rung_engaged);
  EXPECT_EQ(serial.second.canary_shed, 0u);

  // And the whole run replays bit for bit at the same thread count.
  const auto replay = scripted_run(4);
  expect_identical(parallel.first, replay.first);
}

// ----------------------------------------------- stateful query tracking --

track::track_config fast_track_config() {
  track::track_config cfg;
  cfg.fp.window = 8;
  cfg.elevate_hits = 3.0;
  cfg.ban_hits = 6.0;
  return cfg;
}

/// Inputs whose quantized bin pattern is independent per variant —
/// test_input's scaled ramp collapses into one quantization bin at small
/// scales, which would make every honest query fingerprint-collide with
/// the previous one and get the honest client banned.
tensor varied_input(std::uint64_t variant) {
  tensor x(shape{1, 1, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    std::uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ULL +
                      (variant + 1) * 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 31;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 29;
    x.data()[i] = 0.05f + 0.1f * static_cast<float>(h % 23);
  }
  return x;
}

TEST(TrackedService, CampaignClientEscalatesThenGetsBanned) {
  serve_config cfg;
  cfg.default_deadline = std::chrono::seconds(10);
  serve_rig rig(cfg);
  track::query_tracker tracker(rig.clock, fast_track_config());
  rig.service->attach_tracker(tracker);

  const std::uint64_t attacker = 42;
  const std::uint64_t honest = 7;
  std::vector<response> responses;
  std::uint64_t attacker_rejections = 0;
  for (int round = 0; round < 12; ++round) {
    // The attacker replays one probe; the honest client sends fresh work.
    const auto a = rig.service->submit(test_input(0.6), priority::interactive,
                                       std::nullopt, attacker);
    if (a.status == admit_status::rejected_banned) ++attacker_rejections;
    const auto h =
        rig.service->submit(varied_input(static_cast<std::uint64_t>(round)),
                            priority::interactive, std::nullopt, honest);
    EXPECT_TRUE(h.admitted()) << "honest client harmed in round " << round;
    auto batch = rig.service->service_batch();
    responses.insert(responses.end(), batch.begin(), batch.end());
  }
  rig.service->drain();
  auto rest = rig.service->flush();
  responses.insert(responses.end(), rest.begin(), rest.end());

  EXPECT_EQ(tracker.level(attacker), track::escalation::banned);
  EXPECT_EQ(tracker.level(honest), track::escalation::none);
  EXPECT_GT(attacker_rejections, 0u);

  const auto s = rig.service->stats();
  EXPECT_EQ(s.rejected_banned, attacker_rejections);
  EXPECT_GT(s.escalated_admitted, 0u);
  EXPECT_GT(s.escalated_served, 0u);
  // Escalated requests were served at full fidelity (rung 0, full R).
  const auto full_r = static_cast<std::uint32_t>(rig.det.config().repeats);
  std::uint64_t escalated_seen = 0;
  for (const response& r : responses) {
    if (!r.escalated) continue;
    ++escalated_seen;
    EXPECT_EQ(r.client, attacker);
    if (r.outcome == response::kind::served) {
      EXPECT_EQ(r.rung, 0u);
      EXPECT_EQ(r.repeats_used, full_r);
    }
  }
  EXPECT_EQ(escalated_seen, s.escalated_admitted);
  // Terminal accounting still closes with the tracker in the loop.
  EXPECT_EQ(s.submitted, s.admitted + s.rejected_queue_full +
                             s.rejected_deadline + s.rejected_breaker +
                             s.rejected_draining + s.rejected_backpressure +
                             s.rejected_banned);
  EXPECT_EQ(s.admitted, s.served + s.shed_deadline + s.failed_backend);
}

TEST(TrackedService, BanDecisionsAreThreadInvariant) {
  // The same interleaved traffic script at 1 and 4 measurement threads
  // must produce identical ban decisions and admission statuses: tracker
  // state advances in admission order under the scheduler lock, not in
  // measurement order.
  const auto run = [](std::size_t threads) {
    serve_config cfg;
    cfg.threads = threads;
    cfg.default_deadline = std::chrono::seconds(10);
    serve_rig rig(cfg);
    track::query_tracker tracker(rig.clock, fast_track_config());
    rig.service->attach_tracker(tracker);
    std::vector<int> statuses;
    for (int round = 0; round < 10; ++round) {
      for (std::uint64_t c = 1; c <= 4; ++c) {
        const bool attacker = c == 2;
        const tensor x =
            attacker ? test_input(0.7)
                     : varied_input(static_cast<std::uint64_t>(4 * round + c));
        const auto res = rig.service->submit(x, priority::interactive,
                                             std::nullopt, c);
        statuses.push_back(static_cast<int>(res.status));
      }
      (void)rig.service->service_batch();
    }
    rig.service->drain();
    (void)rig.service->flush();
    const auto ts = tracker.stats();
    statuses.push_back(static_cast<int>(ts.bans));
    statuses.push_back(static_cast<int>(ts.elevations));
    return statuses;
  };
  EXPECT_EQ(run(1), run(4));
}

// -------------------------------------------------------- TSan saturation --

TEST(DetectionService, ConcurrentSubmitAndServiceStaysConsistent) {
  auto model = make_test_model();
  hpc::sim_backend monitor(*model);
  const auto dcfg = test_detector_config();
  core::detector det = fit_test_detector(monitor, dcfg);
  steady_clock_face clock;
  serve_config cfg;
  cfg.queue_capacity = 16;
  cfg.batch_size = 4;
  cfg.default_deadline = std::chrono::seconds(30);
  detection_service service(det, monitor, clock, cfg);

  constexpr std::size_t kSubmitters = 3;
  constexpr std::size_t kPerThread = 20;
  std::atomic<bool> stop{false};
  std::mutex responses_mutex;
  std::vector<response> responses;

  std::vector<std::thread> servicers;
  for (std::size_t s = 0; s < 2; ++s) {
    servicers.emplace_back([&] {
      while (!stop.load()) {
        auto batch = service.service_batch();
        std::lock_guard<std::mutex> lock(responses_mutex);
        responses.insert(responses.end(), batch.begin(), batch.end());
      }
    });
  }
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const priority p = (i % 7 == 0) ? priority::canary
                           : (i % 2 == 0) ? priority::interactive
                                          : priority::batch;
        (void)service.submit(
            test_input(0.4 + 0.01 * static_cast<double>(t * kPerThread + i)),
            p);
      }
    });
  }
  for (auto& t : submitters) t.join();
  service.drain();
  {
    auto rest = service.flush();
    std::lock_guard<std::mutex> lock(responses_mutex);
    responses.insert(responses.end(), rest.begin(), rest.end());
  }
  stop.store(true);
  for (auto& t : servicers) t.join();

  const auto s = service.stats();
  EXPECT_EQ(s.submitted, kSubmitters * kPerThread);
  EXPECT_EQ(s.submitted, s.admitted + s.rejected_queue_full +
                             s.rejected_deadline + s.rejected_breaker +
                             s.rejected_draining + s.rejected_backpressure +
                             s.rejected_banned);
  // Every admitted request reached exactly one terminal outcome.
  EXPECT_EQ(s.admitted, s.served + s.shed_deadline + s.failed_backend);
  EXPECT_EQ(responses.size(), s.admitted);
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(s.canary_shed, 0u);
}

}  // namespace
}  // namespace advh::serve
