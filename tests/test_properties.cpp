// Property-based (parameterized) test sweeps over the library's
// invariants: cache inclusion/accounting properties across geometries, GMM
// recovery across mixture orders, attack budget compliance across
// strengths, and trace-replay consistency across layer shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "attack/attack.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "data/synthetic.hpp"
#include "gmm/gmm.hpp"
#include "nn/models/models.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"
#include "uarch/cache.hpp"
#include "uarch/trace_gen.hpp"

namespace advh {
namespace {

// ---------------------------------------------------------------------------
// Cache invariants across geometries.

struct cache_geometry {
  std::size_t size_bytes;
  std::size_t line_bytes;
  std::size_t ways;
};

class CacheProperty : public ::testing::TestWithParam<cache_geometry> {};

std::vector<std::uint64_t> random_addresses(std::size_t n, std::uint64_t span,
                                            std::uint64_t seed) {
  rng gen(seed);
  std::vector<std::uint64_t> addrs(n);
  for (auto& a : addrs) a = gen.uniform_index(span);
  return addrs;
}

TEST_P(CacheProperty, AccountingIdentities) {
  const auto g = GetParam();
  uarch::cache c({"p", g.size_bytes, g.line_bytes, g.ways});
  rng gen(1);
  std::size_t loads = 0, stores = 0;
  for (std::uint64_t a : random_addresses(5000, 1 << 20, 7)) {
    const bool is_store = gen.bernoulli(0.3);
    c.access(a, is_store ? uarch::access_type::store
                         : uarch::access_type::load);
    (is_store ? stores : loads) += 1;
  }
  EXPECT_EQ(c.stats().loads, loads);
  EXPECT_EQ(c.stats().stores, stores);
  EXPECT_LE(c.stats().misses(), c.stats().accesses());
  EXPECT_LE(c.stats().writebacks, c.stats().evictions);
  // Every distinct line misses at least once (no prefetching).
  std::set<std::uint64_t> lines;
  for (std::uint64_t a : random_addresses(5000, 1 << 20, 7)) {
    lines.insert(a / g.line_bytes);
  }
  EXPECT_GE(c.stats().misses(), lines.size() > 0 ? 1u : 0u);
}

TEST_P(CacheProperty, MissesAtLeastCompulsory) {
  const auto g = GetParam();
  uarch::cache c({"p", g.size_bytes, g.line_bytes, g.ways});
  const auto addrs = random_addresses(3000, 1 << 22, 11);
  std::set<std::uint64_t> lines;
  for (std::uint64_t a : addrs) {
    c.access(a, uarch::access_type::load);
    lines.insert(a / g.line_bytes);
  }
  EXPECT_GE(c.stats().misses(), lines.size());
}

TEST_P(CacheProperty, SequentialSweepMissesOncePerLine) {
  const auto g = GetParam();
  uarch::cache c({"p", g.size_bytes, g.line_bytes, g.ways});
  // A sweep that fits in the cache misses exactly once per line, even when
  // repeated.
  const std::size_t lines = (g.size_bytes / g.line_bytes) / 2;
  for (int rep = 0; rep < 3; ++rep) {
    for (std::size_t l = 0; l < lines; ++l) {
      c.access(l * g.line_bytes, uarch::access_type::load);
    }
  }
  EXPECT_EQ(c.stats().misses(), lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(cache_geometry{512, 64, 2}, cache_geometry{1024, 64, 4},
                      cache_geometry{4096, 64, 8}, cache_geometry{8192, 32, 4},
                      cache_geometry{32768, 64, 8},
                      cache_geometry{1024, 128, 2},
                      cache_geometry{2048, 64, 32} /* fully associative */));

TEST(CacheInclusion, MoreWaysNeverMoreMisses) {
  // LRU stack property: with the same number of sets, doubling
  // associativity cannot increase misses for any trace.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const auto addrs = random_addresses(4000, 1 << 16, seed);
    std::uint64_t prev = ~0ULL;
    for (std::size_t ways : {1u, 2u, 4u, 8u}) {
      // 16 sets kept constant: size scales with ways.
      uarch::cache c({"p", 16 * 64 * ways, 64, ways});
      for (std::uint64_t a : addrs) c.access(a, uarch::access_type::load);
      EXPECT_LE(c.stats().misses(), prev) << "ways=" << ways;
      prev = c.stats().misses();
    }
  }
}

// ---------------------------------------------------------------------------
// GMM recovery across mixture orders.

class GmmOrderProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GmmOrderProperty, BicRecoversTrueOrder) {
  const std::size_t k = GetParam();
  rng gen(100 + k);
  std::vector<double> data;
  for (std::size_t c = 0; c < k; ++c) {
    const double mean = 20.0 * static_cast<double>(c);
    for (int i = 0; i < 150; ++i) data.push_back(gen.normal(mean, 1.0));
  }
  auto model = gmm::gmm1d::fit_best_bic(data, 6);
  EXPECT_EQ(model.order(), k);
}

TEST_P(GmmOrderProperty, WeightsSumToOne) {
  const std::size_t k = GetParam();
  rng gen(200 + k);
  std::vector<double> data;
  for (std::size_t c = 0; c < k; ++c) {
    for (int i = 0; i < 60; ++i) {
      data.push_back(gen.normal(15.0 * static_cast<double>(c), 1.0));
    }
  }
  auto model = gmm::gmm1d::fit(data, k);
  double total = 0.0;
  for (const auto& comp : model.components()) {
    EXPECT_GT(comp.weight, 0.0);
    EXPECT_GT(comp.variance, 0.0);
    total += comp.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(GmmOrderProperty, CentersScoreBetterThanGaps) {
  const std::size_t k = GetParam();
  if (k < 2) GTEST_SKIP() << "needs at least two modes";
  rng gen(300 + k);
  std::vector<double> data;
  for (std::size_t c = 0; c < k; ++c) {
    for (int i = 0; i < 100; ++i) {
      data.push_back(gen.normal(20.0 * static_cast<double>(c), 1.0));
    }
  }
  auto model = gmm::gmm1d::fit(data, k);
  for (std::size_t c = 0; c + 1 < k; ++c) {
    const double center = 20.0 * static_cast<double>(c);
    const double gap = center + 10.0;
    EXPECT_LT(model.nll(center), model.nll(gap));
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GmmOrderProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------------
// Attack budget compliance across strengths and kinds.

struct attack_case {
  attack::attack_kind kind;
  float epsilon;
  bool targeted;
};

class AttackProperty : public ::testing::TestWithParam<attack_case> {
 protected:
  static void SetUpTestSuite() {
    data::synthetic_spec spec;
    spec.channels = 1;
    spec.height = 16;
    spec.width = 16;
    spec.classes = 3;
    spec.seed = 55;
    spec.confusable_pairs = false;
    spec.hard_fraction = 0.0;
    auto train = data::make_synthetic(spec, 50);
    model_ = nn::make_model(nn::architecture::case_study_cnn,
                            shape{1, 16, 16}, 3, 9)
                 .release();
    nn::train_config cfg;
    cfg.epochs = 3;
    nn::train_classifier(*model_, train.images, train.labels, cfg);
    spec.sample_seed = 1;
    eval_ = new data::dataset(data::make_synthetic(spec, 6));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete eval_;
    model_ = nullptr;
    eval_ = nullptr;
  }
  static nn::model* model_;
  static data::dataset* eval_;
};

nn::model* AttackProperty::model_ = nullptr;
data::dataset* AttackProperty::eval_ = nullptr;

TEST_P(AttackProperty, OutputsAreValidBudgetedImages) {
  const auto p = GetParam();
  attack::attack_config cfg;
  cfg.goal = p.targeted ? attack::attack_goal::targeted
                        : attack::attack_goal::untargeted;
  cfg.target_class = 1;
  cfg.epsilon = p.epsilon;
  cfg.steps = 8;
  cfg.max_iter = 25;
  auto atk = attack::make_attack(p.kind, cfg);
  for (std::size_t i = 0; i < eval_->size(); ++i) {
    if (p.targeted && eval_->labels[i] == cfg.target_class) continue;
    auto r = atk->run(*model_, nn::single_example(eval_->images, i),
                      eval_->labels[i]);
    for (float v : r.adversarial.data()) {
      ASSERT_GE(v, 0.0f);
      ASSERT_LE(v, 1.0f);
    }
    if (p.kind != attack::attack_kind::deepfool) {
      ASSERT_LE(r.linf_distortion, p.epsilon + 1e-5);
    }
    // Distortion bookkeeping is consistent.
    ASSERT_LE(r.linf_distortion,
              r.l2_distortion + 1e-9);  // |x|_inf <= |x|_2
  }
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, AttackProperty,
    ::testing::Values(attack_case{attack::attack_kind::fgsm, 0.01f, false},
                      attack_case{attack::attack_kind::fgsm, 0.1f, false},
                      attack_case{attack::attack_kind::fgsm, 0.3f, true},
                      attack_case{attack::attack_kind::pgd, 0.01f, false},
                      attack_case{attack::attack_kind::pgd, 0.1f, true},
                      attack_case{attack::attack_kind::deepfool, 0.0f, false}));

// ---------------------------------------------------------------------------
// Trace replay consistency across layer geometries.

struct layer_geometry {
  std::size_t in_channels;
  std::size_t in_spatial;
  std::size_t out_channels;
  std::size_t out_spatial;
  std::size_t weight_bytes;
  double density;
};

class TraceProperty : public ::testing::TestWithParam<layer_geometry> {};

nn::inference_trace geometry_trace(const layer_geometry& g,
                                   std::uint64_t seed) {
  rng gen(seed);
  nn::layer_trace_entry e;
  e.kind = nn::layer_kind::conv2d;
  e.name = "p";
  e.in_numel = g.in_channels * g.in_spatial;
  e.out_numel = g.out_channels * g.out_spatial;
  e.weight_bytes = g.weight_bytes;
  e.in_channels = g.in_channels;
  e.in_spatial = g.in_spatial;
  e.out_channels = g.out_channels;
  e.out_spatial = g.out_spatial;
  for (std::uint32_t i = 0; i < e.in_numel; ++i) {
    if (gen.bernoulli(g.density)) e.active_inputs.push_back(i);
  }
  nn::inference_trace t;
  t.layers.push_back(std::move(e));
  return t;
}

TEST_P(TraceProperty, CountsInternallyConsistent) {
  uarch::trace_generator gen_sim;
  const auto c = gen_sim.run(geometry_trace(GetParam(), 5));
  EXPECT_GE(c.cache_references, c.cache_misses);
  EXPECT_EQ(c.cache_misses, c.llc_load_misses + c.llc_store_misses);
  EXPECT_GE(c.branches, c.branch_misses);
  EXPECT_GT(c.instructions, 0u);
  EXPECT_GT(c.l1i_load_misses, 0u);
}

TEST_P(TraceProperty, DeterministicReplay) {
  uarch::trace_generator gen_sim;
  const auto trace = geometry_trace(GetParam(), 6);
  const auto a = gen_sim.run(trace);
  const auto b = gen_sim.run(trace);
  EXPECT_EQ(a.cache_references, b.cache_references);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.l1d_load_misses, b.l1d_load_misses);
  EXPECT_EQ(a.branch_misses, b.branch_misses);
}

TEST_P(TraceProperty, DenserActivationNeverFewerReferences) {
  const auto g = GetParam();
  uarch::trace_generator gen_sim;
  auto sparse = g;
  sparse.density = 0.2;
  auto dense = g;
  dense.density = 0.9;
  const auto a = gen_sim.run(geometry_trace(sparse, 7));
  const auto b = gen_sim.run(geometry_trace(dense, 7));
  EXPECT_LE(a.cache_references, b.cache_references);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TraceProperty,
    ::testing::Values(layer_geometry{3, 1024, 8, 1024, 864, 0.5},
                      layer_geometry{8, 1024, 16, 256, 4608, 0.5},
                      layer_geometry{32, 64, 64, 16, 73728, 0.4},
                      layer_geometry{64, 16, 64, 16, 147456, 0.6},
                      layer_geometry{64, 1, 10, 1, 2560, 0.5}));

// ---------------------------------------------------------------------------
// Dataset generation properties across specs.

class DatasetProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DatasetProperty, BalancedLabelsAndValidPixels) {
  const auto [classes, per_class] = GetParam();
  data::synthetic_spec spec;
  spec.channels = 3;
  spec.height = 16;
  spec.width = 16;
  spec.classes = classes;
  spec.seed = 17 + classes;
  auto d = data::make_synthetic(spec, per_class);
  EXPECT_EQ(d.size(), classes * per_class);
  for (std::size_t c = 0; c < classes; ++c) {
    EXPECT_EQ(d.indices_of_class(c).size(), per_class);
  }
  for (float v : d.images.data()) {
    ASSERT_GE(v, 0.0f);
    ASSERT_LE(v, 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Specs, DatasetProperty,
                         ::testing::Combine(::testing::Values(2u, 4u, 10u),
                                            ::testing::Values(3u, 12u)));

}  // namespace
}  // namespace advh
