#include <gtest/gtest.h>

#include "common/rng.hpp"

#include "common/error.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/cache.hpp"
#include "uarch/hierarchy.hpp"
#include "uarch/trace_gen.hpp"

namespace advh::uarch {
namespace {

cache_config small_cache() {
  // 4 sets x 2 ways x 64B = 512B.
  return {"test", 512, 64, 2};
}

TEST(Cache, ColdMissThenHit) {
  cache c(small_cache());
  EXPECT_FALSE(c.access(0x1000, access_type::load));
  EXPECT_TRUE(c.access(0x1000, access_type::load));
  EXPECT_TRUE(c.access(0x1004, access_type::load));  // same line
  EXPECT_EQ(c.stats().loads, 3u);
  EXPECT_EQ(c.stats().load_misses, 1u);
}

TEST(Cache, SetIndexingSeparatesLines) {
  cache c(small_cache());
  // Addresses 0x0 and 0x40 are adjacent lines -> different sets: both fit.
  c.access(0x0, access_type::load);
  c.access(0x40, access_type::load);
  EXPECT_TRUE(c.probe(0x0));
  EXPECT_TRUE(c.probe(0x40));
}

TEST(Cache, LruEvictionOrder) {
  cache c(small_cache());
  // Three lines mapping to the same set (stride = sets*line = 256B).
  c.access(0x000, access_type::load);
  c.access(0x100, access_type::load);
  c.access(0x000, access_type::load);  // touch A again: B is now LRU
  c.access(0x200, access_type::load);  // evicts B
  EXPECT_TRUE(c.probe(0x000));
  EXPECT_FALSE(c.probe(0x100));
  EXPECT_TRUE(c.probe(0x200));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, WritebackOnDirtyEviction) {
  cache c(small_cache());
  c.access(0x000, access_type::store);  // dirty
  c.access(0x100, access_type::load);
  c.access(0x200, access_type::load);  // evicts dirty 0x000
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback) {
  cache c(small_cache());
  c.access(0x000, access_type::load);
  c.access(0x100, access_type::load);
  c.access(0x200, access_type::load);
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, StoreMissAllocates) {
  cache c(small_cache());
  EXPECT_FALSE(c.access(0x3000, access_type::store));
  EXPECT_TRUE(c.access(0x3000, access_type::load));
  EXPECT_EQ(c.stats().store_misses, 1u);
}

TEST(Cache, MissRateComputation) {
  cache c(small_cache());
  c.access(0x0, access_type::load);   // miss
  c.access(0x0, access_type::load);   // hit
  c.access(0x0, access_type::load);   // hit
  c.access(0x40, access_type::store); // miss
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
}

TEST(Cache, ResetClearsEverything) {
  cache c(small_cache());
  c.access(0x0, access_type::store);
  c.reset();
  EXPECT_EQ(c.stats().accesses(), 0u);
  EXPECT_FALSE(c.probe(0x0));
}

TEST(Cache, ConfigValidation) {
  EXPECT_THROW(cache({"bad", 100, 64, 2}), invariant_error);   // not divisible
  EXPECT_THROW(cache({"bad", 512, 60, 2}), invariant_error);   // line not pow2
  EXPECT_THROW(cache({"bad", 512, 64, 0}), invariant_error);   // zero ways
}

TEST(Cache, FullyAssociativeWorks) {
  cache c({"fa", 256, 64, 4});  // 1 set, 4 ways
  for (std::uint64_t i = 0; i < 4; ++i) c.access(i * 0x1000, access_type::load);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(c.probe(i * 0x1000));
  c.access(0x9000, access_type::load);
  EXPECT_FALSE(c.probe(0x0));  // LRU victim
}

TEST(Gshare, LearnsAlwaysTaken) {
  gshare_predictor bp(8);
  std::size_t late_misses = 0;
  for (int i = 0; i < 100; ++i) {
    // Warm-up walks the history-indexed entries; after that the loop
    // branch must be predicted nearly perfectly.
    if (!bp.execute(0x400, true) && i >= 20) ++late_misses;
  }
  EXPECT_EQ(late_misses, 0u);
  EXPECT_EQ(bp.stats().branches, 100u);
}

TEST(Gshare, LearnsAlternatingPattern) {
  gshare_predictor bp(10);
  std::size_t late_misses = 0;
  for (int i = 0; i < 2000; ++i) {
    const bool taken = (i % 2) == 0;
    const bool correct = bp.execute(0x400, taken);
    if (i >= 1000 && !correct) ++late_misses;
  }
  // History-based prediction captures period-2 patterns almost exactly.
  EXPECT_LT(late_misses, 20u);
}

TEST(Gshare, RandomPatternNearChance) {
  gshare_predictor bp(10);
  rng gen(3);
  std::size_t misses = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (!bp.execute(0x400, gen.bernoulli(0.5))) ++misses;
  }
  const double rate = static_cast<double>(misses) / n;
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

TEST(Gshare, ResetClearsState) {
  gshare_predictor bp(8);
  for (int i = 0; i < 10; ++i) bp.execute(0x1, true);
  bp.reset();
  EXPECT_EQ(bp.stats().branches, 0u);
}

TEST(Gshare, TableBitsValidated) {
  EXPECT_THROW(gshare_predictor(2), invariant_error);
  EXPECT_THROW(gshare_predictor(30), invariant_error);
}

TEST(Hierarchy, L1HitDoesNotReachLlc) {
  memory_hierarchy mem;
  mem.data_access(0x1000, access_type::load);  // L1 miss -> LLC access
  const auto llc_before = mem.llc_references();
  mem.data_access(0x1000, access_type::load);  // L1 hit
  EXPECT_EQ(mem.llc_references(), llc_before);
}

TEST(Hierarchy, InstructionPathUsesL1i) {
  memory_hierarchy mem;
  mem.fetch(0x8000);
  mem.fetch(0x8000);
  EXPECT_EQ(mem.l1i().stats().load_misses, 1u);
  EXPECT_EQ(mem.l1d().stats().accesses(), 0u);
  EXPECT_EQ(mem.llc_references(), 1u);
}

TEST(Hierarchy, LoadStoreSplitAtLlc) {
  memory_hierarchy mem;
  mem.data_access(0x100000, access_type::load);
  mem.data_access(0x200000, access_type::store);
  EXPECT_EQ(mem.llc_load_misses(), 1u);
  EXPECT_EQ(mem.llc_store_misses(), 1u);
}

nn::inference_trace make_trace(std::vector<std::uint32_t> active,
                               std::size_t in_numel = 256) {
  nn::inference_trace t;
  nn::layer_trace_entry e;
  e.kind = nn::layer_kind::conv2d;
  e.name = "conv";
  e.in_numel = in_numel;
  e.out_numel = 128;
  e.weight_bytes = 4096;
  e.in_channels = 4;
  e.in_spatial = in_numel / 4;
  e.out_channels = 8;
  e.out_spatial = 16;
  e.active_inputs = std::move(active);
  t.layers.push_back(std::move(e));
  return t;
}

TEST(TraceGen, DeterministicForSameTrace) {
  trace_generator gen;
  auto trace = make_trace({1, 5, 9, 100, 200});
  const auto a = gen.run(trace);
  const auto b = gen.run(trace);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.branches, b.branches);
}

TEST(TraceGen, InstructionsIndependentOfPattern) {
  trace_generator gen;
  // Same cardinality, different identity: instruction counts must match
  // (masked-SIMD model).
  const auto a = gen.run(make_trace({0, 1, 2, 3}));
  const auto b = gen.run(make_trace({100, 120, 130, 250}));
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.branches, b.branches);
}

TEST(TraceGen, CacheFootprintDependsOnPattern) {
  trace_generator gen;
  // Clustered vs scattered active sets of equal size must differ in the
  // memory-side events.
  std::vector<std::uint32_t> clustered, scattered;
  for (std::uint32_t i = 0; i < 32; ++i) clustered.push_back(i);
  for (std::uint32_t i = 0; i < 32; ++i) scattered.push_back(i * 8);
  const auto a = gen.run(make_trace(clustered));
  const auto b = gen.run(make_trace(scattered));
  EXPECT_NE(a.l1d_load_misses, b.l1d_load_misses);
}

TEST(TraceGen, MoreActiveUnitsMoreReferences) {
  trace_generator gen;
  std::vector<std::uint32_t> few{0, 64, 128};
  std::vector<std::uint32_t> many;
  for (std::uint32_t i = 0; i < 256; i += 2) many.push_back(i);
  const auto a = gen.run(make_trace(few));
  const auto b = gen.run(make_trace(many));
  EXPECT_LT(a.cache_references, b.cache_references);
}

TEST(TraceGen, EmptyTraceYieldsZeroCounts) {
  trace_generator gen;
  nn::inference_trace t;
  const auto c = gen.run(t);
  EXPECT_EQ(c.instructions, 0u);
  EXPECT_EQ(c.cache_references, 0u);
}

TEST(TraceGen, ReluLayerContributesNoGatherTraffic) {
  trace_generator gen;
  nn::inference_trace t;
  nn::layer_trace_entry e;
  e.kind = nn::layer_kind::relu;
  e.name = "relu";
  e.in_numel = 1024;
  e.out_numel = 1024;
  for (std::uint32_t i = 0; i < 512; ++i) e.active_outputs.push_back(i * 2);
  t.layers.push_back(e);
  const auto a = gen.run(t);

  // Same layer with a different firing pattern: memory side identical
  // (in-place sweeps only).
  t.layers[0].active_outputs.clear();
  for (std::uint32_t i = 0; i < 512; ++i) {
    t.layers[0].active_outputs.push_back(i);
  }
  const auto b = gen.run(t);
  EXPECT_EQ(a.cache_references, b.cache_references);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
}

TEST(TraceGen, CountsAreInternallyConsistent) {
  trace_generator gen;
  const auto c = gen.run(make_trace({1, 2, 3, 50, 60, 70, 200}));
  EXPECT_GE(c.cache_references, c.cache_misses);
  EXPECT_EQ(c.cache_misses, c.llc_load_misses + c.llc_store_misses);
  EXPECT_GE(c.branches, c.branch_misses);
  EXPECT_GT(c.instructions, c.branches);
}

}  // namespace
}  // namespace advh::uarch
