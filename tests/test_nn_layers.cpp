// Layer-level tests: forward semantics and finite-difference gradient
// checks for every layer type. The gradient checks are what guarantee the
// attacks (which differentiate through the whole network) are correct.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/blocks.hpp"
#include "nn/conv2d.hpp"
#include "nn/depthwise_conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/simple_layers.hpp"

namespace advh::nn {
namespace {

/// Central-difference check of d(sum(w * f(x)))/dx against backward().
/// `w` is a fixed random cotangent to probe all outputs at once.
void check_input_gradient(layer& l, const tensor& x, double tol = 2e-2,
                          bool training = false) {
  rng gen(99);
  forward_ctx ctx;
  ctx.training = training;
  tensor y = l.forward(x, ctx);
  tensor cotangent = tensor::randn(y.dims(), gen);
  tensor grad = l.backward(cotangent);
  ASSERT_EQ(grad.dims(), x.dims());

  const float eps = 1e-2f;
  rng probe_gen(7);
  // Probe a sample of input coordinates.
  const std::size_t probes = std::min<std::size_t>(x.numel(), 24);
  for (std::size_t p = 0; p < probes; ++p) {
    const std::size_t i =
        static_cast<std::size_t>(probe_gen.uniform_index(x.numel()));
    tensor xp = x;
    xp[i] += eps;
    tensor xm = x;
    xm[i] -= eps;
    forward_ctx c2;
    c2.training = training;
    // Dropout and batch-norm training statistics make the function
    // stochastic/batch-coupled; tests only use deterministic settings.
    tensor yp = l.forward(xp, c2);
    tensor ym = l.forward(xm, c2);
    double fd = 0.0;
    for (std::size_t j = 0; j < yp.numel(); ++j) {
      fd += (static_cast<double>(yp[j]) - ym[j]) * cotangent[j];
    }
    fd /= 2.0 * eps;
    EXPECT_NEAR(grad[i], fd, tol * std::max(1.0, std::fabs(fd)))
        << "coordinate " << i;
  }
  // Restore the cached forward state for callers that keep using l.
  forward_ctx c3;
  c3.training = training;
  l.forward(x, c3);
}

/// Finite-difference check of parameter gradients.
void check_param_gradient(layer& l, const tensor& x, double tol = 2e-2,
                          bool training = false) {
  rng gen(123);
  forward_ctx ctx;
  ctx.training = training;
  tensor y = l.forward(x, ctx);
  tensor cotangent = tensor::randn(y.dims(), gen);

  std::vector<parameter*> params;
  l.collect_params(params);
  ASSERT_FALSE(params.empty());
  for (parameter* p : params) p->zero_grad();
  l.backward(cotangent);

  const float eps = 1e-2f;
  rng probe_gen(11);
  for (parameter* p : params) {
    const std::size_t probes = std::min<std::size_t>(p->value.numel(), 8);
    for (std::size_t q = 0; q < probes; ++q) {
      const std::size_t i =
          static_cast<std::size_t>(probe_gen.uniform_index(p->value.numel()));
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      forward_ctx c2;
      c2.training = training;
      tensor yp = l.forward(x, c2);
      p->value[i] = saved - eps;
      tensor ym = l.forward(x, c2);
      p->value[i] = saved;
      double fd = 0.0;
      for (std::size_t j = 0; j < yp.numel(); ++j) {
        fd += (static_cast<double>(yp[j]) - ym[j]) * cotangent[j];
      }
      fd /= 2.0 * eps;
      EXPECT_NEAR(p->grad[i], fd, tol * std::max(1.0, std::fabs(fd)))
          << p->name << " coordinate " << i;
    }
  }
}

TEST(Conv2d, OutputShape) {
  rng gen(1);
  conv2d conv("c", {3, 8, 3, 1, 1, true}, gen);
  forward_ctx ctx;
  tensor y = conv.forward(tensor(shape{2, 3, 16, 16}), ctx);
  EXPECT_EQ(y.dims(), shape({2, 8, 16, 16}));
}

TEST(Conv2d, StrideHalvesResolution) {
  rng gen(1);
  conv2d conv("c", {4, 4, 3, 2, 1, false}, gen);
  forward_ctx ctx;
  tensor y = conv.forward(tensor(shape{1, 4, 8, 8}), ctx);
  EXPECT_EQ(y.dims(), shape({1, 4, 4, 4}));
}

TEST(Conv2d, KnownAveragingKernel) {
  rng gen(1);
  conv2d conv("c", {1, 1, 3, 1, 1, false}, gen);
  conv.weight().value.fill(1.0f);
  forward_ctx ctx;
  tensor x(shape{1, 1, 3, 3}, std::vector<float>(9, 1.0f));
  tensor y = conv.forward(x, ctx);
  // Center output sums all 9 ones; corner sums the 4 in-bounds taps.
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 9.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.0f);
}

TEST(Conv2d, InputGradient) {
  rng gen(2);
  conv2d conv("c", {2, 3, 3, 1, 1, true}, gen);
  check_input_gradient(conv, tensor::randn(shape{1, 2, 6, 6}, gen));
}

TEST(Conv2d, ParamGradient) {
  rng gen(3);
  conv2d conv("c", {2, 3, 3, 2, 1, true}, gen);
  check_param_gradient(conv, tensor::randn(shape{2, 2, 6, 6}, gen));
}

TEST(Conv2d, ChannelMismatchThrows) {
  rng gen(1);
  conv2d conv("c", {3, 4, 3, 1, 1, true}, gen);
  forward_ctx ctx;
  EXPECT_THROW(conv.forward(tensor(shape{1, 2, 8, 8}), ctx), invariant_error);
}

TEST(DepthwiseConv2d, OutputShapeAndChannels) {
  rng gen(4);
  depthwise_conv2d conv("dw", {6, 3, 2, 1, true}, gen);
  forward_ctx ctx;
  tensor y = conv.forward(tensor(shape{1, 6, 8, 8}), ctx);
  EXPECT_EQ(y.dims(), shape({1, 6, 4, 4}));
}

TEST(DepthwiseConv2d, ChannelsAreIndependent) {
  rng gen(4);
  depthwise_conv2d conv("dw", {2, 3, 1, 1, false}, gen);
  forward_ctx ctx;
  // Energy in channel 0 only must not leak into channel 1.
  tensor x(shape{1, 2, 5, 5});
  x.at(0, 0, 2, 2) = 1.0f;
  tensor y = conv.forward(x, ctx);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_EQ(y.at(0, 1, i, j), 0.0f);
}

TEST(DepthwiseConv2d, InputGradient) {
  rng gen(5);
  depthwise_conv2d conv("dw", {3, 3, 1, 1, true}, gen);
  check_input_gradient(conv, tensor::randn(shape{1, 3, 6, 6}, gen));
}

TEST(DepthwiseConv2d, ParamGradient) {
  rng gen(6);
  depthwise_conv2d conv("dw", {2, 3, 2, 1, true}, gen);
  check_param_gradient(conv, tensor::randn(shape{1, 2, 6, 6}, gen));
}

TEST(Linear, KnownAffineMap) {
  rng gen(7);
  linear fc("fc", 2, 2, gen);
  fc.weight().value = tensor(shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  forward_ctx ctx;
  tensor x(shape{1, 2}, std::vector<float>{1.0f, 1.0f});
  tensor y = fc.forward(x, ctx);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
}

TEST(Linear, InputGradient) {
  rng gen(8);
  linear fc("fc", 6, 4, gen);
  check_input_gradient(fc, tensor::randn(shape{3, 6}, gen));
}

TEST(Linear, ParamGradient) {
  rng gen(9);
  linear fc("fc", 5, 3, gen);
  check_param_gradient(fc, tensor::randn(shape{2, 5}, gen));
}

TEST(Relu, ZeroesNegatives) {
  relu act("r");
  forward_ctx ctx;
  tensor x(shape{4}, std::vector<float>{-1.0f, 0.0f, 0.5f, 2.0f});
  tensor y = act.forward(x, ctx);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 0.5f);
  EXPECT_EQ(y[3], 2.0f);
}

TEST(Relu, ClipActsAsRelu6) {
  relu act("r6", 6.0f);
  forward_ctx ctx;
  tensor x(shape{2}, std::vector<float>{3.0f, 10.0f});
  tensor y = act.forward(x, ctx);
  EXPECT_EQ(y[0], 3.0f);
  EXPECT_EQ(y[1], 6.0f);
}

TEST(Relu, GradientMasksInactive) {
  relu act("r");
  forward_ctx ctx;
  tensor x(shape{3}, std::vector<float>{-1.0f, 1.0f, 2.0f});
  act.forward(x, ctx);
  tensor g(shape{3}, std::vector<float>{5.0f, 5.0f, 5.0f});
  tensor gx = act.backward(g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 5.0f);
  EXPECT_EQ(gx[2], 5.0f);
}

TEST(Relu, TraceRecordsActiveOutputs) {
  relu act("r");
  inference_trace trace;
  forward_ctx ctx;
  ctx.trace = &trace;
  tensor x(shape{1, 1, 2, 2}, std::vector<float>{-1.0f, 2.0f, 0.0f, 3.0f});
  act.forward(x, ctx);
  ASSERT_EQ(trace.layers.size(), 1u);
  EXPECT_EQ(trace.layers[0].active_outputs,
            (std::vector<std::uint32_t>{1, 3}));
}

TEST(MaxPool, SelectsMaxima) {
  maxpool2d pool("p", 2);
  forward_ctx ctx;
  tensor x(shape{1, 1, 2, 2}, std::vector<float>{1.0f, 5.0f, 3.0f, 2.0f});
  tensor y = pool.forward(x, ctx);
  EXPECT_EQ(y.numel(), 1u);
  EXPECT_EQ(y[0], 5.0f);
}

TEST(MaxPool, GradientRoutesToArgmax) {
  maxpool2d pool("p", 2);
  forward_ctx ctx;
  tensor x(shape{1, 1, 2, 2}, std::vector<float>{1.0f, 5.0f, 3.0f, 2.0f});
  pool.forward(x, ctx);
  tensor g(shape{1, 1, 1, 1}, std::vector<float>{7.0f});
  tensor gx = pool.backward(g);
  EXPECT_EQ(gx[1], 7.0f);
  EXPECT_EQ(gx[0], 0.0f);
}

TEST(AvgPool, Averages) {
  avgpool2d pool("p", 2);
  forward_ctx ctx;
  tensor x(shape{1, 1, 2, 2}, std::vector<float>{1.0f, 2.0f, 3.0f, 6.0f});
  tensor y = pool.forward(x, ctx);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(AvgPool, InputGradient) {
  rng gen(10);
  avgpool2d pool("p", 2);
  check_input_gradient(pool, tensor::randn(shape{1, 2, 4, 4}, gen));
}

TEST(GlobalAvgPool, ReducesToChannels) {
  global_avgpool gap("g");
  forward_ctx ctx;
  tensor x(shape{1, 2, 2, 2});
  for (std::size_t i = 0; i < 4; ++i) x[i] = 2.0f;      // channel 0
  for (std::size_t i = 4; i < 8; ++i) x[i] = 4.0f;      // channel 1
  tensor y = gap.forward(x, ctx);
  EXPECT_EQ(y.dims(), shape({1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 4.0f);
}

TEST(GlobalAvgPool, InputGradient) {
  rng gen(11);
  global_avgpool gap("g");
  check_input_gradient(gap, tensor::randn(shape{2, 3, 4, 4}, gen));
}

TEST(BatchNorm, NormalisesInTraining) {
  rng gen(12);
  batchnorm2d bn("bn", 2);
  forward_ctx ctx;
  ctx.training = true;
  tensor x = tensor::randn(shape{4, 2, 5, 5}, gen, 3.0f);
  tensor y = bn.forward(x, ctx);
  // Per-channel output must be ~zero-mean unit-variance.
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0, sumsq = 0.0;
    for (std::size_t b = 0; b < 4; ++b)
      for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 5; ++j) {
          const double v = y.at(b, c, i, j);
          sum += v;
          sumsq += v * v;
        }
    const double n = 4 * 25;
    EXPECT_NEAR(sum / n, 0.0, 1e-4);
    EXPECT_NEAR(sumsq / n, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeAndApply) {
  rng gen(13);
  batchnorm2d bn("bn", 1, /*momentum=*/0.5f);
  forward_ctx train_ctx;
  train_ctx.training = true;
  for (int i = 0; i < 20; ++i) {
    tensor x = tensor::randn(shape{8, 1, 4, 4}, gen, 2.0f);
    for (auto& v : x.data()) v += 5.0f;
    bn.forward(x, train_ctx);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0, 0.3);
  EXPECT_NEAR(bn.running_var()[0], 4.0, 0.8);

  // Inference mode uses the running stats.
  forward_ctx infer_ctx;
  tensor x(shape{1, 1, 1, 1}, std::vector<float>{5.0f});
  tensor y = bn.forward(x, infer_ctx);
  EXPECT_NEAR(y[0], 0.0, 0.2);
}

TEST(BatchNorm, InferenceInputGradient) {
  rng gen(14);
  batchnorm2d bn("bn", 3);
  // Give the running stats some non-trivial values first.
  forward_ctx train_ctx;
  train_ctx.training = true;
  bn.forward(tensor::randn(shape{8, 3, 4, 4}, gen), train_ctx);
  check_input_gradient(bn, tensor::randn(shape{1, 3, 4, 4}, gen), 2e-2,
                       /*training=*/false);
}

TEST(BatchNorm, TrainingInputGradient) {
  rng gen(15);
  batchnorm2d bn("bn", 2);
  check_input_gradient(bn, tensor::randn(shape{3, 2, 3, 3}, gen), 5e-2,
                       /*training=*/true);
}

TEST(BatchNorm, ParamGradient) {
  rng gen(16);
  batchnorm2d bn("bn", 2);
  check_param_gradient(bn, tensor::randn(shape{3, 2, 3, 3}, gen), 5e-2,
                       /*training=*/true);
}

TEST(Flatten, ShapeRoundTrip) {
  flatten fl("f");
  forward_ctx ctx;
  tensor x = tensor(shape{2, 3, 4, 4});
  tensor y = fl.forward(x, ctx);
  EXPECT_EQ(y.dims(), shape({2, 48}));
  tensor gx = fl.backward(y);
  EXPECT_EQ(gx.dims(), x.dims());
}

TEST(Dropout, IdentityInInference) {
  rng gen(17);
  dropout d("d", 0.5f, gen);
  forward_ctx ctx;  // inference
  tensor x = tensor::randn(shape{100}, gen);
  tensor y = d.forward(x, ctx);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, ScalesKeptUnitsInTraining) {
  rng gen(18);
  dropout d("d", 0.5f, gen);
  forward_ctx ctx;
  ctx.training = true;
  tensor x = tensor::full(shape{10000}, 1.0f);
  tensor y = d.forward(x, ctx);
  std::size_t kept = 0;
  for (float v : y.data()) {
    if (v != 0.0f) {
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1 / keep_prob
      ++kept;
    }
  }
  EXPECT_NEAR(static_cast<double>(kept) / 10000.0, 0.5, 0.03);
}

TEST(ResidualBlock, IdentitySkipPreservesShape) {
  rng gen(19);
  residual_block block("b", 4, 4, 1, gen);
  forward_ctx ctx;
  tensor y = block.forward(tensor::randn(shape{1, 4, 8, 8}, gen), ctx);
  EXPECT_EQ(y.dims(), shape({1, 4, 8, 8}));
}

TEST(ResidualBlock, ProjectionChangesShape) {
  rng gen(20);
  residual_block block("b", 4, 8, 2, gen);
  forward_ctx ctx;
  tensor y = block.forward(tensor::randn(shape{1, 4, 8, 8}, gen), ctx);
  EXPECT_EQ(y.dims(), shape({1, 8, 4, 4}));
}

TEST(ResidualBlock, InputGradient) {
  rng gen(21);
  residual_block block("b", 3, 6, 2, gen);
  // Inference-mode gradient (what attacks use).
  check_input_gradient(block, tensor::randn(shape{1, 3, 6, 6}, gen), 3e-2);
}

TEST(DenseBlock, ChannelGrowth) {
  rng gen(22);
  dense_block block("d", 4, 3, 2, gen);
  EXPECT_EQ(block.out_channels(), 10u);
  forward_ctx ctx;
  tensor y = block.forward(tensor::randn(shape{1, 4, 8, 8}, gen), ctx);
  EXPECT_EQ(y.dims(), shape({1, 10, 8, 8}));
}

TEST(DenseBlock, InputGradient) {
  rng gen(23);
  dense_block block("d", 3, 2, 2, gen);
  check_input_gradient(block, tensor::randn(shape{1, 3, 5, 5}, gen), 3e-2);
}

TEST(CatChannels, ConcatenatesAndSplitsBack) {
  rng gen(24);
  tensor a = tensor::randn(shape{2, 3, 4, 4}, gen);
  tensor b = tensor::randn(shape{2, 2, 4, 4}, gen);
  tensor c = cat_channels(a, b);
  EXPECT_EQ(c.dims(), shape({2, 5, 4, 4}));
  auto [ga, gb] = split_channels(c, 3);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(ga[i], a[i]);
  for (std::size_t i = 0; i < b.numel(); ++i) EXPECT_EQ(gb[i], b[i]);
}

TEST(SeparableBlock, ShapeAndTrace) {
  rng gen(25);
  auto block = make_separable_block("s", 4, 8, 2, gen);
  inference_trace trace;
  forward_ctx ctx;
  ctx.trace = &trace;
  tensor y = block->forward(tensor::randn(shape{1, 4, 8, 8}, gen), ctx);
  EXPECT_EQ(y.dims(), shape({1, 8, 4, 4}));
  // depthwise + bn + relu + pointwise + bn + relu = 6 trace entries.
  EXPECT_EQ(trace.layers.size(), 6u);
  EXPECT_EQ(trace.layers[0].kind, layer_kind::depthwise_conv2d);
}

}  // namespace
}  // namespace advh::nn
