#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "tensor/matmul.hpp"

namespace advh::ops {
namespace {

tensor make(std::initializer_list<float> values) {
  std::vector<float> v(values);
  return tensor(shape{v.size()}, v);
}

TEST(Ops, AddSubMul) {
  tensor a = make({1.0f, 2.0f, 3.0f});
  tensor b = make({4.0f, 5.0f, 6.0f});
  EXPECT_EQ(add(a, b)[1], 7.0f);
  EXPECT_EQ(sub(b, a)[2], 3.0f);
  EXPECT_EQ(mul(a, b)[0], 4.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  tensor a(shape{2});
  tensor b(shape{3});
  EXPECT_THROW(add(a, b), shape_error);
}

TEST(Ops, ScaleAndAxpy) {
  tensor a = make({1.0f, -2.0f});
  EXPECT_EQ(scale(a, 3.0f)[1], -6.0f);
  tensor b = make({10.0f, 10.0f});
  axpy(b, a, 0.5f);
  EXPECT_EQ(b[0], 10.5f);
  EXPECT_EQ(b[1], 9.0f);
}

TEST(Ops, SignTernary) {
  tensor a = make({-3.0f, 0.0f, 2.0f});
  tensor s = sign(a);
  EXPECT_EQ(s[0], -1.0f);
  EXPECT_EQ(s[1], 0.0f);
  EXPECT_EQ(s[2], 1.0f);
}

TEST(Ops, ClampBounds) {
  tensor a = make({-2.0f, 0.5f, 3.0f});
  tensor c = clamp(a, 0.0f, 1.0f);
  EXPECT_EQ(c[0], 0.0f);
  EXPECT_EQ(c[1], 0.5f);
  EXPECT_EQ(c[2], 1.0f);
}

TEST(Ops, ProjectLinfIsTightestBox) {
  tensor center = make({0.5f, 0.5f});
  tensor a = make({0.9f, 0.2f});
  tensor p = project_linf(a, center, 0.1f);
  EXPECT_FLOAT_EQ(p[0], 0.6f);
  EXPECT_FLOAT_EQ(p[1], 0.4f);
}

TEST(Ops, ProjectLinfIdentityInsideBall) {
  tensor center = make({0.0f, 0.0f});
  tensor a = make({0.05f, -0.03f});
  tensor p = project_linf(a, center, 0.1f);
  EXPECT_FLOAT_EQ(p[0], 0.05f);
  EXPECT_FLOAT_EQ(p[1], -0.03f);
}

TEST(Ops, Reductions) {
  tensor a = make({1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(sum(a), 10.0);
  EXPECT_DOUBLE_EQ(mean(a), 2.5);
  EXPECT_DOUBLE_EQ(l2_norm(a), std::sqrt(30.0));
  EXPECT_DOUBLE_EQ(linf_norm(make({-5.0f, 3.0f})), 5.0);
}

TEST(Ops, DotProduct) {
  tensor a = make({1.0f, 2.0f});
  tensor b = make({3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
}

TEST(Ops, ArgmaxFirstOnTies) {
  tensor a = make({1.0f, 5.0f, 5.0f, 2.0f});
  EXPECT_EQ(argmax(a), 1u);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  tensor logits(shape{2, 3}, std::vector<float>{1.0f, 2.0f, 3.0f,
                                                -1.0f, 0.0f, 1.0f});
  tensor p = softmax_rows(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < 3; ++c) s += p.at(r, c);
    EXPECT_NEAR(s, 1.0, 1e-6);
  }
  EXPECT_GT(p.at(0, 2), p.at(0, 0));
}

TEST(Ops, SoftmaxNumericallyStable) {
  tensor logits(shape{1, 2}, std::vector<float>{1000.0f, 1000.0f});
  tensor p = softmax_rows(logits);
  EXPECT_NEAR(p[0], 0.5, 1e-6);
  EXPECT_NEAR(p[1], 0.5, 1e-6);
}

TEST(Ops, ArgmaxRows) {
  tensor logits(shape{2, 3}, std::vector<float>{1.0f, 9.0f, 2.0f,
                                                7.0f, 1.0f, 2.0f});
  const auto rows = argmax_rows(logits);
  EXPECT_EQ(rows[0], 1u);
  EXPECT_EQ(rows[1], 0u);
}

TEST(Ops, CountGreater) {
  tensor a = make({0.0f, 0.5f, 1.5f, -1.0f});
  EXPECT_EQ(count_greater(a, 0.0f), 2u);
}

TEST(Matmul, KnownProduct) {
  tensor a(shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  tensor b(shape{3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  tensor c = matmul(a, b);
  EXPECT_EQ(c.dims(), shape({2, 2}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, InnerDimMismatchThrows) {
  tensor a(shape{2, 3});
  tensor b(shape{2, 2});
  EXPECT_THROW(matmul(a, b), invariant_error);
}

TEST(Matmul, TransposedVariantsAgree) {
  rng gen(1);
  tensor a = tensor::randn(shape{4, 6}, gen);
  tensor b = tensor::randn(shape{4, 5}, gen);
  // a^T b via matmul_at_b must equal manual transpose + matmul.
  tensor at(shape{6, 4});
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; ++j) at.at(j, i) = a.at(i, j);
  tensor expected = matmul(at, b);
  tensor got = matmul_at_b(a, b);
  for (std::size_t i = 0; i < expected.numel(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-4);
  }
}

TEST(Matmul, ABTransposedAgrees) {
  rng gen(2);
  tensor a = tensor::randn(shape{3, 7}, gen);
  tensor b = tensor::randn(shape{5, 7}, gen);
  tensor bt(shape{7, 5});
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 7; ++j) bt.at(j, i) = b.at(i, j);
  tensor expected = matmul(a, bt);
  tensor got = matmul_a_bt(a, b);
  for (std::size_t i = 0; i < expected.numel(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-4);
  }
}

TEST(Matmul, SparseInputFastPathCorrect) {
  // Zero rows in A exercise the skip branch; result must match dense math.
  tensor a(shape{2, 3}, std::vector<float>{0.0f, 2.0f, 0.0f,
                                           1.0f, 0.0f, 3.0f});
  tensor b(shape{3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 16.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 20.0f);
}

}  // namespace
}  // namespace advh::ops
