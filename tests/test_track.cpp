// Stateful query-stream defense tests: content fingerprints (quantize +
// min-hash windows), HPC trace sketches, the sharded memory-bounded
// fingerprint table (byte budget, eviction fairness under adversarial
// load), the escalation ladder (elevate -> ban, decay, chaos-stable
// bans), the drift-canary cross-check on trace corroboration, the
// client-tagged evaluation loop, and the strict-validation sweep over
// every ADVH_* environment knob.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/pipeline.hpp"
#include "fleet/config.hpp"
#include "hpc/factory.hpp"
#include "hpc/sim_backend.hpp"
#include "hpc/trace_sketch.hpp"
#include "nn/models/models.hpp"
#include "serve/service.hpp"
#include "track/tracker.hpp"

namespace advh::track {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

// ------------------------------------------------------------- fixtures --

/// Deterministic test input; `variant` selects an independent content
/// pattern (a different natural image), `perturb` adds a
/// sub-quantization-step perturbation (a near-duplicate attack probe).
/// The per-pixel bins come from a splitmix-style mix of (index, variant):
/// a mere phase shift of a periodic ramp would leave the *set* of sliding
/// windows unchanged, making every variant fingerprint-collide.
tensor test_input(std::uint64_t variant = 0, double perturb = 0.0) {
  tensor x(shape{1, 1, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    std::uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ULL +
                      (variant + 1) * 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 31;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 29;
    // Values sit at quantization-bin centres (step 0.05), so perturbations
    // below step/2 = 0.025 always quantize away.
    const auto bin = static_cast<double>(h % 23);
    x.data()[i] = static_cast<float>(0.05 + 0.1 * bin +
                                     perturb * ((i % 2 == 0) ? 1.0 : -1.0));
  }
  return x;
}

fingerprint_config small_fp_config() {
  fingerprint_config cfg;
  cfg.window = 8;
  cfg.top_k = 32;
  return cfg;
}

track_config fast_track_config() {
  track_config cfg;
  cfg.fp = small_fp_config();
  cfg.elevate_hits = 3.0;
  cfg.ban_hits = 6.0;
  return cfg;
}

// --------------------------------------------------------- fingerprints --

TEST(Fingerprint, IdenticalInputsMatchFully) {
  const auto cfg = small_fp_config();
  const fingerprint a = fingerprint_input(test_input(1), cfg);
  const fingerprint b = fingerprint_input(test_input(1), cfg);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.hashes, b.hashes);
  EXPECT_DOUBLE_EQ(match_fraction(a, b), 1.0);
}

TEST(Fingerprint, SubStepPerturbationStillCollides) {
  const auto cfg = small_fp_config();
  const fingerprint clean = fingerprint_input(test_input(1), cfg);
  // A perturbation well below quantize_step / 2 quantizes away entirely.
  const fingerprint probe = fingerprint_input(test_input(1, 0.01), cfg);
  EXPECT_DOUBLE_EQ(match_fraction(clean, probe), 1.0);
}

TEST(Fingerprint, IndependentInputsBarelyOverlap) {
  const auto cfg = small_fp_config();
  const fingerprint a = fingerprint_input(test_input(1), cfg);
  const fingerprint b = fingerprint_input(test_input(2), cfg);
  EXPECT_LT(match_fraction(a, b), 0.5);
}

TEST(Fingerprint, SaltChangesHashes) {
  auto cfg = small_fp_config();
  const fingerprint a = fingerprint_input(test_input(1), cfg);
  cfg.salt ^= 0xdeadbeefULL;
  const fingerprint b = fingerprint_input(test_input(1), cfg);
  EXPECT_NE(a.hashes, b.hashes);
}

TEST(Fingerprint, TinyInputStillFingerprints) {
  fingerprint_config cfg;
  cfg.window = 64;  // longer than the input: one truncated window
  tensor x(shape{1, 4});
  for (std::size_t i = 0; i < 4; ++i) x.data()[i] = 0.5f;
  const fingerprint fp = fingerprint_input(x, cfg);
  EXPECT_EQ(fp.hashes.size(), 1u);
}

TEST(Fingerprint, DegenerateConfigThrows) {
  const tensor x = test_input();
  fingerprint_config cfg;
  cfg.window = 0;
  EXPECT_THROW(fingerprint_input(x, cfg), std::invalid_argument);
  cfg = fingerprint_config{};
  cfg.stride = 0;
  EXPECT_THROW(fingerprint_input(x, cfg), std::invalid_argument);
  cfg = fingerprint_config{};
  cfg.top_k = 0;
  EXPECT_THROW(fingerprint_input(x, cfg), std::invalid_argument);
  cfg = fingerprint_config{};
  cfg.quantize_step = 0.0;
  EXPECT_THROW(fingerprint_input(x, cfg), std::invalid_argument);
}

// -------------------------------------------------------- trace sketches --

TEST(TraceSketch, SketchesAvailableEventsOnly) {
  hpc::measurement m;
  m.mean_counts = {1000.0, 50.0, 3.0};
  m.q.available = {1, 0, 1};
  const auto s = hpc::sketch_measurement(m);
  ASSERT_EQ(s.levels.size(), 3u);
  EXPECT_GT(s.levels[0], s.levels[2]);
  EXPECT_EQ(s.levels[1], hpc::trace_sketch::unavailable);
  EXPECT_NE(s.signature, 0u);
}

TEST(TraceSketch, DistanceZeroForSelfInfForIncomparable) {
  hpc::measurement m;
  m.mean_counts = {1000.0, 50.0};
  const auto a = hpc::sketch_measurement(m);
  EXPECT_DOUBLE_EQ(hpc::sketch_distance(a, a), 0.0);

  hpc::trace_sketch other;
  other.levels = {5, 5, 5};  // different event count: incomparable
  EXPECT_TRUE(std::isinf(hpc::sketch_distance(a, other)));

  hpc::trace_sketch gap;  // same count but no mutually-available event
  gap.levels = {hpc::trace_sketch::unavailable, 5};
  hpc::trace_sketch gap2;
  gap2.levels = {5, hpc::trace_sketch::unavailable};
  EXPECT_TRUE(std::isinf(hpc::sketch_distance(gap, gap2)));
}

TEST(TraceSketch, NearbyCountsCollideDistantCountsDont) {
  hpc::measurement a, b, c;
  a.mean_counts = {1000.0};
  b.mean_counts = {1010.0};  // ~1% apart: same quarter-octave cell
  c.mean_counts = {4000.0};  // 2 octaves apart: 8 quarter-octave levels
  const auto sa = hpc::sketch_measurement(a);
  const auto sb = hpc::sketch_measurement(b);
  const auto sc = hpc::sketch_measurement(c);
  EXPECT_LE(hpc::sketch_distance(sa, sb), 1.0);
  EXPECT_GT(hpc::sketch_distance(sa, sc), 4.0);
}

// ------------------------------------------------------------ the table --

TEST(FingerprintTable, ShardAssignmentIsStableAndSpread) {
  table_config cfg;
  cfg.shards = 8;
  fingerprint_table t1(cfg), t2(cfg);
  std::vector<std::size_t> occupancy(cfg.shards, 0);
  for (std::uint64_t c = 1; c <= 1000; ++c) {
    const std::size_t s = t1.shard_of(c);
    EXPECT_EQ(s, t2.shard_of(c));  // pure function of (config, client)
    ASSERT_LT(s, cfg.shards);
    ++occupancy[s];
  }
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    EXPECT_GT(occupancy[s], 0u) << "shard " << s << " got no clients";
  }
}

TEST(FingerprintTable, RejectsDegenerateConfig) {
  table_config cfg;
  cfg.shards = 0;
  EXPECT_THROW(fingerprint_table t(cfg), invariant_error);
  cfg = table_config{};
  cfg.min_history = 0;
  EXPECT_THROW(fingerprint_table t(cfg), invariant_error);
  cfg = table_config{};
  cfg.min_history = cfg.max_history + 1;
  EXPECT_THROW(fingerprint_table t(cfg), invariant_error);
  cfg = table_config{};
  cfg.shards = 64;
  cfg.byte_budget = 1024;  // under the 4 KiB-per-shard floor
  EXPECT_THROW(fingerprint_table t(cfg), invariant_error);
}

/// Satellite: the memory-bound + fairness property. A single client
/// spraying unique fingerprints must not (a) push the table over its byte
/// budget, (b) evict other clients' history below the match-detection
/// horizon, or (c) break match detection for those clients.
TEST(FingerprintTable, SprayerCannotEvictOthersBelowHorizon) {
  serve::virtual_clock clock;
  track_config cfg = fast_track_config();
  cfg.table.shards = 1;  // force everyone onto one shard: worst case
  cfg.table.vnodes = 1;
  cfg.table.byte_budget = 4096;  // the minimum the table accepts
  cfg.table.max_history = 64;
  cfg.table.min_history = 2;
  query_tracker tracker(clock, cfg);

  // Two victims, each with a short history of its own repeated query.
  const std::uint64_t victims[] = {11, 12};
  for (int round = 0; round < 4; ++round) {
    for (const std::uint64_t v : victims) {
      tracker.observe(v, test_input(v));
    }
  }
  const std::uint64_t sprayer = 99;
  for (std::uint64_t i = 0; i < 300; ++i) {
    tracker.observe(sprayer, test_input(1000 + i));
    ASSERT_LE(tracker.bytes_used(), cfg.table.byte_budget)
        << "budget breached at spray query " << i;
  }

  const auto st = tracker.stats();
  EXPECT_GT(st.table.evicted_fingerprints, 0u)
      << "spray produced no byte pressure; the test lost its teeth";
  for (const std::uint64_t v : victims) {
    EXPECT_GE(tracker.table().history_size(v), cfg.table.min_history);
    // The horizon guarantee is what keeps detection alive: a repeated
    // victim query still collides with the victim's surviving history.
    const auto d = tracker.observe(v, test_input(v));
    EXPECT_TRUE(d.matched);
  }
  EXPECT_EQ(st.table.evicted_clients, 0u)
      << "a victim was whole-evicted by one sprayer";
}

// -------------------------------------------------------------- tracker --

TEST(QueryTracker, CampaignEscalatesThenBans) {
  serve::virtual_clock clock;
  const track_config cfg = fast_track_config();
  query_tracker tracker(clock, cfg);
  const std::uint64_t attacker = 7;

  bool saw_elevation = false, saw_ban = false;
  for (int i = 0; i < 12 && !saw_ban; ++i) {
    const auto d = tracker.observe(attacker, test_input(3, 0.001 * i));
    if (d.newly_elevated) {
      saw_elevation = true;
      EXPECT_EQ(d.level, escalation::elevated);
      EXPECT_GE(d.hits, cfg.elevate_hits);
    }
    if (d.newly_banned) {
      saw_ban = true;
      EXPECT_EQ(d.level, escalation::banned);
    }
  }
  EXPECT_TRUE(saw_elevation);
  EXPECT_TRUE(saw_ban);
  EXPECT_EQ(tracker.level(attacker), escalation::banned);

  // A ban drops the client's history: the table shrinks, and further
  // queries short-circuit without fingerprint matching.
  EXPECT_EQ(tracker.table().history_size(attacker), 0u);
  const auto after = tracker.observe(attacker, test_input(3));
  EXPECT_EQ(after.level, escalation::banned);
  EXPECT_FALSE(after.newly_banned);
  EXPECT_EQ(tracker.table().history_size(attacker), 0u);

  const auto st = tracker.stats();
  EXPECT_EQ(st.elevations, 1u);
  EXPECT_EQ(st.bans, 1u);
  EXPECT_EQ(st.table.banned_clients, 1u);
}

TEST(QueryTracker, DistinctQueriesNeverEscalate) {
  serve::virtual_clock clock;
  query_tracker tracker(clock, fast_track_config());
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto d = tracker.observe(21, test_input(i));
    EXPECT_EQ(d.level, escalation::none);
    EXPECT_FALSE(d.matched);
  }
}

TEST(QueryTracker, HitCreditDecaysWithInjectedClock) {
  serve::virtual_clock clock;
  track_config cfg = fast_track_config();
  cfg.hit_halflife = seconds(10);
  query_tracker tracker(clock, cfg);

  // Two matches, then a long quiet gap: credit decays to ~epsilon, so two
  // more matches still sit below the elevation threshold of 3.
  for (int i = 0; i < 3; ++i) tracker.observe(5, test_input(4));
  clock.advance(seconds(100));  // 10 half-lives
  for (int i = 0; i < 2; ++i) {
    const auto d = tracker.observe(5, test_input(4));
    EXPECT_EQ(d.level, escalation::none);
  }
  // Without the gap the same 5 matches would have elevated.
  serve::virtual_clock clock2;
  query_tracker dense(clock2, cfg);
  track_decision last;
  for (int i = 0; i < 5; ++i) last = dense.observe(5, test_input(4));
  EXPECT_EQ(last.level, escalation::elevated);
}

TEST(QueryTracker, TraceCorroborationNeedsBaselineDeviation) {
  serve::virtual_clock clock;
  track_config cfg = fast_track_config();
  cfg.trace_match_level = 1.0;
  cfg.trace_baseline_level = 2.0;
  query_tracker tracker(clock, cfg);

  // Fleet baseline: many clients at level ~8.
  hpc::trace_sketch normal;
  normal.levels = {8, 8};
  for (std::uint64_t c = 100; c < 110; ++c) {
    EXPECT_FALSE(tracker.record_trace(c, normal));
  }

  // An attacker whose repeated computation sits far off the baseline:
  // the first trace only seeds its last_sketch, the second corroborates.
  hpc::trace_sketch odd;
  odd.levels = {20, 20};
  EXPECT_FALSE(tracker.record_trace(55, odd));
  EXPECT_TRUE(tracker.record_trace(55, odd));

  // A client repeating the *baseline* computation is exonerated by the
  // cross-check: same computation, but no deviation to blame it for.
  EXPECT_FALSE(tracker.record_trace(66, normal));
  EXPECT_FALSE(tracker.record_trace(66, normal));

  const auto st = tracker.stats();
  EXPECT_EQ(st.trace_corroborations, 1u);
}

TEST(QueryTracker, TracesAloneCanNeverBan) {
  serve::virtual_clock clock;
  track_config cfg = fast_track_config();
  query_tracker tracker(clock, cfg);
  hpc::trace_sketch odd;
  odd.levels = {30, 30};
  // Hundreds of corroborating traces with zero fingerprint matches:
  // trace credit alone may elevate (full-fidelity scrutiny) but the ban
  // threshold is reserved for input-side evidence.
  for (int i = 0; i < 300; ++i) tracker.record_trace(9, odd);
  EXPECT_NE(tracker.level(9), escalation::banned);
}

TEST(QueryTracker, ReplayIsBitwiseDeterministic) {
  const track_config cfg = fast_track_config();
  // An interleaved multi-client scenario, replayed twice.
  const auto run = [&cfg]() {
    serve::virtual_clock clock;
    query_tracker tracker(clock, cfg);
    std::vector<std::string> journal;
    for (int round = 0; round < 10; ++round) {
      clock.advance(milliseconds(250));
      for (std::uint64_t c = 1; c <= 6; ++c) {
        // Clients 1-2 run campaigns (repeat with tiny perturbations);
        // clients 3-6 send fresh queries every time.
        const bool attacker = c <= 2;
        const tensor x = attacker
                             ? test_input(c, 0.002 * round)
                             : test_input(100 * c + std::uint64_t(round));
        const auto d = tracker.observe(c, x);
        journal.push_back(std::to_string(c) + ":" +
                          std::string(to_string(d.level)) +
                          (d.matched ? "+m" : "") + "@" +
                          std::to_string(d.hits));
      }
    }
    return journal;
  };
  EXPECT_EQ(run(), run());
}

TEST(TrackConfig, ValidatesThresholds) {
  serve::virtual_clock clock;
  track_config cfg = fast_track_config();
  cfg.match_fraction = 0.0;
  EXPECT_THROW(query_tracker(clock, cfg), std::invalid_argument);
  cfg = fast_track_config();
  cfg.elevate_hits = 10.0;
  cfg.ban_hits = 5.0;  // ban below elevate: nonsense ladder
  EXPECT_THROW(query_tracker(clock, cfg), std::invalid_argument);
  cfg = fast_track_config();
  cfg.hit_halflife = seconds(0);
  EXPECT_THROW(query_tracker(clock, cfg), std::invalid_argument);
  cfg = fast_track_config();
  cfg.trace_hit_weight = 1.0;  // would let traces ban on their own
  EXPECT_THROW(query_tracker(clock, cfg), std::invalid_argument);
}

// -------------------------------------------- client-tagged evaluation --

TEST(EvaluateTagged, CampaignIsCutOffCleanClientsUntouched) {
  auto model = nn::make_model(nn::architecture::case_study_cnn,
                              shape{1, 16, 16}, 4, 1);
  hpc::sim_backend monitor(*model);

  core::detector_config dcfg;
  const auto events = hpc::core_events();
  dcfg.events = {events[0], events[1]};
  dcfg.repeats = 5;
  core::benign_template tpl(4, dcfg.events.size());
  for (std::size_t i = 0; i < 32; ++i) {
    const tensor x = test_input(i % 8);
    const auto m = monitor.measure(x, dcfg.events, dcfg.repeats);
    tpl.add_row(m.predicted, m.mean_counts);
  }
  const core::detector det = core::detector::fit(tpl, dcfg, 1);

  serve::virtual_clock clock;
  query_tracker tracker(clock, fast_track_config());

  std::vector<core::tagged_query> queries;
  for (int round = 0; round < 12; ++round) {
    queries.push_back({1, test_input(3, 0.001 * round), true});  // campaign
    queries.push_back({2, test_input(std::uint64_t(100 + round)), false});
    queries.push_back({0, test_input(std::uint64_t(200 + round)), false});
  }
  // Fresh monitor so both the 1- and 4-thread runs below start from the
  // same backend state (template fitting above advanced `monitor`).
  hpc::sim_backend monitor1(*model);
  const auto r = core::evaluate_tagged(det, monitor1, tracker, queries);

  EXPECT_EQ(tracker.level(1), escalation::banned);
  EXPECT_EQ(tracker.level(2), escalation::none);
  EXPECT_GT(r.banned_skipped, 0u);  // the campaign's tail never measured
  EXPECT_GT(r.escalated, 0u);       // ...after full-fidelity scrutiny
  // Everything that was measured got scored: totals add up.
  EXPECT_EQ(r.eval.fused.total() + r.banned_skipped, queries.size());

  // Thread-invariance of the whole tagged loop.
  serve::virtual_clock clock2;
  query_tracker tracker2(clock2, fast_track_config());
  hpc::sim_backend monitor2(*model);
  const auto r4 = core::evaluate_tagged(det, monitor2, tracker2, queries, 4);
  EXPECT_EQ(r4.banned_skipped, r.banned_skipped);
  EXPECT_EQ(r4.escalated, r.escalated);
  EXPECT_EQ(r4.eval.fused.true_positives(), r.eval.fused.true_positives());
  EXPECT_EQ(r4.eval.fused.false_positives(), r.eval.fused.false_positives());
  EXPECT_EQ(r4.eval.fused.true_negatives(), r.eval.fused.true_negatives());
  EXPECT_EQ(r4.eval.fused.false_negatives(), r.eval.fused.false_negatives());
}

// ------------------------------------------------------- env knob sweep --

/// Restores an environment variable on scope exit.
class env_guard {
 public:
  explicit env_guard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) saved_ = v;
  }
  ~env_guard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(TrackEnvKnobs, StrictParseAndOverride) {
  env_guard g1("ADVH_TRACK_SHARDS"), g2("ADVH_TRACK_BYTES");
  ::setenv("ADVH_TRACK_SHARDS", "4", 1);
  ::setenv("ADVH_TRACK_BYTES", "1048576", 1);
  const auto cfg = track_config_from_env();
  EXPECT_EQ(cfg.table.shards, 4u);
  EXPECT_EQ(cfg.table.byte_budget, std::size_t{1} << 20);

  ::setenv("ADVH_TRACK_SHARDS", "0", 1);  // zero shards: no table
  EXPECT_THROW(track_config_from_env(), std::invalid_argument);
  ::setenv("ADVH_TRACK_SHARDS", "2.5", 1);  // fractional shard count
  EXPECT_THROW(track_config_from_env(), std::invalid_argument);
  ::unsetenv("ADVH_TRACK_SHARDS");
  ::setenv("ADVH_TRACK_BYTES", "8MiB", 1);  // units are not parsed
  EXPECT_THROW(track_config_from_env(), std::invalid_argument);
}

/// Sweeps EVERY ADVH_* knob through garbage values: each one must throw
/// std::invalid_argument rather than silently fall back. This is the
/// regression net for the PR 4 strict-validation contract — a knob that
/// quietly accepts garbage reverts the whole convention.
TEST(EnvKnobSweep, EveryKnobRejectsGarbage) {
  struct knob {
    const char* name;
    std::function<void()> load;
  };
  const std::vector<knob> knobs = {
      {"ADVH_THREADS", [] { (void)parallel::default_threads(); }},
      {"ADVH_FAULT_RATE", [] { (void)hpc::fault_config_from_env(); }},
      {"ADVH_DRIFT_RATE", [] { (void)hpc::drift_profile_from_env(); }},
      {"ADVH_QUEUE_DEPTH", [] { (void)serve::serve_config_from_env(); }},
      {"ADVH_DEADLINE_MS", [] { (void)serve::serve_config_from_env(); }},
      {"ADVH_TRACK_SHARDS", [] { (void)track_config_from_env(); }},
      {"ADVH_TRACK_BYTES", [] { (void)track_config_from_env(); }},
      {"ADVH_BENCH_SCALE", [] { (void)bench::scale(); }},
      {"ADVH_FLEET_REPLICAS", [] { (void)fleet::fleet_config_from_env(); }},
      {"ADVH_FLEET_LOSS_RATE", [] { (void)fleet::fleet_config_from_env(); }},
      {"ADVH_FLEET_CONTROLLERS",
       [] { (void)fleet::fleet_config_from_env(); }},
      {"ADVH_FLEET_REPLICATION",
       [] { (void)fleet::fleet_config_from_env(); }},
  };
  const char* garbage[] = {"banana", "12banana", "", "-3", "1e999"};
  for (const knob& k : knobs) {
    env_guard guard(k.name);
    for (const char* bad : garbage) {
      ::setenv(k.name, bad, 1);
      EXPECT_THROW(k.load(), std::invalid_argument)
          << k.name << "=\"" << bad << "\" was silently accepted";
    }
    ::unsetenv(k.name);
    EXPECT_NO_THROW(k.load()) << k.name << " unset must use the default";
  }
}

}  // namespace
}  // namespace advh::track
