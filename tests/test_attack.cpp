// Attack tests against a small trained model: success semantics, norm
// budgets, and gradient plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/attack.hpp"
#include "attack/fgsm.hpp"
#include "attack/metrics.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "nn/models/models.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace advh::attack {
namespace {

/// Shared fixture: a small CNN trained once on a 4-class synthetic set.
class AttackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::synthetic_spec spec;
    spec.name = "attack_test";
    spec.channels = 1;
    spec.height = 16;
    spec.width = 16;
    spec.classes = 4;
    spec.seed = 77;
    spec.confusable_pairs = false;
    spec.hard_fraction = 0.0;
    train_set_ = new data::dataset(data::make_synthetic(spec, 60));
    spec.sample_seed = 1;
    test_set_ = new data::dataset(data::make_synthetic(spec, 20));

    model_ = nn::make_model(nn::architecture::case_study_cnn,
                            shape{1, 16, 16}, 4, /*seed=*/5)
                 .release();
    nn::train_config cfg;
    cfg.epochs = 4;
    cfg.batch_size = 16;
    nn::train_classifier(*model_, train_set_->images, train_set_->labels, cfg);
    ASSERT_GT(model_->accuracy(test_set_->images, test_set_->labels), 0.9);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete train_set_;
    delete test_set_;
    model_ = nullptr;
    train_set_ = nullptr;
    test_set_ = nullptr;
  }

  /// First test example that the model classifies correctly.
  static std::pair<tensor, std::size_t> correctly_classified_example(
      std::size_t skip = 0) {
    for (std::size_t i = 0; i < test_set_->size(); ++i) {
      tensor x = nn::single_example(test_set_->images, i);
      if (model_->predict_one(x) == test_set_->labels[i]) {
        if (skip == 0) return {x, test_set_->labels[i]};
        --skip;
      }
    }
    throw invariant_error("no correctly classified example");
  }

  static nn::model* model_;
  static data::dataset* train_set_;
  static data::dataset* test_set_;
};

nn::model* AttackTest::model_ = nullptr;
data::dataset* AttackTest::train_set_ = nullptr;
data::dataset* AttackTest::test_set_ = nullptr;

TEST_F(AttackTest, InputGradientMatchesFiniteDifference) {
  auto [x, label] = correctly_classified_example();
  std::size_t pred = 0;
  tensor g = input_gradient(*model_, x, label, pred);
  ASSERT_EQ(g.dims(), x.dims());

  // Probe a few coordinates against central differences of the loss.
  auto loss_at = [&](const tensor& input) {
    tensor logits = model_->forward(input);
    tensor probs = ops::softmax_rows(logits);
    return -std::log(std::max(probs[label], 1e-12f));
  };
  rng gen(3);
  const float eps = 1e-2f;
  for (int p = 0; p < 10; ++p) {
    const std::size_t i =
        static_cast<std::size_t>(gen.uniform_index(x.numel()));
    tensor xp = x;
    xp[i] += eps;
    tensor xm = x;
    xm[i] -= eps;
    const double fd = (loss_at(xp) - loss_at(xm)) / (2.0 * eps);
    EXPECT_NEAR(g[i], fd, 2e-2 * std::max(1.0, std::fabs(fd)));
  }
}

TEST_F(AttackTest, FgsmRespectsLinfBudget) {
  auto [x, label] = correctly_classified_example();
  attack_config cfg;
  cfg.epsilon = 0.03f;
  fgsm atk(cfg);
  auto r = atk.run(*model_, x, label);
  EXPECT_LE(r.linf_distortion, 0.03f + 1e-6);
  // Adversarial image stays a valid image.
  EXPECT_GE(ops::l2_norm(r.adversarial), 0.0);
  for (float v : r.adversarial.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST_F(AttackTest, FgsmZeroEpsilonIsNoop) {
  auto [x, label] = correctly_classified_example();
  attack_config cfg;
  cfg.epsilon = 0.0f;
  fgsm atk(cfg);
  auto r = atk.run(*model_, x, label);
  EXPECT_EQ(r.linf_distortion, 0.0);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.adversarial_prediction, label);
}

TEST_F(AttackTest, FgsmUntargetedSucceedsAtHighEpsilon) {
  attack_config cfg;
  cfg.epsilon = 0.25f;
  auto atk = make_attack(attack_kind::fgsm, cfg);
  auto out = attack_batch(*model_, *atk, *test_set_);
  EXPECT_GT(static_cast<double>(out.stats.succeeded) /
                static_cast<double>(out.stats.attempted),
            0.6);
}

TEST_F(AttackTest, PgdStrongerThanFgsm) {
  attack_config cfg;
  cfg.epsilon = 0.05f;
  cfg.steps = 10;
  auto f = make_attack(attack_kind::fgsm, cfg);
  auto p = make_attack(attack_kind::pgd, cfg);
  auto fo = attack_batch(*model_, *f, *test_set_);
  auto po = attack_batch(*model_, *p, *test_set_);
  EXPECT_GE(po.stats.succeeded, fo.stats.succeeded);
}

TEST_F(AttackTest, PgdRespectsLinfBudget) {
  auto [x, label] = correctly_classified_example();
  attack_config cfg;
  cfg.epsilon = 0.02f;
  cfg.steps = 8;
  auto atk = make_attack(attack_kind::pgd, cfg);
  auto r = atk->run(*model_, x, label);
  EXPECT_LE(r.linf_distortion, 0.02f + 1e-6);
}

TEST_F(AttackTest, TargetedSuccessSemantics) {
  auto [x, label] = correctly_classified_example();
  const std::size_t target = (label + 1) % 4;
  attack_config cfg;
  cfg.goal = attack_goal::targeted;
  cfg.target_class = target;
  cfg.epsilon = 0.3f;
  cfg.steps = 20;
  auto atk = make_attack(attack_kind::pgd, cfg);
  auto r = atk->run(*model_, x, label);
  // Success if and only if the prediction equals the target.
  EXPECT_EQ(r.success, r.adversarial_prediction == target);
}

TEST_F(AttackTest, DeepFoolFindsSmallPerturbation) {
  auto [x, label] = correctly_classified_example();
  attack_config cfg;
  cfg.max_iter = 50;
  auto df = make_attack(attack_kind::deepfool, cfg);
  auto r = df->run(*model_, x, label);
  EXPECT_TRUE(r.success);
  // DeepFool's perturbations are much smaller than a high-eps FGSM.
  attack_config fcfg;
  fcfg.epsilon = 0.25f;
  fgsm f(fcfg);
  auto rf = f.run(*model_, x, label);
  EXPECT_LT(r.l2_distortion, rf.l2_distortion);
}

TEST_F(AttackTest, DeepFoolTargetedReachesTarget) {
  auto [x, label] = correctly_classified_example();
  const std::size_t target = (label + 2) % 4;
  attack_config cfg;
  cfg.goal = attack_goal::targeted;
  cfg.target_class = target;
  cfg.max_iter = 60;
  auto df = make_attack(attack_kind::deepfool, cfg);
  auto r = df->run(*model_, x, label);
  if (r.success) {
    EXPECT_EQ(r.adversarial_prediction, target);
  }
  // Either way the result must be a valid image.
  for (float v : r.adversarial.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST_F(AttackTest, BatchSkipsTargetClassForTargetedAttacks) {
  attack_config cfg;
  cfg.goal = attack_goal::targeted;
  cfg.target_class = 2;
  cfg.epsilon = 0.1f;
  auto atk = make_attack(attack_kind::fgsm, cfg);
  auto out = attack_batch(*model_, *atk, *test_set_);
  std::size_t class2 = 0;
  for (std::size_t l : test_set_->labels) {
    if (l == 2) ++class2;
  }
  EXPECT_EQ(out.stats.attempted, test_set_->size() - class2);
}

TEST_F(AttackTest, BatchStatsConsistent) {
  attack_config cfg;
  cfg.epsilon = 0.1f;
  auto atk = make_attack(attack_kind::fgsm, cfg);
  auto out = attack_batch(*model_, *atk, *test_set_);
  EXPECT_EQ(out.results.size(), out.stats.attempted);
  EXPECT_EQ(out.source_indices.size(), out.stats.attempted);
  std::size_t succeeded = 0;
  for (const auto& r : out.results) {
    if (r.success) ++succeeded;
  }
  EXPECT_EQ(succeeded, out.stats.succeeded);
  // Untargeted: model accuracy under attack complements success rate.
  EXPECT_NEAR(out.stats.model_accuracy_under_attack,
              1.0 - static_cast<double>(succeeded) /
                        static_cast<double>(out.stats.attempted),
              1e-9);
}

TEST_F(AttackTest, AttackNamesAndFactory) {
  EXPECT_EQ(to_string(attack_kind::fgsm), "FGSM");
  EXPECT_EQ(to_string(attack_kind::pgd), "PGD");
  EXPECT_EQ(to_string(attack_kind::deepfool), "DeepFool");
  attack_config cfg;
  EXPECT_EQ(make_attack(attack_kind::fgsm, cfg)->name(), "FGSM");
  EXPECT_EQ(make_attack(attack_kind::pgd, cfg)->name(), "PGD");
  EXPECT_EQ(make_attack(attack_kind::deepfool, cfg)->name(), "DeepFool");
}

}  // namespace
}  // namespace advh::attack
