#include "gmm/gmm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "gmm/kmeans.hpp"

namespace advh::gmm {
namespace {

std::vector<double> two_cluster_data(rng& gen, double m1, double m2,
                                     double sd, std::size_t n_each) {
  std::vector<double> data;
  for (std::size_t i = 0; i < n_each; ++i) data.push_back(gen.normal(m1, sd));
  for (std::size_t i = 0; i < n_each; ++i) data.push_back(gen.normal(m2, sd));
  return data;
}

TEST(Kmeans, SeparatesTwoClusters) {
  rng gen(1);
  auto data = two_cluster_data(gen, 0.0, 10.0, 0.5, 100);
  auto res = kmeans(data, 1, 2, gen);
  ASSERT_EQ(res.centroids.size(), 2u);
  std::vector<double> centers{res.centroids[0][0], res.centroids[1][0]};
  std::sort(centers.begin(), centers.end());
  EXPECT_NEAR(centers[0], 0.0, 0.5);
  EXPECT_NEAR(centers[1], 10.0, 0.5);
}

TEST(Kmeans, AssignmentConsistentWithCentroids) {
  rng gen(2);
  auto data = two_cluster_data(gen, -5.0, 5.0, 0.3, 50);
  auto res = kmeans(data, 1, 2, gen);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::size_t a = res.assignment[i];
    const double da = std::fabs(data[i] - res.centroids[a][0]);
    const double db = std::fabs(data[i] - res.centroids[1 - a][0]);
    EXPECT_LE(da, db + 1e-9);
  }
}

TEST(Kmeans, MultiDimensional) {
  rng gen(3);
  std::vector<double> data;
  for (int i = 0; i < 60; ++i) {
    data.push_back(gen.normal(0.0, 0.2));
    data.push_back(gen.normal(0.0, 0.2));
  }
  for (int i = 0; i < 60; ++i) {
    data.push_back(gen.normal(4.0, 0.2));
    data.push_back(gen.normal(4.0, 0.2));
  }
  auto res = kmeans(data, 2, 2, gen);
  double lo = std::min(res.centroids[0][0], res.centroids[1][0]);
  double hi = std::max(res.centroids[0][0], res.centroids[1][0]);
  EXPECT_NEAR(lo, 0.0, 0.3);
  EXPECT_NEAR(hi, 4.0, 0.3);
}

TEST(Kmeans, KEqualsNIsExactCover) {
  rng gen(4);
  std::vector<double> data{1.0, 2.0, 3.0};
  auto res = kmeans(data, 1, 3, gen);
  EXPECT_NEAR(res.inertia, 0.0, 1e-12);
}

TEST(Kmeans, RejectsMorelustersThanPoints) {
  rng gen(5);
  std::vector<double> data{1.0, 2.0};
  EXPECT_THROW(kmeans(data, 1, 3, gen), invariant_error);
}

TEST(Gmm1d, RecoversTwoComponents) {
  rng gen(6);
  auto data = two_cluster_data(gen, 0.0, 8.0, 1.0, 300);
  gmm1d model = gmm1d::fit(data, 2);
  ASSERT_EQ(model.order(), 2u);
  std::vector<component1d> comps = model.components();
  std::sort(comps.begin(), comps.end(),
            [](const auto& a, const auto& b) { return a.mean < b.mean; });
  EXPECT_NEAR(comps[0].mean, 0.0, 0.3);
  EXPECT_NEAR(comps[1].mean, 8.0, 0.3);
  EXPECT_NEAR(comps[0].weight, 0.5, 0.05);
  EXPECT_NEAR(comps[0].variance, 1.0, 0.4);
}

TEST(Gmm1d, SingleComponentMatchesMoments) {
  rng gen(7);
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) data.push_back(gen.normal(3.0, 2.0));
  gmm1d model = gmm1d::fit(data, 1);
  EXPECT_NEAR(model.components()[0].mean, 3.0, 0.2);
  EXPECT_NEAR(model.components()[0].variance, 4.0, 0.5);
  EXPECT_DOUBLE_EQ(model.components()[0].weight, 1.0);
}

TEST(Gmm1d, LogPdfIntegratesToOne) {
  rng gen(8);
  auto data = two_cluster_data(gen, 0.0, 5.0, 0.7, 200);
  gmm1d model = gmm1d::fit(data, 2);
  // Trapezoidal integral of exp(log_pdf) over a wide range.
  double integral = 0.0;
  const double lo = -10.0, hi = 15.0, step = 0.01;
  for (double x = lo; x < hi; x += step) {
    integral += std::exp(model.log_pdf(x)) * step;
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(Gmm1d, NllLowInsideHighOutside) {
  rng gen(9);
  std::vector<double> data;
  for (int i = 0; i < 400; ++i) data.push_back(gen.normal(0.0, 1.0));
  gmm1d model = gmm1d::fit(data, 1);
  EXPECT_LT(model.nll(0.0), model.nll(5.0));
  EXPECT_LT(model.nll(1.0), model.nll(-8.0));
}

TEST(Gmm1d, BicSelectsTrueOrder) {
  rng gen(10);
  auto data = two_cluster_data(gen, 0.0, 12.0, 1.0, 250);
  gmm1d model = gmm1d::fit_best_bic(data, 5);
  EXPECT_EQ(model.order(), 2u);
}

TEST(Gmm1d, BicPrefersOneForUnimodal) {
  rng gen(11);
  std::vector<double> data;
  for (int i = 0; i < 500; ++i) data.push_back(gen.normal(0.0, 1.0));
  gmm1d model = gmm1d::fit_best_bic(data, 4);
  EXPECT_EQ(model.order(), 1u);
}

TEST(Gmm1d, ThreeComponentRecovery) {
  rng gen(12);
  std::vector<double> data;
  for (int i = 0; i < 200; ++i) data.push_back(gen.normal(-10.0, 0.8));
  for (int i = 0; i < 200; ++i) data.push_back(gen.normal(0.0, 0.8));
  for (int i = 0; i < 200; ++i) data.push_back(gen.normal(10.0, 0.8));
  gmm1d model = gmm1d::fit_best_bic(data, 5);
  EXPECT_EQ(model.order(), 3u);
}

TEST(Gmm1d, SamplesFollowModel) {
  std::vector<component1d> comps{{0.5, 0.0, 1.0}, {0.5, 20.0, 1.0}};
  gmm1d model(comps);
  rng gen(13);
  std::size_t low = 0;
  const int n = 20000;
  stats::running_stats rs;
  for (int i = 0; i < n; ++i) {
    const double x = model.sample(gen);
    rs.push(x);
    if (x < 10.0) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.5, 0.02);
  EXPECT_NEAR(rs.mean(), 10.0, 0.3);
}

TEST(Gmm1d, DegenerateDataGetsVarianceFloor) {
  std::vector<double> data(50, 7.0);  // all identical
  gmm1d model = gmm1d::fit(data, 1);
  EXPECT_GT(model.components()[0].variance, 0.0);
  EXPECT_TRUE(std::isfinite(model.nll(7.0)));
  EXPECT_TRUE(std::isfinite(model.nll(8.0)));
}

TEST(Gmm1d, InvalidWeightsRejected) {
  std::vector<component1d> comps{{0.4, 0.0, 1.0}, {0.4, 1.0, 1.0}};
  EXPECT_THROW(gmm1d{comps}, invariant_error);
}

TEST(Gmm1d, FitRequiresEnoughData) {
  std::vector<double> data{1.0};
  EXPECT_THROW(gmm1d::fit(data, 2), invariant_error);
}

TEST(Gmm1d, DeterministicForSameConfig) {
  rng gen(14);
  auto data = two_cluster_data(gen, 0.0, 6.0, 1.0, 100);
  gmm1d a = gmm1d::fit(data, 2);
  gmm1d b = gmm1d::fit(data, 2);
  ASSERT_EQ(a.order(), b.order());
  for (std::size_t i = 0; i < a.order(); ++i) {
    EXPECT_DOUBLE_EQ(a.components()[i].mean, b.components()[i].mean);
  }
}

TEST(GmmDiag, RecoversTwoClusters2d) {
  rng gen(15);
  std::vector<double> data;
  for (int i = 0; i < 200; ++i) {
    data.push_back(gen.normal(0.0, 0.5));
    data.push_back(gen.normal(0.0, 0.5));
  }
  for (int i = 0; i < 200; ++i) {
    data.push_back(gen.normal(5.0, 0.5));
    data.push_back(gen.normal(-5.0, 0.5));
  }
  gmm_diag model = gmm_diag::fit(data, 2, 2);
  ASSERT_EQ(model.order(), 2u);
  auto comps = model.components();
  std::sort(comps.begin(), comps.end(), [](const auto& a, const auto& b) {
    return a.mean[0] < b.mean[0];
  });
  EXPECT_NEAR(comps[0].mean[0], 0.0, 0.3);
  EXPECT_NEAR(comps[1].mean[0], 5.0, 0.3);
  EXPECT_NEAR(comps[1].mean[1], -5.0, 0.3);
}

TEST(GmmDiag, NllOrdersInliersBeforeOutliers) {
  rng gen(16);
  std::vector<double> data;
  for (int i = 0; i < 300; ++i) {
    data.push_back(gen.normal(1.0, 0.5));
    data.push_back(gen.normal(2.0, 0.5));
    data.push_back(gen.normal(3.0, 0.5));
  }
  gmm_diag model = gmm_diag::fit(data, 3, 1);
  const std::vector<double> inlier{1.0, 2.0, 3.0};
  const std::vector<double> outlier{5.0, -2.0, 9.0};
  EXPECT_LT(model.nll(inlier), model.nll(outlier));
}

TEST(GmmDiag, BicScanPicksTwo) {
  rng gen(17);
  std::vector<double> data;
  for (int i = 0; i < 150; ++i) {
    data.push_back(gen.normal(0.0, 0.4));
    data.push_back(gen.normal(0.0, 0.4));
  }
  for (int i = 0; i < 150; ++i) {
    data.push_back(gen.normal(8.0, 0.4));
    data.push_back(gen.normal(8.0, 0.4));
  }
  gmm_diag model = gmm_diag::fit_best_bic(data, 2, 4);
  EXPECT_EQ(model.order(), 2u);
}

TEST(GmmDiag, DimensionChecked) {
  rng gen(18);
  std::vector<double> data(20, 1.0);
  gmm_diag model = gmm_diag::fit(data, 2, 1);
  std::vector<double> wrong{1.0};
  EXPECT_THROW(model.log_pdf(wrong), invariant_error);
}

}  // namespace
}  // namespace advh::gmm
