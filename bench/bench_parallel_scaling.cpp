// Parallel measurement-engine scaling: wall-clock time of the offline
// phase (template collection + GMM-bank fit) and the online phase (batch
// classification) as a function of worker threads, with a bitwise
// identity check of every template column and verdict against the
// single-threaded baseline — the determinism contract of the engine.
//
// Writes bench_results/BENCH_parallel_scaling.json for CI trend tracking.
#include <chrono>
#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"

using namespace advh;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool same_template(const core::benign_template& a,
                   const core::benign_template& b) {
  if (a.num_classes() != b.num_classes() || a.num_events() != b.num_events()) {
    return false;
  }
  for (std::size_t cls = 0; cls < a.num_classes(); ++cls) {
    for (std::size_t e = 0; e < a.num_events(); ++e) {
      if (a.column(cls, e) != b.column(cls, e)) return false;
    }
  }
  return true;
}

bool same_verdicts(const std::vector<core::verdict>& a,
                   const std::vector<core::verdict>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].predicted != b[i].predicted || a[i].nll != b[i].nll ||
        a[i].flagged != b[i].flagged ||
        a[i].adversarial_any != b[i].adversarial_any ||
        a[i].modeled != b[i].modeled) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cli_parser cli("bench_parallel_scaling",
                 "measurement-engine wall-clock scaling over worker threads");
  cli.add_flag("threads-list", "1,2,4,8", "comma-separated thread counts");
  cli.add_flag("per-class", "20", "template rows M per class");
  if (!cli.parse(argc, argv)) return 0;

  std::vector<std::size_t> thread_counts;
  {
    std::stringstream ss(cli.get("threads-list"));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const int v = std::atoi(tok.c_str());
      if (v > 0) thread_counts.push_back(static_cast<std::size_t>(v));
    }
  }
  if (thread_counts.empty()) thread_counts = {1};

  auto rt = bench::prepare(data::scenario_id::s1);
  const auto per_class =
      static_cast<std::size_t>(cli.get_int("per-class"));

  core::detector_config dcfg;
  dcfg.events = {hpc::hpc_event::cache_misses, hpc::hpc_event::llc_load_misses};
  dcfg.repeats = 10;

  // Online-phase workload: one pool of clean eval inputs.
  std::vector<tensor> eval_inputs;
  for (std::size_t cls = 0; cls < rt.test.num_classes; ++cls) {
    auto v = bench::clean_of_class(*rt.net, rt.test, cls, bench::scaled(10));
    for (auto& x : v) eval_inputs.push_back(std::move(x));
  }

  text_table table("Parallel measurement-engine scaling (scenario S1)");
  table.set_header({"threads", "offline s", "online s", "offline speedup",
                    "online speedup", "identical"});

  std::optional<core::benign_template> baseline_tpl;
  std::vector<core::verdict> baseline_verdicts;
  double offline_base = 0.0;
  double online_base = 0.0;
  bool all_identical = true;
  std::ostringstream rows_json;

  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const std::size_t t = thread_counts[i];
    // Fresh monitor per run: identical noise-stream state for every
    // thread count, so results are comparable bit for bit.
    auto monitor = bench::make_monitor(*rt.net);

    const auto t0 = std::chrono::steady_clock::now();
    const auto tpl =
        core::collect_template(*monitor, dcfg, rt.train, per_class, 77, t);
    const auto det = core::detector::fit(tpl, dcfg, t);
    const double offline_s = seconds_since(t0);

    const auto t1 = std::chrono::steady_clock::now();
    const auto verdicts = det.classify_batch(*monitor, eval_inputs, t);
    const double online_s = seconds_since(t1);

    bool identical = true;
    if (!baseline_tpl) {
      baseline_tpl = tpl;
      baseline_verdicts = verdicts;
      offline_base = offline_s;
      online_base = online_s;
    } else {
      identical =
          same_template(*baseline_tpl, tpl) &&
          same_verdicts(baseline_verdicts, verdicts);
    }
    all_identical = all_identical && identical;

    const double offline_speedup = offline_s > 0.0 ? offline_base / offline_s
                                                   : 0.0;
    const double online_speedup = online_s > 0.0 ? online_base / online_s : 0.0;
    table.add_row({std::to_string(t), text_table::num(offline_s, 3),
                   text_table::num(online_s, 3),
                   text_table::num(offline_speedup, 2),
                   text_table::num(online_speedup, 2),
                   identical ? "yes" : "NO"});
    rows_json << (i == 0 ? "" : ",") << "\n    {\"threads\": " << t
              << ", \"offline_seconds\": " << offline_s
              << ", \"online_seconds\": " << online_s
              << ", \"offline_speedup\": " << offline_speedup
              << ", \"online_speedup\": " << online_speedup
              << ", \"identical_to_1_thread\": " << (identical ? "true" : "false")
              << "}";
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"parallel_scaling\",\n  \"scenario\": \"S1\",\n"
       << "  \"per_class\": " << per_class << ",\n  \"eval_inputs\": "
       << eval_inputs.size() << ",\n  \"hardware_threads\": "
       << parallel::hardware_threads() << ",\n  \"runs\": [" << rows_json.str()
       << "\n  ],\n  \"all_identical\": " << (all_identical ? "true" : "false")
       << "\n}\n";
  write_file("bench_results/BENCH_parallel_scaling.json", json.str());

  bench::emit(table, "parallel_scaling");
  if (!all_identical) {
    std::cerr << "FAIL: results differ across thread counts\n";
    return 1;
  }
  return 0;
}
