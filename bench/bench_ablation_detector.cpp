// Ablation bench for AdvHunter's two modelling choices (called out in
// DESIGN.md):
//   1. the three-sigma threshold rule — swept over sigma in {1..5};
//   2. BIC model-order selection — swept over k_max in {1, 2, 4, 6}
//      (k_max = 1 degenerates to a single Gaussian per template).
// Scenario S2, cache-misses, targeted FGSM eps = 0.1 — the Table 2
// setting. Reported: false-positive rate on clean inputs, recall on AEs,
// and F1.
#include <iostream>

#include "bench/bench_common.hpp"

using namespace advh;

int main() {
  auto rt = bench::prepare(data::scenario_id::s2);
  auto monitor = bench::make_monitor(*rt.net);

  // Shared populations.
  const std::size_t n = bench::scaled(60);
  auto clean = bench::clean_of_class(*rt.net, rt.test, rt.spec.target_class,
                                     n);
  auto pool = bench::attack_pool(rt, bench::scaled(40));
  auto adv = bench::collect_adversarial(
      *rt.net, pool, attack::attack_kind::fgsm, attack::attack_goal::targeted,
      0.1f, rt.spec.target_class, n);

  // The template is measured once; detector variants refit on it.
  core::detector_config base;
  base.events = {hpc::hpc_event::cache_misses};
  base.repeats = 10;
  const auto tpl =
      core::collect_template(*monitor, base, rt.train, bench::scaled(40), 77);

  // Pre-measure evaluation inputs once as well.
  struct measured {
    std::size_t predicted;
    std::vector<double> counts;
  };
  auto measure_set = [&](const std::vector<tensor>& inputs) {
    std::vector<measured> out;
    for (const auto& x : inputs) {
      auto m = monitor->measure(x, base.events, base.repeats);
      out.push_back({m.predicted, std::move(m.mean_counts)});
    }
    return out;
  };
  const auto clean_meas = measure_set(clean);
  const auto adv_meas = measure_set(adv.inputs);

  auto evaluate = [&](const core::detector& det) {
    core::detection_confusion c;
    for (const auto& m : clean_meas) {
      c.push(false, det.score(m.predicted, m.counts).adversarial_any);
    }
    for (const auto& m : adv_meas) {
      c.push(true, det.score(m.predicted, m.counts).adversarial_any);
    }
    return c;
  };

  text_table sigma_table(
      "Ablation A: threshold multiplier (paper uses the 3-sigma rule)");
  sigma_table.set_header({"sigma", "FPR %", "recall %", "F1"});
  for (double sigma : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    auto cfg = base;
    cfg.sigma_multiplier = sigma;
    const auto c = evaluate(core::detector::fit(tpl, cfg));
    const double fpr =
        c.false_positives() + c.true_negatives() > 0
            ? static_cast<double>(c.false_positives()) /
                  static_cast<double>(c.false_positives() + c.true_negatives())
            : 0.0;
    sigma_table.add_row({text_table::num(sigma, 1),
                         text_table::num(100.0 * fpr, 2),
                         text_table::num(100.0 * c.recall(), 2),
                         text_table::num(c.f1(), 4)});
  }
  bench::emit(sigma_table, "ablation_sigma");

  text_table k_table(
      "Ablation B: GMM order selection (k_max = 1 is a single Gaussian)");
  k_table.set_header({"k_max", "FPR %", "recall %", "F1"});
  for (std::size_t k : {1u, 2u, 4u, 6u}) {
    auto cfg = base;
    cfg.k_max = k;
    const auto c = evaluate(core::detector::fit(tpl, cfg));
    const double fpr =
        c.false_positives() + c.true_negatives() > 0
            ? static_cast<double>(c.false_positives()) /
                  static_cast<double>(c.false_positives() + c.true_negatives())
            : 0.0;
    k_table.add_row({std::to_string(k), text_table::num(100.0 * fpr, 2),
                     text_table::num(100.0 * c.recall(), 2),
                     text_table::num(c.f1(), 4)});
  }
  bench::emit(k_table, "ablation_kmax");

  text_table r_table("Ablation C: measurement repetitions R (paper: R=10)");
  r_table.set_header({"R", "FPR %", "recall %", "F1"});
  for (std::size_t repeats : {1u, 3u, 10u, 30u}) {
    auto cfg = base;
    cfg.repeats = repeats;
    // Template and evaluation must be re-measured at this R.
    const auto tpl_r = core::collect_template(*monitor, cfg, rt.train,
                                              bench::scaled(40), 78);
    const auto det = core::detector::fit(tpl_r, cfg);
    core::detection_confusion c;
    for (const auto& x : clean) {
      c.push(false, det.classify(*monitor, x).adversarial_any);
    }
    for (const auto& x : adv.inputs) {
      c.push(true, det.classify(*monitor, x).adversarial_any);
    }
    const double fpr =
        c.false_positives() + c.true_negatives() > 0
            ? static_cast<double>(c.false_positives()) /
                  static_cast<double>(c.false_positives() + c.true_negatives())
            : 0.0;
    r_table.add_row({std::to_string(repeats), text_table::num(100.0 * fpr, 2),
                     text_table::num(100.0 * c.recall(), 2),
                     text_table::num(c.f1(), 4)});
  }
  bench::emit(r_table, "ablation_repeats");
  return 0;
}
