// Extension experiment: the paper's N independent univariate GMMs vs one
// joint diagonal-covariance GMM over all five core events, on the Table-2
// setting (S2, targeted FGSM), compared by fixed-threshold F1 and by
// threshold-free ROC AUC over the detector scores.
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/joint_detector.hpp"
#include "core/roc.hpp"

using namespace advh;

int main() {
  auto rt = bench::prepare(data::scenario_id::s2);
  auto monitor = bench::make_monitor(*rt.net);

  core::detector_config dcfg;
  dcfg.events = hpc::core_events();
  dcfg.repeats = 10;
  const auto tpl =
      core::collect_template(*monitor, dcfg, rt.train, bench::scaled(40), 77);
  const auto marginal = core::detector::fit(tpl, dcfg);
  const auto joint = core::joint_detector::fit(tpl, dcfg);

  const std::size_t n = bench::scaled(60);
  auto clean = bench::clean_of_class(*rt.net, rt.test, rt.spec.target_class,
                                     n);
  auto pool = bench::attack_pool(rt, bench::scaled(40));
  auto adv = bench::collect_adversarial(
      *rt.net, pool, attack::attack_kind::fgsm, attack::attack_goal::targeted,
      0.1f, rt.spec.target_class, n);

  // Measure once; score under both detectors.
  struct measured {
    std::size_t predicted;
    std::vector<double> counts;
  };
  auto measure_set = [&](const std::vector<tensor>& inputs) {
    std::vector<measured> out;
    for (const auto& x : inputs) {
      auto m = monitor->measure(x, dcfg.events, dcfg.repeats);
      out.push_back({m.predicted, std::move(m.mean_counts)});
    }
    return out;
  };
  const auto clean_meas = measure_set(clean);
  const auto adv_meas = measure_set(adv.inputs);

  // Fixed-threshold comparison.
  core::detection_confusion marginal_best, marginal_fused, joint_conf;
  const std::size_t cm_idx = 4;  // cache-misses within core_events()
  std::vector<double> cm_clean_scores, cm_adv_scores;
  std::vector<double> joint_clean_scores, joint_adv_scores;
  for (const auto& m : clean_meas) {
    const auto v = marginal.score(m.predicted, m.counts);
    marginal_best.push(false, v.flagged[cm_idx]);
    marginal_fused.push(false, v.adversarial_any);
    cm_clean_scores.push_back(v.nll[cm_idx]);
    const auto jv = joint.score(m.predicted, m.counts);
    joint_conf.push(false, jv.adversarial);
    joint_clean_scores.push_back(jv.nll);
  }
  for (const auto& m : adv_meas) {
    const auto v = marginal.score(m.predicted, m.counts);
    marginal_best.push(true, v.flagged[cm_idx]);
    marginal_fused.push(true, v.adversarial_any);
    cm_adv_scores.push_back(v.nll[cm_idx]);
    const auto jv = joint.score(m.predicted, m.counts);
    joint_conf.push(true, jv.adversarial);
    joint_adv_scores.push_back(jv.nll);
  }

  const auto cm_roc = core::compute_roc(cm_clean_scores, cm_adv_scores);
  const auto joint_roc =
      core::compute_roc(joint_clean_scores, joint_adv_scores);

  text_table table(
      "Extension: univariate event bank vs joint multivariate GMM (S2, "
      "targeted FGSM eps=0.1)");
  table.set_header({"detector", "accuracy %", "F1", "AUC", "TPR@FPR<=5%"});
  table.add_row({"cache-misses (paper)",
                 text_table::num(100.0 * marginal_best.accuracy(), 2),
                 text_table::num(marginal_best.f1(), 4),
                 text_table::num(cm_roc.auc, 4),
                 text_table::num(cm_roc.tpr_at_fpr(0.05), 4)});
  table.add_row({"any-event fusion",
                 text_table::num(100.0 * marginal_fused.accuracy(), 2),
                 text_table::num(marginal_fused.f1(), 4), "-", "-"});
  table.add_row({"joint 5-event GMM",
                 text_table::num(100.0 * joint_conf.accuracy(), 2),
                 text_table::num(joint_conf.f1(), 4),
                 text_table::num(joint_roc.auc, 4),
                 text_table::num(joint_roc.tpr_at_fpr(0.05), 4)});
  bench::emit(table, "ext_joint_detector");
  return 0;
}
