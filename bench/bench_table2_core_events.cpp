// Reproduces Table 2: per-category detection accuracy and F1-score for the
// five core HPC events in scenario S2 under a targeted FGSM attack
// (target class 'frog'). The paper uses eps = 0.5; on this synthetic
// substrate a single-step signed perturbation of that size overshoots the
// target region (success ~0%), so the bench runs the paper's protocol at
// eps = 0.1, the strongest setting with usable targeted success (see
// EXPERIMENTS.md).
//
// Each row evaluates clean 'frog' images against AEs originally of one
// source category but misclassified to 'frog'. Expected shape (paper):
// instructions / branches / branch-misses sit at ~50% accuracy with tiny
// F1; cache-references is weak with a couple of elevated categories;
// cache-misses detects nearly perfectly across all categories.
#include <iostream>

#include "bench/bench_common.hpp"

using namespace advh;

int main() {
  auto rt = bench::prepare(data::scenario_id::s2);
  auto monitor = bench::make_monitor(*rt.net);

  core::detector_config dcfg;
  dcfg.events = hpc::core_events();
  dcfg.repeats = 10;
  const auto det = bench::fit_detector(*monitor, dcfg, rt.train,
                                       bench::scaled(40));

  // Adversarial examples per source category.
  const std::size_t per_category = bench::scaled(20);
  auto pool = bench::attack_pool(rt, bench::scaled(120));
  auto adv = bench::collect_adversarial(
      *rt.net, pool, attack::attack_kind::fgsm, attack::attack_goal::targeted,
      0.1f, rt.spec.target_class,
      per_category * (rt.test.num_classes - 1));
  std::cout << "S2 targeted FGSM eps=0.1: attack success "
            << text_table::num(100.0 * adv.attack_success_rate, 2)
            << "% over " << adv.attempted << " attempts\n\n";

  // Clean 'frog' pool, reused balanced against each category's AEs.
  auto clean = bench::clean_of_class(*rt.net, rt.test, rt.spec.target_class,
                                     per_category * 3);

  text_table table(
      "Table 2: per-category detection performance, S2 targeted FGSM "
      "eps=0.1 (accuracy % / F1)");
  std::vector<std::string> header{"category", "target"};
  for (auto e : dcfg.events) {
    header.push_back(to_string(e) + " acc");
    header.push_back(to_string(e) + " F1");
  }
  table.set_header(header);

  std::vector<core::detection_confusion> overall(dcfg.events.size());
  for (std::size_t cls = 0; cls < rt.test.num_classes; ++cls) {
    if (cls == rt.spec.target_class) continue;

    // This category's successful AEs, balanced with clean target images.
    std::vector<tensor> cls_adv;
    for (std::size_t i = 0; i < adv.inputs.size(); ++i) {
      if (adv.source_labels[i] == cls) cls_adv.push_back(adv.inputs[i]);
    }
    const std::size_t n = std::min(cls_adv.size(), clean.size());
    if (n == 0) {
      std::vector<std::string> row{rt.test.class_names[cls],
                                   rt.spec.target_class_name};
      for (std::size_t e = 0; e < dcfg.events.size(); ++e) {
        row.push_back("n/a");
        row.push_back("n/a");
      }
      table.add_row(row);
      continue;
    }

    core::detection_eval eval;
    core::evaluate_inputs(det, *monitor,
                          std::span<const tensor>(clean.data(), n), false,
                          eval);
    core::evaluate_inputs(det, *monitor,
                          std::span<const tensor>(cls_adv.data(), n), true,
                          eval);

    std::vector<std::string> row{rt.test.class_names[cls],
                                 rt.spec.target_class_name};
    for (std::size_t e = 0; e < dcfg.events.size(); ++e) {
      row.push_back(text_table::num(100.0 * eval.per_event[e].accuracy(), 2));
      row.push_back(text_table::num(eval.per_event[e].f1(), 4));
      overall[e].merge(eval.per_event[e]);
    }
    table.add_row(row);
  }

  std::vector<std::string> row{"overall", rt.spec.target_class_name};
  for (std::size_t e = 0; e < dcfg.events.size(); ++e) {
    row.push_back(text_table::num(100.0 * overall[e].accuracy(), 2));
    row.push_back(text_table::num(overall[e].f1(), 4));
  }
  table.add_row(row);

  bench::emit(table, "table2_core_events");
  return 0;
}
