// Microarchitecture-sensitivity ablation: how does AdvHunter's cache-miss
// signal depend on the hardware it runs on? Sweeps the simulated LLC
// size, the L1-D size, and the hardware prefetcher, reporting detection
// F1/AUC on the Table-2 setting for each configuration. This answers the
// deployment question the paper leaves open: which platforms expose
// enough signal through `cache-misses`.
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/roc.hpp"

using namespace advh;

namespace {

struct uarch_variant {
  std::string label;
  uarch::trace_gen_config cfg;
};

}  // namespace

int main() {
  auto rt = bench::prepare(data::scenario_id::s2);

  // Shared inputs (attack once; measure per variant).
  const std::size_t n = bench::scaled(40);
  auto clean = bench::clean_of_class(*rt.net, rt.test, rt.spec.target_class,
                                     n);
  auto pool = bench::attack_pool(rt, bench::scaled(40));
  auto adv = bench::collect_adversarial(
      *rt.net, pool, attack::attack_kind::fgsm, attack::attack_goal::targeted,
      0.1f, rt.spec.target_class, n);
  std::cout << clean.size() << " clean / " << adv.inputs.size()
            << " adversarial inputs\n\n";

  std::vector<uarch_variant> variants;
  {
    uarch_variant v{"baseline (8K L1D, 64K LLC)", {}};
    variants.push_back(v);
  }
  {
    uarch_variant v{"small LLC (32K)", {}};
    v.cfg.caches.llc.size_bytes = 32 * 1024;
    variants.push_back(v);
  }
  {
    uarch_variant v{"large LLC (256K)", {}};
    v.cfg.caches.llc.size_bytes = 256 * 1024;
    variants.push_back(v);
  }
  {
    uarch_variant v{"large L1D (32K)", {}};
    v.cfg.caches.l1d.size_bytes = 32 * 1024;
    variants.push_back(v);
  }
  {
    uarch_variant v{"next-line prefetch", {}};
    v.cfg.caches.l1d_prefetch = uarch::prefetcher_kind::next_line;
    variants.push_back(v);
  }
  {
    uarch_variant v{"stride prefetch", {}};
    v.cfg.caches.l1d_prefetch = uarch::prefetcher_kind::stride;
    variants.push_back(v);
  }

  text_table table("uarch sensitivity of the cache-misses detector (S2, "
                   "targeted FGSM eps=0.1)");
  table.set_header({"configuration", "accuracy %", "F1", "AUC"});

  for (const auto& variant : variants) {
    auto monitor = std::make_unique<hpc::sim_backend>(
        *rt.net, variant.cfg, hpc::noise_model{}, 99);

    core::detector_config dcfg;
    dcfg.events = {hpc::hpc_event::cache_misses};
    dcfg.repeats = 10;
    const auto det = bench::fit_detector(*monitor, dcfg, rt.train,
                                         bench::scaled(40));

    core::detection_confusion conf;
    std::vector<double> clean_scores, adv_scores;
    for (const auto& x : clean) {
      const auto v = det.classify(*monitor, x);
      conf.push(false, v.adversarial_any);
      clean_scores.push_back(v.nll[0]);
    }
    for (const auto& x : adv.inputs) {
      const auto v = det.classify(*monitor, x);
      conf.push(true, v.adversarial_any);
      adv_scores.push_back(v.nll[0]);
    }
    const auto roc = core::compute_roc(clean_scores, adv_scores);
    table.add_row({variant.label, text_table::num(100.0 * conf.accuracy(), 2),
                   text_table::num(conf.f1(), 4),
                   text_table::num(roc.auc, 4)});
  }
  bench::emit(table, "ablation_uarch");
  return 0;
}
