// Campaign-replay bench: the stateful query-stream defense (src/track)
// under realistic load, driven entirely on the virtual clock.
//
// Phase A replays a tracker-only stream at scale: thousands of short-lived
// clean clients churning through a deliberately tight fingerprint-table
// byte budget, with query-based attack campaigns (one probe replayed with
// sub-quantization-step perturbations) injected as bursts at seeded
// positions. Phase B pushes interleaved honest/attacker traffic through
// the full detection_service with a tracker attached, over the
// hpc::make_monitor stack so the ADVH_FAULT_RATE chaos knob composes: the
// CI track-chaos job replays this bench with 5% injected counter faults.
//
// Five self-checks gate the exit code:
//   * campaigns cut off — every seeded campaign is banned before it
//     completes its query budget (the defense wins the race);
//   * zero false bans — no clean/honest client is ever banned, in either
//     phase, despite heavy eviction churn;
//   * memory bound — tracker memory never exceeds its byte budget at any
//     point in the replay;
//   * service integration — banned attackers are rejected up front
//     (rejected_banned > 0) and escalated requests ride at full fidelity;
//   * determinism — the whole service replay (admissions, bans,
//     escalations, verdicts, virtual completion times) is bitwise
//     identical at 1 and 4 worker threads.
//
// Writes bench_results/BENCH_campaign_replay.{csv,json}.
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "hpc/factory.hpp"
#include "serve/service.hpp"
#include "track/tracker.hpp"

using namespace advh;

namespace {

using serve::priority;
using std::chrono::milliseconds;

constexpr std::size_t kCampaignLen = 25;   // queries per seeded campaign
constexpr std::size_t kCanaryEvery = 25;   // service arrivals per canary

/// Deterministic synthetic input: a splitmix-style mix of (pixel index,
/// variant) keeps distinct variants' sliding windows independent (a phase
/// shift of a periodic ramp would leave the window *set* unchanged and
/// every variant would fingerprint-collide). Values sit at quantization
/// bin centres, so `perturb` below step/2 = 0.025 quantizes away — the
/// near-duplicate attack probe the tracker exists to catch.
tensor synth_input(const shape& chw, std::uint64_t variant,
                   double perturb = 0.0) {
  tensor x(shape{1, chw[0], chw[1], chw[2]});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    std::uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ULL +
                      (variant + 1) * 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 31;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 29;
    x.data()[i] = static_cast<float>(0.05 + 0.1 * static_cast<double>(h % 23) +
                                     perturb * ((i % 2 == 0) ? 1.0 : -1.0));
  }
  return x;
}

// ------------------------------------------------- phase A: tracker only --

struct tracker_replay {
  std::size_t clean_clients = 0;
  std::size_t campaigns = 0;
  std::size_t campaigns_banned_in_time = 0;
  std::size_t clean_bans = 0;
  std::size_t peak_bytes = 0;
  std::size_t evicted_fingerprints = 0;
  std::size_t evicted_clients = 0;
  track::track_stats stats;
};

/// Replays a seeded stream: mostly one-to-three-shot clean clients (table
/// churn), with campaign bursts spaced a few clean observes apart — the
/// cadence of a real query-based attack, and the regime the LRU eviction
/// policy must not break detection in.
tracker_replay run_tracker_replay(std::size_t n_clean, std::size_t n_campaigns,
                                  const track::track_config& cfg) {
  const shape chw{1, 16, 16};  // tracker-only phase: no model in the loop
  serve::virtual_clock clock;
  track::query_tracker tracker(clock, cfg);
  rng gen(0xca39a16e);

  tracker_replay out;
  out.clean_clients = n_clean;
  out.campaigns = n_campaigns;

  std::uint64_t next_clean = 1;                    // clean ids: 1..n_clean
  const std::uint64_t campaign_base = 1'000'000;   // campaign ids disjoint
  std::vector<std::uint64_t> clean_seen;           // for repeat visits
  std::size_t campaigns_done = 0;
  const std::size_t clean_per_campaign =
      n_campaigns == 0 ? n_clean : n_clean / n_campaigns;

  const auto observe_clean = [&](std::uint64_t c, std::uint64_t variant) {
    const auto d = tracker.observe(c, synth_input(chw, variant));
    if (d.newly_banned) ++out.clean_bans;
    out.peak_bytes = std::max(out.peak_bytes, tracker.bytes_used());
  };

  while (campaigns_done < n_campaigns || next_clean <= n_clean) {
    // A stretch of clean churn: fresh clients, occasional repeat visitors
    // sending fresh content (repeat identity, distinct queries).
    for (std::size_t i = 0; i < clean_per_campaign && next_clean <= n_clean;
         ++i) {
      const std::uint64_t c = next_clean++;
      clean_seen.push_back(c);
      observe_clean(c, c);
      if (gen.uniform() < 0.25) observe_clean(c, c + 500'000);
      if (gen.uniform() < 0.25) {
        const auto back =
            clean_seen[gen.uniform_index(clean_seen.size())];
        observe_clean(back, back + 700'000);
      }
      clock.advance(milliseconds(1));
    }
    if (campaigns_done >= n_campaigns) continue;

    // One campaign burst: the attacker replays its probe with tiny
    // perturbations, a few clean observes between attack queries.
    const std::uint64_t attacker = campaign_base + campaigns_done;
    bool banned_in_time = false;
    for (std::size_t q = 0; q < kCampaignLen; ++q) {
      const auto d =
          tracker.observe(attacker, synth_input(chw, attacker, 0.001 * q));
      out.peak_bytes = std::max(out.peak_bytes, tracker.bytes_used());
      if (d.newly_banned && q + 1 < kCampaignLen) banned_in_time = true;
      const std::size_t interleave = 1 + gen.uniform_index(3);
      for (std::size_t j = 0; j < interleave && !clean_seen.empty(); ++j) {
        const auto c = clean_seen[gen.uniform_index(clean_seen.size())];
        observe_clean(c, c + 900'000 + 37 * q + j);
      }
      clock.advance(milliseconds(2));
    }
    if (banned_in_time) ++out.campaigns_banned_in_time;
    ++campaigns_done;
  }

  out.stats = tracker.stats();
  out.evicted_fingerprints = out.stats.table.evicted_fingerprints;
  out.evicted_clients = out.stats.table.evicted_clients;
  return out;
}

// ---------------------------------------------- phase B: through serving --

struct service_replay {
  /// One line per submission and per response; bitwise comparable.
  std::vector<std::string> journal;
  serve::serve_stats stats;
  track::track_stats tstats;
  std::size_t peak_bytes = 0;
  std::size_t attacker_bans = 0;
  std::size_t honest_bans = 0;
  bool escalated_full_fidelity = true;
};

service_replay run_service_replay(const core::detector& det, nn::model& net,
                                  std::size_t n_traffic,
                                  const track::track_config& tcfg,
                                  std::size_t threads) {
  auto monitor = hpc::make_monitor(net);
  serve::virtual_clock clock;
  serve::serve_config cfg;
  cfg.threads = threads;
  cfg.default_deadline = milliseconds(500);  // bans, not deadlines, under test
  serve::detection_service service(det, *monitor, clock, cfg);
  track::query_tracker tracker(clock, tcfg);
  service.attach_tracker(tracker);

  const std::uint64_t honest_ids[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint64_t attacker_ids[] = {101, 102};
  const auto full_r = static_cast<std::uint32_t>(det.config().repeats);
  const shape chw = net.input_shape();
  rng gen(0x5e3f1ce);

  service_replay out;
  std::size_t honest_rr = 0;
  std::uint64_t fresh_variant = 10'000;
  const auto drain_batch = [&](std::vector<serve::response> batch) {
    for (const auto& r : batch) {
      out.journal.push_back(
          std::to_string(r.id) + ":" +
          std::to_string(static_cast<int>(r.outcome)) + ":c" +
          std::to_string(r.client) + (r.escalated ? ":esc" : "") + ":r" +
          std::to_string(r.rung) + ":R" + std::to_string(r.repeats_used) +
          ":adv" + std::to_string(r.v.adversarial_any ? 1 : 0) + "@" +
          std::to_string(r.completed.count()));
      if (r.escalated && r.outcome == serve::response::kind::served &&
          (r.rung != 0 || r.repeats_used != full_r)) {
        out.escalated_full_fidelity = false;
      }
    }
  };

  for (std::size_t i = 0; i < n_traffic; ++i) {
    if (i % kCanaryEvery == 0) {
      (void)service.submit(synth_input(chw, 0), priority::canary);
    }
    const bool attack = gen.uniform() < 0.25;
    std::uint64_t client;
    tensor x;
    if (attack) {
      client = attacker_ids[gen.uniform_index(2)];
      // The campaign probe: one input per attacker, perturbed sub-step.
      x = synth_input(chw, client, 0.001 * static_cast<double>(i % 20));
    } else {
      client = honest_ids[honest_rr++ % 8];
      x = synth_input(chw, fresh_variant++);  // honest queries never repeat
    }
    const auto res =
        service.submit(std::move(x), priority::interactive, std::nullopt,
                       client);
    out.journal.push_back("sub:c" + std::to_string(client) + ":" +
                          std::string(serve::to_string(res.status)));
    out.peak_bytes = std::max(out.peak_bytes, tracker.bytes_used());
    if (i % 4 == 3) drain_batch(service.service_batch());
  }
  service.drain();
  drain_batch(service.flush());

  out.stats = service.stats();
  out.tstats = tracker.stats();
  for (const auto a : attacker_ids) {
    if (tracker.level(a) == track::escalation::banned) ++out.attacker_bans;
  }
  for (const auto h : honest_ids) {
    if (tracker.level(h) == track::escalation::banned) ++out.honest_bans;
  }
  out.journal.push_back("bans:" + std::to_string(out.tstats.bans) +
                        ":elev:" + std::to_string(out.tstats.elevations));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto threads_opt = bench::parse_threads(
      argc, argv, "bench_campaign_replay",
      "stateful query-stream defense under seeded attack campaigns: "
      "tracker-only scale replay, then end-to-end through the detection "
      "service with chaos-composable monitors");
  if (!threads_opt) return 0;
  const std::size_t threads = *threads_opt;

  // Phase A: tracker-only replay under a tight byte budget. The budget is
  // sized to force heavy eviction churn from the clean-client stream —
  // roughly 50 resident clients against thousands observed.
  track::track_config tcfg;
  tcfg.table.shards = 4;
  tcfg.table.byte_budget = 64 * 1024;
  const std::size_t n_clean = bench::scaled(2000);
  const std::size_t n_campaigns = bench::scaled(25);
  const auto a = run_tracker_replay(n_clean, n_campaigns, tcfg);

  // Phase B: the same defense attached to the serving stack (scenario S1
  // detector, chaos-composable monitor, virtual clock).
  auto rt = bench::prepare(data::scenario_id::s1);
  core::detector_config dcfg;
  dcfg.events = {hpc::hpc_event::cache_misses, hpc::hpc_event::llc_load_misses};
  dcfg.repeats = 10;
  auto fit_monitor = hpc::make_monitor(*rt.net);
  const auto det =
      bench::fit_detector(*fit_monitor, dcfg, rt.train, bench::scaled(20));

  track::track_config scfg;
  scfg.table.byte_budget = 256 * 1024;
  const std::size_t n_traffic = bench::scaled(320);
  const auto run1 = run_service_replay(det, *rt.net, n_traffic, scfg, 1);
  const auto run4 = run_service_replay(det, *rt.net, n_traffic, scfg, 4);
  const auto& s = run1.stats;

  // Gates.
  const bool campaigns_ok =
      a.campaigns_banned_in_time == a.campaigns && run1.attacker_bans == 2;
  const bool no_false_bans = a.clean_bans == 0 && run1.honest_bans == 0;
  const bool memory_ok = a.peak_bytes <= tcfg.table.byte_budget &&
                         run1.peak_bytes <= scfg.table.byte_budget;
  const bool service_ok = s.rejected_banned > 0 && s.escalated_admitted > 0 &&
                          s.escalated_served > 0 &&
                          run1.escalated_full_fidelity;
  const bool deterministic = run1.journal == run4.journal;

  text_table table(
      "Campaign replay: stateful query-stream defense (virtual clock)");
  table.set_header({"metric", "value"});
  table.add_row({"A: clean clients", std::to_string(a.clean_clients)});
  table.add_row({"A: campaigns", std::to_string(a.campaigns)});
  table.add_row({"A: campaigns banned in time",
                 std::to_string(a.campaigns_banned_in_time)});
  table.add_row({"A: clean-client bans", std::to_string(a.clean_bans)});
  table.add_row({"A: peak bytes / budget",
                 std::to_string(a.peak_bytes) + " / " +
                     std::to_string(tcfg.table.byte_budget)});
  table.add_row(
      {"A: evicted fingerprints", std::to_string(a.evicted_fingerprints)});
  table.add_row({"A: evicted clients", std::to_string(a.evicted_clients)});
  table.add_row({"B: traffic submitted", std::to_string(s.submitted)});
  table.add_row({"B: served", std::to_string(s.served)});
  table.add_row({"B: rejected (banned)", std::to_string(s.rejected_banned)});
  table.add_row(
      {"B: escalated admitted", std::to_string(s.escalated_admitted)});
  table.add_row({"B: escalated served", std::to_string(s.escalated_served)});
  table.add_row({"B: attacker bans", std::to_string(run1.attacker_bans)});
  table.add_row({"B: honest bans", std::to_string(run1.honest_bans)});
  table.add_row({"B: trace corroborations",
                 std::to_string(run1.tstats.trace_corroborations)});
  table.add_row({"B: peak bytes / budget",
                 std::to_string(run1.peak_bytes) + " / " +
                     std::to_string(scfg.table.byte_budget)});

  std::ostringstream json;
  json << "{\n  \"bench\": \"campaign_replay\",\n  \"scenario\": \"S1\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"clean_clients\": " << a.clean_clients << ",\n"
       << "  \"campaigns\": " << a.campaigns << ",\n"
       << "  \"campaigns_banned_in_time\": " << a.campaigns_banned_in_time
       << ",\n  \"clean_bans\": " << a.clean_bans << ",\n"
       << "  \"tracker_peak_bytes\": " << a.peak_bytes << ",\n"
       << "  \"evicted_fingerprints\": " << a.evicted_fingerprints << ",\n"
       << "  \"evicted_clients\": " << a.evicted_clients << ",\n"
       << "  \"service_submitted\": " << s.submitted << ",\n"
       << "  \"service_served\": " << s.served << ",\n"
       << "  \"rejected_banned\": " << s.rejected_banned << ",\n"
       << "  \"escalated_admitted\": " << s.escalated_admitted << ",\n"
       << "  \"escalated_served\": " << s.escalated_served << ",\n"
       << "  \"attacker_bans\": " << run1.attacker_bans << ",\n"
       << "  \"honest_bans\": " << run1.honest_bans << ",\n"
       << "  \"service_peak_bytes\": " << run1.peak_bytes << ",\n"
       << "  \"checks\": {\n"
       << "    \"campaigns_ok\": " << (campaigns_ok ? "true" : "false")
       << ",\n    \"no_false_bans\": " << (no_false_bans ? "true" : "false")
       << ",\n    \"memory_ok\": " << (memory_ok ? "true" : "false")
       << ",\n    \"service_ok\": " << (service_ok ? "true" : "false")
       << ",\n    \"deterministic_1_vs_4_threads\": "
       << (deterministic ? "true" : "false") << "\n  }\n}\n";
  write_file("bench_results/BENCH_campaign_replay.json", json.str());

  bench::emit(table, "campaign_replay");
  std::cout << "\nchecks: campaigns "
            << (campaigns_ok ? "ok" : "FAIL") << " ("
            << a.campaigns_banned_in_time << "/" << a.campaigns
            << " in time, " << run1.attacker_bans << "/2 service), false bans "
            << (no_false_bans ? "ok" : "FAIL") << ", memory "
            << (memory_ok ? "ok" : "FAIL") << ", service integration "
            << (service_ok ? "ok" : "FAIL") << ", determinism "
            << (deterministic ? "ok" : "FAIL") << "\n";

  const bool all_ok = campaigns_ok && no_false_bans && memory_ok &&
                      service_ok && deterministic;
  return all_ok ? 0 : 1;
}
