// google-benchmark microbenchmarks for the performance-critical library
// components: cache simulation, branch prediction, traced inference, GMM
// fitting, and detector scoring. These quantify the overhead budget of
// AdvHunter's online phase.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/detector.hpp"
#include "gmm/gmm.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/models/models.hpp"
#include "uarch/trace_gen.hpp"

using namespace advh;

namespace {

void BM_CacheAccess(benchmark::State& state) {
  uarch::cache c({"l1", 32 * 1024, 64, 8});
  rng gen(1);
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = gen.uniform_index(1 << 20) * 64;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        c.access(addrs[i++ & 4095], uarch::access_type::load));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_GsharePredict(benchmark::State& state) {
  uarch::gshare_predictor bp(12);
  rng gen(2);
  std::vector<bool> taken(4096);
  for (std::size_t i = 0; i < taken.size(); ++i) taken[i] = gen.bernoulli(0.7);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bp.execute(0x400, taken[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GsharePredict);

void BM_Inference(benchmark::State& state) {
  auto m = nn::make_model(nn::architecture::resnet_small, shape{3, 32, 32},
                          10, 1);
  rng gen(3);
  tensor x = tensor::rand_uniform(shape{1, 3, 32, 32}, gen, 0.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->predict_one(x));
  }
}
BENCHMARK(BM_Inference);

void BM_TracedInferencePlusSim(benchmark::State& state) {
  auto m = nn::make_model(nn::architecture::resnet_small, shape{3, 32, 32},
                          10, 1);
  uarch::trace_generator gen_sim;
  rng gen(4);
  tensor x = tensor::rand_uniform(shape{1, 3, 32, 32}, gen, 0.0f, 1.0f);
  for (auto _ : state) {
    std::size_t pred = 0;
    auto trace = m->trace_inference(x, pred);
    benchmark::DoNotOptimize(gen_sim.run(trace));
  }
}
BENCHMARK(BM_TracedInferencePlusSim);

void BM_GmmFitBic(benchmark::State& state) {
  rng gen(5);
  std::vector<double> data;
  for (int i = 0; i < 40; ++i) data.push_back(gen.normal(1000.0, 10.0));
  for (int i = 0; i < 40; ++i) data.push_back(gen.normal(1200.0, 12.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmm::gmm1d::fit_best_bic(data, 4));
  }
}
BENCHMARK(BM_GmmFitBic);

void BM_DetectorScore(benchmark::State& state) {
  core::benign_template tpl(10, 5);
  rng gen(6);
  for (std::size_t cls = 0; cls < 10; ++cls) {
    for (int m = 0; m < 40; ++m) {
      std::vector<double> row;
      for (int e = 0; e < 5; ++e) {
        row.push_back(gen.normal(1000.0 * (e + 1), 10.0));
      }
      tpl.add_row(cls, row);
    }
  }
  core::detector_config cfg;
  cfg.events = hpc::core_events();
  const auto det = core::detector::fit(tpl, cfg);
  std::vector<double> probe{1000, 2000, 3000, 4000, 5000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.score(3, probe));
  }
}
BENCHMARK(BM_DetectorScore);

}  // namespace

BENCHMARK_MAIN();
