// Reproduces Figure 6: AdvHunter F1 (cache-misses) as a function of the
// validation-set size M per category, for scenarios S1 and S2 (and the S3
// trend the paper describes in text), under untargeted FGSM eps = 0.01.
// Each point averages 30 random validation subsets; the band is their
// standard deviation.
//
// Expected shape (paper): F1 saturates at M ~ 30 for S1, ~ 40 for S2, and
// ~ 60 for the 43-class S3.
#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"

using namespace advh;

namespace {

struct measured_input {
  std::size_t predicted = 0;
  std::vector<double> counts;
};

/// Measures a set of inputs once; measurements are then reused across all
/// (M, resample) detector variants, which is what makes the 30-resample
/// protocol tractable.
std::vector<measured_input> measure_all(hpc::hpc_monitor& monitor,
                                        const std::vector<tensor>& inputs,
                                        std::span<const hpc::hpc_event> events,
                                        std::size_t repeats,
                                        std::size_t threads) {
  auto ms = monitor.measure_batch(inputs, events, repeats, threads);
  std::vector<measured_input> out;
  out.reserve(ms.size());
  for (auto& m : ms) out.push_back({m.predicted, std::move(m.mean_counts)});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto threads_opt = bench::parse_threads(
      argc, argv, "bench_fig6_validation_size",
      "Figure 6: F1 vs validation size M");
  if (!threads_opt) return 0;
  const std::size_t threads = *threads_opt;

  const std::vector<std::size_t> sizes{5, 10, 15, 20, 30, 40, 60, 80};
  const std::size_t resamples = 30;

  std::vector<plot::series> curves;
  text_table table("Figure 6: F1 vs validation size M (30 resamples)");
  table.set_header({"scenario", "M", "mean F1", "std dev"});

  for (auto id : {data::scenario_id::s1, data::scenario_id::s2,
                  data::scenario_id::s3}) {
    auto rt = bench::prepare(id);
    auto monitor = bench::make_monitor(*rt.net);

    core::detector_config dcfg;
    dcfg.events = {hpc::hpc_event::cache_misses};
    dcfg.repeats = 10;

    // Validation measurement pool: up to max(sizes) correctly classified
    // images per class, measured once.
    const std::size_t pool_size = sizes.back();
    std::vector<std::vector<measured_input>> val_pool(rt.train.num_classes);
    for (std::size_t cls = 0; cls < rt.train.num_classes; ++cls) {
      auto inputs = bench::clean_of_class(*rt.net, rt.train, cls, pool_size);
      val_pool[cls] =
          measure_all(*monitor, inputs, dcfg.events, dcfg.repeats, threads);
    }

    // Evaluation set: clean images + untargeted FGSM eps=0.01 AEs,
    // measured once.
    const std::size_t eval_n = bench::scaled(40);
    std::vector<tensor> clean;
    for (std::size_t cls = 0; cls < rt.test.num_classes; ++cls) {
      auto v = bench::clean_of_class(
          *rt.net, rt.test, cls,
          std::max<std::size_t>(1, eval_n / rt.test.num_classes));
      for (auto& x : v) clean.push_back(std::move(x));
    }
    auto pool = bench::attack_pool(
        rt, std::max<std::size_t>(4, bench::scaled(80) / rt.test.num_classes));
    auto adv = bench::collect_adversarial(
        *rt.net, pool, attack::attack_kind::pgd,
        attack::attack_goal::targeted, 0.1f, rt.spec.target_class,
        clean.size());
    auto clean_meas =
        measure_all(*monitor, clean, dcfg.events, dcfg.repeats, threads);
    auto adv_meas =
        measure_all(*monitor, adv.inputs, dcfg.events, dcfg.repeats, threads);

    plot::series curve;
    curve.name = rt.spec.label;
    rng resampler(1234 + static_cast<std::uint64_t>(id));
    for (std::size_t m : sizes) {
      stats::running_stats f1_stats;
      for (std::size_t rep = 0; rep < resamples; ++rep) {
        // Random subset of M measured validation rows per class.
        core::benign_template tpl(rt.train.num_classes, dcfg.events.size());
        for (std::size_t cls = 0; cls < rt.train.num_classes; ++cls) {
          auto order = resampler.permutation(val_pool[cls].size());
          const std::size_t take = std::min(m, val_pool[cls].size());
          for (std::size_t i = 0; i < take; ++i) {
            tpl.add_row(cls, val_pool[cls][order[i]].counts);
          }
        }
        const auto det = core::detector::fit(tpl, dcfg, threads);

        core::detection_confusion confusion;
        for (const auto& mi : clean_meas) {
          confusion.push(false, det.score(mi.predicted, mi.counts).flagged[0]);
        }
        for (const auto& mi : adv_meas) {
          confusion.push(true, det.score(mi.predicted, mi.counts).flagged[0]);
        }
        f1_stats.push(confusion.f1());
      }
      curve.y.push_back(f1_stats.mean());
      curve.band.push_back(f1_stats.stddev());
      table.add_row({rt.spec.label, std::to_string(m),
                     text_table::num(f1_stats.mean(), 4),
                     text_table::num(f1_stats.stddev(), 4)});
    }
    curves.push_back(std::move(curve));
  }

  std::vector<double> xs(sizes.begin(), sizes.end());
  std::ostringstream artifact;
  artifact << plot::line_plot(xs, curves, 64, 18);
  std::cout << artifact.str() << "\n";
  bench::emit(table, "fig6_validation_size");
  bench::emit_text(artifact.str(), "fig6_validation_size_plot");
  return 0;
}
