// Overload-resilience bench: the detection service under a deterministic
// 4x-overload arrival schedule, driven entirely on the virtual clock.
//
// A scenario-S1 detector (two cache events, R = 10) serves a mixed
// interactive/batch request stream arriving four times faster than the
// full-fidelity service rate, with periodic full-fidelity canary probes
// riding along. The service must degrade *predictably*: admission control
// rejects what cannot meet its deadline, the degradation ladder sheds
// repeats (and, at the deepest rung, events) to claw back throughput, and
// whatever is admitted completes on time. Four self-checks gate the exit
// code:
//   * deadlines — zero deadline misses among admitted requests, and zero
//     post-admission sheds: admission never accepts work it cannot serve;
//   * canaries — every canary probe is served at full fidelity, none shed;
//   * goodput — the served fraction of traffic beats the no-shedding bound
//     (at 4x overload a fixed-fidelity server caps out at 25%);
//   * accuracy — fused detection accuracy over the served traffic stays
//     within 2 points of the same inputs classified on an unloaded stack.
//   * determinism — the whole overload run (admissions, rungs, verdicts,
//     virtual completion times) is bitwise identical at 1 and 4 worker
//     threads.
//
// The monitor stack is built through hpc::make_monitor, so the
// ADVH_FAULT_RATE chaos knob composes: the CI overload-chaos job replays
// this bench with 5% injected counter faults on top of the overload.
//
// Writes bench_results/BENCH_overload_shedding.{csv,json}.
#include <cmath>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "hpc/factory.hpp"
#include "serve/service.hpp"

using namespace advh;

namespace {

using serve::clock_duration;
using serve::priority;
using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr double kOverloadFactor = 4.0;
constexpr double kGoodputFloor = 0.25;     // fixed-fidelity bound at 4x
constexpr double kMaxAccuracyDrop = 2.0;   // percentage points, fault-free
constexpr double kMaxAccuracyDropChaos = 8.0;  // under injected faults
constexpr std::size_t kCanaryEvery = 25;   // traffic arrivals per canary

/// One scheduled arrival of the open-loop load generator.
struct arrival {
  clock_duration at{0};
  priority prio = priority::interactive;
  std::size_t pool_idx = 0;  ///< index into the eval pool (canary: unused)
  clock_duration deadline = serve::no_deadline;  ///< relative to arrival
};

serve::serve_config service_config(std::size_t threads) {
  serve::serve_config cfg;
  cfg.queue_capacity = 24;
  cfg.batch_size = 4;
  cfg.threads = threads;
  cfg.default_deadline = milliseconds(25);
  cfg.admission_margin = 3.0;
  // Keep the batch tail below the first degraded rung's engage occupancy
  // (0.5): queued batch alone can then never degrade interactive fidelity,
  // and batch that would only sit behind interactive arrivals until its
  // deadline expires is rejected up front instead of shed after admission.
  cfg.batch_admit_occupancy = 1.0 / 3.0;
  // Ladder tuned to this traffic: admission keeps the queue shallow (it
  // rejects what cannot meet its deadline), so the default rung-1 engage
  // point of 0.5 occupancy would never be reached and shedding would buy
  // nothing. Engage the first degraded rung early and keep its fidelity
  // high (R = 8 of 10, bounded backoff-free repair rounds) so the
  // accuracy cost of the throughput stays inside the bench gate; deeper
  // rungs only catch bursts.
  cfg.ladder = {
      {0.00, 10, hpc::measure_budget::unlimited, true, false},
      {0.15, 8, 3, false, false},
      {0.55, 5, 2, false, false},
      {0.85, 3, 1, false, true},
  };
  return cfg;
}

/// Deterministic 4x-overload schedule over `pool_size` eval inputs:
/// ~70% interactive (25ms deadlines) / 30% batch (60ms), a canary probe
/// every kCanaryEvery traffic arrivals, inter-arrival time = full-fidelity
/// service estimate / overload factor.
std::vector<arrival> make_schedule(std::size_t n_traffic,
                                   std::size_t pool_size,
                                   const serve::serve_config& cfg,
                                   std::size_t n_events, std::size_t repeats) {
  const auto est_full = cfg.sim_cost.fixed +
                        cfg.sim_cost.per_unit *
                            static_cast<clock_duration::rep>(
                                repeats * n_events);
  const auto period = clock_duration(static_cast<clock_duration::rep>(
      static_cast<double>(est_full.count()) / kOverloadFactor));
  rng gen(0xbead5);
  std::vector<arrival> schedule;
  schedule.reserve(n_traffic + n_traffic / kCanaryEvery + 1);
  clock_duration t{0};
  for (std::size_t i = 0; i < n_traffic; ++i) {
    if (i % kCanaryEvery == 0) {
      arrival canary;
      canary.at = t;
      canary.prio = priority::canary;
      schedule.push_back(canary);
    }
    arrival a;
    a.at = t;
    a.prio = gen.uniform() < 0.7 ? priority::interactive : priority::batch;
    a.pool_idx = static_cast<std::size_t>(gen.uniform_index(pool_size));
    a.deadline = a.prio == priority::interactive ? milliseconds(25)
                                                 : milliseconds(60);
    schedule.push_back(a);
    t += period;
  }
  return schedule;
}

struct overload_run {
  std::vector<serve::response> responses;
  serve::serve_stats stats;
  /// request id -> eval-pool index (canaries map to pool_size).
  std::vector<std::size_t> id_to_pool;
};

/// Replays the schedule against a fresh monitor stack + service. The
/// driver is open-loop: arrivals submit at their scheduled virtual times
/// (a busy server processes them late, it never delays them), service
/// rounds run whenever work is queued, and the virtual clock advances
/// through charged request costs.
overload_run run_overload(const core::detector& det, nn::model& net,
                          const std::vector<arrival>& schedule,
                          std::span<const tensor> pool,
                          const tensor& canary_input, std::size_t threads) {
  auto monitor = hpc::make_monitor(net);
  serve::virtual_clock clock;
  serve::detection_service service(det, *monitor, clock,
                                   service_config(threads));
  overload_run out;
  out.id_to_pool.push_back(pool.size());  // id 0 is never issued
  std::size_t next = 0;
  while (next < schedule.size() || service.queue_depth() > 0) {
    const auto now = clock.now();
    while (next < schedule.size() && schedule[next].at <= now) {
      const auto& a = schedule[next++];
      const bool canary = a.prio == priority::canary;
      (void)service.submit(canary ? canary_input : pool[a.pool_idx], a.prio,
                           canary ? std::optional<clock_duration>{}
                                  : std::optional<clock_duration>{a.deadline});
      out.id_to_pool.push_back(canary ? pool.size() : a.pool_idx);
    }
    auto batch = service.service_batch();
    if (batch.empty()) {
      if (next >= schedule.size()) break;
      clock.advance_to(schedule[next].at);  // idle: jump to the next arrival
      continue;
    }
    out.responses.insert(out.responses.end(),
                         std::make_move_iterator(batch.begin()),
                         std::make_move_iterator(batch.end()));
  }
  service.drain();
  auto rest = service.flush();
  out.responses.insert(out.responses.end(),
                       std::make_move_iterator(rest.begin()),
                       std::make_move_iterator(rest.end()));
  out.stats = service.stats();
  return out;
}

bool same_runs(const overload_run& a, const overload_run& b) {
  if (a.responses.size() != b.responses.size()) return false;
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    const auto& x = a.responses[i];
    const auto& y = b.responses[i];
    if (x.id != y.id || x.outcome != y.outcome || x.prio != y.prio ||
        x.completed != y.completed || x.repeats_used != y.repeats_used ||
        x.rung != y.rung || x.events_shed != y.events_shed ||
        x.deadline_missed != y.deadline_missed ||
        x.v.adversarial_any != y.v.adversarial_any || x.v.nll != y.v.nll) {
      return false;
    }
  }
  return a.stats.admitted == b.stats.admitted &&
         a.stats.served == b.stats.served &&
         a.stats.shed_deadline == b.stats.shed_deadline &&
         a.stats.rejected_deadline == b.stats.rejected_deadline &&
         a.stats.rejected_backpressure == b.stats.rejected_backpressure &&
         a.stats.rejected_queue_full == b.stats.rejected_queue_full &&
         a.stats.max_rung_engaged == b.stats.max_rung_engaged;
}

}  // namespace

int main(int argc, char** argv) {
  const auto threads_opt = bench::parse_threads(
      argc, argv, "bench_overload_shedding",
      "detection service under a deterministic 4x overload: admission "
      "control, degradation-ladder shedding, deadline compliance");
  if (!threads_opt) return 0;
  const std::size_t threads = *threads_opt;

  auto rt = bench::prepare(data::scenario_id::s1);

  core::detector_config dcfg;
  dcfg.events = {hpc::hpc_event::cache_misses, hpc::hpc_event::llc_load_misses};
  dcfg.repeats = 10;

  auto fit_monitor = hpc::make_monitor(*rt.net);
  const auto det =
      bench::fit_detector(*fit_monitor, dcfg, rt.train, bench::scaled(30));

  // Balanced eval pool: clean images of every class + untargeted FGSM AEs.
  std::vector<tensor> pool;
  std::vector<bool> pool_adv;
  for (std::size_t cls = 0; cls < rt.test.num_classes; ++cls) {
    auto v = bench::clean_of_class(*rt.net, rt.test, cls, bench::scaled(8));
    for (auto& x : v) {
      pool.push_back(std::move(x));
      pool_adv.push_back(false);
    }
  }
  const std::size_t n_clean = pool.size();
  auto atk = bench::attack_pool(rt, bench::scaled(40));
  auto adv = bench::collect_adversarial(*rt.net, atk,
                                        attack::attack_kind::fgsm,
                                        attack::attack_goal::untargeted, 0.1f,
                                        0, n_clean);
  for (auto& x : adv.inputs) {
    pool.push_back(std::move(x));
    pool_adv.push_back(true);
  }
  const tensor canary_input = pool.front();  // pinned full-fidelity probe
  std::cout << "S1 eval pool: " << n_clean << " clean + "
            << pool.size() - n_clean << " adversarial\n";

  // Unloaded reference: the same pool classified one-by-one on an idle
  // stack at full fidelity — the accuracy the service must stay near.
  auto baseline_monitor = hpc::make_monitor(*rt.net);
  const auto baseline_verdicts =
      det.classify_batch(*baseline_monitor, pool, threads);
  core::detection_confusion baseline_all;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    baseline_all.push(pool_adv[i], baseline_verdicts[i].adversarial_any);
  }

  const auto cfg = service_config(threads);
  const auto schedule =
      make_schedule(bench::scaled(1200), pool.size(), cfg, dcfg.events.size(),
                    dcfg.repeats);
  const auto run =
      run_overload(det, *rt.net, schedule, pool, canary_input, threads);
  const auto& s = run.stats;

  // Loaded accuracy over served traffic vs the unloaded reference over
  // exactly the same inputs.
  core::detection_confusion loaded, unloaded_same;
  for (const auto& r : run.responses) {
    if (r.prio == priority::canary ||
        r.outcome != serve::response::kind::served) {
      continue;
    }
    const std::size_t idx = run.id_to_pool[r.id];
    loaded.push(pool_adv[idx], r.v.adversarial_any);
    unloaded_same.push(pool_adv[idx], baseline_verdicts[idx].adversarial_any);
  }
  const double loaded_acc = 100.0 * loaded.accuracy();
  const double unloaded_acc = 100.0 * unloaded_same.accuracy();
  const double acc_drop = unloaded_acc - loaded_acc;

  const std::uint64_t traffic_submitted = s.submitted - s.canary_submitted;
  const std::uint64_t traffic_served = s.served - s.canary_served;
  const double goodput = traffic_submitted == 0
                             ? 0.0
                             : static_cast<double>(traffic_served) /
                                   static_cast<double>(traffic_submitted);

  text_table table("Overload shedding: 4x open-loop overload (scenario S1, "
                   "virtual clock)");
  table.set_header({"metric", "value"});
  table.add_row({"traffic submitted", std::to_string(traffic_submitted)});
  table.add_row({"traffic served", std::to_string(traffic_served)});
  table.add_row({"goodput %", text_table::num(100.0 * goodput, 2)});
  table.add_row({"rejected (deadline)", std::to_string(s.rejected_deadline)});
  table.add_row(
      {"rejected (backpressure)", std::to_string(s.rejected_backpressure)});
  table.add_row(
      {"rejected (queue full)", std::to_string(s.rejected_queue_full)});
  table.add_row({"shed after admission", std::to_string(s.shed_deadline)});
  table.add_row({"deadline misses", std::to_string(s.deadline_misses)});
  table.add_row({"canaries served/submitted",
                 std::to_string(s.canary_served) + "/" +
                     std::to_string(s.canary_submitted)});
  table.add_row({"canaries shed", std::to_string(s.canary_shed)});
  table.add_row({"max rung engaged", std::to_string(s.max_rung_engaged)});
  std::ostringstream by_rung;
  for (std::size_t r = 0; r < s.served_by_rung.size(); ++r) {
    by_rung << (r == 0 ? "" : " / ") << s.served_by_rung[r];
  }
  table.add_row({"served by rung", by_rung.str()});
  table.add_row({"repeats shed", std::to_string(s.repeats_shed)});
  table.add_row(
      {"event-shed requests", std::to_string(s.events_shed_requests)});
  table.add_row({"degraded verdicts", std::to_string(s.degraded_verdicts)});
  table.add_row({"abstained verdicts", std::to_string(s.abstained_verdicts)});
  table.add_row({"loaded accuracy %", text_table::num(loaded_acc, 2)});
  table.add_row({"unloaded accuracy %", text_table::num(unloaded_acc, 2)});
  table.add_row({"breaker trips", std::to_string(s.breaker_trips)});

  // Self-check 1: deadline compliance. Nothing admitted misses, nothing
  // admitted sheds post-hoc: admission only says yes when it can deliver.
  const bool deadlines_ok = s.deadline_misses == 0 && s.shed_deadline == 0;
  // Self-check 2: canaries ride through the storm untouched.
  const bool canaries_ok =
      s.canary_shed == 0 && s.canary_served == s.canary_submitted;
  // Self-check 3: shedding buys real throughput over the fixed-fidelity
  // bound.
  const bool goodput_ok = goodput >= kGoodputFloor;
  // Self-check 4: the degraded traffic is still an accurate detector.
  // Under injected counter faults (the CI overload-chaos job) the loaded
  // run and the unloaded baseline draw independent faults on every
  // borderline sample, so the paired difference has a noise floor well
  // above the fidelity signal: a control run serving *everything* at full
  // R = 10 under ADVH_FAULT_RATE=0.05 still measures a ~6pt paired gap.
  // The chaos gate therefore only asserts "no fidelity collapse" — the
  // single-repeat junk this bench was built to catch shows up as a >10pt
  // drop — while the fault-free run keeps the tight 2pt gate.
  const double max_drop = hpc::fault_config_from_env().has_value()
                              ? kMaxAccuracyDropChaos
                              : kMaxAccuracyDrop;
  const bool accuracy_ok = std::abs(acc_drop) <= max_drop;
  // Self-check 5: bitwise thread-invariance of the whole overload run.
  const auto run1 =
      run_overload(det, *rt.net, schedule, pool, canary_input, 1);
  const auto run4 =
      run_overload(det, *rt.net, schedule, pool, canary_input, 4);
  const bool deterministic = same_runs(run1, run4);

  std::ostringstream json;
  json << "{\n  \"bench\": \"overload_shedding\",\n  \"scenario\": \"S1\",\n"
       << "  \"overload_factor\": " << kOverloadFactor << ",\n"
       << "  \"events\": " << dcfg.events.size() << ",\n  \"repeats\": "
       << dcfg.repeats << ",\n  \"threads\": " << threads << ",\n"
       << "  \"traffic_submitted\": " << traffic_submitted << ",\n"
       << "  \"traffic_served\": " << traffic_served << ",\n"
       << "  \"goodput\": " << goodput << ",\n"
       << "  \"rejected_deadline\": " << s.rejected_deadline << ",\n"
       << "  \"rejected_backpressure\": " << s.rejected_backpressure << ",\n"
       << "  \"rejected_queue_full\": " << s.rejected_queue_full << ",\n"
       << "  \"shed_deadline\": " << s.shed_deadline << ",\n"
       << "  \"deadline_misses\": " << s.deadline_misses << ",\n"
       << "  \"canary_submitted\": " << s.canary_submitted << ",\n"
       << "  \"canary_served\": " << s.canary_served << ",\n"
       << "  \"canary_shed\": " << s.canary_shed << ",\n"
       << "  \"max_rung_engaged\": " << s.max_rung_engaged << ",\n"
       << "  \"repeats_shed\": " << s.repeats_shed << ",\n"
       << "  \"events_shed_requests\": " << s.events_shed_requests << ",\n"
       << "  \"degraded_verdicts\": " << s.degraded_verdicts << ",\n"
       << "  \"abstained_verdicts\": " << s.abstained_verdicts << ",\n"
       << "  \"loaded_accuracy\": " << loaded_acc << ",\n"
       << "  \"unloaded_accuracy\": " << unloaded_acc << ",\n"
       << "  \"checks\": {\n"
       << "    \"deadlines_ok\": " << (deadlines_ok ? "true" : "false")
       << ",\n    \"canaries_ok\": " << (canaries_ok ? "true" : "false")
       << ",\n    \"goodput_ok\": " << (goodput_ok ? "true" : "false")
       << ",\n    \"accuracy_ok\": " << (accuracy_ok ? "true" : "false")
       << ",\n    \"deterministic_1_vs_4_threads\": "
       << (deterministic ? "true" : "false") << "\n  }\n}\n";
  write_file("bench_results/BENCH_overload_shedding.json", json.str());

  bench::emit(table, "overload_shedding");
  std::cout << "\nchecks: deadlines " << (deadlines_ok ? "ok" : "FAIL")
            << " (misses " << s.deadline_misses << ", shed "
            << s.shed_deadline << "), canaries "
            << (canaries_ok ? "ok" : "FAIL") << ", goodput "
            << text_table::num(100.0 * goodput, 2) << "% ("
            << (goodput_ok ? "ok" : "FAIL") << "), accuracy drop "
            << text_table::num(acc_drop, 2) << "pt ("
            << (accuracy_ok ? "ok" : "FAIL") << "), determinism "
            << (deterministic ? "ok" : "FAIL") << "\n";

  const bool all_ok = deadlines_ok && canaries_ok && goodput_ok &&
                      accuracy_ok && deterministic;
  return all_ok ? 0 : 1;
}
