// Reproduces Figure 3: distributions of the HPC events `branches`,
// `branch-misses`, `cache-references` and `cache-misses` for clean inputs
// and corresponding adversarial examples in scenario S2 under a targeted
// FGSM attack with eps = 0.5.
//
// Expected shape (paper): branches and branch-misses overlap almost
// completely (instructions, omitted there, behaves identically);
// cache-references overlaps somewhat less; cache-misses separates clearly
// and is visibly multi-modal — the motivation for modelling templates with
// GMMs.
#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"

using namespace advh;

int main() {
  auto rt = bench::prepare(data::scenario_id::s2);
  auto monitor = bench::make_monitor(*rt.net);

  const std::size_t count = bench::scaled(120);
  auto clean = bench::clean_of_class(*rt.net, rt.test, rt.spec.target_class,
                                     count);
  auto pool = bench::attack_pool(rt, bench::scaled(60));
  auto adv = bench::collect_adversarial(
      *rt.net, pool, attack::attack_kind::fgsm, attack::attack_goal::targeted,
      0.1f, rt.spec.target_class, count);

  std::cout << "Figure 3: HPC event distributions, S2 targeted FGSM eps=0.1 "
            << "(targeted attack accuracy "
            << text_table::num(100.0 * adv.attack_accuracy_metric, 2)
            << "%, " << clean.size() << " clean / " << adv.inputs.size()
            << " adversarial)\n\n";

  const std::vector<hpc::hpc_event> events{
      hpc::hpc_event::branches, hpc::hpc_event::branch_misses,
      hpc::hpc_event::cache_references, hpc::hpc_event::cache_misses};

  // Measure both populations once (R = 10 repeats, as in the paper).
  auto measure_all = [&](const std::vector<tensor>& inputs) {
    std::vector<std::vector<double>> per_event(events.size());
    for (const auto& x : inputs) {
      auto m = monitor->measure(x, events, 10);
      for (std::size_t e = 0; e < events.size(); ++e) {
        per_event[e].push_back(m.mean_counts[e]);
      }
    }
    return per_event;
  };
  auto clean_vals = measure_all(clean);
  auto adv_vals = measure_all(adv.inputs);

  std::ostringstream artifact;
  text_table csv("fig3 series");
  csv.set_header({"event", "population", "mean", "sd", "min", "max"});
  for (std::size_t e = 0; e < events.size(); ++e) {
    artifact << to_string(events[e]) << "\n"
             << plot::dual_histogram(clean_vals[e], adv_vals[e], "clean",
                                     "adversarial", 48, 9)
             << "\n";
    for (int pop = 0; pop < 2; ++pop) {
      const auto& v = pop == 0 ? clean_vals[e] : adv_vals[e];
      csv.add_row({to_string(events[e]), pop == 0 ? "clean" : "adversarial",
                   text_table::num(stats::mean(v), 1),
                   text_table::num(stats::stddev(v), 1),
                   text_table::num(stats::min(v), 1),
                   text_table::num(stats::max(v), 1)});
    }
  }
  std::cout << artifact.str();
  csv.print(std::cout);
  bench::emit_text(artifact.str(), "fig3_hpc_distributions");
  write_file("bench_results/fig3_hpc_distributions.csv", csv.to_csv());
  return 0;
}
