// Drift-recovery sweep: the drift-aware operation loop (canary probes ->
// sequential drift detection -> quarantine -> rolling recalibration)
// exercised against injected baseline drift of varying magnitude and
// shape, optionally composed with counter faults.
//
// Per configuration the bench runs the full deployment loop over a
// balanced clean + adversarial pool and reports, per phase: fused
// accuracy, silent benign false positives during the quarantine window
// (clean inputs flagged *without* an abstention — the failure mode the
// quarantine exists to prevent), abstentions, and recalibration counts.
// Four self-checks gate the exit code:
//   * no-drift control — a drift-free run must trigger zero
//     recalibrations (no false canary alarms);
//   * attack control — an attack-only victim stream (canaries stable)
//     must trigger zero recalibrations: victim-side anomalies are
//     telemetry, never a reason to rewrite the baseline;
//   * fail-closed window — under the 2x cache-miss step, the silent
//     benign false-positive rate between drift onset and recalibration
//     (clean inputs flagged without an abstention) must not exceed the
//     no-drift run's rate on the same epochs: the drift-induced FPR spike
//     is absorbed by quarantine/abstention, never silent;
//   * recovery — post-recalibration accuracy must come back to within
//     2 points of the no-drift baseline;
// plus a determinism check: the whole loop (measure -> drift -> refit),
// serialised as an ADET v4 checkpoint, must be bitwise identical when run
// with 1 and with 4 measurement threads.
//
// Writes bench_results/BENCH_drift_recovery.{csv,json}.
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "core/detector_io.hpp"
#include "hpc/drift_backend.hpp"
#include "hpc/fault_backend.hpp"
#include "hpc/resilient_monitor.hpp"

using namespace advh;

namespace {

constexpr double kMaxAccuracyDrop = 2.0;     // percentage points
/// The detector has a baseline clean FPR even without drift; the fail-
/// closed gate bounds the *excess* silent-FP rate during the quarantine
/// window over the no-drift run's rate on the same epochs. A drift-induced
/// FPR spike leaking through unabstained would blow far past this.
constexpr double kMaxSilentFpExcess = 2.0;   // percentage points
constexpr std::size_t kWarmupEpochs = 2;

/// Same rate split the ADVH_FAULT_RATE chaos knob uses (hpc/factory).
hpc::fault_config faults_for(double rate) {
  hpc::fault_config fc;
  fc.read_failure_rate = rate;
  fc.spike_rate = rate / 2.0;
  fc.stuck_rate = rate / 4.0;
  fc.hang_rate = rate / 50.0;
  fc.hang_ms = 1;
  fc.seed = 13;
  return fc;
}

/// sim [-> drift] [-> fault] -> resilient stack with fixed seeds. Drift
/// sits closest to the hardware: faults corrupt an already-drifted
/// baseline, the order deployments experience.
hpc::monitor_ptr make_stack(nn::model& m,
                            const std::optional<hpc::drift_profile>& drift,
                            double fault_rate) {
  hpc::monitor_ptr stack = bench::make_monitor(m);
  if (drift.has_value()) {
    stack = std::make_unique<hpc::drift_backend>(std::move(stack), *drift);
  }
  if (fault_rate > 0.0) {
    stack = std::make_unique<hpc::fault_backend>(std::move(stack),
                                                 faults_for(fault_rate));
  }
  return std::make_unique<hpc::resilient_monitor>(std::move(stack));
}

struct epoch_stats {
  core::detection_confusion fused;
  std::size_t silent_fp = 0;   ///< clean flagged without abstention
  std::size_t abstained = 0;
  std::size_t quarantined_at_eval = 0;
  std::uint64_t recalibrations_before = 0;  ///< cumulative, at epoch start
};

struct run_result {
  std::vector<epoch_stats> epochs;
  core::detection_confusion overall;
  std::uint64_t recalibrations = 0;
  std::size_t canaries_rejected = 0;
  /// Serialised ADET v4 checkpoint of the final controller state (the
  /// determinism check compares these byte-for-byte across thread counts).
  std::string checkpoint_bytes;
};

/// Runs the deployment loop: per epoch, probe the canaries, score the
/// clean and adversarial pools through the controller, then recalibrate
/// any quarantined class whose reservoir has filled. Epoch order puts
/// recalibration last so the quarantine window is observable in the same
/// epoch the canaries alarmed.
run_result run_loop(const core::detector& det, const core::drift_policy& policy,
                    hpc::hpc_monitor& monitor, const core::canary_set& canaries,
                    std::span<const tensor> clean, std::span<const tensor> adv,
                    std::size_t epochs, std::size_t threads) {
  core::drift_controller ctl(det, policy);
  run_result out;
  const auto& cfg = ctl.det().config();
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    epoch_stats st;
    st.recalibrations_before = ctl.state().recalibrations;
    core::probe_canaries(ctl, monitor, canaries, threads);
    st.quarantined_at_eval = ctl.report().quarantined_cells;

    const auto eval = [&](std::span<const tensor> inputs, bool adversarial) {
      const auto ms =
          monitor.measure_batch(inputs, cfg.events, cfg.repeats, threads);
      for (const auto& m : ms) {
        const auto v = ctl.score_victim(m);
        st.fused.push(adversarial, v.adversarial_any);
        out.overall.push(adversarial, v.adversarial_any);
        if (v.abstained) ++st.abstained;
        if (!adversarial && v.adversarial_any && !v.abstained) ++st.silent_fp;
      }
    };
    eval(clean, false);
    eval(adv, true);

    if (ctl.recalibration_due()) ctl.recalibrate(threads);
    out.epochs.push_back(std::move(st));
  }
  out.recalibrations = ctl.state().recalibrations;
  out.canaries_rejected =
      static_cast<std::size_t>(ctl.state().canaries_rejected);

  const std::string tmp =
      (std::filesystem::temp_directory_path() /
       ("advh_bench_drift_ckpt." + std::to_string(::getpid()) + ".adet"))
          .string();
  core::save_checkpoint(ctl, tmp);
  std::ifstream is(tmp, std::ios::binary);
  out.checkpoint_bytes.assign(std::istreambuf_iterator<char>(is),
                              std::istreambuf_iterator<char>());
  std::remove(tmp.c_str());
  return out;
}

/// Accuracy (percent) over the epochs [from, to).
double phase_accuracy(const run_result& r, std::size_t from, std::size_t to) {
  core::detection_confusion c;
  for (std::size_t e = from; e < to && e < r.epochs.size(); ++e) {
    c.merge(r.epochs[e].fused);
  }
  return c.total() == 0 ? 0.0 : 100.0 * c.accuracy();
}

/// Epochs whose quarantine was active at eval time (the fail-closed
/// window of a drifted run).
std::vector<std::size_t> window_epochs(const run_result& r) {
  std::vector<std::size_t> w;
  for (std::size_t e = 0; e < r.epochs.size(); ++e) {
    if (r.epochs[e].quarantined_at_eval > 0) w.push_back(e);
  }
  return w;
}

/// Silent benign false positives summed over the given epochs.
std::size_t silent_fp_over(const run_result& r,
                           std::span<const std::size_t> epochs) {
  std::size_t n = 0;
  for (const std::size_t e : epochs) {
    if (e < r.epochs.size()) n += r.epochs[e].silent_fp;
  }
  return n;
}

/// First epoch that starts with every recalibration already applied and
/// no quarantine active at eval (epochs.size() when never recovered).
std::size_t recovery_epoch(const run_result& r) {
  for (std::size_t e = 0; e < r.epochs.size(); ++e) {
    if (r.epochs[e].recalibrations_before > 0 &&
        r.epochs[e].quarantined_at_eval == 0) {
      return e;
    }
  }
  return r.epochs.size();
}

}  // namespace

int main(int argc, char** argv) {
  const auto threads_opt = bench::parse_threads(
      argc, argv, "bench_drift_recovery",
      "drift-aware detection loop under injected baseline drift: quarantine, "
      "canary-gated recalibration, and recovery accuracy");
  if (!threads_opt) return 0;
  const std::size_t threads = *threads_opt;

  auto rt = bench::prepare(data::scenario_id::s1);

  core::detector_config dcfg;
  dcfg.events = hpc::core_events();
  dcfg.repeats = 10;

  // The injected drift models co-tenant cache pressure: it inflates the
  // cache events of the detector's set while instructions/branches stay
  // calibrated, so quarantine masks exactly the drifted cells and verdicts
  // continue on the healthy ones (degraded, fail-closed).
  const std::vector<hpc::hpc_event> drifted_events = {
      hpc::hpc_event::cache_references, hpc::hpc_event::cache_misses};

  // Calibrate on the clean baseline; drift arrives after deployment.
  auto fit_monitor = bench::make_monitor(*rt.net);
  const auto det =
      bench::fit_detector(*fit_monitor, dcfg, rt.train, bench::scaled(30));

  const auto canaries =
      core::pick_canaries(*rt.net, rt.test, bench::scaled(8), 11);

  std::vector<tensor> clean;
  for (std::size_t cls = 0; cls < rt.test.num_classes; ++cls) {
    auto v = bench::clean_of_class(*rt.net, rt.test, cls, bench::scaled(5));
    for (auto& x : v) clean.push_back(std::move(x));
  }
  auto pool = bench::attack_pool(rt, bench::scaled(40));
  auto adv = bench::collect_adversarial(*rt.net, pool,
                                        attack::attack_kind::fgsm,
                                        attack::attack_goal::untargeted, 0.1f,
                                        0, clean.size());
  std::cout << "S1 untargeted FGSM eps=0.1: " << adv.inputs.size()
            << " AEs over " << adv.attempted << " attempts; clean pool "
            << clean.size() << "; canaries " << canaries.inputs.size()
            << "\n\n";

  const std::size_t epochs = 6;
  const std::size_t per_epoch =
      canaries.inputs.size() + clean.size() + adv.inputs.size();
  const std::uint64_t onset = kWarmupEpochs * per_epoch *
                              hpc::resilient_monitor::attempt_stride;
  core::drift_policy policy;

  const auto profile_for = [&](hpc::drift_profile::shape_kind shape,
                               double magnitude, std::uint64_t ramp) {
    hpc::drift_profile p;
    p.shape = shape;
    p.magnitude = magnitude;
    p.onset_stream = onset;
    p.ramp_streams = ramp;
    p.events = drifted_events;
    return p;
  };

  struct config {
    std::string label;
    std::optional<hpc::drift_profile> drift;
    double fault_rate = 0.0;
    bool adversarial_only = false;
  };
  std::vector<config> configs;
  configs.push_back({"no-drift", std::nullopt, 0.0, false});
  configs.push_back({"attack-only", std::nullopt, 0.0, true});
  for (const double mag : {1.5, 2.0, 3.0}) {
    configs.push_back(
        {"step x" + text_table::num(mag, 1),
         profile_for(hpc::drift_profile::shape_kind::step, mag, 0), 0.0,
         false});
  }
  configs.push_back(
      {"ramp x2.0",
       profile_for(hpc::drift_profile::shape_kind::ramp, 2.0,
                   per_epoch * hpc::resilient_monitor::attempt_stride),
       0.0, false});
  configs.push_back(
      {"step x2.0 + faults 5%",
       profile_for(hpc::drift_profile::shape_kind::step, 2.0, 0), 0.05,
       false});

  text_table table(
      "Drift recovery: baseline-drift sweep (scenario S1, fused verdict)");
  table.set_header({"config", "overall acc %", "pre-drift acc %",
                    "post-recal acc %", "window silent FP", "abstained",
                    "recals", "recovered @ epoch"});

  double baseline_acc = 0.0;
  run_result baseline_run;  // the no-drift control
  run_result gate_run;      // the gated step x2.0 run
  bool controls_ok = true;
  std::ostringstream rows_json;

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& c = configs[i];
    auto monitor = make_stack(*rt.net, c.drift, c.fault_rate);
    const std::span<const tensor> clean_span =
        c.adversarial_only ? std::span<const tensor>{} : clean;
    const auto r = run_loop(det, policy, *monitor, canaries, clean_span,
                            adv.inputs, epochs, threads);

    const double overall_acc = 100.0 * r.overall.accuracy();
    const double pre_acc = phase_accuracy(r, 0, kWarmupEpochs);
    const std::size_t recovered = recovery_epoch(r);
    const double post_acc = phase_accuracy(r, recovered, epochs);
    const auto win = window_epochs(r);
    const std::size_t silent = silent_fp_over(r, win);
    std::size_t abstained = 0;
    for (const auto& st : r.epochs) abstained += st.abstained;

    if (c.label == "no-drift") {
      baseline_acc = overall_acc;
      baseline_run = r;
      if (r.recalibrations != 0) controls_ok = false;
    }
    if (c.label == "attack-only" && r.recalibrations != 0) controls_ok = false;
    if (c.label == "step x2.0") gate_run = r;

    const bool drifted = c.drift.has_value();
    table.add_row(
        {c.label, text_table::num(overall_acc, 2), text_table::num(pre_acc, 2),
         drifted && recovered < epochs ? text_table::num(post_acc, 2) : "-",
         std::to_string(silent), std::to_string(abstained),
         std::to_string(r.recalibrations),
         drifted ? (recovered < epochs ? std::to_string(recovered) : "never")
                 : "-"});
    rows_json << (i == 0 ? "" : ",") << "\n    {\"config\": \"" << c.label
              << "\", \"overall_accuracy\": " << overall_acc
              << ", \"pre_drift_accuracy\": " << pre_acc
              << ", \"post_recal_accuracy\": " << post_acc
              << ", \"window_silent_fp\": " << silent
              << ", \"abstained\": " << abstained
              << ", \"recalibrations\": " << r.recalibrations
              << ", \"recovery_epoch\": " << recovered << "}";
  }

  // Gates on the canonical 2x cache-miss step.
  const std::size_t gate_recovered = recovery_epoch(gate_run);
  const double gate_post_acc = phase_accuracy(gate_run, gate_recovered, epochs);
  const auto gate_window = window_epochs(gate_run);
  const double window_clean =
      static_cast<double>(gate_window.size() * clean.size());
  const double excess_fp_pts =
      window_clean == 0.0
          ? 0.0
          : 100.0 *
                (static_cast<double>(silent_fp_over(gate_run, gate_window)) -
                 static_cast<double>(
                     silent_fp_over(baseline_run, gate_window))) /
                window_clean;
  const bool fail_closed =
      !gate_window.empty() && excess_fp_pts <= kMaxSilentFpExcess;
  const bool recovered_ok = gate_recovered < epochs &&
                            gate_run.recalibrations > 0 &&
                            baseline_acc - gate_post_acc <= kMaxAccuracyDrop;

  // Determinism: the whole loop must serialise to identical checkpoint
  // bytes at 1 and 4 measurement threads (fresh stacks, fresh controller).
  const auto det_profile =
      profile_for(hpc::drift_profile::shape_kind::step, 2.0, 0);
  auto m1 = make_stack(*rt.net, det_profile, 0.0);
  auto m4 = make_stack(*rt.net, det_profile, 0.0);
  const auto r1 =
      run_loop(det, policy, *m1, canaries, clean, adv.inputs, epochs, 1);
  const auto r4 =
      run_loop(det, policy, *m4, canaries, clean, adv.inputs, epochs, 4);
  const bool deterministic = !r1.checkpoint_bytes.empty() &&
                             r1.checkpoint_bytes == r4.checkpoint_bytes;

  std::ostringstream json;
  json << "{\n  \"bench\": \"drift_recovery\",\n  \"scenario\": \"S1\",\n"
       << "  \"repeats\": " << dcfg.repeats << ",\n  \"clean_inputs\": "
       << clean.size() << ",\n  \"adversarial_inputs\": " << adv.inputs.size()
       << ",\n  \"canaries\": " << canaries.inputs.size()
       << ",\n  \"epochs\": " << epochs << ",\n  \"drift_onset_epoch\": "
       << kWarmupEpochs << ",\n  \"threads\": " << threads
       << ",\n  \"configs\": [" << rows_json.str() << "\n  ],\n"
       << "  \"checks\": {\n"
       << "    \"no_drift_and_attack_only_zero_recals\": "
       << (controls_ok ? "true" : "false") << ",\n"
       << "    \"fail_closed_quarantine_window\": "
       << (fail_closed ? "true" : "false") << ",\n"
       << "    \"window_excess_silent_fp_points\": " << excess_fp_pts
       << ",\n"
       << "    \"post_recal_accuracy\": " << gate_post_acc << ",\n"
       << "    \"baseline_accuracy\": " << baseline_acc << ",\n"
       << "    \"recovered_ok\": " << (recovered_ok ? "true" : "false")
       << ",\n"
       << "    \"deterministic_1_vs_4_threads\": "
       << (deterministic ? "true" : "false") << "\n  }\n}\n";
  write_file("bench_results/BENCH_drift_recovery.json", json.str());

  bench::emit(table, "drift_recovery");
  std::cout << "\nchecks @ step x2.0: controls "
            << (controls_ok ? "ok" : "FAIL") << ", fail-closed window "
            << (fail_closed ? "ok" : "FAIL") << " (excess silent FP "
            << text_table::num(excess_fp_pts, 2) << " pts), post-recal accuracy "
            << text_table::num(gate_post_acc, 2) << "% vs baseline "
            << text_table::num(baseline_acc, 2) << "% ("
            << (recovered_ok ? "ok" : "FAIL") << "), 1-vs-4-thread loop "
            << (deterministic ? "identical" : "DIFFERS") << "\n";

  if (!controls_ok || !fail_closed || !recovered_ok || !deterministic) {
    std::cerr << "FAIL: drift-recovery acceptance checks failed\n";
    return 1;
  }
  return 0;
}
