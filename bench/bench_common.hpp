// Shared experiment plumbing for the per-table/per-figure bench binaries.
//
// Every bench binary regenerates one table or figure of the paper. They
// share: scenario preparation (cached trained models), adversarial-example
// generation against a scenario, clean-input pools, detector fitting, and
// result rendering/CSV output. Experiment sizes are chosen so the full
// bench suite completes on a laptop; set ADVH_BENCH_SCALE=2 (etc.) to
// scale sample counts up for tighter statistics.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attack/metrics.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "hpc/sim_backend.hpp"

namespace advh::bench {

/// Sample-count multiplier from ADVH_BENCH_SCALE (default 1). Strictly
/// parsed: a set-but-malformed value throws std::invalid_argument.
double scale();

/// Parses the shared bench command line (the `--threads N` flag; 0 means
/// the ADVH_THREADS override or hardware concurrency). Returns nullopt
/// when --help was requested (help already printed).
std::optional<std::size_t> parse_threads(int argc, const char* const* argv,
                                         const std::string& program,
                                         const std::string& description);

/// Scaled count helper.
std::size_t scaled(std::size_t base);

/// Prepares (or loads) a scenario; identical across bench binaries so the
/// trained model cache is shared.
core::scenario_runtime prepare(data::scenario_id id);

/// Simulator monitor with the canonical noise model and a fixed seed.
std::unique_ptr<hpc::sim_backend> make_monitor(nn::model& m,
                                               std::uint64_t seed = 99);

/// A generated pool of attack-source images (fresh draws of the scenario's
/// task, disjoint from train and test streams).
data::dataset attack_pool(const core::scenario_runtime& rt,
                          std::size_t per_class);

struct adversarial_set {
  std::vector<tensor> inputs;          ///< successful AEs only
  std::vector<std::size_t> source_labels;  ///< original class per AE
  std::size_t attempted = 0;
  double attack_success_rate = 0.0;
  /// Untargeted: model accuracy under attack; targeted: target-hit rate.
  double attack_accuracy_metric = 0.0;
};

/// Runs `kind` over `pool` until `max_count` successful AEs are collected
/// (or the pool is exhausted). Only examples the model classifies
/// correctly when clean are attacked — matching the paper's protocol.
adversarial_set collect_adversarial(nn::model& m, const data::dataset& pool,
                                    attack::attack_kind kind,
                                    attack::attack_goal goal, float epsilon,
                                    std::size_t target_class,
                                    std::size_t max_count,
                                    std::size_t pgd_steps = 10);

/// Clean examples of one class that the model classifies correctly.
std::vector<tensor> clean_of_class(nn::model& m, const data::dataset& d,
                                   std::size_t cls, std::size_t max_count);

/// Fits the AdvHunter detector from the scenario's training pool. Both
/// the template measurement and the GMM-bank fit honour `threads`
/// (bitwise identical at any value); a partially-filled template is
/// logged per affected class.
core::detector fit_detector(hpc::hpc_monitor& monitor,
                            const core::detector_config& cfg,
                            const data::dataset& validation_pool,
                            std::size_t per_class, std::uint64_t seed = 77,
                            std::size_t threads = 0);

/// Prints the table and writes CSV under bench_results/<name>.csv.
void emit(const text_table& table, const std::string& name);

/// Writes a free-form text artifact under bench_results/.
void emit_text(const std::string& content, const std::string& name);

}  // namespace advh::bench
