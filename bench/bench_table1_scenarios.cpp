// Reproduces Table 1: the three evaluation scenarios with their datasets,
// CNN architectures, and clean accuracies.
//
// Paper values: S1 FashionMNIST/EfficientNet 92.34%, S2 CIFAR10/ResNet18
// 88.59%, S3 GTSRB/DenseNet201 96.67%. Our substrate swaps the datasets
// for synthetic analogues and the architectures for scaled-down members of
// the same families, so accuracies land in the same band rather than
// matching exactly.
#include <iostream>

#include "bench/bench_common.hpp"

using namespace advh;

int main() {
  const double paper[] = {92.34, 88.59, 96.67};

  text_table table("Table 1: Evaluation scenarios and clean accuracies");
  table.set_header({"scenario", "dataset", "architecture", "params",
                    "clean accuracy %", "paper %"});

  int row = 0;
  for (auto id : {data::scenario_id::s1, data::scenario_id::s2,
                  data::scenario_id::s3}) {
    auto rt = bench::prepare(id);
    table.add_row({rt.spec.label, rt.train.name, to_string(rt.spec.arch),
                   std::to_string(rt.net->param_count()),
                   text_table::num(100.0 * rt.clean_accuracy, 2),
                   text_table::num(paper[row], 2)});
    ++row;
  }
  bench::emit(table, "table1_scenarios");
  return 0;
}
