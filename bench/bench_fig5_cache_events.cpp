// Reproduces Figure 5: distributions of the four cache-miss-related HPC
// events (L1-dcache-load-misses, L1-icache-load-misses, LLC-load-misses,
// LLC-store-misses) for clean inputs vs adversarial examples in scenario
// S2 under an untargeted FGSM attack with eps = 0.01.
//
// Expected shape (paper): L1-icache-load-misses overlaps heavily (the
// instruction stream is input-independent); the data-cache events show
// visible separation, strongest for LLC-load-misses / L1-dcache-load-
// misses at this small eps.
#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"

using namespace advh;

int main() {
  auto rt = bench::prepare(data::scenario_id::s2);
  auto monitor = bench::make_monitor(*rt.net);

  const std::size_t count = bench::scaled(120);
  // Untargeted: AEs are evaluated against the template of whatever class
  // they are misclassified into, but the figure pools the measurements.
  auto clean = bench::clean_of_class(*rt.net, rt.test, rt.spec.target_class,
                                     count);
  auto pool = bench::attack_pool(rt, bench::scaled(30));
  auto adv = bench::collect_adversarial(
      *rt.net, pool, attack::attack_kind::fgsm,
      attack::attack_goal::untargeted, 0.01f, 0, count);

  std::cout << "Figure 5: cache-event distributions, S2 untargeted FGSM "
            << "eps=0.01 (model accuracy under attack "
            << text_table::num(100.0 * adv.attack_accuracy_metric, 2)
            << "%, " << clean.size() << " clean / " << adv.inputs.size()
            << " adversarial)\n\n";

  const auto events = hpc::cache_ablation_events();
  auto measure_all = [&](const std::vector<tensor>& inputs) {
    std::vector<std::vector<double>> per_event(events.size());
    for (const auto& x : inputs) {
      auto m = monitor->measure(x, events, 10);
      for (std::size_t e = 0; e < events.size(); ++e) {
        per_event[e].push_back(m.mean_counts[e]);
      }
    }
    return per_event;
  };
  auto clean_vals = measure_all(clean);
  auto adv_vals = measure_all(adv.inputs);

  std::ostringstream artifact;
  text_table csv("fig5 series");
  csv.set_header({"event", "population", "mean", "sd", "min", "max"});
  for (std::size_t e = 0; e < events.size(); ++e) {
    artifact << to_string(events[e]) << "\n"
             << plot::dual_histogram(clean_vals[e], adv_vals[e], "clean",
                                     "adversarial", 48, 9)
             << "\n";
    for (int pop = 0; pop < 2; ++pop) {
      const auto& v = pop == 0 ? clean_vals[e] : adv_vals[e];
      csv.add_row({to_string(events[e]), pop == 0 ? "clean" : "adversarial",
                   text_table::num(stats::mean(v), 1),
                   text_table::num(stats::stddev(v), 1),
                   text_table::num(stats::min(v), 1),
                   text_table::num(stats::max(v), 1)});
    }
  }
  std::cout << artifact.str();
  csv.print(std::cout);
  bench::emit_text(artifact.str(), "fig5_cache_events");
  write_file("bench_results/fig5_cache_events.csv", csv.to_csv());
  return 0;
}
