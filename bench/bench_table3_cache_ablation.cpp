// Reproduces Table 3: detection F1-score for the four cache-miss-related
// HPC events at untargeted-FGSM strengths eps in {0.01, 0.05, 0.1} on
// scenario S2.
//
// Expected shape (paper): L1-icache-load-misses is useless at every
// strength (~0.05 F1); the data-cache events carry the signal, with
// L1-dcache-load-misses / LLC-load-misses the strongest at small eps.
#include <iostream>

#include "bench/bench_common.hpp"

using namespace advh;

namespace {

/// Clean evaluation inputs spread over all classes.
std::vector<advh::tensor> clean_everywhere(nn::model& m,
                                           const data::dataset& d,
                                           std::size_t per_class) {
  std::vector<advh::tensor> out;
  for (std::size_t cls = 0; cls < d.num_classes; ++cls) {
    auto v = bench::clean_of_class(m, d, cls, per_class);
    for (auto& x : v) out.push_back(std::move(x));
  }
  return out;
}

}  // namespace

int main() {
  auto rt = bench::prepare(data::scenario_id::s2);
  auto monitor = bench::make_monitor(*rt.net);

  core::detector_config dcfg;
  dcfg.events = hpc::cache_ablation_events();
  dcfg.repeats = 10;
  const auto det = bench::fit_detector(*monitor, dcfg, rt.train,
                                       bench::scaled(40));

  const std::vector<float> strengths{0.01f, 0.05f, 0.1f};
  auto clean = clean_everywhere(*rt.net, rt.test, bench::scaled(12));
  auto pool = bench::attack_pool(rt, bench::scaled(30));

  // Score the clean population once; it is shared by every column.
  core::detection_eval clean_eval;
  core::evaluate_inputs(det, *monitor, clean, false, clean_eval);

  text_table table(
      "Table 3: F1 of cache-related events, S2 untargeted FGSM");
  std::vector<std::string> header{"event"};
  for (float eps : strengths) {
    header.push_back("eps=" + text_table::num(eps, 2));
  }
  table.set_header(header);

  // Column-major evaluation, then transpose into the paper's layout.
  std::vector<std::vector<double>> f1(dcfg.events.size(),
                                      std::vector<double>(strengths.size()));
  for (std::size_t s = 0; s < strengths.size(); ++s) {
    auto adv = bench::collect_adversarial(
        *rt.net, pool, attack::attack_kind::fgsm,
        attack::attack_goal::untargeted, strengths[s], 0, clean.size());
    std::cout << "eps=" << strengths[s] << ": " << adv.inputs.size()
              << " AEs (success "
              << text_table::num(100.0 * adv.attack_success_rate, 1)
              << "%)\n";
    core::detection_eval eval = clean_eval;  // clean side reused
    core::evaluate_inputs(det, *monitor, adv.inputs, true, eval);
    for (std::size_t e = 0; e < dcfg.events.size(); ++e) {
      f1[e][s] = eval.per_event[e].f1();
    }
  }
  std::cout << "\n";

  for (std::size_t e = 0; e < dcfg.events.size(); ++e) {
    std::vector<std::string> row{to_string(dcfg.events[e])};
    for (std::size_t s = 0; s < strengths.size(); ++s) {
      row.push_back(text_table::num(f1[e][s], 4));
    }
    table.add_row(row);
  }
  bench::emit(table, "table3_cache_ablation");
  return 0;
}
