// Reproduces Figure 4: attack effectiveness and AdvHunter detection
// performance (F1 on the cache-misses event) across all three scenarios,
// the three attack families (FGSM, PGD, DeepFool), both variants
// (untargeted, targeted), and three attack strengths.
//
// For untargeted attacks the x-annotation is the model's accuracy under
// attack (drops as eps grows); for targeted attacks it is the targeted
// accuracy (rises as eps grows). DeepFool runs at its default setting, as
// in the paper. Expected shape: high F1 for every attack configuration,
// with the trend of attack strength matching the paper.
#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "common/ascii_plot.hpp"

using namespace advh;

namespace {

struct cell_result {
  std::string label;
  double attack_metric = 0.0;  ///< accuracy under attack / targeted accuracy
  double f1 = 0.0;
  std::size_t n_adv = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto threads_opt = bench::parse_threads(
      argc, argv, "bench_fig4_attack_sweep",
      "Figure 4: attack sweep vs AdvHunter F1");
  if (!threads_opt) return 0;
  const std::size_t threads = *threads_opt;

  text_table table(
      "Figure 4: attack effectiveness vs AdvHunter F1 (cache-misses)");
  table.set_header({"scenario", "attack", "variant", "eps",
                    "attack metric %", "metric meaning", "AdvHunter F1",
                    "#AEs"});

  std::ostringstream bars;
  const std::size_t eval_n = bench::scaled(20);

  for (auto id : {data::scenario_id::s1, data::scenario_id::s2,
                  data::scenario_id::s3}) {
    auto rt = bench::prepare(id);
    auto monitor = bench::make_monitor(*rt.net);

    core::detector_config dcfg;
    dcfg.events = {hpc::hpc_event::cache_misses};
    dcfg.repeats = 10;
    // Validation sizes per Figure 6's saturation points.
    const std::size_t m_per_class = id == data::scenario_id::s3 ? 60 : 40;
    const auto det =
        bench::fit_detector(*monitor, dcfg, rt.train, m_per_class, 77, threads);

    // Clean evaluation measurements are shared by every cell.
    std::vector<tensor> clean;
    for (std::size_t cls = 0; cls < rt.test.num_classes; ++cls) {
      auto v = bench::clean_of_class(
          *rt.net, rt.test, cls,
          std::max<std::size_t>(1, 2 * eval_n / rt.test.num_classes));
      for (auto& x : v) clean.push_back(std::move(x));
    }
    core::detection_eval clean_eval;
    core::evaluate_inputs(det, *monitor, clean, false, clean_eval, threads);

    auto pool = bench::attack_pool(
        rt, std::max<std::size_t>(6, bench::scaled(120) / rt.test.num_classes));

    std::vector<cell_result> cells;
    auto run_cell = [&](attack::attack_kind kind, attack::attack_goal goal,
                        float eps, const std::string& eps_label) {
      auto adv = bench::collect_adversarial(*rt.net, pool, kind, goal, eps,
                                            rt.spec.target_class, eval_n);
      core::detection_eval eval = clean_eval;
      core::evaluate_inputs(det, *monitor, adv.inputs, true, eval, threads);
      const bool targeted = goal == attack::attack_goal::targeted;
      cell_result cell;
      cell.label = to_string(kind) + (targeted ? "/t" : "/u") + " " +
                   eps_label;
      cell.attack_metric = adv.attack_accuracy_metric;
      cell.f1 = eval.per_event[0].f1();
      cell.n_adv = adv.inputs.size();
      cells.push_back(cell);
      table.add_row({rt.spec.label, to_string(kind),
                     targeted ? "targeted" : "untargeted", eps_label,
                     text_table::num(100.0 * cell.attack_metric, 2),
                     targeted ? "targeted accuracy" : "accuracy under attack",
                     text_table::num(cell.f1, 4), std::to_string(cell.n_adv)});
    };

    // Untargeted sweeps need lower strengths than targeted ones (footnote 2
    // of the paper: targeted attacks require higher strength).
    for (float eps : {0.01f, 0.05f, 0.1f}) {
      run_cell(attack::attack_kind::fgsm, attack::attack_goal::untargeted,
               eps, text_table::num(eps, 2));
    }
    for (float eps : {0.03f, 0.05f, 0.1f}) {
      run_cell(attack::attack_kind::fgsm, attack::attack_goal::targeted, eps,
               text_table::num(eps, 2));
    }
    for (float eps : {0.01f, 0.05f, 0.1f}) {
      run_cell(attack::attack_kind::pgd, attack::attack_goal::untargeted, eps,
               text_table::num(eps, 2));
    }
    for (float eps : {0.05f, 0.1f, 0.3f}) {
      run_cell(attack::attack_kind::pgd, attack::attack_goal::targeted, eps,
               text_table::num(eps, 2));
    }
    run_cell(attack::attack_kind::deepfool, attack::attack_goal::untargeted,
             0.0f, "default");
    run_cell(attack::attack_kind::deepfool, attack::attack_goal::targeted,
             0.0f, "default");

    bars << rt.spec.label << " — AdvHunter F1 per attack configuration\n";
    std::vector<std::string> labels;
    std::vector<double> values;
    for (const auto& c : cells) {
      labels.push_back(c.label);
      values.push_back(c.f1);
    }
    bars << plot::bar_chart(labels, values) << "\n";
  }

  std::cout << bars.str();
  bench::emit(table, "fig4_attack_sweep");
  bench::emit_text(bars.str(), "fig4_attack_sweep_bars");
  return 0;
}
