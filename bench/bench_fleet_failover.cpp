// Fleet failover bench: the sharded detection fleet under scripted and
// seeded chaos, with the PR's acceptance gates wired into the exit code.
//
// Phase A sweeps a scripted kill over every replica: an attack campaign
// whose fingerprint range is owned by the victim runs alongside benign
// traffic, the victim is crashed mid-campaign and recovered later. Per
// victim the bench checks that every request resolves exactly once, that
// the ban decided before the crash is never lost (journalled once, the
// attacker is never served afterwards — through the owner's crash AND its
// recovery from the durable ledger), that detection resumes on the
// recovered node within a bounded number of ticks, and that the
// controller's split-brain probe never fires.
//
// Phase B replays one seeded chaos campaign — crash/stall episodes,
// message loss, drift, colliding probes — at 1 and 4 measurement threads
// and diffs the journals byte for byte.
//
// Phase C drives the quorum-gated recalibration: a baseline step after
// canary burn-in must produce a promoted rollout with no rollback, and a
// poisoned staged checkpoint must produce a rollback.
//
// Phase D is the kill-the-leader sweep: with the replicated controller
// group (3 controllers) and shard replication factor 2, each run kills a
// single node — the acting LEADER, a STANDBY controller, or a WORKER
// primary — mid-campaign and checks that the fleet has no single point
// of failure. Killing the leader must produce a quorum election whose
// win lands within a bounded number of ticks; killing a standby must
// need no election at all; killing a worker must see its in-flight and
// subsequent requests served by the secondary owner under the
// degraded-confidence tag. Every run in the sweep is replayed at 1 and
// 4 measurement threads and the journals diffed byte for byte, and the
// split-brain probe and the durable-ban check apply throughout.
//
// Phase E is the corruption sweep: the content-bearing shard's primary
// is crashed, its checkpoint bit-flipped on disk, and rebooted — the
// boot must checksum-fence the shard (zero full-confidence verdicts off
// it); later its ban ledger is bit-flipped and a second reboot loses the
// record. With replication >= 2 the anti-entropy scrub must pull the
// shard back from the surviving slot holder (byte-identical digests
// fleet-wide) and ban_sync must restore the ban; with replication 1
// there is no authorized repair source and the shard must FAIL CLOSED —
// no repair requested, no repair completed, fenced to the end. When
// ADVH_FLEET_CORRUPT_RATE is set, seeded corruption chaos runs on top,
// and the whole phase replays at 1 and 4 threads, journals diffed.
//
// Chaos knobs (the CI fleet-chaos job sets all three):
//   ADVH_FAULT_RATE   per-tick crash/stall episode rate of the seeded
//                     fault plan in phase B (default 0.02; strict parse)
//   ADVH_DRIFT_RATE   baseline step magnitude 1 + rate, engaged after the
//                     canary burn-in, in phase B (default 0; strict parse)
//   ADVH_THREADS      measurement threads for phase A / C runs
//   ADVH_FLEET_REPLICAS / ADVH_FLEET_LOSS_RATE /
//   ADVH_FLEET_CONTROLLERS / ADVH_FLEET_REPLICATION /
//   ADVH_FLEET_SCRUB_PERIOD / ADVH_FLEET_CORRUPT_RATE
//                     fleet geometry + integrity overrides
//                     (fleet_config_from_env; strict parse; the CI
//                     fleet-chaos matrix pins controllers=3 replication=2
//                     for phase D's gates and adds corrupt-rate legs at
//                     3/2 and 1/1 for phase E's)
//
// Writes bench_results/BENCH_fleet_failover.{csv,json}.
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/detector.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/config.hpp"
#include "fleet/fault_plan.hpp"
#include "fleet/membership.hpp"
#include "fleet/sim.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/models/models.hpp"

using namespace advh;
using namespace advh::fleet;

namespace {

namespace fs = std::filesystem;

/// Strict chaos-knob parse (the ADVH_* contract): set-but-malformed must
/// fail the job, not silently disable the chaos.
double env_rate(const char* name, double fallback, double max) {
  const char* env = std::getenv(name);
  if (!env) return fallback;
  errno = 0;
  char* end = nullptr;
  const double r = std::strtod(env, &end);
  if (end == env || *end != '\0' || errno == ERANGE || !(r >= 0.0) ||
      r > max) {
    throw std::invalid_argument(std::string(name) + "=\"" + env +
                                "\": expected a number in [0, " +
                                std::to_string(max) + "]");
  }
  return r;
}

/// Deterministic benign input at the given intensity scale.
tensor bench_input(double scale) {
  tensor x(shape{1, 1, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] =
        static_cast<float>(scale * (0.1 + 0.01 * static_cast<double>(i % 7)));
  }
  return x;
}

/// Attack-probe content at quantization-bin centres: sub-step `perturb`
/// quantizes away, so every probe of a campaign fingerprint-collides.
tensor probe_input(std::uint64_t variant, double perturb) {
  tensor x(shape{1, 1, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    std::uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ULL +
                      (variant + 1) * 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 31;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 29;
    const auto bin = static_cast<double>(h % 23);
    x.data()[i] = static_cast<float>(0.05 + 0.1 * bin +
                                     perturb * ((i % 2 == 0) ? 1.0 : -1.0));
  }
  return x;
}

/// Deterministic baseline step keyed on the measurement-call count. The
/// onset must land after the drift cells' canary burn-in: a step present
/// from the first probe reads as stationary canary-set bias (by design)
/// and never alarms.
class step_drift_monitor final : public hpc::hpc_monitor {
 public:
  step_drift_monitor(std::unique_ptr<hpc::hpc_monitor> inner,
                     std::size_t onset_calls, double magnitude)
      : inner_(std::move(inner)), onset_(onset_calls), magnitude_(magnitude) {}

  std::string backend_name() const override { return "bench-step-drift"; }

 protected:
  hpc::measurement do_measure(const tensor& x,
                              std::span<const hpc::hpc_event> events,
                              std::size_t repeats) override {
    hpc::measurement m = inner_->measure(x, events, repeats);
    if (calls_++ >= onset_) {
      for (double& c : m.mean_counts) c *= magnitude_;
    }
    return m;
  }

 private:
  std::unique_ptr<hpc::hpc_monitor> inner_;
  std::size_t onset_;
  double magnitude_;
  std::size_t calls_ = 0;
};

/// Fast fleet geometry satisfying lease + max_delay < failure_timeout,
/// with track thresholds low enough to ban within a few colliding probes.
fleet_config bench_cfg() {
  fleet_config cfg;
  cfg.replicas = 3;
  cfg.class_shards = 2;
  cfg.ring_ranges = 8;
  cfg.hb_interval = 1;
  cfg.failure_timeout = 8;
  cfg.lease = 5;
  cfg.ctl_failure_timeout = 8;
  cfg.ctl_lease = 4;
  cfg.request_timeout = 6;
  cfg.speculate_after = 3;
  cfg.checkpoint_interval = 10;
  cfg.canary_interval = 4;
  cfg.handoff_batch = 4;
  cfg.min_delay = 0;
  cfg.max_delay = 1;
  cfg.retransmit = 2;
  cfg.track.fp.window = 8;
  cfg.track.fp.top_k = 32;
  cfg.track.elevate_hits = 2.0;
  cfg.track.ban_hits = 4.0;
  return cfg;
}

/// Genesis detector + canary pool + shipped-state directory of one run.
struct fleet_rig {
  std::unique_ptr<nn::model> model;
  std::vector<std::pair<std::size_t, tensor>> canaries;
  core::detector det;
  std::string dir;
  fleet_config cfg;

  fleet_rig(const std::string& name, fleet_config c)
      : model(nn::make_model(nn::architecture::case_study_cnn, shape{1, 16, 16},
                             4, 1)),
        det(fit_genesis(*model, canaries)),
        cfg(std::move(c)) {
    dir = (fs::temp_directory_path() / ("advh_bench_fleet_" + name)).string();
    fs::remove_all(dir);
    fs::create_directories(dir);
  }

  static core::detector fit_genesis(
      nn::model& model, std::vector<std::pair<std::size_t, tensor>>& canaries) {
    core::detector_config dcfg;
    const auto events = hpc::core_events();
    dcfg.events = {events[0], events[1]};
    dcfg.repeats = 4;
    hpc::sim_backend fit_monitor(model);
    core::benign_template tpl(4, dcfg.events.size());
    for (std::size_t i = 0; i < 32; ++i) {
      const tensor x = bench_input(0.4 + 0.05 * static_cast<double>(i % 12));
      const auto m = fit_monitor.measure(x, dcfg.events, dcfg.repeats);
      tpl.add_row(m.predicted, m.mean_counts);
      if (i < 12) canaries.emplace_back(m.predicted, x);
    }
    return core::detector::fit(tpl, dcfg, 1);
  }

  fleet_deps deps(double drift_magnitude = 0.0,
                  std::size_t drift_onset_calls = 0) {
    fleet_deps d;
    d.base = &det;
    d.dir = dir;
    d.canary_pool = &canaries;
    nn::model* m = model.get();
    d.make_monitor = [m, drift_magnitude, drift_onset_calls](
                         std::size_t) -> std::unique_ptr<hpc::hpc_monitor> {
      auto inner = std::make_unique<hpc::sim_backend>(*m);
      if (drift_magnitude <= 0.0) return inner;
      return std::make_unique<step_drift_monitor>(
          std::move(inner), drift_onset_calls, drift_magnitude);
    };
    return d;
  }

  std::size_t canary_classes() const {
    std::vector<std::size_t> cls;
    for (const auto& [c, x] : canaries) cls.push_back(c);
    std::sort(cls.begin(), cls.end());
    cls.erase(std::unique(cls.begin(), cls.end()), cls.end());
    return cls.size();
  }
};

membership_view genesis_view(const fleet_config& cfg) {
  membership_view v;
  v.epoch = 1;
  for (std::size_t i = 0; i < cfg.replicas; ++i) {
    v.live.push_back(replica_node(i));
  }
  return v;
}

/// Smallest client id whose fingerprint range is owned by `node` at
/// genesis.
std::uint64_t client_owned_by(std::uint32_t node, const fleet_config& cfg) {
  const membership_view v = genesis_view(cfg);
  for (std::uint64_t c = 1;; ++c) {
    if (range_owner(v, range_of_client(c, cfg)) == node) return c;
  }
}

std::vector<arrival> benign_arrivals(std::size_t n, std::uint64_t start_tick,
                                     std::uint64_t base_client) {
  std::vector<arrival> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({start_tick + i, base_client + i,
                   bench_input(0.4 + 0.05 * static_cast<double>(i % 12))});
  }
  return out;
}

std::vector<arrival> probe_campaign(std::uint64_t client,
                                    std::uint64_t start_tick, std::size_t n) {
  std::vector<arrival> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        {start_tick + i, client, probe_input(7, 0.01 * double(i % 2))});
  }
  return out;
}

std::uint64_t resolved_total(const fleet_stats& s) {
  std::uint64_t sum = 0;
  for (const auto v : s.by_outcome) sum += v;
  return sum;
}

/// Tick of the first journal line after `after` that contains `needle`,
/// or nullopt. Journal lines are "t=<tick> <rest>".
std::optional<std::uint64_t> first_line_after(const std::string& journal,
                                              std::uint64_t after,
                                              const std::string& needle) {
  std::istringstream is(journal);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("t=", 0) != 0) continue;
    const std::uint64_t tick = std::strtoull(line.c_str() + 2, nullptr, 10);
    if (tick <= after) continue;
    if (line.find(needle) != std::string::npos) return tick;
  }
  return std::nullopt;
}

// ------------------------------------------- phase A: failover sweep --

struct failover_result {
  std::size_t victim = 0;
  fleet_stats stats;
  bool all_resolved = false;
  bool ban_durable = false;      ///< decided once, never served after
  bool resumed_in_bound = false; ///< victim serves again within the bound
  std::uint64_t recovery_ticks = 0;
};

failover_result run_failover(const fleet_config& cfg, std::size_t victim,
                             std::size_t threads) {
  constexpr std::uint64_t kCrash = 25, kRecover = 45, kHorizon = 160;
  fleet_config run_cfg = cfg;
  run_cfg.serve.threads = threads;

  fleet_rig rig("failover_" + std::to_string(victim), run_cfg);
  const std::uint64_t attacker = client_owned_by(replica_node(victim), cfg);
  auto arrivals = benign_arrivals(100, 1, 10'000 * (victim + 1));
  auto probes = probe_campaign(attacker, 1, 40);
  arrivals.insert(arrivals.end(), probes.begin(), probes.end());

  fault_plan plan({{kCrash, fault_kind::crash, victim},
                   {kRecover, fault_kind::recover, victim}});
  fleet_sim sim(rig.cfg, rig.deps(), plan);
  sim.run(std::move(arrivals), kHorizon);

  failover_result out;
  out.victim = victim;
  out.stats = sim.stats();
  out.all_resolved = resolved_total(out.stats) == out.stats.submitted;

  // Zero lost ban decisions: the ban journalled before the crash appears
  // exactly once, and the attacker is never served after it — the
  // recovered owner replays the durable ledger, not its dead tracker.
  const std::string& journal = sim.log().text();
  const std::string ban_line = "ban client=" + std::to_string(attacker);
  const auto ban_at = journal.find(ban_line);
  out.ban_durable =
      out.stats.bans_decided == 1 && ban_at != std::string::npos &&
      journal.find(ban_line, ban_at + 1) == std::string::npos &&
      journal.find("client=" + std::to_string(attacker) + " outcome=served",
                   ban_at) == std::string::npos &&
      sim.route().banned(attacker) &&
      !read_ban_ledger(ban_ledger_path(rig.dir, replica_node(victim))).empty();

  // Bounded recovery: the recovered node must produce a served verdict
  // again within readmission + handoff + acquisition-grace time.
  const std::uint64_t bound = cfg.failure_timeout + 3 * cfg.lease + 10;
  const auto served_again = first_line_after(
      journal, kRecover, "node=" + std::to_string(replica_node(victim)));
  if (served_again.has_value()) {
    out.recovery_ticks = *served_again - kRecover;
    out.resumed_in_bound = out.recovery_ticks <= bound;
  }
  return out;
}

// --------------------------------- phase B: chaos thread invariance --

struct chaos_result {
  fleet_stats stats1, stats4;
  bool identical = false;
  bool all_resolved = false;
};

chaos_result run_chaos(const fleet_config& cfg, double fault_rate,
                       double drift_rate) {
  constexpr std::uint64_t kHorizon = 140;
  const fault_plan plan = fault_plan::chaos(cfg, kHorizon, fault_rate, 42);

  const auto arrivals = [&] {
    auto a = benign_arrivals(70, 1, 2000);
    const auto probes = probe_campaign(31, 5, 30);
    a.insert(a.end(), probes.begin(), probes.end());
    return a;
  };

  const auto run = [&](std::size_t threads, const std::string& tag) {
    fleet_config run_cfg = cfg;
    run_cfg.serve.threads = threads;
    fleet_rig rig("chaos_" + tag, run_cfg);
    const double magnitude = drift_rate > 0.0 ? 1.0 + drift_rate : 0.0;
    const std::size_t onset = 12 * rig.canary_classes();
    fleet_sim sim(rig.cfg, rig.deps(magnitude, onset), plan);
    sim.run(arrivals(), kHorizon);
    return std::pair<std::string, fleet_stats>(sim.log().text(), sim.stats());
  };

  const auto [j1, s1] = run(1, "t1");
  const auto [j4, s4] = run(4, "t4");
  chaos_result out;
  out.stats1 = s1;
  out.stats4 = s4;
  out.identical = j1 == j4;
  out.all_resolved = resolved_total(s1) == s1.submitted;
  return out;
}

// ------------------------------------- phase C: recalibration gates --

struct recal_result {
  fleet_stats drift_stats, poison_stats;
  bool rollout_ok = false;
  bool rollback_ok = false;
};

recal_result run_recalibration(const fleet_config& cfg, std::size_t threads) {
  constexpr std::uint64_t kHorizon = 200;
  fleet_config run_cfg = cfg;
  run_cfg.serve.threads = threads;
  recal_result out;
  {
    fleet_rig rig("recal", run_cfg);
    const std::size_t onset = 12 * rig.canary_classes();
    fleet_sim sim(rig.cfg, rig.deps(1.5, onset), fault_plan{});
    sim.run({}, kHorizon);
    out.drift_stats = sim.stats();
    out.rollout_ok = out.drift_stats.drift_alarms > 0 &&
                     out.drift_stats.rollouts >= 1 &&
                     out.drift_stats.rollbacks == 0;
  }
  {
    fleet_rig rig("recal_poison", run_cfg);
    const std::size_t onset = 12 * rig.canary_classes();
    fault_plan plan;
    plan.poison(0, 2);
    plan.poison(1, 2);
    fleet_sim sim(rig.cfg, rig.deps(1.5, onset), plan);
    sim.run({}, kHorizon);
    out.poison_stats = sim.stats();
    out.rollback_ok = out.poison_stats.rollbacks >= 1;
  }
  return out;
}

// --------------------------------- phase D: kill-the-leader sweep --

/// Which single node a phase-D run kills.
enum class kill_victim { leader, standby, worker };

const char* to_string(kill_victim v) {
  switch (v) {
    case kill_victim::leader: return "leader";
    case kill_victim::standby: return "standby";
    case kill_victim::worker: return "worker";
  }
  return "?";
}

struct node_kill_result {
  kill_victim victim = kill_victim::leader;
  fleet_stats stats1, stats4;
  bool identical = false;      ///< 1-vs-4-thread journals byte-equal
  bool all_resolved = false;
  bool ban_durable = false;
  bool failover_bounded = false;  ///< leader kill: election win in bound
  bool secondary_served = false;  ///< worker kill: degraded serves happen
  std::uint64_t failover_ticks = 0;
};

node_kill_result run_node_kill(const fleet_config& cfg, kill_victim victim) {
  constexpr std::uint64_t kKill = 25, kHorizon = 170;
  constexpr std::size_t kWorkerVictim = 1;

  fault_event ev{kKill, fault_kind::crash, 0, fault_target::controller};
  switch (victim) {
    case kill_victim::leader: ev.replica = 0; break;  // genesis leader
    case kill_victim::standby: ev.replica = 1; break;
    case kill_victim::worker:
      ev.replica = kWorkerVictim;
      ev.target = fault_target::worker;
      break;
  }
  const fault_plan plan({ev});

  // The attack campaign always targets a client owned by the worker
  // victim's node, so the worker kill exercises the ban through the
  // owner's crash and the controller kills exercise it through the
  // authority's crash.
  const std::uint64_t attacker =
      client_owned_by(replica_node(kWorkerVictim), cfg);
  const auto arrivals = [&] {
    auto a = benign_arrivals(100, 1, 50'000);
    const auto probes = probe_campaign(attacker, 1, 40);
    a.insert(a.end(), probes.begin(), probes.end());
    return a;
  };

  const auto run = [&](std::size_t threads) {
    fleet_config run_cfg = cfg;
    run_cfg.serve.threads = threads;
    fleet_rig rig("kill_" + std::string(to_string(victim)) + "_t" +
                      std::to_string(threads),
                  run_cfg);
    fleet_sim sim(rig.cfg, rig.deps(), plan);
    sim.run(arrivals(), kHorizon);
    return std::pair<std::string, fleet_stats>(sim.log().text(), sim.stats());
  };

  const auto [j1, s1] = run(1);
  const auto [j4, s4] = run(4);

  node_kill_result out;
  out.victim = victim;
  out.stats1 = s1;
  out.stats4 = s4;
  out.identical = j1 == j4;
  out.all_resolved = resolved_total(s1) == s1.submitted &&
                     resolved_total(s4) == s4.submitted;

  // Zero lost durable bans, whichever node died: decided once, the
  // attacker never served after the decision, enforced at the router,
  // persisted in the owner's ledger.
  const std::string ban_line = "ban client=" + std::to_string(attacker);
  const auto ban_at = j1.find(ban_line);
  out.ban_durable =
      s1.bans_decided == 1 && ban_at != std::string::npos &&
      j1.find(ban_line, ban_at + 1) == std::string::npos &&
      j1.find("client=" + std::to_string(attacker) + " outcome=served",
              ban_at) == std::string::npos;

  switch (victim) {
    case kill_victim::leader: {
      // Bounded leader failover: a standby must win a quorum election
      // within detection + stagger + ballot + lease handover time (the
      // bound allows one full candidacy-collision retry round).
      const std::uint64_t bound =
          3 * (cfg.ctl_failure_timeout + cfg.ctl_lease) + 10;
      const auto won = first_line_after(j1, kKill, "ctl-leader");
      if (won.has_value()) {
        out.failover_ticks = *won - kKill;
        out.failover_bounded = s1.elections >= 1 && out.failover_ticks <= bound;
      }
      out.secondary_served = true;  // not this victim's gate
      break;
    }
    case kill_victim::standby: {
      // A dead standby must cost nothing: the leader's quorum holds
      // (2 of 3), so no election and no leadership gap at all.
      out.failover_bounded = s1.elections == 0;
      out.secondary_served = true;  // not this victim's gate
      break;
    }
    case kill_victim::worker: {
      // Crashed-shard requests are served via the secondary under the
      // degraded-confidence tag until the view change re-primaries them.
      out.failover_bounded = true;  // leader never died
      out.secondary_served =
          s1.speculative_routes >= 1 && s1.served_secondary >= 1 &&
          j1.find(" conf=degraded") != std::string::npos;
      break;
    }
  }
  return out;
}

// ------------------------------------- phase E: corruption sweep --

struct corruption_result {
  std::uint64_t shard = 0;        ///< the content-bearing shard targeted
  fleet_stats stats1, stats4;
  bool identical = false;         ///< 1-vs-4-thread journals byte-equal
  bool all_resolved = false;
  bool fail_closed = false;       ///< zero full-confidence serves off fenced shards
  bool converged = false;         ///< repaired+unfenced (r>=2) / stays fenced (r=1)
  bool ban_durable = false;       ///< the ban survives its ledger rotting
};

/// Scripted fence-and-repair scenario plus (when ADVH_FLEET_CORRUPT_RATE
/// is set) seeded corruption chaos on top: the content-bearing shard's
/// primary is crashed, its checkpoint bit-flipped, and the reboot fences
/// it; later its ban ledger is bit-flipped and a second reboot loses the
/// ban record. With replication >= 2 anti-entropy must pull the shard
/// back from the surviving slot holder and re-sync the ban; with
/// replication 1 there is no authorized repair source and the shard must
/// FAIL CLOSED — abstaining, never repairing, never serving rot.
corruption_result run_corruption(const fleet_config& cfg) {
  constexpr std::uint64_t kCrash = 20, kCorrupt = 22, kRecover = 24;
  constexpr std::uint64_t kLedgerRot = 40, kReCrash = 42, kReRecover = 46;
  constexpr std::uint64_t kHorizon = 160;

  corruption_result out;
  std::string j1, j4;
  bool end_ok1 = false, end_ok4 = false;

  const auto run = [&](std::size_t threads, std::string* journal,
                       fleet_stats* stats, bool* end_ok) {
    fleet_config run_cfg = cfg;
    run_cfg.serve.threads = threads;
    fleet_rig rig("corrupt_t" + std::to_string(threads), run_cfg);

    // The shard that carries fitted content — the genesis fit models only
    // the classes the CNN predicts, so this is where live verdicts land
    // and where a fence is observable.
    const auto models = models_of(rig.det);
    std::uint64_t shard = 0;
    for (std::size_t cls = 0; cls < models.size(); ++cls) {
      for (const auto& em : models[cls]) {
        if (em.has_value()) shard = shard_of_class(cls, run_cfg);
      }
    }
    const auto owner = shard_owner_k(genesis_view(run_cfg), shard, 0);
    const std::size_t pidx = owner.has_value() ? *owner - 2 : 0;
    out.shard = shard;

    const std::uint64_t attacker = client_owned_by(replica_node(pidx), cfg);
    auto arrivals = benign_arrivals(80, 1, 70'000);
    const auto probes = probe_campaign(attacker, 1, 30);
    arrivals.insert(arrivals.end(), probes.begin(), probes.end());

    fault_plan plan({{kCrash, fault_kind::crash, pidx},
                     {kRecover, fault_kind::recover, pidx},
                     {kReCrash, fault_kind::crash, pidx},
                     {kReRecover, fault_kind::recover, pidx}});
    plan.corrupt({kCorrupt, corrupt_kind::bit_flip, corrupt_target::shard_file,
                  pidx, shard, 7});
    plan.corrupt({kLedgerRot, corrupt_kind::bit_flip,
                  corrupt_target::ledger_file, pidx, 0, 9});
    if (cfg.corrupt_rate > 0.0) {
      plan.add_corruption_chaos(run_cfg, kHorizon, cfg.corrupt_rate, 2024);
    }

    fleet_sim sim(rig.cfg, rig.deps(), plan);
    sim.run(std::move(arrivals), kHorizon);
    *journal = sim.log().text();
    *stats = sim.stats();

    // End-state audit. Replicated: every corrupted replica converged back
    // — nothing still fenced, canonical digests byte-identical across the
    // fleet. Replication 1: the fenced shard STAYS fenced (fail closed).
    bool fenced_remaining = false;
    bool digests_agree = true;
    for (std::uint64_t sh = 0; sh < run_cfg.class_shards; ++sh) {
      const std::uint32_t want = sim.worker(0).content_digest(sh);
      for (std::size_t i = 0; i < run_cfg.replicas; ++i) {
        if (!sim.worker(i).up()) continue;
        fenced_remaining = fenced_remaining || sim.worker(i).shard_fenced(sh);
        digests_agree =
            digests_agree && sim.worker(i).content_digest(sh) == want;
      }
    }
    const bool ban_enforced = [&] {
      const std::string ban_line = "ban client=" + std::to_string(attacker);
      const auto at = journal->find(ban_line);
      return stats->bans_decided == 1 && at != std::string::npos &&
             journal->find(ban_line, at + 1) == std::string::npos &&
             journal->find(
                 "client=" + std::to_string(attacker) + " outcome=served",
                 at) == std::string::npos &&
             sim.route().banned(attacker);
    }();
    const bool converged =
        cfg.replication >= 2
            ? !fenced_remaining && digests_agree &&
                  stats->repairs_completed >= 1
            : fenced_remaining && stats->repairs_completed == 0 &&
                  stats->repairs_requested == 0;
    *end_ok = converged && ban_enforced;
    return std::pair<bool, bool>(converged, ban_enforced);
  };

  const auto [conv1, ban1] = run(1, &j1, &out.stats1, &end_ok1);
  const auto [conv4, ban4] = run(4, &j4, &out.stats4, &end_ok4);
  out.identical = j1 == j4;
  out.all_resolved = resolved_total(out.stats1) == out.stats1.submitted &&
                     resolved_total(out.stats4) == out.stats4.submitted;
  out.fail_closed = out.stats1.corrupt_full_conf_serves == 0 &&
                    out.stats4.corrupt_full_conf_serves == 0 &&
                    out.stats1.shards_fenced_corrupt >= 1;
  out.converged = conv1 && conv4;
  out.ban_durable = ban1 && ban4;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto threads_opt = bench::parse_threads(
      argc, argv, "bench_fleet_failover",
      "sharded detection fleet under scripted kills and seeded chaos: "
      "crash-failover with durable bans, bounded recovery, zero split-brain "
      "verdicts, bitwise 1-vs-4-thread journals, quorum-gated recalibration "
      "with poisoned-rollout rollback, and the kill-the-leader sweep over "
      "the replicated controller group");
  if (!threads_opt) return 0;
  const std::size_t threads = *threads_opt;

  const fleet_config cfg = fleet_config_from_env(bench_cfg());
  const double fault_rate = env_rate("ADVH_FAULT_RATE", 0.02, 1.0);
  const double drift_rate = env_rate("ADVH_DRIFT_RATE", 0.0, 99.0);

  // Phase A: kill every replica in turn, mid-campaign.
  std::vector<failover_result> sweeps;
  for (std::size_t victim = 0; victim < cfg.replicas; ++victim) {
    sweeps.push_back(run_failover(cfg, victim, threads));
  }

  // Phase B: one seeded chaos campaign, diffed across thread counts.
  fleet_config chaos_cfg = cfg;
  if (chaos_cfg.loss_rate == 0.0) chaos_cfg.loss_rate = 0.05;
  const chaos_result chaos = run_chaos(chaos_cfg, fault_rate, drift_rate);

  // Phase C: recalibration rollout + poisoned rollback.
  const recal_result recal = run_recalibration(cfg, threads);

  // Phase D: kill one node — leader, standby, worker — per run. The
  // controller kills need a standby to fail over to and the worker kill
  // needs a secondary to speculate to, so degenerate geometries
  // (controllers=1 / replication=1, pinned by the CI matrix) skip the
  // victims that cannot exist under them.
  std::vector<kill_victim> victims;
  if (cfg.controllers >= 2) {
    victims.push_back(kill_victim::leader);
    victims.push_back(kill_victim::standby);
  }
  if (cfg.replication >= 2) victims.push_back(kill_victim::worker);
  std::vector<node_kill_result> kills;
  for (const auto v : victims) kills.push_back(run_node_kill(cfg, v));

  // Phase E: the corruption sweep — scripted fence-and-repair plus the
  // seeded corruption chaos when ADVH_FLEET_CORRUPT_RATE is set.
  const corruption_result corr = run_corruption(cfg);

  // Gates.
  bool failover_ok = true, bans_ok = true, recovery_ok = true;
  std::uint64_t split_brain = chaos.stats1.split_brain_serves +
                              chaos.stats4.split_brain_serves;
  std::uint64_t worst_recovery = 0;
  for (const auto& r : sweeps) {
    failover_ok = failover_ok && r.all_resolved && r.stats.crashes == 1 &&
                  r.stats.recoveries == 1;
    bans_ok = bans_ok && r.ban_durable;
    recovery_ok = recovery_ok && r.resumed_in_bound;
    worst_recovery = std::max(worst_recovery, r.recovery_ticks);
    split_brain += r.stats.split_brain_serves;
  }
  split_brain += recal.drift_stats.split_brain_serves +
                 recal.poison_stats.split_brain_serves;
  bool kill_ok = true;
  std::uint64_t leader_failover_ticks = 0;
  for (const auto& k : kills) {
    kill_ok = kill_ok && k.all_resolved && k.identical && k.ban_durable &&
              k.failover_bounded && k.secondary_served;
    if (k.victim == kill_victim::leader) leader_failover_ticks = k.failover_ticks;
    split_brain += k.stats1.split_brain_serves + k.stats4.split_brain_serves;
  }
  split_brain += corr.stats1.split_brain_serves + corr.stats4.split_brain_serves;
  const bool split_brain_zero = split_brain == 0;
  const bool deterministic = chaos.identical && chaos.all_resolved &&
                             corr.identical && corr.all_resolved;
  const bool recal_ok = recal.rollout_ok && recal.rollback_ok;
  const bool corruption_ok =
      corr.fail_closed && corr.converged && corr.ban_durable;

  text_table table("Fleet failover: sharded detection under chaos");
  table.set_header({"metric", "value"});
  for (const auto& r : sweeps) {
    const std::string v = "victim " + std::to_string(r.victim);
    table.add_row({v + ": submitted/resolved",
                   std::to_string(r.stats.submitted) + "/" +
                       std::to_string(resolved_total(r.stats))});
    table.add_row({v + ": served",
                   std::to_string(r.stats.outcome(req_outcome::served_clean) +
                                  r.stats.outcome(
                                      req_outcome::served_flagged))});
    table.add_row({v + ": rejected (banned)",
                   std::to_string(
                       r.stats.outcome(req_outcome::rejected_banned))});
    table.add_row({v + ": recovery ticks", std::to_string(r.recovery_ticks)});
  }
  table.add_row({"chaos: fault rate", std::to_string(fault_rate)});
  table.add_row({"chaos: drift rate", std::to_string(drift_rate)});
  table.add_row({"chaos: submitted", std::to_string(chaos.stats1.submitted)});
  table.add_row(
      {"chaos: view changes", std::to_string(chaos.stats1.view_changes)});
  table.add_row({"chaos: crashes", std::to_string(chaos.stats1.crashes)});
  table.add_row({"recal: drift alarms",
                 std::to_string(recal.drift_stats.drift_alarms)});
  table.add_row(
      {"recal: rollouts", std::to_string(recal.drift_stats.rollouts)});
  table.add_row({"recal: poisoned rollbacks",
                 std::to_string(recal.poison_stats.rollbacks)});
  for (const auto& k : kills) {
    const std::string v = "kill " + std::string(to_string(k.victim));
    table.add_row({v + ": submitted/resolved",
                   std::to_string(k.stats1.submitted) + "/" +
                       std::to_string(resolved_total(k.stats1))});
    table.add_row({v + ": elections", std::to_string(k.stats1.elections)});
    table.add_row({v + ": served via secondary",
                   std::to_string(k.stats1.served_secondary)});
    if (k.victim == kill_victim::leader) {
      table.add_row({v + ": failover ticks",
                     std::to_string(k.failover_ticks)});
    }
  }
  table.add_row({"corrupt: faults injected",
                 std::to_string(corr.stats1.corrupt_faults)});
  table.add_row({"corrupt: shards fenced",
                 std::to_string(corr.stats1.shards_fenced_corrupt)});
  table.add_row({"corrupt: verdicts suppressed",
                 std::to_string(corr.stats1.verdicts_suppressed_corrupt)});
  table.add_row({"corrupt: repairs completed",
                 std::to_string(corr.stats1.repairs_completed)});
  table.add_row({"corrupt: bans re-synced",
                 std::to_string(corr.stats1.bans_synced)});
  table.add_row({"corrupt: full-confidence escapes",
                 std::to_string(corr.stats1.corrupt_full_conf_serves)});
  table.add_row({"split-brain serves (all phases)",
                 std::to_string(split_brain)});

  std::ostringstream json;
  json << "{\n  \"bench\": \"fleet_failover\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"replicas\": " << cfg.replicas << ",\n"
       << "  \"fault_rate\": " << fault_rate << ",\n"
       << "  \"drift_rate\": " << drift_rate << ",\n"
       << "  \"loss_rate\": " << chaos_cfg.loss_rate << ",\n"
       << "  \"controllers\": " << cfg.controllers << ",\n"
       << "  \"replication\": " << cfg.replication << ",\n"
       << "  \"worst_recovery_ticks\": " << worst_recovery << ",\n"
       << "  \"leader_failover_ticks\": " << leader_failover_ticks << ",\n"
       << "  \"split_brain_serves\": " << split_brain << ",\n"
       << "  \"chaos_view_changes\": " << chaos.stats1.view_changes << ",\n"
       << "  \"drift_alarms\": " << recal.drift_stats.drift_alarms << ",\n"
       << "  \"rollouts\": " << recal.drift_stats.rollouts << ",\n"
       << "  \"poisoned_rollbacks\": " << recal.poison_stats.rollbacks << ",\n"
       << "  \"corrupt_rate\": " << cfg.corrupt_rate << ",\n"
       << "  \"scrub_period\": " << cfg.scrub_period << ",\n"
       << "  \"corrupt_faults\": " << corr.stats1.corrupt_faults << ",\n"
       << "  \"shards_fenced_corrupt\": " << corr.stats1.shards_fenced_corrupt
       << ",\n"
       << "  \"verdicts_suppressed_corrupt\": "
       << corr.stats1.verdicts_suppressed_corrupt << ",\n"
       << "  \"repairs_completed\": " << corr.stats1.repairs_completed << ",\n"
       << "  \"bans_synced\": " << corr.stats1.bans_synced << ",\n"
       << "  \"corrupt_full_conf_serves\": "
       << corr.stats1.corrupt_full_conf_serves + corr.stats4.corrupt_full_conf_serves
       << ",\n"
       << "  \"checks\": {\n"
       << "    \"failover_ok\": " << (failover_ok ? "true" : "false")
       << ",\n    \"bans_durable\": " << (bans_ok ? "true" : "false")
       << ",\n    \"recovery_bounded\": " << (recovery_ok ? "true" : "false")
       << ",\n    \"split_brain_zero\": "
       << (split_brain_zero ? "true" : "false")
       << ",\n    \"deterministic_1_vs_4_threads\": "
       << (deterministic ? "true" : "false")
       << ",\n    \"recalibration_ok\": " << (recal_ok ? "true" : "false")
       << ",\n    \"node_kill_ok\": " << (kill_ok ? "true" : "false")
       << ",\n    \"corruption_fail_closed\": "
       << (corr.fail_closed ? "true" : "false")
       << ",\n    \"corruption_converged\": "
       << (corr.converged ? "true" : "false")
       << ",\n    \"corruption_bans_durable\": "
       << (corr.ban_durable ? "true" : "false")
       << ",\n    \"corruption_deterministic\": "
       << (corr.identical && corr.all_resolved ? "true" : "false")
       << "\n  }\n}\n";
  write_file("bench_results/BENCH_fleet_failover.json", json.str());

  bench::emit(table, "fleet_failover");
  std::cout << "\nchecks: failover " << (failover_ok ? "ok" : "FAIL")
            << ", bans durable " << (bans_ok ? "ok" : "FAIL")
            << ", recovery bounded " << (recovery_ok ? "ok" : "FAIL")
            << " (worst " << worst_recovery << " ticks), split-brain "
            << (split_brain_zero ? "ok" : "FAIL") << " (" << split_brain
            << "), determinism " << (deterministic ? "ok" : "FAIL")
            << ", recalibration " << (recal_ok ? "ok" : "FAIL")
            << ", node kills " << (kill_ok ? "ok" : "FAIL") << " (leader "
            << leader_failover_ticks << " ticks), corruption "
            << (corruption_ok ? "ok" : "FAIL") << " ("
            << corr.stats1.corrupt_faults << " faults, "
            << corr.stats1.shards_fenced_corrupt << " fenced, "
            << corr.stats1.repairs_completed << " repaired)\n";

  const bool all_ok = failover_ok && bans_ok && recovery_ok &&
                      split_brain_zero && deterministic && recal_ok &&
                      kill_ok && corruption_ok;
  return all_ok ? 0 : 1;
}
