// Reproduces Figure 1: distributions of activated neurons at the
// activation layers of the case-study CNN (4 conv + 2 FC on CIFAR-10-like
// data), for clean inputs of the target category vs inputs of other
// categories adversarially perturbed into it with FGSM (eps = 0.1).
//
// The paper plots normalised frequency distributions of activated neurons
// per activation layer; we render, per layer, the distribution of the
// per-input activated-neuron count for both populations (the summary the
// downstream detector consumes), plus the per-layer mean activation
// overlap. Layer-wise separation grows with depth, as in the paper.
#include <cmath>
#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

using namespace advh;

namespace {

/// Per-activation-layer counts of fired neurons for one population.
std::vector<std::vector<double>> activation_counts(
    nn::model& m, const std::vector<tensor>& inputs) {
  std::vector<std::vector<double>> per_layer;
  for (const auto& x : inputs) {
    std::size_t pred = 0;
    auto trace = m.trace_inference(x, pred);
    std::size_t li = 0;
    for (const auto& e : trace.layers) {
      if (e.kind != nn::layer_kind::relu) continue;
      if (li >= per_layer.size()) per_layer.emplace_back();
      per_layer[li].push_back(static_cast<double>(e.active_outputs.size()));
      ++li;
    }
  }
  return per_layer;
}

}  // namespace

int main() {
  // Case-study model: trained on the CIFAR-10 analogue like the paper's
  // 4-conv + 2-FC CNN. Cached independently of the scenario models.
  auto spec = data::cifar10_like();
  auto train = data::make_synthetic(spec, bench::scaled(120));
  spec.sample_seed = 1;
  auto eval = data::make_synthetic(spec, bench::scaled(120));

  auto model = nn::make_model(nn::architecture::case_study_cnn,
                              train.example_shape(), train.num_classes, 42);
  const std::string cache = "advh_models/fig1_case_study_cnn.advh";
  if (nn::is_state_file(cache)) {
    nn::load_state(*model, cache);
  } else {
    nn::train_config cfg;
    cfg.epochs = 5;
    nn::train_classifier(*model, train.images, train.labels, cfg);
    nn::save_state(*model, cache);
  }

  // Paper setting: clean inputs of category 'bird', other categories
  // perturbed with FGSM (targeted, eps = 0.1) to be misclassified as it.
  const std::size_t target = 2;  // 'bird'
  const std::size_t batch = bench::scaled(100);
  auto clean = bench::clean_of_class(*model, eval, target, batch);
  auto adv = bench::collect_adversarial(
      *model, eval, attack::attack_kind::fgsm, attack::attack_goal::targeted,
      0.1f, target, batch);

  std::cout << "Figure 1: activated-neuron distributions, clean '"
            << eval.class_names[target] << "' (" << clean.size()
            << " inputs) vs FGSM-targeted AEs (" << adv.inputs.size()
            << " inputs)\n\n";

  auto clean_counts = activation_counts(*model, clean);
  auto adv_counts = activation_counts(*model, adv.inputs);

  std::ostringstream artifact;
  text_table summary("per-layer activated-neuron summary");
  summary.set_header({"activation layer", "clean mean", "clean sd", "AE mean",
                      "AE sd", "|shift| / clean sd"});
  for (std::size_t l = 0; l < clean_counts.size(); ++l) {
    const double cm = stats::mean(clean_counts[l]);
    const double cs = stats::stddev(clean_counts[l]);
    const double am = stats::mean(adv_counts[l]);
    const double as = stats::stddev(adv_counts[l]);
    summary.add_row({"#" + std::to_string(l + 1), text_table::num(cm, 1),
                     text_table::num(cs, 1), text_table::num(am, 1),
                     text_table::num(as, 1),
                     text_table::num(cs > 0 ? std::fabs(am - cm) / cs : 0.0,
                                     2)});

    // The paper shows the first and final three layers; we render all.
    artifact << "Activation Layer #" << (l + 1) << "\n"
             << plot::dual_histogram(clean_counts[l], adv_counts[l], "clean",
                                     "adversarial", 40, 8)
             << "\n";
  }
  summary.print(std::cout);
  bench::emit_text(artifact.str(), "fig1_activations");
  write_file("bench_results/fig1_activations.csv", summary.to_csv());
  return 0;
}
