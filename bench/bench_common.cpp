#include "bench/bench_common.hpp"

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "nn/trainer.hpp"

namespace advh::bench {

double scale() {
  if (const char* env = std::getenv("ADVH_BENCH_SCALE")) {
    // Strict parse, matching every other ADVH_* knob (PR 4 convention):
    // the old atof() silently read "0.5x" as 0.5 and "fast" as "unset" —
    // a typo in a CI matrix must fail the job, not quietly change (or
    // keep) the workload size.
    errno = 0;
    char* end = nullptr;
    const double s = std::strtod(env, &end);
    if (end == env || *end != '\0' || errno == ERANGE || !(s > 0.0) ||
        s > 1e6) {
      throw std::invalid_argument(std::string("ADVH_BENCH_SCALE=\"") + env +
                                  "\": expected a number in (0, 1e6]");
    }
    return s;
  }
  return 1.0;
}

std::size_t scaled(std::size_t base) {
  const auto s = static_cast<std::size_t>(static_cast<double>(base) * scale());
  return std::max<std::size_t>(s, 1);
}

std::optional<std::size_t> parse_threads(int argc, const char* const* argv,
                                         const std::string& program,
                                         const std::string& description) {
  cli_parser cli(program, description);
  cli.add_flag("threads", "0",
               "measurement worker threads (0 = ADVH_THREADS or hardware)");
  if (!cli.parse(argc, argv)) return std::nullopt;
  const int n = cli.get_int("threads");
  return static_cast<std::size_t>(n < 0 ? 0 : n);
}

core::scenario_runtime prepare(data::scenario_id id) {
  return core::prepare_scenario(id);
}

std::unique_ptr<hpc::sim_backend> make_monitor(nn::model& m,
                                               std::uint64_t seed) {
  return std::make_unique<hpc::sim_backend>(m, uarch::trace_gen_config{},
                                            hpc::noise_model{}, seed);
}

data::dataset attack_pool(const core::scenario_runtime& rt,
                          std::size_t per_class) {
  auto spec = rt.spec.dataset_spec;
  spec.sample_seed = 2;  // disjoint from train (0) and test (1)
  return data::make_synthetic(spec, per_class);
}

adversarial_set collect_adversarial(nn::model& m, const data::dataset& pool,
                                    attack::attack_kind kind,
                                    attack::attack_goal goal, float epsilon,
                                    std::size_t target_class,
                                    std::size_t max_count,
                                    std::size_t pgd_steps) {
  attack::attack_config cfg;
  cfg.goal = goal;
  cfg.target_class = target_class;
  cfg.epsilon = epsilon;
  cfg.steps = pgd_steps;
  auto atk = attack::make_attack(kind, cfg);

  adversarial_set out;
  std::size_t true_hits = 0;
  std::size_t target_hits = 0;
  // Round-robin over classes so sources are balanced even if we stop early.
  std::vector<std::vector<std::size_t>> by_class(pool.num_classes);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    by_class[pool.labels[i]].push_back(i);
  }
  for (std::size_t round = 0; out.inputs.size() < max_count; ++round) {
    bool any = false;
    for (std::size_t cls = 0;
         cls < pool.num_classes && out.inputs.size() < max_count; ++cls) {
      if (goal == attack::attack_goal::targeted && cls == target_class) {
        continue;
      }
      if (round >= by_class[cls].size()) continue;
      any = true;
      const std::size_t i = by_class[cls][round];
      tensor x = nn::single_example(pool.images, i);
      if (m.predict_one(x) != pool.labels[i]) continue;  // already wrong
      auto r = atk->run(m, x, pool.labels[i]);
      ++out.attempted;
      if (r.adversarial_prediction == pool.labels[i]) ++true_hits;
      if (goal == attack::attack_goal::targeted &&
          r.adversarial_prediction == target_class) {
        ++target_hits;
      }
      if (r.success) {
        out.inputs.push_back(std::move(r.adversarial));
        out.source_labels.push_back(pool.labels[i]);
      }
    }
    if (!any) break;  // pool exhausted
  }

  if (out.attempted > 0) {
    const auto n = static_cast<double>(out.attempted);
    out.attack_success_rate =
        static_cast<double>(out.inputs.size()) / n;
    out.attack_accuracy_metric =
        goal == attack::attack_goal::targeted
            ? static_cast<double>(target_hits) / n
            : static_cast<double>(true_hits) / n;
  }
  return out;
}

std::vector<tensor> clean_of_class(nn::model& m, const data::dataset& d,
                                   std::size_t cls, std::size_t max_count) {
  std::vector<tensor> out;
  for (std::size_t i = 0; i < d.size() && out.size() < max_count; ++i) {
    if (d.labels[i] != cls) continue;
    tensor x = nn::single_example(d.images, i);
    if (m.predict_one(x) == cls) out.push_back(std::move(x));
  }
  return out;
}

core::detector fit_detector(hpc::hpc_monitor& monitor,
                            const core::detector_config& cfg,
                            const data::dataset& validation_pool,
                            std::size_t per_class, std::uint64_t seed,
                            std::size_t threads) {
  const auto tpl = core::collect_template(monitor, cfg, validation_pool,
                                          per_class, seed, threads);
  const auto short_classes = tpl.underfilled_classes();
  if (!short_classes.empty()) {
    log::warn("template short on ", short_classes.size(), " of ",
              tpl.num_classes(), " classes (requested ",
              tpl.requested_per_class(), " rows per class)");
  }
  return core::detector::fit(tpl, cfg, threads);
}

void emit(const text_table& table, const std::string& name) {
  table.print(std::cout);
  write_file("bench_results/" + name + ".csv", table.to_csv());
}

void emit_text(const std::string& content, const std::string& name) {
  std::cout << content << "\n";
  write_file("bench_results/" + name + ".txt", content);
}

}  // namespace advh::bench
