// Measurement-resilience sweep: detection quality as a function of the
// injected counter-fault rate, comparing the resilient measurement stack
// (retry/backoff + median/MAD aggregation + graceful degradation) against
// the naive path that feeds faulted readings straight to the detector.
//
// Per fault rate the bench reports measurement recovery (fraction of
// samples whose requested repetitions were all refilled), retry/outlier
// counts, abstain/degraded rates, and fused detection accuracy over a
// balanced clean + adversarial pool. Two self-checks gate the exit code:
//   * determinism — the 10% fault-rate storm must produce bitwise
//     identical verdicts and measurements at 1 and 4 worker threads;
//   * resilience — at a 10% transient rate, recovery must reach 99% and
//     accuracy must stay within 2 points of the fault-free baseline.
//
// Writes bench_results/BENCH_robustness_faults.{csv,json}.
#include <cmath>
#include <iostream>
#include <memory>
#include <sstream>

#include "bench/bench_common.hpp"
#include "hpc/fault_backend.hpp"
#include "hpc/resilient_monitor.hpp"

using namespace advh;

namespace {

constexpr double kAcceptRate = 0.10;      // the gated sweep point
constexpr double kMinRecovery = 0.99;
constexpr double kMaxAccuracyDrop = 2.0;  // percentage points

/// Same rate split the ADVH_FAULT_RATE chaos knob uses (hpc/factory).
hpc::fault_config faults_for(double rate) {
  hpc::fault_config fc;
  fc.read_failure_rate = rate;
  fc.spike_rate = rate / 2.0;
  fc.stuck_rate = rate / 4.0;
  fc.hang_rate = rate / 50.0;
  fc.hang_ms = 1;
  fc.seed = 13;
  return fc;
}

/// sim -> fault -> resilient stack with fixed seeds everywhere.
hpc::monitor_ptr resilient_stack(nn::model& m, double rate) {
  auto faulty = std::make_unique<hpc::fault_backend>(bench::make_monitor(m),
                                                     faults_for(rate));
  return std::make_unique<hpc::resilient_monitor>(std::move(faulty));
}

/// sim -> fault stack: faulted readings aggregated naively.
hpc::monitor_ptr naive_stack(nn::model& m, double rate) {
  return std::make_unique<hpc::fault_backend>(bench::make_monitor(m),
                                              faults_for(rate));
}

struct eval_outcome {
  std::vector<hpc::measurement> measurements;
  std::vector<core::verdict> verdicts;
  core::detection_confusion fused;
  std::size_t abstained = 0;
  std::size_t degraded = 0;
};

/// Measures and scores clean + adversarial pools through `monitor`,
/// accumulating one outcome over both (sample streams run clean-then-adv,
/// so the fault pattern is a pure function of the pool layout).
eval_outcome evaluate(const core::detector& det, hpc::hpc_monitor& monitor,
                      std::span<const tensor> clean,
                      std::span<const tensor> adv, std::size_t threads) {
  eval_outcome out;
  const auto run = [&](std::span<const tensor> inputs, bool is_adversarial) {
    const auto ms = monitor.measure_batch(inputs, det.config().events,
                                          det.config().repeats, threads);
    for (const auto& m : ms) {
      auto v = det.score(m.predicted, m.mean_counts, m.q.available);
      out.fused.push(is_adversarial, v.adversarial_any);
      if (v.abstained) ++out.abstained;
      if (v.degraded) ++out.degraded;
      out.measurements.push_back(m);
      out.verdicts.push_back(std::move(v));
    }
  };
  run(clean, false);
  run(adv, true);
  return out;
}

/// Fraction of measurements whose requested repetitions were all refilled
/// for every surviving event (the bench's "measurement recovery").
double recovery_fraction(const eval_outcome& out) {
  if (out.measurements.empty()) return 0.0;
  std::size_t recovered = 0;
  for (const auto& m : out.measurements) {
    if (m.q.failed_repetitions == 0 && !m.q.degraded()) ++recovered;
  }
  return static_cast<double>(recovered) /
         static_cast<double>(out.measurements.size());
}

bool same_measurements(const std::vector<hpc::measurement>& a,
                       const std::vector<hpc::measurement>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].mean_counts != b[i].mean_counts ||
        a[i].stddev_counts != b[i].stddev_counts ||
        a[i].predicted != b[i].predicted ||
        a[i].q.available != b[i].q.available ||
        a[i].q.retries != b[i].q.retries ||
        a[i].q.outliers_rejected != b[i].q.outliers_rejected ||
        a[i].q.failed_repetitions != b[i].q.failed_repetitions) {
      return false;
    }
  }
  return true;
}

bool same_verdicts(const std::vector<core::verdict>& a,
                   const std::vector<core::verdict>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].predicted != b[i].predicted || a[i].nll != b[i].nll ||
        a[i].adversarial_any != b[i].adversarial_any ||
        a[i].degraded != b[i].degraded || a[i].abstained != b[i].abstained) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto threads_opt = bench::parse_threads(
      argc, argv, "bench_robustness_faults",
      "detection quality vs injected counter-fault rate (resilient vs naive "
      "measurement stack)");
  if (!threads_opt) return 0;
  const std::size_t threads = *threads_opt;

  auto rt = bench::prepare(data::scenario_id::s1);

  core::detector_config dcfg;
  dcfg.events = hpc::core_events();
  dcfg.repeats = 10;

  // Detector fitted on the fault-free path: deployments calibrate on a
  // healthy PMU; faults arrive later, at classification time.
  auto fit_monitor = bench::make_monitor(*rt.net);
  const auto det =
      bench::fit_detector(*fit_monitor, dcfg, rt.train, bench::scaled(30));

  // Balanced eval pool: clean images of every class + untargeted FGSM AEs.
  std::vector<tensor> clean;
  for (std::size_t cls = 0; cls < rt.test.num_classes; ++cls) {
    auto v = bench::clean_of_class(*rt.net, rt.test, cls, bench::scaled(8));
    for (auto& x : v) clean.push_back(std::move(x));
  }
  auto pool = bench::attack_pool(rt, bench::scaled(40));
  auto adv = bench::collect_adversarial(*rt.net, pool,
                                        attack::attack_kind::fgsm,
                                        attack::attack_goal::untargeted, 0.1f,
                                        0, clean.size());
  std::cout << "S1 untargeted FGSM eps=0.1: " << adv.inputs.size()
            << " AEs over " << adv.attempted << " attempts; clean pool "
            << clean.size() << "\n\n";

  const std::vector<double> rates{0.0, 0.02, 0.05, 0.10, 0.20};

  text_table table(
      "Measurement resilience: fault-rate sweep (scenario S1, fused verdict)");
  table.set_header({"fault rate", "resilient acc %", "naive acc %",
                    "recovery %", "abstain %", "degraded %", "retries",
                    "outliers"});

  double baseline_acc = 0.0;
  double accept_acc = 0.0;
  double accept_recovery = 0.0;
  std::ostringstream rows_json;

  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double rate = rates[i];

    auto resilient = resilient_stack(*rt.net, rate);
    const auto res = evaluate(det, *resilient, clean, adv.inputs, threads);

    auto naive = naive_stack(*rt.net, rate);
    const auto nav = evaluate(det, *naive, clean, adv.inputs, threads);

    const double n_total = static_cast<double>(res.verdicts.size());
    const double res_acc = 100.0 * res.fused.accuracy();
    const double nav_acc = 100.0 * nav.fused.accuracy();
    const double recovery = recovery_fraction(res);
    const double abstain_rate =
        100.0 * static_cast<double>(res.abstained) / n_total;
    const double degraded_rate =
        100.0 * static_cast<double>(res.degraded) / n_total;
    std::size_t retries = 0, outliers = 0;
    for (const auto& m : res.measurements) {
      retries += m.q.retries;
      outliers += m.q.outliers_rejected;
    }

    if (rate == 0.0) baseline_acc = res_acc;
    if (rate == kAcceptRate) {
      accept_acc = res_acc;
      accept_recovery = recovery;
    }

    table.add_row({text_table::num(rate, 2), text_table::num(res_acc, 2),
                   text_table::num(nav_acc, 2),
                   text_table::num(100.0 * recovery, 2),
                   text_table::num(abstain_rate, 2),
                   text_table::num(degraded_rate, 2), std::to_string(retries),
                   std::to_string(outliers)});
    rows_json << (i == 0 ? "" : ",") << "\n    {\"fault_rate\": " << rate
              << ", \"resilient_accuracy\": " << res_acc
              << ", \"naive_accuracy\": " << nav_acc
              << ", \"recovery\": " << recovery
              << ", \"abstain_rate\": " << abstain_rate
              << ", \"degraded_rate\": " << degraded_rate
              << ", \"retries\": " << retries
              << ", \"outliers_rejected\": " << outliers << "}";
  }

  // Self-check 1: the acceptance-rate fault storm replays bit for bit at
  // any thread count (fresh stacks so stream state is identical).
  auto t1 = resilient_stack(*rt.net, kAcceptRate);
  auto t4 = resilient_stack(*rt.net, kAcceptRate);
  const auto run1 = evaluate(det, *t1, clean, adv.inputs, 1);
  const auto run4 = evaluate(det, *t4, clean, adv.inputs, 4);
  const bool deterministic = same_measurements(run1.measurements,
                                               run4.measurements) &&
                             same_verdicts(run1.verdicts, run4.verdicts);

  // Self-check 2: recovery and accuracy at the acceptance rate.
  const double acc_drop = baseline_acc - accept_acc;
  const bool recovered = accept_recovery >= kMinRecovery;
  const bool accurate = std::abs(acc_drop) <= kMaxAccuracyDrop;

  std::ostringstream json;
  json << "{\n  \"bench\": \"robustness_faults\",\n  \"scenario\": \"S1\",\n"
       << "  \"repeats\": " << dcfg.repeats << ",\n  \"clean_inputs\": "
       << clean.size() << ",\n  \"adversarial_inputs\": " << adv.inputs.size()
       << ",\n  \"threads\": " << threads << ",\n  \"rates\": ["
       << rows_json.str() << "\n  ],\n  \"checks\": {\n"
       << "    \"deterministic_1_vs_4_threads\": "
       << (deterministic ? "true" : "false") << ",\n"
       << "    \"recovery_at_10pct\": " << accept_recovery << ",\n"
       << "    \"accuracy_drop_at_10pct\": " << acc_drop << ",\n"
       << "    \"recovery_ok\": " << (recovered ? "true" : "false") << ",\n"
       << "    \"accuracy_ok\": " << (accurate ? "true" : "false") << "\n"
       << "  }\n}\n";
  write_file("bench_results/BENCH_robustness_faults.json", json.str());

  bench::emit(table, "robustness_faults");
  std::cout << "\nchecks @ fault rate " << kAcceptRate << ": recovery "
            << text_table::num(100.0 * accept_recovery, 2) << "% ("
            << (recovered ? "ok" : "FAIL") << "), accuracy drop "
            << text_table::num(acc_drop, 2) << " pts ("
            << (accurate ? "ok" : "FAIL") << "), 1-vs-4-thread storms "
            << (deterministic ? "identical" : "DIFFER") << "\n";

  if (!deterministic || !recovered || !accurate) {
    std::cerr << "FAIL: resilience acceptance checks failed\n";
    return 1;
  }
  return 0;
}
