# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_im2col[1]_include.cmake")
include("/root/repo/build/tests/test_nn_layers[1]_include.cmake")
include("/root/repo/build/tests/test_nn_model[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_gmm[1]_include.cmake")
include("/root/repo/build/tests/test_hpc[1]_include.cmake")
include("/root/repo/build/tests/test_detector[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
