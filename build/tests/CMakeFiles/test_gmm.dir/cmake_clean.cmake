file(REMOVE_RECURSE
  "CMakeFiles/test_gmm.dir/test_gmm.cpp.o"
  "CMakeFiles/test_gmm.dir/test_gmm.cpp.o.d"
  "test_gmm"
  "test_gmm.pdb"
  "test_gmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
