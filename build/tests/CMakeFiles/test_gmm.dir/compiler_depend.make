# Empty compiler generated dependencies file for test_gmm.
# This may be replaced when dependencies are built.
