
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_nn_layers.cpp" "tests/CMakeFiles/test_nn_layers.dir/test_nn_layers.cpp.o" "gcc" "tests/CMakeFiles/test_nn_layers.dir/test_nn_layers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/advh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/advh_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/advh_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/advh_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/gmm/CMakeFiles/advh_gmm.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/advh_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/advh_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/advh_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/advh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
