file(REMOVE_RECURSE
  "CMakeFiles/traffic_sign_audit.dir/traffic_sign_audit.cpp.o"
  "CMakeFiles/traffic_sign_audit.dir/traffic_sign_audit.cpp.o.d"
  "traffic_sign_audit"
  "traffic_sign_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_sign_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
