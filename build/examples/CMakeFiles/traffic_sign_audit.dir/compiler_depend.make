# Empty compiler generated dependencies file for traffic_sign_audit.
# This may be replaced when dependencies are built.
