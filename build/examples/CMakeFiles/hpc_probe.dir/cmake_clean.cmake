file(REMOVE_RECURSE
  "CMakeFiles/hpc_probe.dir/hpc_probe.cpp.o"
  "CMakeFiles/hpc_probe.dir/hpc_probe.cpp.o.d"
  "hpc_probe"
  "hpc_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
