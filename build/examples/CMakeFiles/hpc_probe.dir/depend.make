# Empty dependencies file for hpc_probe.
# This may be replaced when dependencies are built.
