# Empty dependencies file for cloud_monitor.
# This may be replaced when dependencies are built.
