file(REMOVE_RECURSE
  "CMakeFiles/cloud_monitor.dir/cloud_monitor.cpp.o"
  "CMakeFiles/cloud_monitor.dir/cloud_monitor.cpp.o.d"
  "cloud_monitor"
  "cloud_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
