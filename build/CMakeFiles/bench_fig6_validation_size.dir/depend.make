# Empty dependencies file for bench_fig6_validation_size.
# This may be replaced when dependencies are built.
