file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_hpc_distributions.dir/bench/bench_fig3_hpc_distributions.cpp.o"
  "CMakeFiles/bench_fig3_hpc_distributions.dir/bench/bench_fig3_hpc_distributions.cpp.o.d"
  "bench/bench_fig3_hpc_distributions"
  "bench/bench_fig3_hpc_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hpc_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
