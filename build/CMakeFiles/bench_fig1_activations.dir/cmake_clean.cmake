file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_activations.dir/bench/bench_fig1_activations.cpp.o"
  "CMakeFiles/bench_fig1_activations.dir/bench/bench_fig1_activations.cpp.o.d"
  "bench/bench_fig1_activations"
  "bench/bench_fig1_activations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_activations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
