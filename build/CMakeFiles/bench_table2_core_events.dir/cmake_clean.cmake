file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_core_events.dir/bench/bench_table2_core_events.cpp.o"
  "CMakeFiles/bench_table2_core_events.dir/bench/bench_table2_core_events.cpp.o.d"
  "bench/bench_table2_core_events"
  "bench/bench_table2_core_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_core_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
