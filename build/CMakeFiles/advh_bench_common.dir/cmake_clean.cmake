file(REMOVE_RECURSE
  "CMakeFiles/advh_bench_common.dir/bench/bench_common.cpp.o"
  "CMakeFiles/advh_bench_common.dir/bench/bench_common.cpp.o.d"
  "libadvh_bench_common.a"
  "libadvh_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advh_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
