# Empty dependencies file for advh_bench_common.
# This may be replaced when dependencies are built.
