file(REMOVE_RECURSE
  "libadvh_bench_common.a"
)
