file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_uarch.dir/bench/bench_ablation_uarch.cpp.o"
  "CMakeFiles/bench_ablation_uarch.dir/bench/bench_ablation_uarch.cpp.o.d"
  "bench/bench_ablation_uarch"
  "bench/bench_ablation_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
