file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cache_events.dir/bench/bench_fig5_cache_events.cpp.o"
  "CMakeFiles/bench_fig5_cache_events.dir/bench/bench_fig5_cache_events.cpp.o.d"
  "bench/bench_fig5_cache_events"
  "bench/bench_fig5_cache_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cache_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
