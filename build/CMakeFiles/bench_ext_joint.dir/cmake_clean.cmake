file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_joint.dir/bench/bench_ext_joint.cpp.o"
  "CMakeFiles/bench_ext_joint.dir/bench/bench_ext_joint.cpp.o.d"
  "bench/bench_ext_joint"
  "bench/bench_ext_joint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_joint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
