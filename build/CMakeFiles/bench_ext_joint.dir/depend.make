# Empty dependencies file for bench_ext_joint.
# This may be replaced when dependencies are built.
