file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_attack_sweep.dir/bench/bench_fig4_attack_sweep.cpp.o"
  "CMakeFiles/bench_fig4_attack_sweep.dir/bench/bench_fig4_attack_sweep.cpp.o.d"
  "bench/bench_fig4_attack_sweep"
  "bench/bench_fig4_attack_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_attack_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
