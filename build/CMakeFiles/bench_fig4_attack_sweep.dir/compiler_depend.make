# Empty compiler generated dependencies file for bench_fig4_attack_sweep.
# This may be replaced when dependencies are built.
