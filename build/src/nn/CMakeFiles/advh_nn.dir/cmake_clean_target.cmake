file(REMOVE_RECURSE
  "libadvh_nn.a"
)
