# Empty dependencies file for advh_nn.
# This may be replaced when dependencies are built.
