
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpc/events.cpp" "src/hpc/CMakeFiles/advh_hpc.dir/events.cpp.o" "gcc" "src/hpc/CMakeFiles/advh_hpc.dir/events.cpp.o.d"
  "/root/repo/src/hpc/factory.cpp" "src/hpc/CMakeFiles/advh_hpc.dir/factory.cpp.o" "gcc" "src/hpc/CMakeFiles/advh_hpc.dir/factory.cpp.o.d"
  "/root/repo/src/hpc/noise.cpp" "src/hpc/CMakeFiles/advh_hpc.dir/noise.cpp.o" "gcc" "src/hpc/CMakeFiles/advh_hpc.dir/noise.cpp.o.d"
  "/root/repo/src/hpc/perf_backend.cpp" "src/hpc/CMakeFiles/advh_hpc.dir/perf_backend.cpp.o" "gcc" "src/hpc/CMakeFiles/advh_hpc.dir/perf_backend.cpp.o.d"
  "/root/repo/src/hpc/sim_backend.cpp" "src/hpc/CMakeFiles/advh_hpc.dir/sim_backend.cpp.o" "gcc" "src/hpc/CMakeFiles/advh_hpc.dir/sim_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/advh_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/advh_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/advh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/advh_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
