file(REMOVE_RECURSE
  "libadvh_hpc.a"
)
