# Empty dependencies file for advh_hpc.
# This may be replaced when dependencies are built.
