file(REMOVE_RECURSE
  "CMakeFiles/advh_hpc.dir/events.cpp.o"
  "CMakeFiles/advh_hpc.dir/events.cpp.o.d"
  "CMakeFiles/advh_hpc.dir/factory.cpp.o"
  "CMakeFiles/advh_hpc.dir/factory.cpp.o.d"
  "CMakeFiles/advh_hpc.dir/noise.cpp.o"
  "CMakeFiles/advh_hpc.dir/noise.cpp.o.d"
  "CMakeFiles/advh_hpc.dir/perf_backend.cpp.o"
  "CMakeFiles/advh_hpc.dir/perf_backend.cpp.o.d"
  "CMakeFiles/advh_hpc.dir/sim_backend.cpp.o"
  "CMakeFiles/advh_hpc.dir/sim_backend.cpp.o.d"
  "libadvh_hpc.a"
  "libadvh_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advh_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
