file(REMOVE_RECURSE
  "libadvh_tensor.a"
)
