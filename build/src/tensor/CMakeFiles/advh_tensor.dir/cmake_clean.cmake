file(REMOVE_RECURSE
  "CMakeFiles/advh_tensor.dir/im2col.cpp.o"
  "CMakeFiles/advh_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/advh_tensor.dir/matmul.cpp.o"
  "CMakeFiles/advh_tensor.dir/matmul.cpp.o.d"
  "CMakeFiles/advh_tensor.dir/ops.cpp.o"
  "CMakeFiles/advh_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/advh_tensor.dir/shape.cpp.o"
  "CMakeFiles/advh_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/advh_tensor.dir/tensor.cpp.o"
  "CMakeFiles/advh_tensor.dir/tensor.cpp.o.d"
  "libadvh_tensor.a"
  "libadvh_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advh_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
