# Empty dependencies file for advh_tensor.
# This may be replaced when dependencies are built.
