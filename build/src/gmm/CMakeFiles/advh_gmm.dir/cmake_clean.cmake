file(REMOVE_RECURSE
  "CMakeFiles/advh_gmm.dir/gmm.cpp.o"
  "CMakeFiles/advh_gmm.dir/gmm.cpp.o.d"
  "CMakeFiles/advh_gmm.dir/kmeans.cpp.o"
  "CMakeFiles/advh_gmm.dir/kmeans.cpp.o.d"
  "libadvh_gmm.a"
  "libadvh_gmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advh_gmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
