# Empty dependencies file for advh_gmm.
# This may be replaced when dependencies are built.
