file(REMOVE_RECURSE
  "libadvh_gmm.a"
)
