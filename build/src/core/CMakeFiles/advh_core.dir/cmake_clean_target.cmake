file(REMOVE_RECURSE
  "libadvh_core.a"
)
