# Empty compiler generated dependencies file for advh_core.
# This may be replaced when dependencies are built.
