file(REMOVE_RECURSE
  "CMakeFiles/advh_core.dir/detector.cpp.o"
  "CMakeFiles/advh_core.dir/detector.cpp.o.d"
  "CMakeFiles/advh_core.dir/detector_io.cpp.o"
  "CMakeFiles/advh_core.dir/detector_io.cpp.o.d"
  "CMakeFiles/advh_core.dir/joint_detector.cpp.o"
  "CMakeFiles/advh_core.dir/joint_detector.cpp.o.d"
  "CMakeFiles/advh_core.dir/metrics.cpp.o"
  "CMakeFiles/advh_core.dir/metrics.cpp.o.d"
  "CMakeFiles/advh_core.dir/pipeline.cpp.o"
  "CMakeFiles/advh_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/advh_core.dir/roc.cpp.o"
  "CMakeFiles/advh_core.dir/roc.cpp.o.d"
  "libadvh_core.a"
  "libadvh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
