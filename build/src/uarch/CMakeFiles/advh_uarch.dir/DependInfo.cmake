
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch_predictor.cpp" "src/uarch/CMakeFiles/advh_uarch.dir/branch_predictor.cpp.o" "gcc" "src/uarch/CMakeFiles/advh_uarch.dir/branch_predictor.cpp.o.d"
  "/root/repo/src/uarch/cache.cpp" "src/uarch/CMakeFiles/advh_uarch.dir/cache.cpp.o" "gcc" "src/uarch/CMakeFiles/advh_uarch.dir/cache.cpp.o.d"
  "/root/repo/src/uarch/hierarchy.cpp" "src/uarch/CMakeFiles/advh_uarch.dir/hierarchy.cpp.o" "gcc" "src/uarch/CMakeFiles/advh_uarch.dir/hierarchy.cpp.o.d"
  "/root/repo/src/uarch/prefetcher.cpp" "src/uarch/CMakeFiles/advh_uarch.dir/prefetcher.cpp.o" "gcc" "src/uarch/CMakeFiles/advh_uarch.dir/prefetcher.cpp.o.d"
  "/root/repo/src/uarch/trace_gen.cpp" "src/uarch/CMakeFiles/advh_uarch.dir/trace_gen.cpp.o" "gcc" "src/uarch/CMakeFiles/advh_uarch.dir/trace_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/advh_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/advh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/advh_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
