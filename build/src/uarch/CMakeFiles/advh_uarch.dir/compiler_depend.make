# Empty compiler generated dependencies file for advh_uarch.
# This may be replaced when dependencies are built.
