file(REMOVE_RECURSE
  "libadvh_uarch.a"
)
