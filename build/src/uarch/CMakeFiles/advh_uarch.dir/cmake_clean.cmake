file(REMOVE_RECURSE
  "CMakeFiles/advh_uarch.dir/branch_predictor.cpp.o"
  "CMakeFiles/advh_uarch.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/advh_uarch.dir/cache.cpp.o"
  "CMakeFiles/advh_uarch.dir/cache.cpp.o.d"
  "CMakeFiles/advh_uarch.dir/hierarchy.cpp.o"
  "CMakeFiles/advh_uarch.dir/hierarchy.cpp.o.d"
  "CMakeFiles/advh_uarch.dir/prefetcher.cpp.o"
  "CMakeFiles/advh_uarch.dir/prefetcher.cpp.o.d"
  "CMakeFiles/advh_uarch.dir/trace_gen.cpp.o"
  "CMakeFiles/advh_uarch.dir/trace_gen.cpp.o.d"
  "libadvh_uarch.a"
  "libadvh_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advh_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
