file(REMOVE_RECURSE
  "CMakeFiles/advh_attack.dir/attack.cpp.o"
  "CMakeFiles/advh_attack.dir/attack.cpp.o.d"
  "CMakeFiles/advh_attack.dir/deepfool.cpp.o"
  "CMakeFiles/advh_attack.dir/deepfool.cpp.o.d"
  "CMakeFiles/advh_attack.dir/fgsm.cpp.o"
  "CMakeFiles/advh_attack.dir/fgsm.cpp.o.d"
  "CMakeFiles/advh_attack.dir/metrics.cpp.o"
  "CMakeFiles/advh_attack.dir/metrics.cpp.o.d"
  "CMakeFiles/advh_attack.dir/min_eps.cpp.o"
  "CMakeFiles/advh_attack.dir/min_eps.cpp.o.d"
  "CMakeFiles/advh_attack.dir/pgd.cpp.o"
  "CMakeFiles/advh_attack.dir/pgd.cpp.o.d"
  "libadvh_attack.a"
  "libadvh_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advh_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
