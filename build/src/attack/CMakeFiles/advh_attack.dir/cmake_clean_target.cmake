file(REMOVE_RECURSE
  "libadvh_attack.a"
)
