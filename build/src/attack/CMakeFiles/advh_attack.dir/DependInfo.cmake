
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attack.cpp" "src/attack/CMakeFiles/advh_attack.dir/attack.cpp.o" "gcc" "src/attack/CMakeFiles/advh_attack.dir/attack.cpp.o.d"
  "/root/repo/src/attack/deepfool.cpp" "src/attack/CMakeFiles/advh_attack.dir/deepfool.cpp.o" "gcc" "src/attack/CMakeFiles/advh_attack.dir/deepfool.cpp.o.d"
  "/root/repo/src/attack/fgsm.cpp" "src/attack/CMakeFiles/advh_attack.dir/fgsm.cpp.o" "gcc" "src/attack/CMakeFiles/advh_attack.dir/fgsm.cpp.o.d"
  "/root/repo/src/attack/metrics.cpp" "src/attack/CMakeFiles/advh_attack.dir/metrics.cpp.o" "gcc" "src/attack/CMakeFiles/advh_attack.dir/metrics.cpp.o.d"
  "/root/repo/src/attack/min_eps.cpp" "src/attack/CMakeFiles/advh_attack.dir/min_eps.cpp.o" "gcc" "src/attack/CMakeFiles/advh_attack.dir/min_eps.cpp.o.d"
  "/root/repo/src/attack/pgd.cpp" "src/attack/CMakeFiles/advh_attack.dir/pgd.cpp.o" "gcc" "src/attack/CMakeFiles/advh_attack.dir/pgd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/advh_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/advh_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/advh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/advh_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
