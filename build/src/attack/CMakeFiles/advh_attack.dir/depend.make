# Empty dependencies file for advh_attack.
# This may be replaced when dependencies are built.
