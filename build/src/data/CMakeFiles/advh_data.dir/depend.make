# Empty dependencies file for advh_data.
# This may be replaced when dependencies are built.
