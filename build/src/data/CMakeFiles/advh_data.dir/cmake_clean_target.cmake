file(REMOVE_RECURSE
  "libadvh_data.a"
)
