file(REMOVE_RECURSE
  "CMakeFiles/advh_data.dir/dataset.cpp.o"
  "CMakeFiles/advh_data.dir/dataset.cpp.o.d"
  "CMakeFiles/advh_data.dir/scenarios.cpp.o"
  "CMakeFiles/advh_data.dir/scenarios.cpp.o.d"
  "CMakeFiles/advh_data.dir/synthetic.cpp.o"
  "CMakeFiles/advh_data.dir/synthetic.cpp.o.d"
  "libadvh_data.a"
  "libadvh_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advh_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
