# Empty compiler generated dependencies file for advh_common.
# This may be replaced when dependencies are built.
