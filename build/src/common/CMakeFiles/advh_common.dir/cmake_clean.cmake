file(REMOVE_RECURSE
  "CMakeFiles/advh_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/advh_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/advh_common.dir/cli.cpp.o"
  "CMakeFiles/advh_common.dir/cli.cpp.o.d"
  "CMakeFiles/advh_common.dir/logging.cpp.o"
  "CMakeFiles/advh_common.dir/logging.cpp.o.d"
  "CMakeFiles/advh_common.dir/rng.cpp.o"
  "CMakeFiles/advh_common.dir/rng.cpp.o.d"
  "CMakeFiles/advh_common.dir/stats.cpp.o"
  "CMakeFiles/advh_common.dir/stats.cpp.o.d"
  "CMakeFiles/advh_common.dir/table.cpp.o"
  "CMakeFiles/advh_common.dir/table.cpp.o.d"
  "libadvh_common.a"
  "libadvh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
