file(REMOVE_RECURSE
  "libadvh_common.a"
)
