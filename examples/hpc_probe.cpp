// Probes the machine's real HPC capabilities and falls back to the
// simulator: enumerates which of the nine paper events perf_event_open can
// count here, then takes one measurement through whichever backend is
// available. Useful for checking a deployment before running AdvHunter on
// native counters.
#include <iostream>

#include "common/table.hpp"
#include "hpc/factory.hpp"
#include "hpc/perf_backend.hpp"
#include "nn/models/models.hpp"

using namespace advh;

int main() {
  std::cout << "perf_event_open available: "
            << (hpc::perf_events_available() ? "yes" : "no") << "\n\n";

  auto model = nn::make_model(nn::architecture::case_study_cnn,
                              shape{3, 32, 32}, 10, 1);

  // Try each event individually through a throwaway backend.
  text_table availability("event availability");
  availability.set_header({"event", "native perf", "simulator"});
  for (hpc::hpc_event e : hpc::all_events()) {
    bool native = false;
    if (hpc::perf_events_available()) {
      try {
        hpc::perf_backend backend(*model);
        rng gen(1);
        tensor x = tensor::rand_uniform(shape{1, 3, 32, 32}, gen, 0.0f, 1.0f);
        auto m = backend.measure(x, std::vector<hpc::hpc_event>{e}, 1);
        native = m.mean_counts[0] >= 0.0;
      } catch (const std::exception&) {
        native = false;
      }
    }
    availability.add_row({to_string(e), native ? "yes" : "no", "yes"});
  }
  availability.print(std::cout);

  // One measurement through the auto-selected backend (the legacy factory
  // entry point also honours the ADVH_FAULT_RATE chaos knob, in which case
  // the quality columns below show the resilient layer at work).
  auto monitor = hpc::make_monitor(*model);
  std::cout << "selected backend: " << monitor->backend_name() << "\n";
  rng gen(2);
  tensor x = tensor::rand_uniform(shape{1, 3, 32, 32}, gen, 0.0f, 1.0f);
  auto m = monitor->measure(x, hpc::all_events(), 10);

  text_table sample("sample measurement (R = 10)");
  sample.set_header({"event", "mean", "stddev", "available", "multiplexed"});
  const auto events = hpc::all_events();
  for (std::size_t e = 0; e < events.size(); ++e) {
    const bool mux = e < m.q.multiplexed.size() && m.q.multiplexed[e] != 0;
    sample.add_row({to_string(events[e]), text_table::num(m.mean_counts[e], 1),
                    text_table::num(m.stddev_counts[e], 1),
                    m.q.event_available(e) ? "yes" : "NO",
                    mux ? "yes (scaled)" : "no"});
  }
  sample.print(std::cout);
  std::cout << "hard-label prediction: class " << m.predicted << "\n";
  std::cout << "measurement quality: " << m.q.retries << " retries, "
            << m.q.failed_repetitions << " unrecovered repetitions, "
            << m.q.outliers_rejected << " outliers rejected\n";
  if (m.q.degraded()) {
    std::cout << "WARNING: measurement degraded — at least one event was "
                 "unavailable\n";
  }
  return 0;
}
