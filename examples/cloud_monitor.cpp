// Cloud-deployment scenario: a hard-label MLaaS endpoint monitored by
// AdvHunter in a streaming loop, with drift-aware operation.
//
// The paper's motivation: the defender operates a proprietary DNN behind a
// hard-label API (no confidences, no internals) and wants to know, per
// query, whether the submitted input carried adversarial noise. This
// example simulates the full deployment loop:
//
//   * offline: calibrate templates and fit the detector on a clean
//     baseline, pin a canary set of known-benign validation inputs;
//   * online: a stream of mixed clean / FGSM / PGD / DeepFool queries
//     arrives in epochs; each epoch first re-probes the canaries (drift
//     telemetry + reservoir), then answers the epoch's queries;
//   * chaos: at --drift-epoch the simulated machine's counter baseline
//     steps by --drift-magnitude, the canary cells alarm, the affected
//     (class, event) cells are quarantined (verdicts fall back to the
//     fail-closed degraded/abstain policy), and once enough post-alarm
//     canaries accumulate the controller refits the quarantined cells;
//   * crash safety: the controller state is checkpointed atomically after
//     every epoch, SIGINT/SIGTERM drain the loop and flush a final
//     checkpoint, and an existing checkpoint is resumed on start.
//
// At the end (or on an interrupt) it prints the incident report.
#include <algorithm>
#include <csignal>
#include <filesystem>
#include <iostream>
#include <map>

#include "attack/metrics.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/detector_io.hpp"
#include "core/pipeline.hpp"
#include "hpc/factory.hpp"
#include "hpc/resilient_monitor.hpp"
#include "nn/trainer.hpp"

using namespace advh;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_stop;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

struct query {
  tensor image;
  bool adversarial;
  std::string kind;
};

/// Builds one epoch's query stream: mixed clean and successful attacks.
std::vector<query> build_stream(core::scenario_runtime& rt, rng& gen,
                                std::size_t total, double adv_fraction) {
  const std::vector<attack::attack_kind> kinds{attack::attack_kind::fgsm,
                                               attack::attack_kind::pgd,
                                               attack::attack_kind::deepfool};
  std::vector<query> stream;
  while (stream.size() < total) {
    const std::size_t idx = gen.uniform_index(rt.test.size());
    tensor x = nn::single_example(rt.test.images, idx);
    if (!gen.bernoulli(adv_fraction)) {
      stream.push_back({std::move(x), false, "clean"});
      continue;
    }
    const auto kind = kinds[gen.uniform_index(kinds.size())];
    attack::attack_config acfg;
    acfg.goal = gen.bernoulli(0.5) ? attack::attack_goal::targeted
                                   : attack::attack_goal::untargeted;
    acfg.target_class = rt.spec.target_class;
    acfg.epsilon = 0.1f;
    if (acfg.goal == attack::attack_goal::targeted &&
        rt.test.labels[idx] == rt.spec.target_class) {
      continue;
    }
    auto atk = attack::make_attack(kind, acfg);
    auto r = atk->run(*rt.net, x, rt.test.labels[idx]);
    if (!r.success) continue;  // only successful evasions enter the stream
    stream.push_back({std::move(r.adversarial), true, to_string(kind)});
  }
  return stream;
}

}  // namespace

int main(int argc, char** argv) {
  cli_parser cli("cloud_monitor",
                 "streaming hard-label MLaaS monitor with drift recovery");
  cli.add_flag("scenario", "S2", "scenario: S1, S2 or S3");
  cli.add_flag("epochs", "8", "online epochs (canary probe + query batch)");
  cli.add_flag("queries-per-epoch", "12", "victim queries per epoch");
  cli.add_flag("canaries-per-class", "4", "pinned canary probes per class");
  cli.add_flag("adversarial-fraction", "0.4", "fraction of attack queries");
  cli.add_flag("drift-epoch", "3",
               "epoch at which the baseline steps (>= epochs disables)");
  cli.add_flag("drift-magnitude", "2.0", "baseline step multiplier");
  cli.add_flag("checkpoint", "advh_monitor_ckpt.adet",
               "controller checkpoint path (resumed when present)");
  cli.add_flag("seed", "2024", "stream RNG seed");
  cli.add_flag("threads", "0",
               "measurement worker threads (0 = ADVH_THREADS or hardware)");
  cli.add_flag("no-verify", "false",
               "skip static model verification (escape hatch)");
  if (!cli.parse(argc, argv)) return 0;

  install_signal_handlers();

  auto rt = core::prepare_scenario(
      data::scenario_from_string(cli.get("scenario")), "advh_models", 1234,
      !cli.get_bool("no-verify"));
  const auto threads =
      static_cast<std::size_t>(std::max(0, cli.get_int("threads")));

  // Offline phase on the clean calibration machine.
  core::detector_config dcfg;
  dcfg.events = {hpc::hpc_event::cache_misses, hpc::hpc_event::llc_load_misses};
  dcfg.repeats = 10;
  auto calib_monitor = hpc::make_monitor(*rt.net, hpc::backend_kind::simulator);
  const auto tpl =
      core::collect_template(*calib_monitor, dcfg, rt.train, 40, 7, threads);

  const std::string ckpt_path = cli.get("checkpoint");
  core::drift_policy policy;
  policy.min_refit_rows = 8;
  std::optional<core::drift_controller> ctl;
  if (std::filesystem::exists(ckpt_path)) {
    auto loaded = core::load_checkpoint(ckpt_path);
    if (loaded.drift.has_value()) {
      std::cout << "resuming controller from " << ckpt_path << "\n";
      ctl.emplace(std::move(loaded.det), std::move(*loaded.drift));
    } else {
      std::cout << ckpt_path << " has no drift state; starting fresh\n";
      ctl.emplace(std::move(loaded.det), policy);
    }
  } else {
    ctl.emplace(core::detector::fit(tpl, dcfg, threads), policy);
  }
  std::cout << "offline phase complete (" << tpl.num_classes()
            << " class templates, events: cache-misses + LLC-load-misses)\n";

  // Pinned canary set: correctly-classified validation inputs.
  const auto canaries = core::pick_canaries(
      *rt.net, rt.test,
      static_cast<std::size_t>(std::max(1, cli.get_int("canaries-per-class"))),
      11);

  // Online monitor: same simulated machine, but its baseline steps at the
  // configured epoch. Stream indices advance attempt_stride per sample,
  // and each epoch measures canaries.size() + queries-per-epoch samples.
  const auto epochs = static_cast<std::size_t>(std::max(1, cli.get_int("epochs")));
  const auto per_epoch =
      static_cast<std::size_t>(std::max(1, cli.get_int("queries-per-epoch")));
  const auto drift_epoch =
      static_cast<std::size_t>(std::max(0, cli.get_int("drift-epoch")));
  hpc::monitor_options mopts;
  mopts.kind = hpc::backend_kind::simulator;
  mopts.resilience = hpc::resilience_config{};
  if (drift_epoch < epochs) {
    hpc::drift_profile profile;
    profile.shape = hpc::drift_profile::shape_kind::step;
    profile.magnitude = cli.get_double("drift-magnitude");
    profile.onset_stream = drift_epoch * (canaries.inputs.size() + per_epoch) *
                           hpc::resilient_monitor::attempt_stride;
    mopts.drift = profile;
  }
  auto monitor = hpc::make_monitor(*rt.net, mopts);

  // Online phase.
  rng gen(static_cast<std::uint64_t>(cli.get_int("seed")));
  const double adv_fraction = cli.get_double("adversarial-fraction");
  std::map<std::string, core::detection_confusion> by_kind;
  core::detection_confusion overall;
  std::size_t quarantined_verdicts = 0;
  std::size_t abstained = 0;

  for (std::size_t epoch = 0; epoch < epochs && !g_stop; ++epoch) {
    if (epoch == drift_epoch) {
      std::cout << "-- baseline drift begins (x"
                << cli.get_double("drift-magnitude") << " step) --\n";
    }
    const std::size_t accepted =
        core::probe_canaries(*ctl, *monitor, canaries, threads);

    std::vector<std::size_t> refitted;
    if (ctl->recalibration_due()) refitted = ctl->recalibrate(threads);

    auto stream = build_stream(rt, gen, per_epoch, adv_fraction);
    const auto& cfg = ctl->det().config();
    std::vector<tensor> inputs;
    inputs.reserve(stream.size());
    for (auto& q : stream) inputs.push_back(std::move(q.image));
    const auto ms =
        monitor->measure_batch(inputs, cfg.events, cfg.repeats, threads);
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const std::uint64_t q_before = ctl->state().quarantined_verdicts;
      const auto v = ctl->score_victim(ms[i]);
      overall.push(stream[i].adversarial, v.adversarial_any);
      by_kind[stream[i].kind].push(stream[i].adversarial, v.adversarial_any);
      if (ctl->state().quarantined_verdicts != q_before) ++quarantined_verdicts;
      if (v.abstained) ++abstained;
    }

    const auto rep = ctl->report();
    std::cout << "epoch " << epoch << ": canaries " << accepted << "/"
              << canaries.inputs.size() << " accepted, quarantined cells "
              << rep.quarantined_cells << ", recalibrations "
              << rep.recalibrations;
    if (!refitted.empty()) {
      std::cout << " [refitted " << refitted.size() << " classes]";
    }
    if (rep.drift_suspected) std::cout << " [DRIFT]";
    if (rep.attack_suspected) std::cout << " [ATTACK]";
    std::cout << "\n";

    // Atomic checkpoint: a kill -9 here leaves either this epoch's state
    // or the previous epoch's, never a torn file.
    core::save_checkpoint(*ctl, ckpt_path);
  }

  if (g_stop) {
    std::cout << "\ninterrupted: flushing drift state to " << ckpt_path
              << "\n";
    core::save_checkpoint(*ctl, ckpt_path);
  }

  text_table report("incident report");
  report.set_header({"traffic", "queries", "flagged", "accuracy %", "F1"});
  for (const auto& [kind, c] : by_kind) {
    report.add_row({kind, std::to_string(c.total()),
                    std::to_string(c.true_positives() + c.false_positives()),
                    text_table::num(100.0 * c.accuracy(), 2),
                    text_table::num(c.f1(), 4)});
  }
  report.add_row({"overall", std::to_string(overall.total()),
                  std::to_string(overall.true_positives() +
                                 overall.false_positives()),
                  text_table::num(100.0 * overall.accuracy(), 2),
                  text_table::num(overall.f1(), 4)});
  report.print(std::cout);

  const auto rep = ctl->report();
  std::cout << "drift summary: canaries " << rep.canaries_accepted
            << " accepted / " << rep.canaries_rejected << " rejected, "
            << rep.quarantined_cells << " cells quarantined, "
            << quarantined_verdicts << " quarantine-masked verdicts, "
            << abstained << " abstentions, " << rep.recalibrations
            << " cell recalibrations\n";
  return g_stop ? 130 : 0;
}
