// Cloud-deployment scenario: a hard-label MLaaS endpoint monitored by
// AdvHunter in a streaming loop.
//
// The paper's motivation: the defender operates a proprietary DNN behind a
// hard-label API (no confidences, no internals) and wants to know, per
// query, whether the submitted input carried adversarial noise. This
// example simulates the service loop: a stream of mixed clean / FGSM /
// PGD / DeepFool queries arrives, each is answered with its hard label,
// and AdvHunter renders a side-channel verdict from the co-located HPC
// monitor. At the end it prints the incident report.
#include <algorithm>
#include <iostream>
#include <map>

#include "attack/metrics.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "hpc/factory.hpp"
#include "nn/trainer.hpp"

using namespace advh;

namespace {

struct query {
  tensor image;
  bool adversarial;
  std::string kind;
};

}  // namespace

int main(int argc, char** argv) {
  cli_parser cli("cloud_monitor", "streaming hard-label MLaaS monitor");
  cli.add_flag("scenario", "S2", "scenario: S1, S2 or S3");
  cli.add_flag("queries", "60", "stream length");
  cli.add_flag("adversarial-fraction", "0.4", "fraction of attack queries");
  cli.add_flag("seed", "2024", "stream RNG seed");
  cli.add_flag("threads", "0",
               "measurement worker threads (0 = ADVH_THREADS or hardware)");
  cli.add_flag("no-verify", "false",
               "skip static model verification (escape hatch)");
  if (!cli.parse(argc, argv)) return 0;

  auto rt = core::prepare_scenario(
      data::scenario_from_string(cli.get("scenario")), "advh_models", 1234,
      !cli.get_bool("no-verify"));
  auto monitor = hpc::make_monitor(*rt.net, hpc::backend_kind::simulator);

  // Offline phase.
  core::detector_config dcfg;
  dcfg.events = {hpc::hpc_event::cache_misses, hpc::hpc_event::llc_load_misses};
  dcfg.repeats = 10;
  const auto threads = static_cast<std::size_t>(
      std::max(0, cli.get_int("threads")));
  const auto tpl =
      core::collect_template(*monitor, dcfg, rt.train, 40, 7, threads);
  const auto det = core::detector::fit(tpl, dcfg, threads);
  std::cout << "offline phase complete (" << tpl.num_classes()
            << " class templates, events: cache-misses + LLC-load-misses)\n";

  // Build the query stream.
  rng gen(static_cast<std::uint64_t>(cli.get_int("seed")));
  const auto total = static_cast<std::size_t>(cli.get_int("queries"));
  const double adv_fraction = cli.get_double("adversarial-fraction");

  std::vector<query> stream;
  const std::vector<attack::attack_kind> kinds{attack::attack_kind::fgsm,
                                               attack::attack_kind::pgd,
                                               attack::attack_kind::deepfool};
  while (stream.size() < total) {
    const std::size_t idx = gen.uniform_index(rt.test.size());
    tensor x = nn::single_example(rt.test.images, idx);
    if (!gen.bernoulli(adv_fraction)) {
      stream.push_back({std::move(x), false, "clean"});
      continue;
    }
    const auto kind = kinds[gen.uniform_index(kinds.size())];
    attack::attack_config acfg;
    // A mix of untargeted evasions and targeted impersonations of the
    // scenario's target class, at strengths where each attack works.
    acfg.goal = gen.bernoulli(0.5) ? attack::attack_goal::targeted
                                   : attack::attack_goal::untargeted;
    acfg.target_class = rt.spec.target_class;
    acfg.epsilon = 0.1f;
    auto atk = attack::make_attack(kind, acfg);
    if (acfg.goal == attack::attack_goal::targeted &&
        rt.test.labels[idx] == rt.spec.target_class) {
      continue;
    }
    auto r = atk->run(*rt.net, x, rt.test.labels[idx]);
    if (!r.success) continue;  // only successful evasions enter the stream
    stream.push_back({std::move(r.adversarial), true, to_string(kind)});
  }

  // Online phase: answer queries, record verdicts.
  std::map<std::string, core::detection_confusion> by_kind;
  core::detection_confusion overall;
  std::size_t shown = 0;
  for (const auto& q : stream) {
    const auto verdict = det.classify(*monitor, q.image);
    overall.push(q.adversarial, verdict.adversarial_any);
    by_kind[q.kind].push(q.adversarial, verdict.adversarial_any);
    if (shown < 10) {  // echo the first few like a service log
      std::cout << "query#" << shown << " -> label "
                << rt.test.class_names[verdict.predicted]
                << (verdict.adversarial_any ? "  [ALERT: adversarial]" : "")
                << "  (truth: " << q.kind << ")\n";
      ++shown;
    }
  }

  text_table report("incident report");
  report.set_header({"traffic", "queries", "flagged", "accuracy %", "F1"});
  for (const auto& [kind, c] : by_kind) {
    report.add_row({kind, std::to_string(c.total()),
                    std::to_string(c.true_positives() + c.false_positives()),
                    text_table::num(100.0 * c.accuracy(), 2),
                    text_table::num(c.f1(), 4)});
  }
  report.add_row({"overall", std::to_string(overall.total()),
                  std::to_string(overall.true_positives() +
                                 overall.false_positives()),
                  text_table::num(100.0 * overall.accuracy(), 2),
                  text_table::num(overall.f1(), 4)});
  report.print(std::cout);
  return 0;
}
