// Quickstart: the complete AdvHunter loop on one scenario.
//
//   1. prepare a scenario (synthetic dataset + trained CNN, cached on disk)
//   2. craft adversarial examples with FGSM against the model
//   3. build the benign HPC template from clean validation images (offline)
//   4. fit per-(class, event) GMMs + 3-sigma thresholds
//   5. classify unseen clean images and AEs (online) and report per-event
//      detection accuracy / F1
//
// Run with --help for the knobs.
#include <algorithm>
#include <iostream>

#include "attack/metrics.hpp"
#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "hpc/factory.hpp"
#include "nn/trainer.hpp"

using namespace advh;

int main(int argc, char** argv) {
  cli_parser cli("quickstart", "end-to-end AdvHunter demo");
  cli.add_flag("scenario", "S2", "scenario: S1, S2 or S3");
  cli.add_flag("epsilon", "0.1", "FGSM attack strength");
  cli.add_flag("targeted", "true", "targeted (paper's Table 2 setting)?");
  cli.add_flag("validation-per-class", "40", "template size M per class");
  cli.add_flag("eval-count", "60", "clean/adversarial examples to classify");
  cli.add_flag("repeats", "10", "HPC measurement repetitions R");
  cli.add_flag("backend", "sim", "HPC backend: sim, perf or auto");
  cli.add_flag("threads", "0",
               "measurement worker threads (0 = ADVH_THREADS or hardware)");
  cli.add_flag("no-verify", "false",
               "skip static model verification (escape hatch)");
  if (!cli.parse(argc, argv)) return 0;

  // 1. Scenario: dataset + trained model (Table 1 row).
  const auto scenario_id = data::scenario_from_string(cli.get("scenario"));
  core::scenario_runtime rt = core::prepare_scenario(
      scenario_id, "advh_models", 1234, !cli.get_bool("no-verify"));
  std::cout << "scenario " << rt.spec.label << ": " << rt.train.name << " + "
            << to_string(rt.spec.arch) << ", clean accuracy "
            << text_table::num(100.0 * rt.clean_accuracy, 2) << "%\n";

  // 2. Adversarial examples against the target class.
  attack::attack_config acfg;
  acfg.goal = cli.get_bool("targeted") ? attack::attack_goal::targeted
                                       : attack::attack_goal::untargeted;
  acfg.target_class = rt.spec.target_class;
  acfg.epsilon = static_cast<float>(cli.get_double("epsilon"));
  auto atk = attack::make_attack(attack::attack_kind::fgsm, acfg);

  // Attack across the whole test set (interleaving classes) until enough
  // successful AEs are collected.
  const std::size_t eval_count = static_cast<std::size_t>(cli.get_int("eval-count"));
  std::vector<tensor> adv_inputs;
  std::size_t attempted = 0;
  for (std::size_t stride = 0; stride < 7 && adv_inputs.size() < eval_count;
       ++stride) {
    for (std::size_t i = stride; i < rt.test.size() && adv_inputs.size() < eval_count;
         i += 7) {
      if (acfg.goal == attack::attack_goal::targeted &&
          rt.test.labels[i] == rt.spec.target_class) {
        continue;
      }
      auto r = atk->run(*rt.net, nn::single_example(rt.test.images, i),
                        rt.test.labels[i]);
      ++attempted;
      if (r.success) adv_inputs.push_back(std::move(r.adversarial));
    }
  }
  std::cout << "FGSM eps=" << acfg.epsilon << ": " << adv_inputs.size() << "/"
            << attempted << " successful AEs\n";

  // 3-4. Offline phase: benign template -> GMMs -> thresholds.
  const auto backend = cli.get("backend") == "perf" ? hpc::backend_kind::perf
                       : cli.get("backend") == "auto"
                           ? hpc::backend_kind::auto_detect
                           : hpc::backend_kind::simulator;
  auto monitor = hpc::make_monitor(*rt.net, backend);

  core::detector_config dcfg;
  dcfg.events = hpc::core_events();
  dcfg.repeats = static_cast<std::size_t>(cli.get_int("repeats"));
  const auto m_per_class =
      static_cast<std::size_t>(cli.get_int("validation-per-class"));
  const auto threads = static_cast<std::size_t>(
      std::max(0, cli.get_int("threads")));
  const auto tpl = core::collect_template(*monitor, dcfg, rt.train,
                                          m_per_class, /*seed=*/77, threads);
  const auto det = core::detector::fit(tpl, dcfg, threads);
  std::cout << "offline phase done: " << tpl.num_classes() << " classes x "
            << dcfg.events.size() << " events, M<=" << m_per_class << "\n";

  // 5. Online phase: clean target-class images vs successful AEs.
  std::vector<tensor> clean_inputs;
  for (std::size_t i = 0;
       i < rt.test.size() && clean_inputs.size() < eval_count; ++i) {
    if (rt.test.labels[i] == rt.spec.target_class) {
      clean_inputs.push_back(nn::single_example(rt.test.images, i));
    }
  }
  core::detection_eval eval;
  core::evaluate_inputs(det, *monitor, clean_inputs, false, eval, threads);
  core::evaluate_inputs(det, *monitor, adv_inputs, true, eval, threads);

  text_table table("per-event detection performance (clean '" +
                   rt.spec.target_class_name + "' vs AEs)");
  table.set_header({"event", "accuracy %", "F1", "TP", "FP", "TN", "FN"});
  for (std::size_t e = 0; e < dcfg.events.size(); ++e) {
    const auto& c = eval.per_event[e];
    table.add_row({to_string(dcfg.events[e]),
                   text_table::num(100.0 * c.accuracy(), 2),
                   text_table::num(c.f1(), 4),
                   std::to_string(c.true_positives()),
                   std::to_string(c.false_positives()),
                   std::to_string(c.true_negatives()),
                   std::to_string(c.false_negatives())});
  }
  table.print(std::cout);
  std::cout << "fused (any event): accuracy "
            << text_table::num(100.0 * eval.fused.accuracy(), 2) << "%, F1 "
            << text_table::num(eval.fused.f1(), 4) << "\n";
  return 0;
}
