// Serving-under-load scenario: the detection service in front of a
// hard-label endpoint, driven by an overloaded open-loop query stream.
//
// The deployment question this answers: what happens to per-query
// adversarial screening when traffic arrives faster than full-fidelity
// measurement can serve it? The demo builds the scenario-S1 detector,
// wraps it in serve::detection_service, and replays a mixed
// interactive/batch stream (with periodic canary probes) at a configured
// overload factor on the virtual clock:
//
//   * admission control rejects work that cannot meet its deadline —
//     typed rejections, never silent queueing;
//   * the degradation ladder sheds measurement repeats as the queue
//     fills, and reduced-evidence verdicts stay fail-closed;
//   * canary probes are never shed, so drift telemetry survives the storm;
//   * SIGINT/SIGTERM drain gracefully: admission stops, admitted work is
//     flushed, and the partial report still prints.
//
// Environment knobs (strict: malformed values abort): ADVH_QUEUE_DEPTH
// overrides the queue bound, ADVH_DEADLINE_MS the default deadline, and
// ADVH_FAULT_RATE composes injected counter faults under the overload.
#include <csignal>
#include <iostream>
#include <optional>
#include <vector>

#include "attack/attack.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "hpc/factory.hpp"
#include "nn/trainer.hpp"
#include "serve/service.hpp"

using namespace advh;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_stop;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

struct planned_arrival {
  serve::clock_duration at{0};
  serve::priority prio = serve::priority::interactive;
  std::size_t pool_idx = 0;
  bool adversarial = false;
};

}  // namespace

int main(int argc, char** argv) {
  cli_parser cli("serve_demo",
                 "overload-resilient detection service on a virtual clock");
  cli.add_flag("scenario", "S1", "scenario: S1, S2 or S3");
  cli.add_flag("requests", "400", "traffic arrivals to schedule");
  cli.add_flag("overload", "4.0",
               "arrival rate as a multiple of the full-fidelity service rate");
  cli.add_flag("adversarial-fraction", "0.5", "fraction of FGSM queries");
  cli.add_flag("queue-depth", "24", "bounded queue capacity");
  cli.add_flag("deadline-ms", "25", "interactive deadline (batch gets 4x)");
  cli.add_flag("canary-every", "25", "traffic arrivals per canary probe");
  cli.add_flag("seed", "2024", "stream RNG seed");
  cli.add_flag("threads", "1", "measurement worker threads");
  cli.add_flag("no-verify", "false",
               "skip static model verification (escape hatch)");
  if (!cli.parse(argc, argv)) return 0;

  install_signal_handlers();

  auto rt = core::prepare_scenario(
      data::scenario_from_string(cli.get("scenario")), "advh_models", 1234,
      !cli.get_bool("no-verify"));
  const auto threads =
      static_cast<std::size_t>(std::max(1, cli.get_int("threads")));

  // Offline: calibrate the S-scenario detector at full fidelity.
  core::detector_config dcfg;
  dcfg.events = {hpc::hpc_event::cache_misses, hpc::hpc_event::llc_load_misses};
  dcfg.repeats = 10;
  auto calib_monitor = hpc::make_monitor(*rt.net, hpc::backend_kind::simulator);
  const auto tpl =
      core::collect_template(*calib_monitor, dcfg, rt.train, 40, 7, threads);
  const auto det = core::detector::fit(tpl, dcfg, threads);
  std::cout << "offline phase complete (" << tpl.num_classes()
            << " class templates, R = " << dcfg.repeats << ")\n";

  // Query pool: clean test images plus successful FGSM evasions.
  rng gen(static_cast<std::uint64_t>(cli.get_int("seed")));
  std::vector<tensor> pool;
  std::vector<bool> pool_adv;
  const double adv_fraction = cli.get_double("adversarial-fraction");
  while (pool.size() < 64) {
    const std::size_t idx = gen.uniform_index(rt.test.size());
    tensor x = nn::single_example(rt.test.images, idx);
    if (!gen.bernoulli(adv_fraction)) {
      pool.push_back(std::move(x));
      pool_adv.push_back(false);
      continue;
    }
    attack::attack_config acfg;
    acfg.epsilon = 0.1f;
    auto atk = attack::make_attack(attack::attack_kind::fgsm, acfg);
    auto r = atk->run(*rt.net, x, rt.test.labels[idx]);
    if (!r.success) continue;
    pool.push_back(std::move(r.adversarial));
    pool_adv.push_back(true);
  }
  const tensor canary_input = nn::single_example(rt.test.images, 0);

  // Service configuration: CLI first, then the strict env overrides
  // (ADVH_QUEUE_DEPTH / ADVH_DEADLINE_MS), so a deployment manifest wins
  // over the demo defaults and a typo in it fails loudly.
  serve::serve_config scfg;
  scfg.queue_capacity =
      static_cast<std::size_t>(std::max(1, cli.get_int("queue-depth")));
  scfg.default_deadline =
      std::chrono::milliseconds(std::max(1, cli.get_int("deadline-ms")));
  scfg.threads = threads;
  scfg.admission_margin = 3.0;
  scfg.batch_admit_occupancy = 1.0 / 3.0;
  // Early-engage ladder: admission keeps the queue shallow, so the first
  // degraded rung must engage well below the default 0.5 occupancy for
  // shedding to buy throughput under sustained overload.
  scfg.ladder = {
      {0.00, dcfg.repeats, hpc::measure_budget::unlimited, true, false},
      {0.15, dcfg.repeats * 4 / 5, 3, false, false},
      {0.55, std::max<std::size_t>(dcfg.repeats / 2, 1), 2, false, false},
      {0.85, std::max<std::size_t>(dcfg.repeats * 3 / 10, 1), 1, false, true},
  };
  scfg = serve::serve_config_from_env(scfg);
  const auto interactive_deadline = scfg.default_deadline;
  const auto batch_deadline = scfg.default_deadline * 4;

  auto monitor = hpc::make_monitor(*rt.net);  // chaos knobs compose here
  serve::virtual_clock clock;
  serve::detection_service service(det, *monitor, clock, scfg);

  // Open-loop schedule at the configured overload factor.
  const auto est_full =
      scfg.sim_cost.fixed +
      scfg.sim_cost.per_unit * static_cast<serve::clock_duration::rep>(
                                   dcfg.repeats * dcfg.events.size());
  const double overload = std::max(1.0, cli.get_double("overload"));
  const auto period = serve::clock_duration(
      static_cast<serve::clock_duration::rep>(
          static_cast<double>(est_full.count()) / overload));
  const auto n_requests =
      static_cast<std::size_t>(std::max(1, cli.get_int("requests")));
  const auto canary_every =
      static_cast<std::size_t>(std::max(1, cli.get_int("canary-every")));
  std::vector<planned_arrival> schedule;
  serve::clock_duration t{0};
  for (std::size_t i = 0; i < n_requests; ++i) {
    if (i % canary_every == 0) {
      schedule.push_back({t, serve::priority::canary, 0, false});
    }
    planned_arrival a;
    a.at = t;
    a.prio = gen.uniform() < 0.7 ? serve::priority::interactive
                                 : serve::priority::batch;
    a.pool_idx = gen.uniform_index(pool.size());
    a.adversarial = pool_adv[a.pool_idx];
    schedule.push_back(a);
    t += period;
  }

  // Online: submit due arrivals, service, jump the clock when idle. A
  // SIGINT/SIGTERM drains: admission stops, admitted work still flushes.
  core::detection_confusion confusion;
  std::vector<serve::response> responses;
  std::vector<bool> id_adv(1, false);  // id 0 never issued
  std::size_t next = 0;
  while (next < schedule.size() || service.queue_depth() > 0) {
    if (g_stop && !service.draining()) {
      std::cout << "\ninterrupted: draining admitted work\n";
      service.drain();
    }
    const auto now = clock.now();
    while (next < schedule.size() && schedule[next].at <= now) {
      const auto& a = schedule[next++];
      const bool canary = a.prio == serve::priority::canary;
      (void)service.submit(
          canary ? canary_input : pool[a.pool_idx], a.prio,
          canary ? std::optional<serve::clock_duration>{}
                 : std::optional<serve::clock_duration>{
                       a.prio == serve::priority::interactive
                           ? interactive_deadline
                           : batch_deadline});
      id_adv.push_back(!canary && a.adversarial);
    }
    auto round = service.service_batch();
    if (round.empty()) {
      if (next >= schedule.size() || service.draining()) break;
      clock.advance_to(schedule[next].at);
      continue;
    }
    responses.insert(responses.end(), std::make_move_iterator(round.begin()),
                     std::make_move_iterator(round.end()));
  }
  service.drain();
  auto rest = service.flush();
  responses.insert(responses.end(), std::make_move_iterator(rest.begin()),
                   std::make_move_iterator(rest.end()));

  for (const auto& r : responses) {
    if (r.prio == serve::priority::canary ||
        r.outcome != serve::response::kind::served) {
      continue;
    }
    confusion.push(id_adv[static_cast<std::size_t>(r.id)],
                   r.v.adversarial_any);
  }

  const auto s = service.stats();
  text_table report("serving under " + cli.get("overload") + "x overload");
  report.set_header({"metric", "value"});
  report.add_row({"submitted (traffic)",
                  std::to_string(s.submitted - s.canary_submitted)});
  report.add_row({"served (traffic)",
                  std::to_string(s.served - s.canary_served)});
  report.add_row({"rejected: deadline", std::to_string(s.rejected_deadline)});
  report.add_row(
      {"rejected: backpressure", std::to_string(s.rejected_backpressure)});
  report.add_row(
      {"rejected: queue full", std::to_string(s.rejected_queue_full)});
  report.add_row({"rejected: breaker", std::to_string(s.rejected_breaker)});
  report.add_row({"rejected: draining", std::to_string(s.rejected_draining)});
  report.add_row({"shed after admission", std::to_string(s.shed_deadline)});
  report.add_row({"deadline misses", std::to_string(s.deadline_misses)});
  report.add_row({"canaries served/submitted",
                  std::to_string(s.canary_served) + "/" +
                      std::to_string(s.canary_submitted)});
  report.add_row({"max ladder rung", std::to_string(s.max_rung_engaged)});
  report.add_row({"repeats shed", std::to_string(s.repeats_shed)});
  report.add_row({"degraded verdicts", std::to_string(s.degraded_verdicts)});
  report.add_row({"flagged adversarial", std::to_string(s.flagged_adversarial)});
  report.add_row(
      {"detection accuracy %",
       confusion.total() == 0 ? "n/a"
                              : text_table::num(100.0 * confusion.accuracy(),
                                                2)});
  report.print(std::cout);

  std::cout << "virtual time elapsed: "
            << std::chrono::duration_cast<std::chrono::milliseconds>(
                   clock.now())
                   .count()
            << " ms; breaker " << to_string(service.breaker()) << "\n";
  return g_stop ? 130 : 0;
}
