// Traffic-sign scenario (S3): a 43-class GTSRB-style deployment audited
// against targeted attacks that try to turn arbitrary signs into
// "speed limit (30km/h)" — the paper's S3 targeted setting.
//
// Demonstrates AdvHunter on the many-class scenario: the larger validation
// requirement (M ~ 60 per class, Figure 6) and per-source-class detection
// breakdown for a safety-critical deployment.
#include <algorithm>
#include <iostream>
#include <map>

#include "attack/metrics.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "hpc/factory.hpp"
#include "nn/trainer.hpp"

using namespace advh;

int main(int argc, char** argv) {
  cli_parser cli("traffic_sign_audit", "43-class GTSRB-style audit (S3)");
  cli.add_flag("validation-per-class", "60", "template size M per class");
  cli.add_flag("audit-count", "40", "adversarial signs to audit");
  cli.add_flag("epsilon", "0.3", "PGD attack strength");
  cli.add_flag("threads", "0",
               "measurement worker threads (0 = ADVH_THREADS or hardware)");
  cli.add_flag("no-verify", "false",
               "skip static model verification (escape hatch)");
  if (!cli.parse(argc, argv)) return 0;

  auto rt = core::prepare_scenario(data::scenario_id::s3, "advh_models", 1234,
                                   !cli.get_bool("no-verify"));
  std::cout << "S3: " << rt.train.name << " ("
            << rt.train.num_classes << " classes), clean accuracy "
            << text_table::num(100.0 * rt.clean_accuracy, 2) << "%\n";
  std::cout << "target class: '" << rt.spec.target_class_name << "'\n";

  auto monitor = hpc::make_monitor(*rt.net, hpc::backend_kind::simulator);

  core::detector_config dcfg;
  dcfg.events = {hpc::hpc_event::cache_misses};
  dcfg.repeats = 10;
  const auto m_per_class =
      static_cast<std::size_t>(cli.get_int("validation-per-class"));
  // The training pool doubles as the clean validation set (the defender's
  // "limited set of clean validation images").
  const auto threads = static_cast<std::size_t>(
      std::max(0, cli.get_int("threads")));
  const auto tpl =
      core::collect_template(*monitor, dcfg, rt.train, m_per_class, 31, threads);
  const auto det = core::detector::fit(tpl, dcfg, threads);

  // Craft targeted PGD attacks from a spread of source signs.
  attack::attack_config acfg;
  acfg.goal = attack::attack_goal::targeted;
  acfg.target_class = rt.spec.target_class;
  acfg.epsilon = static_cast<float>(cli.get_double("epsilon"));
  acfg.steps = 10;
  auto atk = attack::make_attack(attack::attack_kind::pgd, acfg);

  const auto audit_count =
      static_cast<std::size_t>(cli.get_int("audit-count"));
  core::detection_confusion confusion;
  std::map<std::size_t, std::pair<std::size_t, std::size_t>> per_source;

  std::size_t audited = 0;
  for (std::size_t i = 0; i < rt.test.size() && audited < audit_count; ++i) {
    if (rt.test.labels[i] == rt.spec.target_class) continue;
    tensor x = nn::single_example(rt.test.images, i);
    if (rt.net->predict_one(x) != rt.test.labels[i]) continue;
    auto r = atk->run(*rt.net, x, rt.test.labels[i]);
    if (!r.success) continue;
    ++audited;

    const auto verdict = det.classify(*monitor, r.adversarial);
    confusion.push(true, verdict.adversarial_any);
    auto& [caught, seen] = per_source[rt.test.labels[i]];
    ++seen;
    if (verdict.adversarial_any) ++caught;
  }

  // Also audit genuine 30km/h signs to check the false-alarm rate.
  std::size_t clean_checked = 0;
  for (std::size_t i = 0;
       i < rt.test.size() && clean_checked < audit_count; ++i) {
    if (rt.test.labels[i] != rt.spec.target_class) continue;
    tensor x = nn::single_example(rt.test.images, i);
    if (rt.net->predict_one(x) != rt.spec.target_class) continue;
    ++clean_checked;
    confusion.push(false, det.classify(*monitor, x).adversarial_any);
  }

  std::cout << "\naudited " << audited << " successful targeted AEs and "
            << clean_checked << " genuine '" << rt.spec.target_class_name
            << "' signs\n";
  text_table report("audit summary");
  report.set_header({"metric", "value"});
  report.add_row({"AEs caught", std::to_string(confusion.true_positives()) +
                                    "/" + std::to_string(audited)});
  report.add_row(
      {"false alarms", std::to_string(confusion.false_positives()) + "/" +
                           std::to_string(clean_checked)});
  report.add_row({"accuracy %", text_table::num(100.0 * confusion.accuracy(), 2)});
  report.add_row({"F1", text_table::num(confusion.f1(), 4)});
  report.print(std::cout);

  std::cout << "caught-by-source breakdown (first 8 source classes):\n";
  std::size_t shown = 0;
  for (const auto& [cls, counts] : per_source) {
    if (shown++ >= 8) break;
    std::cout << "  " << rt.test.class_names[cls] << ": " << counts.first
              << "/" << counts.second << "\n";
  }
  return 0;
}
