#include "tensor/shape.hpp"

#include <sstream>

#include "common/error.hpp"

namespace advh {

shape::shape(std::initializer_list<std::size_t> dims) {
  ADVH_CHECK_MSG(dims.size() <= max_rank, "shape rank exceeds max_rank");
  for (std::size_t d : dims) dims_[rank_++] = d;
}

std::size_t shape::operator[](std::size_t i) const {
  ADVH_CHECK(i < rank_);
  return dims_[i];
}

std::size_t shape::numel() const noexcept {
  std::size_t n = 1;
  for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

bool shape::operator==(const shape& other) const noexcept {
  if (rank_ != other.rank_) return false;
  for (std::size_t i = 0; i < rank_; ++i) {
    if (dims_[i] != other.dims_[i]) return false;
  }
  return true;
}

std::array<std::size_t, shape::max_rank> shape::strides() const noexcept {
  std::array<std::size_t, max_rank> s{};
  std::size_t acc = 1;
  for (std::size_t i = rank_; i-- > 0;) {
    s[i] = acc;
    acc *= dims_[i];
  }
  return s;
}

std::string shape::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace advh
