#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace advh::ops {

namespace {
void check_same_shape(const tensor& a, const tensor& b) {
  if (a.dims() != b.dims()) {
    throw shape_error("shape mismatch: " + a.dims().to_string() + " vs " +
                      b.dims().to_string());
  }
}
}  // namespace

tensor add(const tensor& a, const tensor& b) {
  check_same_shape(a, b);
  tensor out = a;
  auto o = out.data();
  auto bb = b.data();
  for (std::size_t i = 0; i < o.size(); ++i) o[i] += bb[i];
  return out;
}

tensor sub(const tensor& a, const tensor& b) {
  check_same_shape(a, b);
  tensor out = a;
  auto o = out.data();
  auto bb = b.data();
  for (std::size_t i = 0; i < o.size(); ++i) o[i] -= bb[i];
  return out;
}

tensor mul(const tensor& a, const tensor& b) {
  check_same_shape(a, b);
  tensor out = a;
  auto o = out.data();
  auto bb = b.data();
  for (std::size_t i = 0; i < o.size(); ++i) o[i] *= bb[i];
  return out;
}

tensor scale(const tensor& a, float s) {
  tensor out = a;
  for (auto& v : out.data()) v *= s;
  return out;
}

void axpy(tensor& a, const tensor& b, float s) {
  check_same_shape(a, b);
  auto aa = a.data();
  auto bb = b.data();
  for (std::size_t i = 0; i < aa.size(); ++i) aa[i] += bb[i] * s;
}

tensor sign(const tensor& a) {
  tensor out = a;
  for (auto& v : out.data()) v = v > 0.0f ? 1.0f : (v < 0.0f ? -1.0f : 0.0f);
  return out;
}

tensor clamp(const tensor& a, float lo, float hi) {
  tensor out = a;
  clamp_inplace(out, lo, hi);
  return out;
}

void clamp_inplace(tensor& a, float lo, float hi) {
  ADVH_CHECK(lo <= hi);
  for (auto& v : a.data()) v = std::clamp(v, lo, hi);
}

tensor project_linf(const tensor& a, const tensor& center, float eps) {
  check_same_shape(a, center);
  ADVH_CHECK(eps >= 0.0f);
  tensor out = a;
  auto o = out.data();
  auto c = center.data();
  for (std::size_t i = 0; i < o.size(); ++i) {
    o[i] = std::clamp(o[i], c[i] - eps, c[i] + eps);
  }
  return out;
}

double sum(const tensor& a) noexcept {
  double acc = 0.0;
  for (float v : a.data()) acc += v;
  return acc;
}

double mean(const tensor& a) noexcept {
  if (a.numel() == 0) return 0.0;
  return sum(a) / static_cast<double>(a.numel());
}

double l2_norm(const tensor& a) noexcept {
  double acc = 0.0;
  for (float v : a.data()) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

double linf_norm(const tensor& a) noexcept {
  double m = 0.0;
  for (float v : a.data()) m = std::max(m, static_cast<double>(std::fabs(v)));
  return m;
}

double dot(const tensor& a, const tensor& b) {
  check_same_shape(a, b);
  double acc = 0.0;
  auto aa = a.data();
  auto bb = b.data();
  for (std::size_t i = 0; i < aa.size(); ++i) {
    acc += static_cast<double>(aa[i]) * bb[i];
  }
  return acc;
}

std::size_t argmax(const tensor& a) {
  ADVH_CHECK(a.numel() > 0);
  auto d = a.data();
  return static_cast<std::size_t>(
      std::max_element(d.begin(), d.end()) - d.begin());
}

tensor softmax_rows(const tensor& logits) {
  ADVH_CHECK(logits.dims().rank() == 2);
  const std::size_t rows = logits.dims()[0];
  const std::size_t cols = logits.dims()[1];
  tensor out = logits;
  auto d = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = d.data() + r * cols;
    const float mx = *std::max_element(row, row + cols);
    double denom = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - mx);
      denom += row[c];
    }
    for (std::size_t c = 0; c < cols; ++c) {
      row[c] = static_cast<float>(row[c] / denom);
    }
  }
  return out;
}

std::vector<std::size_t> argmax_rows(const tensor& logits) {
  ADVH_CHECK(logits.dims().rank() == 2);
  const std::size_t rows = logits.dims()[0];
  const std::size_t cols = logits.dims()[1];
  ADVH_CHECK(cols > 0);
  std::vector<std::size_t> out(rows);
  auto d = logits.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = d.data() + r * cols;
    out[r] = static_cast<std::size_t>(
        std::max_element(row, row + cols) - row);
  }
  return out;
}

std::size_t count_greater(const tensor& a, float threshold) noexcept {
  std::size_t n = 0;
  for (float v : a.data()) {
    if (v > threshold) ++n;
  }
  return n;
}

}  // namespace advh::ops
