// im2col / col2im lowering for convolution.
//
// A (C_in, H, W) input with a (KH, KW) kernel, stride and zero padding is
// unfolded into a (C_in*KH*KW, OH*OW) matrix so convolution becomes a GEMM
// with the (C_out, C_in*KH*KW) weight matrix. col2im scatters gradients
// back for the backward pass.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace advh::ops {

struct conv_geometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel_h = 0;
  std::size_t kernel_w = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const noexcept {
    return (in_h + 2 * pad - kernel_h) / stride + 1;
  }
  std::size_t out_w() const noexcept {
    return (in_w + 2 * pad - kernel_w) / stride + 1;
  }
};

/// Unfolds one image (rank-3 view of a single batch element, passed as a
/// rank-4 tensor with N==1) into the column matrix.
tensor im2col(const tensor& input, std::size_t batch_index,
              const conv_geometry& g);

/// Scatters a column-matrix gradient back into an image-shaped gradient,
/// accumulating into `grad_input` at the given batch index.
void col2im_accumulate(const tensor& cols, std::size_t batch_index,
                       const conv_geometry& g, tensor& grad_input);

}  // namespace advh::ops
