// Tensor shape algebra.
//
// Shapes are small (rank <= 4 in this library: NCHW activations, OIHW
// weights) so a fixed-capacity inline vector keeps them cheap to copy.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <string>

namespace advh {

/// Dimension list with value semantics; rank 0 means "scalar".
class shape {
 public:
  static constexpr std::size_t max_rank = 4;

  shape() = default;
  shape(std::initializer_list<std::size_t> dims);

  std::size_t rank() const noexcept { return rank_; }
  std::size_t operator[](std::size_t i) const;
  std::size_t dim(std::size_t i) const { return (*this)[i]; }

  /// Total number of elements (1 for rank-0).
  std::size_t numel() const noexcept;

  bool operator==(const shape& other) const noexcept;
  bool operator!=(const shape& other) const noexcept {
    return !(*this == other);
  }

  /// Row-major strides, innermost dimension contiguous.
  std::array<std::size_t, max_rank> strides() const noexcept;

  std::string to_string() const;

 private:
  std::array<std::size_t, max_rank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace advh
