#include "tensor/tensor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace advh {

tensor::tensor(shape s) : shape_(s), data_(s.numel(), 0.0f) {}

tensor::tensor(shape s, float value) : shape_(s), data_(s.numel(), value) {}

tensor::tensor(shape s, std::vector<float> data)
    : shape_(s), data_(std::move(data)) {
  ADVH_CHECK_MSG(data_.size() == shape_.numel(),
                 "data size does not match shape " + shape_.to_string());
}

tensor tensor::randn(shape s, rng& gen, float stddev) {
  tensor t(s);
  for (auto& v : t.data_) v = static_cast<float>(gen.normal(0.0, stddev));
  return t;
}

tensor tensor::rand_uniform(shape s, rng& gen, float lo, float hi) {
  tensor t(s);
  for (auto& v : t.data_) v = static_cast<float>(gen.uniform(lo, hi));
  return t;
}

float& tensor::operator[](std::size_t i) {
  ADVH_CHECK(i < data_.size());
  return data_[i];
}

float tensor::operator[](std::size_t i) const {
  ADVH_CHECK(i < data_.size());
  return data_[i];
}

float& tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  ADVH_CHECK(shape_.rank() == 4);
  const auto st = shape_.strides();
  ADVH_CHECK(n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3]);
  return data_[n * st[0] + c * st[1] + h * st[2] + w * st[3]];
}

float tensor::at(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  return const_cast<tensor*>(this)->at(n, c, h, w);
}

float& tensor::at(std::size_t r, std::size_t c) {
  ADVH_CHECK(shape_.rank() == 2);
  ADVH_CHECK(r < shape_[0] && c < shape_[1]);
  return data_[r * shape_[1] + c];
}

float tensor::at(std::size_t r, std::size_t c) const {
  return const_cast<tensor*>(this)->at(r, c);
}

tensor tensor::reshaped(shape s) const {
  ADVH_CHECK_MSG(s.numel() == shape_.numel(),
                 "reshape must preserve element count");
  return tensor(s, data_);
}

void tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace advh
