// Matrix multiplication kernels.
//
// Convolutions lower to GEMM via im2col, so this is the hot path of both
// training and the instrumented inference used for HPC trace generation.
#pragma once

#include "tensor/tensor.hpp"

namespace advh::ops {

/// C = A(m,k) * B(k,n); both rank-2.
tensor matmul(const tensor& a, const tensor& b);

/// C = A^T(m,k) * B(m,n) -> (k,n).
tensor matmul_at_b(const tensor& a, const tensor& b);

/// C = A(m,k) * B^T(n,k) -> (m,n).
tensor matmul_a_bt(const tensor& a, const tensor& b);

}  // namespace advh::ops
