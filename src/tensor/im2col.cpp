#include "tensor/im2col.hpp"

#include "common/error.hpp"

namespace advh::ops {

namespace {
void check_geometry(const tensor& input, std::size_t batch_index,
                    const conv_geometry& g) {
  ADVH_CHECK(input.dims().rank() == 4);
  ADVH_CHECK(batch_index < input.dims()[0]);
  ADVH_CHECK(input.dims()[1] == g.in_channels);
  ADVH_CHECK(input.dims()[2] == g.in_h);
  ADVH_CHECK(input.dims()[3] == g.in_w);
  ADVH_CHECK(g.kernel_h > 0 && g.kernel_w > 0 && g.stride > 0);
  ADVH_CHECK(g.in_h + 2 * g.pad >= g.kernel_h);
  ADVH_CHECK(g.in_w + 2 * g.pad >= g.kernel_w);
}
}  // namespace

tensor im2col(const tensor& input, std::size_t batch_index,
              const conv_geometry& g) {
  check_geometry(input, batch_index, g);
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t rows = g.in_channels * g.kernel_h * g.kernel_w;

  tensor cols(shape{rows, oh * ow});
  float* pc = cols.data().data();
  const float* pi = input.data().data() +
                    batch_index * g.in_channels * g.in_h * g.in_w;

  for (std::size_t c = 0; c < g.in_channels; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw) {
        const std::size_t row = (c * g.kernel_h + kh) * g.kernel_w + kw;
        float* out_row = pc + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          // signed because padding can take us off the top/left edge
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            float v = 0.0f;
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h) &&
                ix >= 0 && ix < static_cast<std::ptrdiff_t>(g.in_w)) {
              v = pi[(c * g.in_h + static_cast<std::size_t>(iy)) * g.in_w +
                     static_cast<std::size_t>(ix)];
            }
            out_row[y * ow + x] = v;
          }
        }
      }
    }
  }
  return cols;
}

void col2im_accumulate(const tensor& cols, std::size_t batch_index,
                       const conv_geometry& g, tensor& grad_input) {
  check_geometry(grad_input, batch_index, g);
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t rows = g.in_channels * g.kernel_h * g.kernel_w;
  ADVH_CHECK(cols.dims().rank() == 2);
  ADVH_CHECK(cols.dims()[0] == rows);
  ADVH_CHECK(cols.dims()[1] == oh * ow);

  const float* pc = cols.data().data();
  float* pi = grad_input.data().data() +
              batch_index * g.in_channels * g.in_h * g.in_w;

  for (std::size_t c = 0; c < g.in_channels; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw) {
        const std::size_t row = (c * g.kernel_h + kh) * g.kernel_w + kw;
        const float* in_row = pc + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            pi[(c * g.in_h + static_cast<std::size_t>(iy)) * g.in_w +
               static_cast<std::size_t>(ix)] += in_row[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace advh::ops
