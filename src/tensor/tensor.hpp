// Dense float32 tensor with value semantics.
//
// Activations are NCHW, convolution weights OIHW, linear weights
// (out, in). All kernels in this library operate on contiguous row-major
// storage exposed via std::span.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tensor/shape.hpp"

namespace advh {

class tensor {
 public:
  tensor() = default;

  /// Allocates a zero-filled tensor of the given shape.
  explicit tensor(shape s);

  /// Allocates and fills with `value`.
  tensor(shape s, float value);

  /// Wraps existing data (copied); data.size() must equal s.numel().
  tensor(shape s, std::vector<float> data);

  static tensor zeros(shape s) { return tensor(std::move(s)); }
  static tensor full(shape s, float value) { return tensor(std::move(s), value); }
  /// I.i.d. normal entries with the given std-dev.
  static tensor randn(shape s, rng& gen, float stddev = 1.0f);
  /// I.i.d. uniform entries in [lo, hi).
  static tensor rand_uniform(shape s, rng& gen, float lo, float hi);

  const shape& dims() const noexcept { return shape_; }
  std::size_t numel() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  float& operator[](std::size_t i);
  float operator[](std::size_t i) const;

  /// NCHW element access (rank-4 tensors).
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Rank-2 element access.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  /// Returns a copy with a new shape of equal numel.
  tensor reshaped(shape s) const;

  /// Sets every element to `value`.
  void fill(float value) noexcept;

 private:
  shape shape_;
  std::vector<float> data_;
};

}  // namespace advh
