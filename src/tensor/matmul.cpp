#include "tensor/matmul.hpp"

#include "common/error.hpp"

namespace advh::ops {

namespace {
void check_rank2(const tensor& t, const char* name) {
  ADVH_CHECK_MSG(t.dims().rank() == 2, std::string(name) + " must be rank 2");
}
}  // namespace

tensor matmul(const tensor& a, const tensor& b) {
  check_rank2(a, "a");
  check_rank2(b, "b");
  const std::size_t m = a.dims()[0];
  const std::size_t k = a.dims()[1];
  ADVH_CHECK_MSG(b.dims()[0] == k, "inner dimensions must agree");
  const std::size_t n = b.dims()[1];

  tensor c(shape{m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // ikj loop order keeps the inner loop contiguous over B and C rows.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;  // sparsity fast-path (post-ReLU inputs)
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

tensor matmul_at_b(const tensor& a, const tensor& b) {
  check_rank2(a, "a");
  check_rank2(b, "b");
  const std::size_t m = a.dims()[0];
  const std::size_t k = a.dims()[1];
  ADVH_CHECK_MSG(b.dims()[0] == m, "outer dimensions must agree");
  const std::size_t n = b.dims()[1];

  tensor c(shape{k, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* crow = pc + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

tensor matmul_a_bt(const tensor& a, const tensor& b) {
  check_rank2(a, "a");
  check_rank2(b, "b");
  const std::size_t m = a.dims()[0];
  const std::size_t k = a.dims()[1];
  ADVH_CHECK_MSG(b.dims()[1] == k, "inner dimensions must agree");
  const std::size_t n = b.dims()[0];

  tensor c(shape{m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(arow[kk]) * brow[kk];
      }
      pc[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

}  // namespace advh::ops
