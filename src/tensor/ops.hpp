// Elementwise and reduction kernels on tensors.
//
// These free functions back both the NN layers and the attack
// implementations (sign/clamp for FGSM & PGD projection, L2 normalisation
// for DeepFool steps).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace advh::ops {

/// c = a + b (shapes must match).
tensor add(const tensor& a, const tensor& b);
/// c = a - b.
tensor sub(const tensor& a, const tensor& b);
/// c = a * b (elementwise).
tensor mul(const tensor& a, const tensor& b);
/// c = a * s.
tensor scale(const tensor& a, float s);
/// a += b * s (axpy, in place).
void axpy(tensor& a, const tensor& b, float s);
/// Elementwise sign (+1 / 0 / -1).
tensor sign(const tensor& a);
/// Elementwise clamp to [lo, hi].
tensor clamp(const tensor& a, float lo, float hi);
/// In-place clamp.
void clamp_inplace(tensor& a, float lo, float hi);
/// Clamps a to lie within the L-infinity ball of radius eps around center.
tensor project_linf(const tensor& a, const tensor& center, float eps);

/// Sum of all elements.
double sum(const tensor& a) noexcept;
/// Mean of all elements; 0 for empty tensors.
double mean(const tensor& a) noexcept;
/// L2 norm over all elements.
double l2_norm(const tensor& a) noexcept;
/// L-infinity norm over all elements.
double linf_norm(const tensor& a) noexcept;
/// Dot product of two equal-shape tensors (flattened).
double dot(const tensor& a, const tensor& b);

/// Index of the maximum element (first on ties); requires non-empty.
std::size_t argmax(const tensor& a);

/// Row-wise softmax of a rank-2 (batch, classes) tensor, numerically stable.
tensor softmax_rows(const tensor& logits);

/// Row-wise argmax for a rank-2 tensor; one index per row.
std::vector<std::size_t> argmax_rows(const tensor& logits);

/// Count of elements strictly greater than `threshold`.
std::size_t count_greater(const tensor& a, float threshold) noexcept;

}  // namespace advh::ops
