#include "core/detector.hpp"

#include "analysis/policy_pass.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace advh::core {

benign_template::benign_template(std::size_t num_classes,
                                 std::size_t num_events)
    : classes_(num_classes), events_(num_events) {
  ADVH_CHECK(num_classes > 0 && num_events > 0);
  data_.assign(classes_, std::vector<std::vector<double>>(events_));
}

void benign_template::add_row(std::size_t cls,
                              std::span<const double> event_means) {
  ADVH_CHECK(cls < classes_);
  ADVH_CHECK_MSG(event_means.size() == events_,
                 "row width must equal event count");
  for (std::size_t e = 0; e < events_; ++e) {
    data_[cls][e].push_back(event_means[e]);
  }
}

std::size_t benign_template::rows(std::size_t cls) const {
  ADVH_CHECK(cls < classes_);
  return data_[cls].empty() ? 0 : data_[cls][0].size();
}

const std::vector<double>& benign_template::column(std::size_t cls,
                                                   std::size_t event) const {
  ADVH_CHECK(cls < classes_ && event < events_);
  return data_[cls][event];
}

std::vector<std::size_t> benign_template::underfilled_classes() const {
  std::vector<std::size_t> out;
  if (requested_ == 0) return out;
  for (std::size_t cls = 0; cls < classes_; ++cls) {
    if (rows(cls) < requested_) out.push_back(cls);
  }
  return out;
}

template_builder::template_builder(hpc::hpc_monitor& monitor,
                                   detector_config cfg,
                                   std::size_t num_classes)
    : monitor_(monitor),
      cfg_(std::move(cfg)),
      tpl_(num_classes, cfg_.events.size()) {
  ADVH_CHECK_MSG(!cfg_.events.empty(), "detector needs at least one event");
}

bool template_builder::add_sample(const tensor& x, std::size_t label) {
  ADVH_CHECK(label < tpl_.num_classes());
  const auto m = monitor_.measure(x, cfg_.events, cfg_.repeats);
  if (m.predicted != label) return false;
  tpl_.add_row(label, m.mean_counts);
  return true;
}

std::size_t template_builder::accepted(std::size_t cls) const {
  return tpl_.rows(cls);
}

benign_template template_builder::build() const { return tpl_; }

detector detector::fit(const benign_template& tpl, const detector_config& cfg,
                       std::size_t threads) {
  ADVH_CHECK_MSG(cfg.events.size() == tpl.num_events(),
                 "config/template event count mismatch");
  // Policy gate: an internally inconsistent config (zero repeats, abstain
  // floor above the event count, non-positive sigma rule) is rejected
  // before any template is fitted under it, with the same ADVH-Exxx codes
  // advh_check reports.
  {
    analysis::check_report report;
    report.target = "detector config";
    analysis::check_detector_policy(cfg, report);
    if (report.has_errors()) throw analysis::check_error(std::move(report));
  }

  detector d;
  d.cfg_ = cfg;
  d.models_.assign(tpl.num_classes(),
                   std::vector<std::optional<event_model>>(tpl.num_events()));

  // Flatten the (class, event) grid into independent fit jobs. Every job
  // seeds its own EM state from cfg.em and writes a distinct cell, so the
  // bank can fit in parallel without changing a single bit of the result.
  struct fit_job {
    std::size_t cls;
    std::size_t event;
  };
  std::vector<fit_job> jobs;
  jobs.reserve(tpl.num_classes() * tpl.num_events());
  for (std::size_t cls = 0; cls < tpl.num_classes(); ++cls) {
    if (tpl.rows(cls) < 2) continue;  // not enough data to model this class
    for (std::size_t e = 0; e < tpl.num_events(); ++e) {
      jobs.push_back({cls, e});
    }
  }

  parallel::parallel_for(
      jobs.size(), threads, [&](std::size_t j, std::size_t /*worker*/) {
        const auto [cls, e] = jobs[j];
        const std::vector<double>& col = tpl.column(cls, e);
        event_model em;
        em.model = gmm::gmm1d::fit_best_bic(col, cfg.k_max, cfg.em);
        em.template_size = col.size();

        // NLL distribution L_c^n over the template, then the 3-sigma rule.
        std::vector<double> nll;
        nll.reserve(col.size());
        for (double v : col) nll.push_back(em.model.nll(v));
        em.nll_mean = stats::mean(nll);
        em.nll_stddev = stats::stddev(nll);
        em.threshold = em.nll_mean + cfg.sigma_multiplier * em.nll_stddev;
        d.models_[cls][e] = std::move(em);
      });
  return d;
}

detector detector::from_parts(
    detector_config cfg,
    std::vector<std::vector<std::optional<event_model>>> models) {
  for (const auto& row : models) {
    ADVH_CHECK_MSG(row.size() == cfg.events.size(),
                   "model grid width must equal event count");
  }
  detector d;
  d.cfg_ = std::move(cfg);
  d.models_ = std::move(models);
  return d;
}

verdict detector::score(std::size_t predicted_class,
                        std::span<const double> mean_counts,
                        std::span<const std::uint8_t> available) const {
  ADVH_CHECK(predicted_class < models_.size());
  ADVH_CHECK_MSG(mean_counts.size() == cfg_.events.size(),
                 "measurement width must equal event count");
  ADVH_CHECK_MSG(available.empty() || available.size() == cfg_.events.size(),
                 "availability mask width must equal event count");

  const auto is_available = [&](std::size_t e) {
    return available.empty() || available[e] != 0;
  };

  verdict v;
  v.predicted = predicted_class;
  v.nll.resize(cfg_.events.size(), 0.0);
  v.flagged.resize(cfg_.events.size(), false);
  v.modeled = false;
  std::size_t scored = 0;
  for (std::size_t e = 0; e < cfg_.events.size(); ++e) {
    const auto& em = models_[predicted_class][e];
    if (!is_available(e)) {
      // Unavailable measurement: no evidence either way for this event.
      v.degraded = true;
      continue;
    }
    if (!em.has_value()) continue;
    v.modeled = true;
    ++scored;
    v.nll[e] = em->model.nll(mean_counts[e]);
    v.flagged[e] = v.nll[e] > em->threshold;
    v.adversarial_any = v.adversarial_any || v.flagged[e];
  }
  // A class model fitted for an unavailable event still counts as
  // "modelled": abstention — not the unmodelled-class policy — is the
  // right response to losing its measurement.
  if (!v.modeled) {
    for (std::size_t e = 0; e < cfg_.events.size() && !v.modeled; ++e) {
      v.modeled = models_[predicted_class][e].has_value();
    }
  }
  if (!v.modeled) {
    // No reference behaviour for this class: the verdict is policy, not
    // evidence. Fail closed unless the deployment opted out.
    v.adversarial_any = cfg_.flag_unmodeled;
  } else if (scored < cfg_.min_events_for_verdict) {
    // Too few surviving modelled events for an evidence-based call.
    v.abstained = true;
    v.adversarial_any = cfg_.flag_on_abstain;
  }
  return v;
}

verdict detector::classify(hpc::hpc_monitor& monitor, const tensor& x) const {
  const auto m = monitor.measure(x, cfg_.events, cfg_.repeats);
  return score(m.predicted, m.mean_counts, m.q.available);
}

verdict detector::classify(hpc::hpc_monitor& monitor, const tensor& x,
                           std::size_t repeats,
                           const hpc::measure_budget& budget) const {
  const std::size_t r = repeats == 0 ? cfg_.repeats : repeats;
  const auto m = monitor.measure(x, cfg_.events, r, budget);
  return score(m.predicted, m.mean_counts, m.q.available);
}

std::vector<verdict> detector::classify_batch(hpc::hpc_monitor& monitor,
                                              std::span<const tensor> inputs,
                                              std::size_t threads) const {
  const auto ms =
      monitor.measure_batch(inputs, cfg_.events, cfg_.repeats, threads);
  std::vector<verdict> out;
  out.reserve(ms.size());
  for (const auto& m : ms) {
    out.push_back(score(m.predicted, m.mean_counts, m.q.available));
  }
  return out;
}

std::vector<verdict> detector::classify_batch(
    hpc::hpc_monitor& monitor, std::span<const tensor> inputs,
    std::size_t threads, std::size_t repeats,
    const hpc::measure_budget& budget) const {
  const std::size_t r = repeats == 0 ? cfg_.repeats : repeats;
  const auto ms = monitor.measure_batch(inputs, cfg_.events, r, threads, budget);
  std::vector<verdict> out;
  out.reserve(ms.size());
  for (const auto& m : ms) {
    out.push_back(score(m.predicted, m.mean_counts, m.q.available));
  }
  return out;
}

const std::optional<event_model>& detector::model_for(
    std::size_t cls, std::size_t event_idx) const {
  ADVH_CHECK(cls < models_.size());
  ADVH_CHECK(event_idx < cfg_.events.size());
  return models_[cls][event_idx];
}

}  // namespace advh::core
