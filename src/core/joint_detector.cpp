#include "core/joint_detector.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace advh::core {

joint_detector joint_detector::fit(const benign_template& tpl,
                                   const detector_config& cfg) {
  ADVH_CHECK_MSG(cfg.events.size() == tpl.num_events(),
                 "config/template event count mismatch");
  const std::size_t dim = tpl.num_events();

  joint_detector d;
  d.cfg_ = cfg;
  d.models_.assign(tpl.num_classes(), std::nullopt);

  for (std::size_t cls = 0; cls < tpl.num_classes(); ++cls) {
    const std::size_t rows = tpl.rows(cls);
    if (rows < 2) continue;

    // Row-major (rows x dim) flattening of the class's D_c matrix.
    std::vector<double> data(rows * dim);
    for (std::size_t e = 0; e < dim; ++e) {
      const auto& col = tpl.column(cls, e);
      for (std::size_t r = 0; r < rows; ++r) data[r * dim + e] = col[r];
    }

    joint_event_model jm;
    jm.model = gmm::gmm_diag::fit_best_bic(data, dim, cfg.k_max, cfg.em);
    jm.template_size = rows;

    std::vector<double> nll;
    nll.reserve(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      nll.push_back(jm.model.nll(
          std::span<const double>(data).subspan(r * dim, dim)));
    }
    jm.nll_mean = stats::mean(nll);
    jm.nll_stddev = stats::stddev(nll);
    jm.threshold = jm.nll_mean + cfg.sigma_multiplier * jm.nll_stddev;
    d.models_[cls] = std::move(jm);
  }
  return d;
}

joint_verdict joint_detector::score(std::size_t predicted_class,
                                    std::span<const double> mean_counts) const {
  ADVH_CHECK(predicted_class < models_.size());
  ADVH_CHECK_MSG(mean_counts.size() == cfg_.events.size(),
                 "measurement width must equal event count");
  joint_verdict v;
  v.predicted = predicted_class;
  const auto& jm = models_[predicted_class];
  if (!jm.has_value()) return v;
  v.nll = jm->model.nll(mean_counts);
  v.adversarial = v.nll > jm->threshold;
  return v;
}

joint_verdict joint_detector::classify(hpc::hpc_monitor& monitor,
                                       const tensor& x) const {
  const auto m = monitor.measure(x, cfg_.events, cfg_.repeats);
  return score(m.predicted, m.mean_counts);
}

const std::optional<joint_event_model>& joint_detector::model_for(
    std::size_t cls) const {
  ADVH_CHECK(cls < models_.size());
  return models_[cls];
}

}  // namespace advh::core
