#include "core/detector_io.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace advh::core {

namespace {
constexpr std::uint32_t kMagic = 0x41444554;  // "ADET"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  ADVH_CHECK_MSG(is.good(), "truncated detector file");
  return v;
}
}  // namespace

void save_detector(const detector& det, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os(p, std::ios::binary);
  ADVH_CHECK_MSG(os.good(), "cannot open " + path + " for writing");

  const auto& cfg = det.config();
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(cfg.events.size()));
  for (hpc::hpc_event e : cfg.events) {
    write_pod(os, static_cast<std::uint32_t>(e));
  }
  write_pod(os, static_cast<std::uint64_t>(cfg.repeats));
  write_pod(os, static_cast<std::uint64_t>(cfg.k_max));
  write_pod(os, cfg.sigma_multiplier);
  write_pod(os, static_cast<std::uint64_t>(det.num_classes()));

  for (std::size_t cls = 0; cls < det.num_classes(); ++cls) {
    for (std::size_t e = 0; e < cfg.events.size(); ++e) {
      const auto& em = det.model_for(cls, e);
      write_pod(os, static_cast<std::uint8_t>(em.has_value() ? 1 : 0));
      if (!em.has_value()) continue;
      write_pod(os, em->threshold);
      write_pod(os, em->nll_mean);
      write_pod(os, em->nll_stddev);
      write_pod(os, static_cast<std::uint64_t>(em->template_size));
      write_pod(os, static_cast<std::uint64_t>(em->model.order()));
      for (const auto& comp : em->model.components()) {
        write_pod(os, comp.weight);
        write_pod(os, comp.mean);
        write_pod(os, comp.variance);
      }
    }
  }
  ADVH_CHECK_MSG(os.good(), "write failed for " + path);
}

detector load_detector(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ADVH_CHECK_MSG(is.good(), "cannot open " + path);
  ADVH_CHECK_MSG(read_pod<std::uint32_t>(is) == kMagic,
                 path + " is not an AdvHunter detector file");
  ADVH_CHECK_MSG(read_pod<std::uint32_t>(is) == kVersion,
                 path + ": unsupported version");

  detector_config cfg;
  const auto n_events = read_pod<std::uint64_t>(is);
  for (std::uint64_t e = 0; e < n_events; ++e) {
    cfg.events.push_back(
        static_cast<hpc::hpc_event>(read_pod<std::uint32_t>(is)));
  }
  cfg.repeats = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
  cfg.k_max = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
  cfg.sigma_multiplier = read_pod<double>(is);

  const auto n_classes = read_pod<std::uint64_t>(is);
  std::vector<std::vector<std::optional<event_model>>> models(
      n_classes, std::vector<std::optional<event_model>>(n_events));
  for (std::uint64_t cls = 0; cls < n_classes; ++cls) {
    for (std::uint64_t e = 0; e < n_events; ++e) {
      if (read_pod<std::uint8_t>(is) == 0) continue;
      event_model em;
      em.threshold = read_pod<double>(is);
      em.nll_mean = read_pod<double>(is);
      em.nll_stddev = read_pod<double>(is);
      em.template_size =
          static_cast<std::size_t>(read_pod<std::uint64_t>(is));
      const auto order = read_pod<std::uint64_t>(is);
      std::vector<gmm::component1d> comps(order);
      for (auto& c : comps) {
        c.weight = read_pod<double>(is);
        c.mean = read_pod<double>(is);
        c.variance = read_pod<double>(is);
      }
      em.model = gmm::gmm1d(std::move(comps));
      models[cls][e] = std::move(em);
    }
  }
  return detector::from_parts(std::move(cfg), std::move(models));
}

}  // namespace advh::core
