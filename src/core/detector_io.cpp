#include "core/detector_io.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/fs.hpp"

namespace advh::core {

namespace {
constexpr std::uint32_t kMagic = 0x41444554;  // "ADET"
// Version history: 1 = initial format; 2 adds the flag_unmodeled policy
// byte after sigma_multiplier; 3 adds the degraded-input policy
// (min_events_for_verdict u64 + flag_on_abstain u8) after that byte;
// 4 appends an optional drift-controller section (presence byte, then
// policy + per-cell sequential-detector state + canary reservoirs) after
// the model grid. Older files still load (policies default to the
// fail-closed detector_config values; drift state defaults to absent).
constexpr std::uint32_t kVersion = 4;
constexpr std::uint32_t kOldestSupported = 1;
// A BIC scan never selects more components than template rows; anything
// beyond this is corrupt bytes, not a plausible fit.
constexpr std::uint64_t kMaxOrder = 4096;
// Sanity bounds for drift-section sizes: far above any sane policy, low
// enough that corrupt bytes cannot drive multi-gigabyte allocations.
constexpr std::uint64_t kMaxWindow = 1u << 20;
constexpr std::uint64_t kMaxReservoir = 1u << 20;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, const std::string& path) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is.good()) throw io_error(path + ": truncated detector file");
  return v;
}

double read_finite(std::istream& is, const std::string& path,
                   const char* what) {
  const double v = read_pod<double>(is, path);
  if (!std::isfinite(v)) {
    throw io_error(path + ": non-finite " + std::string(what) +
                   " in drift state");
  }
  return v;
}

std::string cell_name(std::uint64_t cls, hpc::hpc_event e) {
  return "(class " + std::to_string(cls) + ", event " + hpc::to_string(e) + ")";
}

/// Validates deserialized mixture components and summary statistics;
/// detector files are loaded at service start from bytes the process did
/// not produce, so every field the online scorer trusts is range-checked
/// here (before gmm1d's own invariant checks can fire on garbage).
void validate_cell(std::span<const gmm::component1d> comps, double threshold,
                   double nll_mean, double nll_stddev, const std::string& path,
                   std::uint64_t cls, hpc::hpc_event event) {
  const std::string where = path + ": " + cell_name(cls, event);
  if (!std::isfinite(threshold)) {
    throw io_error(where + ": non-finite NLL threshold");
  }
  if (!std::isfinite(nll_mean) || !std::isfinite(nll_stddev) ||
      nll_stddev < 0.0) {
    throw io_error(where + ": invalid template NLL statistics");
  }
  double weight_sum = 0.0;
  for (const auto& comp : comps) {
    if (!std::isfinite(comp.weight) || comp.weight < 0.0) {
      throw io_error(where + ": invalid component weight");
    }
    if (!std::isfinite(comp.mean)) {
      throw io_error(where + ": non-finite component mean");
    }
    if (!std::isfinite(comp.variance) || comp.variance <= 0.0) {
      throw io_error(where + ": non-positive component variance");
    }
    weight_sum += comp.weight;
  }
  if (std::abs(weight_sum - 1.0) > 1e-6) {
    throw io_error(where + ": component weights sum to " +
                   std::to_string(weight_sum) + ", expected 1");
  }
}

void write_detector_body(std::ostream& os, const detector& det) {
  const auto& cfg = det.config();
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(cfg.events.size()));
  for (hpc::hpc_event e : cfg.events) {
    write_pod(os, static_cast<std::uint32_t>(e));
  }
  write_pod(os, static_cast<std::uint64_t>(cfg.repeats));
  write_pod(os, static_cast<std::uint64_t>(cfg.k_max));
  write_pod(os, cfg.sigma_multiplier);
  write_pod(os, static_cast<std::uint8_t>(cfg.flag_unmodeled ? 1 : 0));
  write_pod(os, static_cast<std::uint64_t>(cfg.min_events_for_verdict));
  write_pod(os, static_cast<std::uint8_t>(cfg.flag_on_abstain ? 1 : 0));
  write_pod(os, static_cast<std::uint64_t>(det.num_classes()));

  for (std::size_t cls = 0; cls < det.num_classes(); ++cls) {
    for (std::size_t e = 0; e < cfg.events.size(); ++e) {
      const auto& em = det.model_for(cls, e);
      write_pod(os, static_cast<std::uint8_t>(em.has_value() ? 1 : 0));
      if (!em.has_value()) continue;
      write_pod(os, em->threshold);
      write_pod(os, em->nll_mean);
      write_pod(os, em->nll_stddev);
      write_pod(os, static_cast<std::uint64_t>(em->template_size));
      write_pod(os, static_cast<std::uint64_t>(em->model.order()));
      for (const auto& comp : em->model.components()) {
        write_pod(os, comp.weight);
        write_pod(os, comp.mean);
        write_pod(os, comp.variance);
      }
    }
  }
}

void write_drift_cell(std::ostream& os, const drift_cell& cell) {
  write_pod(os, cell.ref_offset);
  write_pod(os, cell.cusum_pos);
  write_pod(os, cell.cusum_neg);
  write_pod(os, cell.ph_mean);
  write_pod(os, cell.ph_up);
  write_pod(os, cell.ph_up_min);
  write_pod(os, cell.ph_down);
  write_pod(os, cell.ph_down_max);
  write_pod(os, cell.samples);
  write_pod(os, cell.quarantined);
  write_pod(os, static_cast<std::uint64_t>(cell.window.size()));
  for (const double v : cell.window) write_pod(os, v);
}

void write_drift_state(std::ostream& os, const drift_state& st) {
  const drift_policy& p = st.policy;
  write_pod(os, p.z_clamp);
  write_pod(os, p.cusum_slack);
  write_pod(os, p.cusum_warn);
  write_pod(os, p.cusum_alarm);
  write_pod(os, p.ph_delta);
  write_pod(os, p.ph_warn);
  write_pod(os, p.ph_alarm);
  write_pod(os, static_cast<std::uint64_t>(p.ks_window));
  write_pod(os, static_cast<std::uint64_t>(p.ks_min_samples));
  write_pod(os, p.ks_warn);
  write_pod(os, p.ks_alarm);
  write_pod(os, static_cast<std::uint64_t>(p.reservoir_capacity));
  write_pod(os, static_cast<std::uint64_t>(p.min_refit_rows));
  write_pod(os, static_cast<std::uint64_t>(p.burn_in));

  for (const auto& grid : {&st.canary, &st.victim}) {
    for (const auto& row : *grid) {
      for (const drift_cell& cell : row) write_drift_cell(os, cell);
    }
  }
  for (const auto& pool : st.reservoir) {
    write_pod(os, static_cast<std::uint64_t>(pool.size()));
    for (const auto& row : pool) {
      for (const double v : row) write_pod(os, v);
    }
  }
  write_pod(os, st.canaries_accepted);
  write_pod(os, st.canaries_rejected);
  write_pod(os, st.victims_scored);
  write_pod(os, st.quarantined_verdicts);
  write_pod(os, st.recalibrations);
}

drift_cell read_drift_cell(std::istream& is, const std::string& path,
                           std::uint64_t max_window) {
  drift_cell cell;
  cell.ref_offset = read_finite(is, path, "burn-in offset");
  cell.cusum_pos = read_finite(is, path, "CUSUM statistic");
  cell.cusum_neg = read_finite(is, path, "CUSUM statistic");
  cell.ph_mean = read_finite(is, path, "Page-Hinkley mean");
  cell.ph_up = read_finite(is, path, "Page-Hinkley sum");
  cell.ph_up_min = read_finite(is, path, "Page-Hinkley extremum");
  cell.ph_down = read_finite(is, path, "Page-Hinkley sum");
  cell.ph_down_max = read_finite(is, path, "Page-Hinkley extremum");
  if (cell.cusum_pos < 0.0 || cell.cusum_neg < 0.0) {
    throw io_error(path + ": negative CUSUM statistic in drift state");
  }
  cell.samples = read_pod<std::uint64_t>(is, path);
  cell.quarantined = read_pod<std::uint8_t>(is, path);
  if (cell.quarantined > 1) {
    throw io_error(path + ": invalid quarantine flag in drift state");
  }
  const auto n = read_pod<std::uint64_t>(is, path);
  if (n > max_window) {
    throw io_error(path + ": drift window of " + std::to_string(n) +
                   " exceeds the policy window");
  }
  cell.window.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    cell.window.push_back(read_finite(is, path, "window NLL"));
  }
  return cell;
}

drift_state read_drift_state(std::istream& is, const std::string& path,
                             std::uint64_t n_classes, std::uint64_t n_events) {
  drift_state st;
  drift_policy& p = st.policy;
  p.z_clamp = read_finite(is, path, "z_clamp");
  p.cusum_slack = read_finite(is, path, "cusum_slack");
  p.cusum_warn = read_finite(is, path, "cusum_warn");
  p.cusum_alarm = read_finite(is, path, "cusum_alarm");
  p.ph_delta = read_finite(is, path, "ph_delta");
  p.ph_warn = read_finite(is, path, "ph_warn");
  p.ph_alarm = read_finite(is, path, "ph_alarm");
  p.ks_window = static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
  p.ks_min_samples =
      static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
  p.ks_warn = read_finite(is, path, "ks_warn");
  p.ks_alarm = read_finite(is, path, "ks_alarm");
  p.reservoir_capacity =
      static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
  p.min_refit_rows =
      static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
  p.burn_in = static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
  if (p.burn_in > kMaxWindow) {
    throw io_error(path + ": implausible burn-in length");
  }
  if (p.z_clamp <= 0.0 || p.cusum_slack < 0.0 || p.cusum_warn <= 0.0 ||
      p.cusum_alarm < p.cusum_warn || p.ph_delta < 0.0 || p.ph_warn <= 0.0 ||
      p.ph_alarm < p.ph_warn || p.ks_window < 2 || p.ks_window > kMaxWindow ||
      p.ks_min_samples < 2 || p.ks_min_samples > p.ks_window ||
      p.ks_warn <= 0.0 || p.ks_alarm < p.ks_warn || p.ks_alarm > 1.0 ||
      p.min_refit_rows < 2 || p.reservoir_capacity < p.min_refit_rows ||
      p.reservoir_capacity > kMaxReservoir) {
    throw io_error(path + ": inconsistent drift policy");
  }

  for (auto* grid : {&st.canary, &st.victim}) {
    grid->assign(static_cast<std::size_t>(n_classes), {});
    for (auto& row : *grid) {
      row.reserve(static_cast<std::size_t>(n_events));
      for (std::uint64_t e = 0; e < n_events; ++e) {
        row.push_back(read_drift_cell(is, path, p.ks_window));
      }
    }
  }
  st.reservoir.assign(static_cast<std::size_t>(n_classes), {});
  for (auto& pool : st.reservoir) {
    const auto rows = read_pod<std::uint64_t>(is, path);
    if (rows > p.reservoir_capacity) {
      throw io_error(path + ": reservoir of " + std::to_string(rows) +
                     " rows exceeds its capacity");
    }
    pool.reserve(static_cast<std::size_t>(rows));
    for (std::uint64_t r = 0; r < rows; ++r) {
      std::vector<double> row;
      row.reserve(static_cast<std::size_t>(n_events));
      for (std::uint64_t e = 0; e < n_events; ++e) {
        row.push_back(read_finite(is, path, "reservoir count"));
      }
      pool.push_back(std::move(row));
    }
  }
  st.canaries_accepted = read_pod<std::uint64_t>(is, path);
  st.canaries_rejected = read_pod<std::uint64_t>(is, path);
  st.victims_scored = read_pod<std::uint64_t>(is, path);
  st.quarantined_verdicts = read_pod<std::uint64_t>(is, path);
  st.recalibrations = read_pod<std::uint64_t>(is, path);
  return st;
}

}  // namespace

void save_detector(const detector& det, const std::string& path) {
  std::ostringstream os(std::ios::binary);
  write_detector_body(os, det);
  write_pod(os, static_cast<std::uint8_t>(0));  // no drift section
  ADVH_CHECK_MSG(os.good(), "serialisation failed for " + path);
  atomic_write_file(path, os.view());
}

void save_checkpoint(const drift_controller& ctl, const std::string& path) {
  std::ostringstream os(std::ios::binary);
  write_detector_body(os, ctl.det());
  write_pod(os, static_cast<std::uint8_t>(1));
  write_drift_state(os, ctl.state());
  ADVH_CHECK_MSG(os.good(), "serialisation failed for " + path);
  atomic_write_file(path, os.view());
}

checkpoint load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw io_error("cannot open " + path);
  if (read_pod<std::uint32_t>(is, path) != kMagic) {
    throw io_error(path + " is not an AdvHunter detector file");
  }
  const auto version = read_pod<std::uint32_t>(is, path);
  if (version < kOldestSupported || version > kVersion) {
    throw io_error(path + ": unsupported detector format version " +
                   std::to_string(version));
  }

  detector_config cfg;
  const auto n_events = read_pod<std::uint64_t>(is, path);
  if (n_events == 0) throw io_error(path + ": detector monitors zero events");
  if (n_events > 1024) {
    throw io_error(path + ": implausible event count " +
                   std::to_string(n_events));
  }
  for (std::uint64_t e = 0; e < n_events; ++e) {
    const auto raw = read_pod<std::uint32_t>(is, path);
    if (raw > static_cast<std::uint32_t>(hpc::hpc_event::llc_store_misses)) {
      throw io_error(path + ": unknown hpc_event value " +
                     std::to_string(raw));
    }
    cfg.events.push_back(static_cast<hpc::hpc_event>(raw));
  }
  cfg.repeats = static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
  if (cfg.repeats == 0) {
    throw io_error(path + ": measurement repeat count is zero");
  }
  cfg.k_max = static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
  cfg.sigma_multiplier = read_pod<double>(is, path);
  if (!std::isfinite(cfg.sigma_multiplier) || cfg.sigma_multiplier <= 0.0) {
    throw io_error(path + ": invalid sigma multiplier");
  }
  if (version >= 2) {
    cfg.flag_unmodeled = read_pod<std::uint8_t>(is, path) != 0;
  }
  if (version >= 3) {
    cfg.min_events_for_verdict =
        static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
    if (cfg.min_events_for_verdict > n_events) {
      throw io_error(path + ": min_events_for_verdict " +
                     std::to_string(cfg.min_events_for_verdict) +
                     " exceeds event count");
    }
    cfg.flag_on_abstain = read_pod<std::uint8_t>(is, path) != 0;
  }

  const auto n_classes = read_pod<std::uint64_t>(is, path);
  if (n_classes == 0) throw io_error(path + ": detector covers zero classes");
  if (n_classes > 1u << 20) {
    throw io_error(path + ": implausible class count " +
                   std::to_string(n_classes));
  }
  std::vector<std::vector<std::optional<event_model>>> models(
      n_classes, std::vector<std::optional<event_model>>(n_events));
  for (std::uint64_t cls = 0; cls < n_classes; ++cls) {
    for (std::uint64_t e = 0; e < n_events; ++e) {
      if (read_pod<std::uint8_t>(is, path) == 0) continue;
      event_model em;
      em.threshold = read_pod<double>(is, path);
      em.nll_mean = read_pod<double>(is, path);
      em.nll_stddev = read_pod<double>(is, path);
      em.template_size =
          static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
      const auto order = read_pod<std::uint64_t>(is, path);
      if (order == 0 || order > kMaxOrder) {
        throw io_error(path + ": " + cell_name(cls, cfg.events[e]) +
                       ": implausible mixture order " + std::to_string(order));
      }
      std::vector<gmm::component1d> comps(order);
      for (auto& c : comps) {
        c.weight = read_pod<double>(is, path);
        c.mean = read_pod<double>(is, path);
        c.variance = read_pod<double>(is, path);
      }
      validate_cell(comps, em.threshold, em.nll_mean, em.nll_stddev, path,
                    cls, cfg.events[e]);
      em.model = gmm::gmm1d(std::move(comps));
      models[cls][e] = std::move(em);
    }
  }

  checkpoint out{detector::from_parts(std::move(cfg), std::move(models)), {}};
  if (version >= 4) {
    const auto has_drift = read_pod<std::uint8_t>(is, path);
    if (has_drift > 1) {
      throw io_error(path + ": invalid drift-section presence byte");
    }
    if (has_drift == 1) {
      out.drift = read_drift_state(is, path, n_classes, n_events);
    }
  }
  return out;
}

detector load_detector(const std::string& path) {
  return load_checkpoint(path).det;
}

}  // namespace advh::core
