#include "core/detector_io.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/fs.hpp"

namespace advh::core {

namespace {
constexpr std::uint32_t kMagic = 0x41444554;  // "ADET"
// Version history: 1 = initial format; 2 adds the flag_unmodeled policy
// byte after sigma_multiplier; 3 adds the degraded-input policy
// (min_events_for_verdict u64 + flag_on_abstain u8) after that byte;
// 4 appends an optional drift-controller section (presence byte, then
// policy + per-cell sequential-detector state + canary reservoirs) after
// the model grid; 5 appends a fleet section (view epoch, shard identity,
// content version, rollback flag) after the drift section, followed by a
// mandatory whole-file checksum trailer ("ADCK" magic + CRC32C over every
// preceding byte) so a fleet never applies a shard whose bytes rotted on
// disk. Older files still load (policies default to the fail-closed
// detector_config values; drift state and fleet metadata default to
// absent; v4 and below carry no trailer). Writers emit v4 unless fleet
// metadata is attached, so meta-less saves stay byte-identical across
// revisions.
constexpr std::uint32_t kVersion = 4;
constexpr std::uint32_t kVersionFleet = 5;
constexpr std::uint32_t kCkTrailerMagic = 0x4144434B;  // "ADCK"
constexpr std::uint32_t kOldestSupported = 1;
// A BIC scan never selects more components than template rows; anything
// beyond this is corrupt bytes, not a plausible fit.
constexpr std::uint64_t kMaxOrder = 4096;
// Sanity bounds for drift-section sizes: far above any sane policy, low
// enough that corrupt bytes cannot drive multi-gigabyte allocations.
constexpr std::uint64_t kMaxWindow = 1u << 20;
constexpr std::uint64_t kMaxReservoir = 1u << 20;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

// ---------------------------------------------------------------------
// Read side: the detector-file linter (advh_check's 2xx pass).
//
// Two defect classes share the ADVH-x2xx code space:
//  * structural — the byte stream cannot be meaningfully parsed further
//    (bad magic, truncation, implausible section sizes). The finding is
//    recorded into the report and parsing aborts via io_error; the code
//    rides in the exception text so throwing loaders and the advh_check
//    CLI name the same identifier.
//  * semantic — the bytes parse but describe an invalid artifact (weights
//    that do not sum to 1, a threshold below its own NLL mean). The
//    finding is recorded and parsing continues, so one linter pass
//    reports every defect in the file, not just the first.
// ---------------------------------------------------------------------

struct parser {
  std::istream& is;
  const std::string& path;
  analysis::check_report& rep;
  // The complete file bytes when the caller parsed from a buffer — what
  // the v5 checksum trailer is verified against. Null for callers that
  // stream (no trailer verification possible, v4 and below only).
  const std::string* raw = nullptr;

  [[noreturn]] void fail(int code, const std::string& where,
                         const std::string& msg) {
    rep.add(analysis::severity::error, code, where, msg);
    throw io_error(path + ": " + msg + " [" +
                   analysis::make_code(analysis::severity::error, code) + "]");
  }

  template <typename T>
  T pod(const char* what) {
    T v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!is.good()) {
      fail(203, "file",
           "truncated while reading " + std::string(what));
    }
    return v;
  }

  /// Drift-state doubles: any non-finite value poisons the statistics it
  /// feeds, and every later field shares its byte stream — structural.
  double finite(const char* what) {
    const double v = pod<double>(what);
    if (!std::isfinite(v)) {
      fail(242, "drift state", "non-finite " + std::string(what));
    }
    return v;
  }
};

std::string cell_name(std::uint64_t cls, hpc::hpc_event e) {
  return "(class " + std::to_string(cls) + ", event " + hpc::to_string(e) + ")";
}

/// Validates deserialized mixture components and summary statistics;
/// detector files are loaded at service start from bytes the process did
/// not produce, so every field the online scorer trusts is range-checked
/// here (before gmm1d's own invariant checks can fire on garbage).
/// Returns false when the cell carries any error-severity defect — the
/// caller then skips constructing the mixture and leaves the cell
/// unmodelled.
bool validate_cell(std::span<const gmm::component1d> comps, double threshold,
                   double nll_mean, double nll_stddev, double sigma_multiplier,
                   const std::string& where, analysis::check_report& rep) {
  using analysis::severity;
  bool ok = true;
  bool stats_ok = true;
  if (!std::isfinite(threshold)) {
    rep.add(severity::error, 230, where, "non-finite NLL threshold");
    ok = stats_ok = false;
  }
  if (!std::isfinite(nll_mean) || !std::isfinite(nll_stddev) ||
      nll_stddev < 0.0) {
    rep.add(severity::error, 236, where, "invalid template NLL statistics");
    ok = stats_ok = false;
  }
  double weight_sum = 0.0;
  for (std::size_t k = 0; k < comps.size(); ++k) {
    const auto& comp = comps[k];
    const std::string comp_where = where + " component " + std::to_string(k);
    if (!std::isfinite(comp.weight) || comp.weight < 0.0) {
      rep.add(severity::error, 232, comp_where, "invalid component weight");
      ok = false;
    }
    if (!std::isfinite(comp.mean)) {
      rep.add(severity::error, 235, comp_where, "non-finite component mean");
      ok = false;
    }
    if (!std::isfinite(comp.variance) || comp.variance <= 0.0) {
      rep.add(severity::error, 233, comp_where,
              "non-positive component variance");
      ok = false;
    } else if (comp.variance <
               1e-12 * std::max(comp.mean * comp.mean, 1.0)) {
      // Below the relative epsilon of double precision: (v - mean)^2 /
      // variance is numerically meaningless, so the cell flags or passes
      // on rounding noise. Degenerate fit (constant template column at
      // the EM variance floor), not corruption — warn, don't block.
      rep.add(severity::warning, 234, comp_where,
              "variance is below the numerical floor for its mean: the "
              "component degenerates to a spike and its NLL is dominated "
              "by rounding");
    }
    weight_sum += comp.weight;
  }
  if (std::abs(weight_sum - 1.0) > 1e-6) {
    rep.add(severity::error, 231, where,
            "component weights sum to " + std::to_string(weight_sum) +
                ", expected 1");
    ok = false;
  }
  if (stats_ok && std::isfinite(sigma_multiplier) && sigma_multiplier > 0.0) {
    // The fit computes threshold = nll_mean + sigma * nll_stddev exactly
    // (core/detector.cpp); a threshold below the template's own mean NLL
    // flags typical benign traffic, a silently edited threshold is the
    // tampering the linter exists to catch.
    const double expect = nll_mean + sigma_multiplier * nll_stddev;
    const double tol = 1e-6 * std::max(1.0, std::abs(expect));
    if (threshold < nll_mean - tol) {
      rep.add(severity::error, 237, where,
              "threshold " + std::to_string(threshold) +
                  " lies below the template's mean NLL " +
                  std::to_string(nll_mean) +
                  ": typical benign traffic would flag");
      ok = false;
    } else if (std::abs(threshold - expect) > tol) {
      rep.add(severity::warning, 238, where,
              "threshold " + std::to_string(threshold) +
                  " deviates from the sigma rule nll_mean + sigma * "
                  "nll_stddev = " +
                  std::to_string(expect) +
                  ": hand-edited or written by a different fit rule");
    }
  }
  return ok;
}

void write_detector_body(std::ostream& os, const detector& det,
                         std::uint32_t version) {
  const auto& cfg = det.config();
  write_pod(os, kMagic);
  write_pod(os, version);
  write_pod(os, static_cast<std::uint64_t>(cfg.events.size()));
  for (hpc::hpc_event e : cfg.events) {
    write_pod(os, static_cast<std::uint32_t>(e));
  }
  write_pod(os, static_cast<std::uint64_t>(cfg.repeats));
  write_pod(os, static_cast<std::uint64_t>(cfg.k_max));
  write_pod(os, cfg.sigma_multiplier);
  write_pod(os, static_cast<std::uint8_t>(cfg.flag_unmodeled ? 1 : 0));
  write_pod(os, static_cast<std::uint64_t>(cfg.min_events_for_verdict));
  write_pod(os, static_cast<std::uint8_t>(cfg.flag_on_abstain ? 1 : 0));
  write_pod(os, static_cast<std::uint64_t>(det.num_classes()));

  for (std::size_t cls = 0; cls < det.num_classes(); ++cls) {
    for (std::size_t e = 0; e < cfg.events.size(); ++e) {
      const auto& em = det.model_for(cls, e);
      write_pod(os, static_cast<std::uint8_t>(em.has_value() ? 1 : 0));
      if (!em.has_value()) continue;
      write_pod(os, em->threshold);
      write_pod(os, em->nll_mean);
      write_pod(os, em->nll_stddev);
      write_pod(os, static_cast<std::uint64_t>(em->template_size));
      write_pod(os, static_cast<std::uint64_t>(em->model.order()));
      for (const auto& comp : em->model.components()) {
        write_pod(os, comp.weight);
        write_pod(os, comp.mean);
        write_pod(os, comp.variance);
      }
    }
  }
}

void write_meta(std::ostream& os, const checkpoint_meta& m) {
  write_pod(os, m.epoch);
  write_pod(os, m.shard_index);
  write_pod(os, m.shard_count);
  write_pod(os, m.content_version);
  write_pod(os, static_cast<std::uint8_t>(m.rollback ? 1 : 0));
}

// Appends the v5 whole-file checksum trailer: CRC32C over everything
// serialised so far, so a reader can verify the complete file before
// trusting any field of it.
void write_checksum_trailer(std::ostringstream& os) {
  const std::uint32_t crc = crc32c(os.view());
  write_pod(os, kCkTrailerMagic);
  write_pod(os, crc);
}

void write_drift_cell(std::ostream& os, const drift_cell& cell) {
  write_pod(os, cell.ref_offset);
  write_pod(os, cell.cusum_pos);
  write_pod(os, cell.cusum_neg);
  write_pod(os, cell.ph_mean);
  write_pod(os, cell.ph_up);
  write_pod(os, cell.ph_up_min);
  write_pod(os, cell.ph_down);
  write_pod(os, cell.ph_down_max);
  write_pod(os, cell.samples);
  write_pod(os, cell.quarantined);
  write_pod(os, static_cast<std::uint64_t>(cell.window.size()));
  for (const double v : cell.window) write_pod(os, v);
}

void write_drift_state(std::ostream& os, const drift_state& st) {
  const drift_policy& p = st.policy;
  write_pod(os, p.z_clamp);
  write_pod(os, p.cusum_slack);
  write_pod(os, p.cusum_warn);
  write_pod(os, p.cusum_alarm);
  write_pod(os, p.ph_delta);
  write_pod(os, p.ph_warn);
  write_pod(os, p.ph_alarm);
  write_pod(os, static_cast<std::uint64_t>(p.ks_window));
  write_pod(os, static_cast<std::uint64_t>(p.ks_min_samples));
  write_pod(os, p.ks_warn);
  write_pod(os, p.ks_alarm);
  write_pod(os, static_cast<std::uint64_t>(p.reservoir_capacity));
  write_pod(os, static_cast<std::uint64_t>(p.min_refit_rows));
  write_pod(os, static_cast<std::uint64_t>(p.burn_in));

  for (const auto& grid : {&st.canary, &st.victim}) {
    for (const auto& row : *grid) {
      for (const drift_cell& cell : row) write_drift_cell(os, cell);
    }
  }
  for (const auto& pool : st.reservoir) {
    write_pod(os, static_cast<std::uint64_t>(pool.size()));
    for (const auto& row : pool) {
      for (const double v : row) write_pod(os, v);
    }
  }
  write_pod(os, st.canaries_accepted);
  write_pod(os, st.canaries_rejected);
  write_pod(os, st.victims_scored);
  write_pod(os, st.quarantined_verdicts);
  write_pod(os, st.recalibrations);
}

drift_cell read_drift_cell(parser& p, std::uint64_t max_window) {
  drift_cell cell;
  cell.ref_offset = p.finite("burn-in offset");
  cell.cusum_pos = p.finite("CUSUM statistic");
  cell.cusum_neg = p.finite("CUSUM statistic");
  cell.ph_mean = p.finite("Page-Hinkley mean");
  cell.ph_up = p.finite("Page-Hinkley sum");
  cell.ph_up_min = p.finite("Page-Hinkley extremum");
  cell.ph_down = p.finite("Page-Hinkley sum");
  cell.ph_down_max = p.finite("Page-Hinkley extremum");
  if (cell.cusum_pos < 0.0 || cell.cusum_neg < 0.0) {
    p.fail(242, "drift state", "negative CUSUM statistic in drift state");
  }
  cell.samples = p.pod<std::uint64_t>("drift sample count");
  cell.quarantined = p.pod<std::uint8_t>("quarantine flag");
  if (cell.quarantined > 1) {
    p.fail(245, "drift state", "invalid quarantine flag in drift state");
  }
  const auto n = p.pod<std::uint64_t>("drift window length");
  if (n > max_window) {
    p.fail(243, "drift state",
           "drift window of " + std::to_string(n) +
               " exceeds the policy window");
  }
  cell.window.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    cell.window.push_back(p.finite("window NLL"));
  }
  return cell;
}

drift_state read_drift_state(parser& p, std::uint64_t n_classes,
                             std::uint64_t n_events) {
  drift_state st;
  drift_policy& pol = st.policy;
  pol.z_clamp = p.finite("z_clamp");
  pol.cusum_slack = p.finite("cusum_slack");
  pol.cusum_warn = p.finite("cusum_warn");
  pol.cusum_alarm = p.finite("cusum_alarm");
  pol.ph_delta = p.finite("ph_delta");
  pol.ph_warn = p.finite("ph_warn");
  pol.ph_alarm = p.finite("ph_alarm");
  pol.ks_window =
      static_cast<std::size_t>(p.pod<std::uint64_t>("ks_window"));
  pol.ks_min_samples =
      static_cast<std::size_t>(p.pod<std::uint64_t>("ks_min_samples"));
  pol.ks_warn = p.finite("ks_warn");
  pol.ks_alarm = p.finite("ks_alarm");
  pol.reservoir_capacity =
      static_cast<std::size_t>(p.pod<std::uint64_t>("reservoir_capacity"));
  pol.min_refit_rows =
      static_cast<std::size_t>(p.pod<std::uint64_t>("min_refit_rows"));
  pol.burn_in = static_cast<std::size_t>(p.pod<std::uint64_t>("burn_in"));
  if (pol.burn_in > kMaxWindow) {
    p.fail(204, "drift policy", "implausible burn-in length");
  }
  if (pol.z_clamp <= 0.0 || pol.cusum_slack < 0.0 || pol.cusum_warn <= 0.0 ||
      pol.cusum_alarm < pol.cusum_warn || pol.ph_delta < 0.0 ||
      pol.ph_warn <= 0.0 || pol.ph_alarm < pol.ph_warn || pol.ks_window < 2 ||
      pol.ks_window > kMaxWindow || pol.ks_min_samples < 2 ||
      pol.ks_min_samples > pol.ks_window || pol.ks_warn <= 0.0 ||
      pol.ks_alarm < pol.ks_warn || pol.ks_alarm > 1.0 ||
      pol.min_refit_rows < 2 ||
      pol.reservoir_capacity < pol.min_refit_rows ||
      pol.reservoir_capacity > kMaxReservoir) {
    p.fail(241, "drift policy", "inconsistent drift policy");
  }

  for (auto* grid : {&st.canary, &st.victim}) {
    grid->assign(static_cast<std::size_t>(n_classes), {});
    for (auto& row : *grid) {
      row.reserve(static_cast<std::size_t>(n_events));
      for (std::uint64_t e = 0; e < n_events; ++e) {
        row.push_back(read_drift_cell(p, pol.ks_window));
      }
    }
  }
  st.reservoir.assign(static_cast<std::size_t>(n_classes), {});
  for (auto& pool : st.reservoir) {
    const auto rows = p.pod<std::uint64_t>("reservoir row count");
    if (rows > pol.reservoir_capacity) {
      p.fail(244, "drift state",
             "reservoir of " + std::to_string(rows) +
                 " rows exceeds its capacity");
    }
    pool.reserve(static_cast<std::size_t>(rows));
    for (std::uint64_t r = 0; r < rows; ++r) {
      std::vector<double> row;
      row.reserve(static_cast<std::size_t>(n_events));
      for (std::uint64_t e = 0; e < n_events; ++e) {
        row.push_back(p.finite("reservoir count"));
      }
      pool.push_back(std::move(row));
    }
  }
  st.canaries_accepted = p.pod<std::uint64_t>("canary counter");
  st.canaries_rejected = p.pod<std::uint64_t>("canary counter");
  st.victims_scored = p.pod<std::uint64_t>("victim counter");
  st.quarantined_verdicts = p.pod<std::uint64_t>("quarantine counter");
  st.recalibrations = p.pod<std::uint64_t>("recalibration counter");
  return st;
}

/// Full linting parse of one ADET file. Structural defects abort via
/// parser::fail (finding recorded, io_error thrown); semantic defects
/// accumulate into the report and parsing continues.
checkpoint read_checkpoint(parser& p) {
  using analysis::severity;
  if (p.pod<std::uint32_t>("magic") != kMagic) {
    p.fail(201, "file", "not an AdvHunter detector file");
  }
  const auto version = p.pod<std::uint32_t>("format version");
  if (version < kOldestSupported || version > kVersionFleet) {
    p.fail(202, "file",
           "unsupported detector format version " + std::to_string(version));
  }
  if (version >= 5 && p.raw != nullptr) {
    // Verify the whole-file checksum trailer BEFORE trusting any body
    // field: rotted bytes must fence as the checksum failure they are,
    // not as whatever structural error the rot happens to masquerade as
    // (or worse, a bogus length field driving a huge allocation).
    const std::string& raw = *p.raw;
    std::uint32_t ck_magic = 0;
    std::uint32_t ck_crc = 0;
    if (raw.size() >= 8) {
      std::memcpy(&ck_magic, raw.data() + raw.size() - 8, 4);
      std::memcpy(&ck_crc, raw.data() + raw.size() - 4, 4);
    }
    if (raw.size() < 8 || ck_magic != kCkTrailerMagic) {
      p.fail(250, "checksum trailer",
             "missing or corrupt whole-file checksum trailer");
    }
    const std::uint32_t got =
        crc32c(std::string_view(raw).substr(0, raw.size() - 8));
    if (got != ck_crc) {
      p.fail(250, "checksum trailer",
             "whole-file checksum mismatch: stored " + std::to_string(ck_crc) +
                 ", computed " + std::to_string(got) +
                 " — the bytes changed after they were written");
    }
  }

  detector_config cfg;
  const auto n_events = p.pod<std::uint64_t>("event count");
  if (n_events == 0) {
    p.fail(210, "events", "detector monitors zero events");
  }
  if (n_events > 1024) {
    p.fail(204, "events",
           "implausible event count " + std::to_string(n_events));
  }
  for (std::uint64_t e = 0; e < n_events; ++e) {
    const auto raw = p.pod<std::uint32_t>("hpc_event");
    if (raw > static_cast<std::uint32_t>(hpc::hpc_event::llc_store_misses)) {
      p.fail(211, "events",
             "unknown hpc_event value " + std::to_string(raw));
    }
    cfg.events.push_back(static_cast<hpc::hpc_event>(raw));
  }
  for (std::size_t i = 0; i < cfg.events.size(); ++i) {
    for (std::size_t j = i + 1; j < cfg.events.size(); ++j) {
      if (cfg.events[i] == cfg.events[j]) {
        p.rep.add(severity::error, 212,
                  "event " + hpc::to_string(cfg.events[i]),
                  "event configured twice: its evidence would be "
                  "double-counted by the any-event fusion");
      }
    }
  }
  cfg.repeats = static_cast<std::size_t>(p.pod<std::uint64_t>("repeats"));
  if (cfg.repeats == 0) {
    p.rep.add(severity::error, 213, "repeats",
              "measurement repeat count is zero");
  }
  cfg.k_max = static_cast<std::size_t>(p.pod<std::uint64_t>("k_max"));
  if (cfg.k_max == 0) {
    p.rep.add(severity::warning, 216, "k_max",
              "BIC scan upper bound is zero: a drift recalibration under "
              "this config cannot refit any cell");
  }
  cfg.sigma_multiplier = p.pod<double>("sigma multiplier");
  const bool sigma_ok =
      std::isfinite(cfg.sigma_multiplier) && cfg.sigma_multiplier > 0.0;
  if (!sigma_ok) {
    p.rep.add(severity::error, 214, "sigma_multiplier",
              "invalid sigma multiplier");
  }
  if (version >= 2) {
    cfg.flag_unmodeled = p.pod<std::uint8_t>("flag_unmodeled") != 0;
  }
  if (version >= 3) {
    cfg.min_events_for_verdict =
        static_cast<std::size_t>(p.pod<std::uint64_t>("min_events"));
    if (cfg.min_events_for_verdict > n_events) {
      p.rep.add(severity::error, 215, "min_events_for_verdict",
                "evidence floor " +
                    std::to_string(cfg.min_events_for_verdict) +
                    " exceeds the " + std::to_string(n_events) +
                    " stored events: every verdict abstains");
    }
    cfg.flag_on_abstain = p.pod<std::uint8_t>("flag_on_abstain") != 0;
  }

  const auto n_classes = p.pod<std::uint64_t>("class count");
  if (n_classes == 0) {
    p.fail(204, "classes", "detector covers zero classes");
  }
  if (n_classes > 1u << 20) {
    p.fail(204, "classes",
           "implausible class count " + std::to_string(n_classes));
  }
  std::vector<std::vector<std::optional<event_model>>> models(
      n_classes, std::vector<std::optional<event_model>>(n_events));
  for (std::uint64_t cls = 0; cls < n_classes; ++cls) {
    for (std::uint64_t e = 0; e < n_events; ++e) {
      if (p.pod<std::uint8_t>("cell presence byte") == 0) continue;
      event_model em;
      em.threshold = p.pod<double>("cell threshold");
      em.nll_mean = p.pod<double>("cell NLL mean");
      em.nll_stddev = p.pod<double>("cell NLL stddev");
      em.template_size =
          static_cast<std::size_t>(p.pod<std::uint64_t>("template size"));
      const std::string where = cell_name(cls, cfg.events[e]);
      if (em.template_size == 0) {
        p.rep.add(severity::warning, 239, where,
                  "zero template size: the cell's statistics are "
                  "unsupported by any recorded sample");
      }
      const auto order = p.pod<std::uint64_t>("mixture order");
      if (order == 0 || order > kMaxOrder) {
        p.fail(204, where,
               "implausible mixture order " + std::to_string(order));
      }
      std::vector<gmm::component1d> comps(order);
      for (auto& c : comps) {
        c.weight = p.pod<double>("component weight");
        c.mean = p.pod<double>("component mean");
        c.variance = p.pod<double>("component variance");
      }
      if (!validate_cell(comps, em.threshold, em.nll_mean, em.nll_stddev,
                         cfg.sigma_multiplier, where, p.rep)) {
        continue;  // defective cell: recorded, left unmodelled
      }
      em.model = gmm::gmm1d(std::move(comps));
      models[cls][e] = std::move(em);
    }
  }

  checkpoint out{detector::from_parts(std::move(cfg), std::move(models)),
                 {},
                 {}};
  if (version >= 4) {
    const auto has_drift = p.pod<std::uint8_t>("drift presence byte");
    if (has_drift > 1) {
      p.fail(240, "drift state", "invalid drift-section presence byte");
    }
    if (has_drift == 1) {
      out.drift = read_drift_state(p, n_classes, n_events);
      // Coherence between the drift grids and the detector they ride
      // with: quarantine masking reads flags only from the canary grid
      // (core/drift.cpp), and the controller only ever quarantines
      // modelled cells.
      for (std::uint64_t cls = 0; cls < n_classes; ++cls) {
        for (std::uint64_t e = 0; e < n_events; ++e) {
          const auto& events = out.det.config().events;
          const std::string where = cell_name(cls, events[e]);
          if (out.drift->victim[cls][e].quarantined != 0) {
            p.rep.add(severity::error, 246, "victim " + where,
                      "quarantine flag set on a victim-grid cell: the "
                      "controller only quarantines canary cells, so this "
                      "state was not produced by a coherent checkpoint");
          }
          if (out.drift->canary[cls][e].quarantined != 0 &&
              !out.det.model_for(cls, e).has_value()) {
            p.rep.add(severity::warning, 247, "canary " + where,
                      "quarantined canary cell has no fitted model: the "
                      "flag can never be lifted by recalibration");
          }
        }
      }
    }
  }
  if (version >= 5) {
    checkpoint_meta m;
    m.epoch = p.pod<std::uint64_t>("fleet epoch");
    m.shard_index = p.pod<std::uint64_t>("fleet shard index");
    m.shard_count = p.pod<std::uint64_t>("fleet shard count");
    m.content_version = p.pod<std::uint64_t>("fleet content version");
    const auto rb = p.pod<std::uint8_t>("fleet rollback flag");
    if (m.shard_count == 0 || m.shard_index >= m.shard_count || rb > 1 ||
        m.content_version == 0) {
      p.fail(249, "fleet section",
             "inconsistent fleet metadata (shard " +
                 std::to_string(m.shard_index) + "/" +
                 std::to_string(m.shard_count) + ", content version " +
                 std::to_string(m.content_version) + ")");
    }
    m.rollback = rb != 0;
    out.meta = m;
    // Mandatory whole-file checksum trailer: CRC32C over every byte up to
    // here. Shard checkpoints are the fleet's recovery substrate — bytes
    // that rotted on disk (bit flips, torn writes the rename ordering
    // cannot see) must fence as a typed error, never load as a slightly
    // different detector.
    std::size_t prefix_len = 0;
    if (p.raw != nullptr) {
      const auto pos = p.is.tellg();
      prefix_len = pos < 0 ? p.raw->size() : static_cast<std::size_t>(pos);
    }
    const auto ck_magic = p.pod<std::uint32_t>("checksum trailer magic");
    const auto ck_crc = p.pod<std::uint32_t>("checksum trailer crc");
    if (ck_magic != kCkTrailerMagic) {
      p.fail(250, "checksum trailer",
             "missing or corrupt whole-file checksum trailer");
    }
    if (p.raw != nullptr) {
      const std::uint32_t got =
          crc32c(std::string_view(*p.raw).substr(0, prefix_len));
      if (got != ck_crc) {
        p.fail(250, "checksum trailer",
               "whole-file checksum mismatch: stored " +
                   std::to_string(ck_crc) + ", computed " +
                   std::to_string(got) +
                   " — the bytes changed after they were written");
      }
    }
  }
  if (p.is.peek() != std::char_traits<char>::eof()) {
    p.rep.add(severity::warning, 248, "file",
              "trailing bytes after the last section: written by a newer "
              "format revision or padded by a foreign tool");
  }
  return out;
}

}  // namespace

void save_detector(const detector& det, const std::string& path,
                   const std::optional<checkpoint_meta>& meta) {
  std::ostringstream os(std::ios::binary);
  write_detector_body(os, det, meta.has_value() ? kVersionFleet : kVersion);
  write_pod(os, static_cast<std::uint8_t>(0));  // no drift section
  if (meta.has_value()) {
    write_meta(os, *meta);
    write_checksum_trailer(os);
  }
  ADVH_CHECK_MSG(os.good(), "serialisation failed for " + path);
  atomic_write_file(path, os.view());
}

void save_checkpoint(const drift_controller& ctl, const std::string& path,
                     const std::optional<checkpoint_meta>& meta) {
  std::ostringstream os(std::ios::binary);
  write_detector_body(os, ctl.det(), meta.has_value() ? kVersionFleet : kVersion);
  write_pod(os, static_cast<std::uint8_t>(1));
  write_drift_state(os, ctl.state());
  if (meta.has_value()) {
    write_meta(os, *meta);
    write_checksum_trailer(os);
  }
  ADVH_CHECK_MSG(os.good(), "serialisation failed for " + path);
  atomic_write_file(path, os.view());
}

checkpoint load_checkpoint(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe.good()) throw io_error("cannot open " + path);
  probe.close();
  // Buffer the whole file so the v5 checksum trailer can be verified
  // against the exact bytes on disk before any field is trusted.
  const std::string bytes = read_file_bytes(path);
  std::istringstream is(bytes, std::ios::binary);
  analysis::check_report rep;
  rep.target = path;
  parser p{is, path, rep, &bytes};
  checkpoint out = read_checkpoint(p);
  if (rep.has_errors()) {
    // Semantic defects accumulated without aborting the parse: the file
    // is readable but not trustworthy. Same codes the advh_check CLI
    // reports for this file.
    throw io_error(path + ": detector file failed static checks [" +
                   rep.error_codes() + "]\n" + rep.to_text());
  }
  return out;
}

detector load_detector(const std::string& path) {
  return load_checkpoint(path).det;
}

std::optional<checkpoint> lint_checkpoint_file(
    const std::string& path, analysis::check_report& report) {
  report.target = path;
  std::string bytes;
  try {
    bytes = read_file_bytes(path);
  } catch (const io_error&) {
    report.add(analysis::severity::error, 1, "file",
               "cannot open target for reading");
    return std::nullopt;
  }
  std::istringstream is(bytes, std::ios::binary);
  parser p{is, path, report, &bytes};
  std::optional<checkpoint> out;
  try {
    out.emplace(read_checkpoint(p));
  } catch (const io_error&) {
    // Structural defect: the finding is already in the report.
    return std::nullopt;
  }
  if (report.has_errors()) return std::nullopt;
  return out;
}

}  // namespace advh::core
