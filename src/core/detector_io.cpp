#include "core/detector_io.hpp"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace advh::core {

namespace {
constexpr std::uint32_t kMagic = 0x41444554;  // "ADET"
// Version history: 1 = initial format; 2 adds the flag_unmodeled policy
// byte after sigma_multiplier; 3 adds the degraded-input policy
// (min_events_for_verdict u64 + flag_on_abstain u8) after that byte.
// Older files still load (policies default to the fail-closed
// detector_config values).
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kOldestSupported = 1;
// A BIC scan never selects more components than template rows; anything
// beyond this is corrupt bytes, not a plausible fit.
constexpr std::uint64_t kMaxOrder = 4096;

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is, const std::string& path) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is.good()) throw io_error(path + ": truncated detector file");
  return v;
}

std::string cell_name(std::uint64_t cls, hpc::hpc_event e) {
  return "(class " + std::to_string(cls) + ", event " + hpc::to_string(e) + ")";
}

/// Validates deserialized mixture components and summary statistics;
/// detector files are loaded at service start from bytes the process did
/// not produce, so every field the online scorer trusts is range-checked
/// here (before gmm1d's own invariant checks can fire on garbage).
void validate_cell(std::span<const gmm::component1d> comps, double threshold,
                   double nll_mean, double nll_stddev, const std::string& path,
                   std::uint64_t cls, hpc::hpc_event event) {
  const std::string where = path + ": " + cell_name(cls, event);
  if (!std::isfinite(threshold)) {
    throw io_error(where + ": non-finite NLL threshold");
  }
  if (!std::isfinite(nll_mean) || !std::isfinite(nll_stddev) ||
      nll_stddev < 0.0) {
    throw io_error(where + ": invalid template NLL statistics");
  }
  double weight_sum = 0.0;
  for (const auto& comp : comps) {
    if (!std::isfinite(comp.weight) || comp.weight < 0.0) {
      throw io_error(where + ": invalid component weight");
    }
    if (!std::isfinite(comp.mean)) {
      throw io_error(where + ": non-finite component mean");
    }
    if (!std::isfinite(comp.variance) || comp.variance <= 0.0) {
      throw io_error(where + ": non-positive component variance");
    }
    weight_sum += comp.weight;
  }
  if (std::abs(weight_sum - 1.0) > 1e-6) {
    throw io_error(where + ": component weights sum to " +
                   std::to_string(weight_sum) + ", expected 1");
  }
}
}  // namespace

void save_detector(const detector& det, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os(p, std::ios::binary);
  ADVH_CHECK_MSG(os.good(), "cannot open " + path + " for writing");

  const auto& cfg = det.config();
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(cfg.events.size()));
  for (hpc::hpc_event e : cfg.events) {
    write_pod(os, static_cast<std::uint32_t>(e));
  }
  write_pod(os, static_cast<std::uint64_t>(cfg.repeats));
  write_pod(os, static_cast<std::uint64_t>(cfg.k_max));
  write_pod(os, cfg.sigma_multiplier);
  write_pod(os, static_cast<std::uint8_t>(cfg.flag_unmodeled ? 1 : 0));
  write_pod(os, static_cast<std::uint64_t>(cfg.min_events_for_verdict));
  write_pod(os, static_cast<std::uint8_t>(cfg.flag_on_abstain ? 1 : 0));
  write_pod(os, static_cast<std::uint64_t>(det.num_classes()));

  for (std::size_t cls = 0; cls < det.num_classes(); ++cls) {
    for (std::size_t e = 0; e < cfg.events.size(); ++e) {
      const auto& em = det.model_for(cls, e);
      write_pod(os, static_cast<std::uint8_t>(em.has_value() ? 1 : 0));
      if (!em.has_value()) continue;
      write_pod(os, em->threshold);
      write_pod(os, em->nll_mean);
      write_pod(os, em->nll_stddev);
      write_pod(os, static_cast<std::uint64_t>(em->template_size));
      write_pod(os, static_cast<std::uint64_t>(em->model.order()));
      for (const auto& comp : em->model.components()) {
        write_pod(os, comp.weight);
        write_pod(os, comp.mean);
        write_pod(os, comp.variance);
      }
    }
  }
  ADVH_CHECK_MSG(os.good(), "write failed for " + path);
}

detector load_detector(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw io_error("cannot open " + path);
  if (read_pod<std::uint32_t>(is, path) != kMagic) {
    throw io_error(path + " is not an AdvHunter detector file");
  }
  const auto version = read_pod<std::uint32_t>(is, path);
  if (version < kOldestSupported || version > kVersion) {
    throw io_error(path + ": unsupported detector format version " +
                   std::to_string(version));
  }

  detector_config cfg;
  const auto n_events = read_pod<std::uint64_t>(is, path);
  if (n_events == 0) throw io_error(path + ": detector monitors zero events");
  if (n_events > 1024) {
    throw io_error(path + ": implausible event count " +
                   std::to_string(n_events));
  }
  for (std::uint64_t e = 0; e < n_events; ++e) {
    const auto raw = read_pod<std::uint32_t>(is, path);
    if (raw > static_cast<std::uint32_t>(hpc::hpc_event::llc_store_misses)) {
      throw io_error(path + ": unknown hpc_event value " +
                     std::to_string(raw));
    }
    cfg.events.push_back(static_cast<hpc::hpc_event>(raw));
  }
  cfg.repeats = static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
  if (cfg.repeats == 0) {
    throw io_error(path + ": measurement repeat count is zero");
  }
  cfg.k_max = static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
  cfg.sigma_multiplier = read_pod<double>(is, path);
  if (!std::isfinite(cfg.sigma_multiplier) || cfg.sigma_multiplier <= 0.0) {
    throw io_error(path + ": invalid sigma multiplier");
  }
  if (version >= 2) {
    cfg.flag_unmodeled = read_pod<std::uint8_t>(is, path) != 0;
  }
  if (version >= 3) {
    cfg.min_events_for_verdict =
        static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
    if (cfg.min_events_for_verdict > n_events) {
      throw io_error(path + ": min_events_for_verdict " +
                     std::to_string(cfg.min_events_for_verdict) +
                     " exceeds event count");
    }
    cfg.flag_on_abstain = read_pod<std::uint8_t>(is, path) != 0;
  }

  const auto n_classes = read_pod<std::uint64_t>(is, path);
  if (n_classes == 0) throw io_error(path + ": detector covers zero classes");
  if (n_classes > 1u << 20) {
    throw io_error(path + ": implausible class count " +
                   std::to_string(n_classes));
  }
  std::vector<std::vector<std::optional<event_model>>> models(
      n_classes, std::vector<std::optional<event_model>>(n_events));
  for (std::uint64_t cls = 0; cls < n_classes; ++cls) {
    for (std::uint64_t e = 0; e < n_events; ++e) {
      if (read_pod<std::uint8_t>(is, path) == 0) continue;
      event_model em;
      em.threshold = read_pod<double>(is, path);
      em.nll_mean = read_pod<double>(is, path);
      em.nll_stddev = read_pod<double>(is, path);
      em.template_size =
          static_cast<std::size_t>(read_pod<std::uint64_t>(is, path));
      const auto order = read_pod<std::uint64_t>(is, path);
      if (order == 0 || order > kMaxOrder) {
        throw io_error(path + ": " + cell_name(cls, cfg.events[e]) +
                       ": implausible mixture order " + std::to_string(order));
      }
      std::vector<gmm::component1d> comps(order);
      for (auto& c : comps) {
        c.weight = read_pod<double>(is, path);
        c.mean = read_pod<double>(is, path);
        c.variance = read_pod<double>(is, path);
      }
      validate_cell(comps, em.threshold, em.nll_mean, em.nll_stddev, path,
                    cls, cfg.events[e]);
      em.model = gmm::gmm1d(std::move(comps));
      models[cls][e] = std::move(em);
    }
  }
  return detector::from_parts(std::move(cfg), std::move(models));
}

}  // namespace advh::core
