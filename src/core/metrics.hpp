// Binary detection metrics: confusion counts, accuracy, and F1 — the
// numbers Table 2/Table 3 and Figures 4/6 report.
#pragma once

#include <cstddef>

namespace advh::core {

/// Positive class = "adversarial".
class detection_confusion {
 public:
  /// Records one decision: `actual_adversarial` is ground truth,
  /// `flagged` the detector's call.
  void push(bool actual_adversarial, bool flagged) noexcept;

  std::size_t true_positives() const noexcept { return tp_; }
  std::size_t false_positives() const noexcept { return fp_; }
  std::size_t true_negatives() const noexcept { return tn_; }
  std::size_t false_negatives() const noexcept { return fn_; }
  std::size_t total() const noexcept { return tp_ + fp_ + tn_ + fn_; }

  double accuracy() const noexcept;
  double precision() const noexcept;
  double recall() const noexcept;
  double f1() const noexcept;

  void merge(const detection_confusion& other) noexcept;

 private:
  std::size_t tp_ = 0;
  std::size_t fp_ = 0;
  std::size_t tn_ = 0;
  std::size_t fn_ = 0;
};

}  // namespace advh::core
