// Drift-aware detector operation: online baseline-drift monitoring,
// canary probing, and rolling recalibration.
//
// The detector's GMM templates are fitted offline against a fixed
// microarchitectural baseline. In a long-running deployment that baseline
// drifts — DVFS, co-tenant pressure, kernel updates — until every benign
// input looks anomalous (or every adversarial one looks benign). The
// machinery here closes the loop:
//
//   * Per-(class, event) sequential drift detectors run over the online
//     NLL stream: a two-sided tabular CUSUM and a two-sided Page–Hinkley
//     test over standardised NLL residuals, plus a windowed one-sample
//     Kolmogorov–Smirnov check of recent NLLs against the template's
//     stored NLL distribution. Each carries warn and alarm thresholds.
//
//   * Canary probes disambiguate drift from attack: the deployment
//     periodically re-measures a small pinned set of known-benign
//     calibration inputs. Baseline drift moves canary NLLs and victim
//     NLLs together; an attack wave moves only the victim stream. Only
//     canary-stream alarms ever trigger recalibration.
//
//   * Rolling recalibration: when a (class, event) cell alarms on canary
//     evidence it is quarantined — masked out of scoring exactly like an
//     unavailable counter, so verdicts fall back to the fail-closed
//     degraded/abstain policy — and once enough post-alarm canary
//     measurements accumulate in the class's bounded reservoir, the cell's
//     GMM is refitted through the threaded detector::fit path.
//
// Poisoning threat model: the reservoir is the only data that can rewrite
// the detector's notion of "benign", so only canary measurements ever
// enter it — never user traffic — and a canary whose prediction disagrees
// with its pinned label (or whose measurement is degraded) is rejected
// outright. An attacker who controls queries can therefore trip victim
// alarms (telemetry) but cannot steer a refit.
//
// Determinism: the controller is sequential state driven by measurement
// values; measurements are thread-invariant (hpc measurement engine) and
// refits go through detector::fit (bitwise identical at any thread
// count), so the whole monitor -> drift -> recalibrate loop replays
// bit-for-bit at any `threads` value.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/detector.hpp"

namespace advh::core {

/// Thresholds and budgets for the drift layer. All sequential statistics
/// operate on standardised residuals z = (nll - nll_mean) / nll_stddev of
/// the scoring cell, so thresholds are in template-NLL sigma units.
struct drift_policy {
  /// |z| is clamped here before entering any sequential statistic. The
  /// clamp is deliberately tight: NLL grows quadratically in the tail, so
  /// one noisy probe of a legitimate outlier input can spike to z ~ 1e2
  /// and a loose clamp would let a single spike carry a CUSUM most of the
  /// way to alarm. At 8, one spike contributes at most (8 - slack) while
  /// sustained drift — every sample pinned at the clamp — still crosses
  /// the alarm in a handful of samples.
  double z_clamp = 8.0;
  /// CUSUM slack k: persistent residual bias up to this many sigmas per
  /// sample is absorbed. Deliberately generous: a pinned canary set
  /// re-samples the same inputs, whose NLLs sit at a fixed offset from
  /// the template-wide mean, and that offset must not integrate into an
  /// alarm. A genuine baseline step produces clamped residuals (~z_clamp
  /// per sample), so real drift still alarms within a sample or two.
  double cusum_slack = 2.0;
  double cusum_warn = 10.0;
  double cusum_alarm = 20.0;
  /// Page–Hinkley tolerance delta and thresholds. PH references its own
  /// running mean, so it tolerates canary-set bias natively; the alarm
  /// sits above the excursion a high-amplitude (but stationary) canary
  /// cycle can produce, and far below the ~z_clamp-per-sample excursion
  /// of a real baseline step.
  double ph_delta = 0.05;
  double ph_warn = 15.0;
  double ph_alarm = 30.0;
  /// Windowed one-sample KS test: D statistic of the last ks_window NLLs
  /// against N(nll_mean, nll_stddev). Needs at least ks_min_samples
  /// observations before it votes. The alarm bar is high for the same
  /// reason as the CUSUM slack: a biased-but-stationary canary window
  /// yields moderate D, while NLLs under real drift sit so deep in the
  /// reference tail that D approaches 1.
  std::size_t ks_window = 32;
  std::size_t ks_min_samples = 16;
  double ks_warn = 0.5;
  double ks_alarm = 0.9;
  /// A cell's first burn_in observations only estimate the stream's own
  /// mean residual (drift_cell::ref_offset); CUSUM and Page–Hinkley then
  /// accumulate residuals relative to that offset, so a canary set whose
  /// pinned inputs sit at a fixed distance from the template-wide mean
  /// starts from a centred baseline instead of integrating the distance.
  /// 0 disables the correction (residuals centred on the template mean).
  std::size_t burn_in = 8;
  /// Per-class canary reservoir bound (rows of event means).
  std::size_t reservoir_capacity = 64;
  /// Post-alarm canary rows required before a quarantined class refits
  /// (>= 2: detector::fit skips classes with fewer template rows).
  std::size_t min_refit_rows = 8;
};

enum class drift_status : std::uint8_t { stable = 0, warn = 1, alarm = 2 };

/// Serialisable state of one (class, event) drift cell. Pure data — the
/// warn/alarm decision is derived on demand by cell_status, so persisting
/// and restoring a cell is bit-exact.
struct drift_cell {
  /// Mean clamped residual over the burn-in prefix (see
  /// drift_policy::burn_in); subtracted from every later residual.
  double ref_offset = 0.0;
  // Two-sided tabular CUSUM over clamped, offset-centred z.
  double cusum_pos = 0.0;
  double cusum_neg = 0.0;
  // Two-sided Page–Hinkley: running mean of z, cumulative sums and their
  // extrema for the upward and downward tests.
  double ph_mean = 0.0;
  double ph_up = 0.0;
  double ph_up_min = 0.0;
  double ph_down = 0.0;
  double ph_down_max = 0.0;
  std::uint64_t samples = 0;
  /// Most recent NLLs, oldest first (bounded by drift_policy::ks_window).
  std::vector<double> window;
  /// 1 while the cell is quarantined (canary alarm, refit pending).
  std::uint8_t quarantined = 0;
};

/// Advances one cell with an observed NLL against its template reference
/// distribution (nll_mean / nll_stddev from the cell's event_model).
void cell_observe(drift_cell& cell, const drift_policy& policy, double nll,
                  double nll_mean, double nll_stddev);

/// Worst verdict of the cell's sequential detectors (CUSUM and
/// Page–Hinkley) under `policy`. The windowed KS vote needs the cell's
/// reference distribution, so the controller folds it in separately.
drift_status cell_status(const drift_cell& cell, const drift_policy& policy);

/// One-sample Kolmogorov–Smirnov D statistic of `sample` against
/// N(mean, stddev). Exposed for tests; requires a non-empty sample.
double ks_statistic(std::span<const double> sample, double mean,
                    double stddev);

/// The controller's full serialisable state (ADET v4 drift section).
struct drift_state {
  drift_policy policy;
  /// Canary- and victim-stream cells, indexed [class][event].
  std::vector<std::vector<drift_cell>> canary;
  std::vector<std::vector<drift_cell>> victim;
  /// Per-class bounded FIFO of accepted canary measurement rows (event
  /// means in config event order). Only canary traffic ever lands here.
  std::vector<std::vector<std::vector<double>>> reservoir;
  std::uint64_t canaries_accepted = 0;
  std::uint64_t canaries_rejected = 0;
  std::uint64_t victims_scored = 0;
  std::uint64_t quarantined_verdicts = 0;
  std::uint64_t recalibrations = 0;
};

/// Aggregated view for dashboards and the examples' incident reports.
struct drift_report {
  std::size_t cells = 0;  ///< modelled (class, event) cells
  std::size_t canary_warn = 0;
  std::size_t canary_alarm = 0;
  std::size_t victim_warn = 0;
  std::size_t victim_alarm = 0;
  std::size_t quarantined_cells = 0;
  std::uint64_t canaries_accepted = 0;
  std::uint64_t canaries_rejected = 0;
  std::uint64_t victims_scored = 0;
  std::uint64_t quarantined_verdicts = 0;
  std::uint64_t recalibrations = 0;
  /// Some canary cell is in alarm: the baseline itself has moved.
  bool drift_suspected = false;
  /// Some victim cell is in alarm while its canary cell is stable: the
  /// victim NLL stream moved on its own — an attack wave, not drift.
  bool attack_suspected = false;
};

/// Owns a detector plus the drift state and runs the feedback loop. All
/// mutating calls are sequential (one controller per deployment loop);
/// the parallelism lives below, in measurement and refit.
class drift_controller {
 public:
  /// Fresh controller around a fitted detector.
  drift_controller(detector det, drift_policy policy = drift_policy{});

  /// Resumes from a persisted checkpoint (see core/detector_io). The
  /// state's grids must match the detector's class/event dimensions.
  drift_controller(detector det, drift_state state);

  const detector& det() const noexcept { return det_; }
  const drift_policy& policy() const noexcept { return state_.policy; }
  const drift_state& state() const noexcept { return state_; }

  /// Feeds one canary measurement with its pinned ground-truth label.
  /// Returns false — and records a rejection — when the measurement is
  /// untrustworthy: prediction disagrees with the label, or the
  /// measurement is degraded. Accepted rows update the canary drift cells
  /// and enter the class reservoir; a cell crossing its alarm threshold
  /// is quarantined and the class reservoir restarts so only post-alarm
  /// (new-baseline) rows feed the eventual refit.
  bool observe_canary(const hpc::measurement& m, std::size_t label);

  /// Scores one user-traffic measurement. Quarantined cells of the
  /// predicted class are masked out exactly like unavailable counters, so
  /// the verdict follows the fail-closed degraded/abstain policy while a
  /// refit is pending. Victim drift cells update from the scored NLLs —
  /// telemetry only, never recalibration. User traffic never touches the
  /// reservoir.
  verdict score_victim(const hpc::measurement& m);

  /// Measures `x` through `monitor` and scores it via score_victim.
  verdict classify(hpc::hpc_monitor& monitor, const tensor& x);

  /// True when some quarantined class has accumulated enough post-alarm
  /// canary rows to refit.
  bool recalibration_due() const;

  /// Refits every quarantined class whose reservoir holds at least
  /// min_refit_rows rows: the class's quarantined cells get fresh GMMs +
  /// thresholds fitted (via detector::fit, bitwise thread-invariant) from
  /// the reservoir, their drift cells reset against the new reference,
  /// and the quarantine lifts. Returns the classes refitted.
  std::vector<std::size_t> recalibrate(std::size_t threads = 0);

  drift_report report() const;

 private:
  void validate_state_shape() const;

  detector det_;
  drift_state state_;
};

}  // namespace advh::core
