// Detector persistence (the ADET binary format).
//
// The offline phase (template measurement + GMM fitting) is the expensive
// part of AdvHunter; deployments fit once and load the detector at
// service start. Binary format: magic/version, config (events, repeats,
// sigma, verdict policies), then per (class, event) the fitted mixture
// and threshold; format v4 appends an optional drift section carrying the
// drift-controller state (sequential-detector cells, quarantine flags,
// canary reservoirs) so a long-running deployment can checkpoint and
// resume its feedback loop; format v5 appends a fleet section (view
// epoch, shard identity, content version, rollback flag) so replicated
// deployments can fence shipped checkpoints against stale or foreign
// state. Files without fleet metadata are still written as v4, byte for
// byte — v5 only exists when metadata is attached.
//
// Every writer goes through advh::atomic_write_file (write-temp + fsync +
// rename), so a process killed mid-checkpoint leaves either the previous
// complete file or the new complete file — load never sees a torn write.
#pragma once

#include <optional>
#include <string>

#include "analysis/check.hpp"
#include "core/detector.hpp"
#include "core/drift.hpp"

namespace advh::core {

/// Fleet provenance of a shipped checkpoint (ADET v5 fleet section).
/// Receivers fence on every field: a checkpoint from the wrong shard, an
/// earlier view epoch or a non-increasing content version must be
/// rejected whole, never partially applied.
struct checkpoint_meta {
  /// Membership-view epoch the writer held when it published.
  std::uint64_t epoch = 0;
  /// Which (model, class) template shard this file carries.
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  /// Monotone per-shard version; a rollback republishes old parameters
  /// under a *higher* content version with `rollback` set.
  std::uint64_t content_version = 1;
  bool rollback = false;
};

/// Atomically writes the detector. Without `meta` the file is ADET v4,
/// byte-identical to what earlier revisions wrote; with `meta` it is v5
/// with the fleet section appended.
void save_detector(const detector& det, const std::string& path,
                   const std::optional<checkpoint_meta>& meta = std::nullopt);

/// Loads a detector from any supported ADET version, discarding a drift
/// section if one is present. Throws advh::io_error on corrupt bytes.
detector load_detector(const std::string& path);

/// A loaded ADET checkpoint: the detector plus, when the file carried
/// them, the persisted drift-controller state and fleet metadata.
struct checkpoint {
  detector det;
  std::optional<drift_state> drift;
  std::optional<checkpoint_meta> meta;
};

/// Atomically writes the controller's detector and full drift state.
void save_checkpoint(const drift_controller& ctl, const std::string& path,
                     const std::optional<checkpoint_meta>& meta = std::nullopt);

/// Loads a detector together with its drift section (nullopt for files
/// saved by save_detector or by pre-v4 writers).
///
/// Loading runs the full detector-file linter (advh_check's 2xx pass) as
/// a gating pre-pass: a file with any error-severity finding throws
/// io_error whose message embeds the same ADVH-Exxx codes advh_check
/// reports. Warning-severity findings never block a load.
checkpoint load_checkpoint(const std::string& path);

/// Non-throwing linter entry point (the advh_check detector-file pass).
/// Runs exactly the checks load_checkpoint gates on, accumulating every
/// finding into `report` instead of stopping at the first structural
/// defect's io_error. Returns the parsed checkpoint when the file is
/// loadable (possibly with warnings), nullopt when any error-severity
/// finding was recorded — so CLI verdict and loader behaviour agree by
/// construction.
std::optional<checkpoint> lint_checkpoint_file(const std::string& path,
                                               analysis::check_report& report);

}  // namespace advh::core
