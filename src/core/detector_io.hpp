// Detector persistence.
//
// The offline phase (template measurement + GMM fitting) is the expensive
// part of AdvHunter; deployments fit once and load the detector at
// service start. Binary format: magic/version, config (events, repeats,
// sigma), then per (class, event) the fitted mixture and threshold.
#pragma once

#include <string>

#include "core/detector.hpp"

namespace advh::core {

void save_detector(const detector& det, const std::string& path);

detector load_detector(const std::string& path);

}  // namespace advh::core
