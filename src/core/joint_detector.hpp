// Extension detector: one *joint* diagonal-covariance GMM per class over
// all N monitored events, instead of the paper's N independent univariate
// models.
//
// The univariate design cannot see cross-event correlations (e.g. an input
// whose cache-misses and LLC-load-misses are both individually plausible
// but jointly inconsistent). The joint model captures them at the price of
// needing more template data per class. bench_ext_joint compares the two
// on the Table-2 setting.
#pragma once

#include <optional>

#include "core/detector.hpp"
#include "gmm/gmm.hpp"

namespace advh::core {

struct joint_event_model {
  gmm::gmm_diag model;
  double threshold = 0.0;
  double nll_mean = 0.0;
  double nll_stddev = 0.0;
  std::size_t template_size = 0;
};

struct joint_verdict {
  std::size_t predicted = 0;
  double nll = 0.0;
  bool adversarial = false;
};

class joint_detector {
 public:
  /// Fits one diagonal-covariance GMM per class over the full event rows
  /// of the template, with BIC order selection and a 3-sigma threshold
  /// over the template NLLs (the same rule as the per-event detector).
  static joint_detector fit(const benign_template& tpl,
                            const detector_config& cfg);

  joint_verdict score(std::size_t predicted_class,
                      std::span<const double> mean_counts) const;

  joint_verdict classify(hpc::hpc_monitor& monitor, const tensor& x) const;

  const detector_config& config() const noexcept { return cfg_; }
  std::size_t num_classes() const noexcept { return models_.size(); }
  const std::optional<joint_event_model>& model_for(std::size_t cls) const;

 private:
  joint_detector() = default;

  detector_config cfg_;
  std::vector<std::optional<joint_event_model>> models_;
};

}  // namespace advh::core
