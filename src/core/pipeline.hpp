// Experiment orchestration shared by the examples and every bench binary:
// scenario preparation (dataset synthesis + model training with on-disk
// caching) and detection-evaluation loops.
#pragma once

#include <memory>
#include <string>

#include "core/detector.hpp"
#include "core/drift.hpp"
#include "core/metrics.hpp"
#include "data/scenarios.hpp"
#include "hpc/monitor.hpp"
#include "track/tracker.hpp"

namespace advh::core {

/// A fully prepared evaluation scenario: data, trained model, accuracy.
struct scenario_runtime {
  data::scenario_spec spec;
  data::dataset train;
  data::dataset test;
  std::unique_ptr<nn::model> net;
  double clean_accuracy = 0.0;  ///< test-set accuracy (Table 1 column)
};

/// Synthesises the scenario's dataset and trains its model (or loads a
/// cached state file from `cache_dir` when one exists). Deterministic in
/// the scenario spec and `seed`. Before the runtime is handed out, the
/// model passes the static verifier (src/analysis) and
/// analysis::verification_error is raised on a broken graph; `verify`
/// false (the tools' --no-verify escape hatch) skips that gate.
scenario_runtime prepare_scenario(data::scenario_id id,
                                  const std::string& cache_dir = "advh_models",
                                  std::uint64_t seed = 1234,
                                  bool verify = true);

/// Draws up to `per_class` validation examples of every class from `d`
/// (in dataset order after a seeded shuffle) and measures them into a
/// benign template. Misclassified validation images are skipped; when a
/// class's pool runs dry before `per_class` samples are accepted the
/// shortfall is logged and recorded on the returned template
/// (benign_template::underfilled_classes). Measurement runs through
/// hpc_monitor::measure_batch in deterministic chunks, so the template is
/// bitwise identical at any `threads` value (0 = ADVH_THREADS / hardware).
benign_template collect_template(hpc::hpc_monitor& monitor,
                                 const detector_config& cfg,
                                 const data::dataset& d, std::size_t per_class,
                                 std::uint64_t seed, std::size_t threads = 0);

/// Measures and scores a set of inputs with ground truth "adversarial or
/// not", accumulating one confusion matrix per configured event plus the
/// any-event fusion.
struct detection_eval {
  std::vector<detection_confusion> per_event;
  detection_confusion fused;
  /// Inputs whose predicted class had no fitted model; their fused
  /// verdict is the flag_unmodeled policy rather than measured evidence.
  std::size_t unmodeled = 0;
  /// Inputs scored with at least one configured event unavailable
  /// (verdict::degraded).
  std::size_t degraded = 0;
  /// Inputs where the detector abstained (verdict::abstained); their
  /// fused verdict is the flag_on_abstain policy.
  std::size_t abstained = 0;
  /// Inputs whose predicted class had at least one drift-quarantined
  /// (class, event) cell masked out of scoring (drift-aware overload
  /// only; always 0 for the plain-detector overload).
  std::size_t quarantined = 0;
};

/// Scores `inputs` (each a batch-of-one tensor); `is_adversarial` is the
/// shared ground-truth flag for the whole set. Measurement is batched
/// (bitwise identical at any `threads` value).
void evaluate_inputs(const detector& det, hpc::hpc_monitor& monitor,
                     std::span<const tensor> inputs, bool is_adversarial,
                     detection_eval& eval, std::size_t threads = 0);

/// Drift-aware variant: scores through the controller so quarantined
/// cells are masked and victim drift telemetry advances. The controller's
/// canary state is untouched — user traffic never feeds the reservoir.
void evaluate_inputs(drift_controller& ctl, hpc::hpc_monitor& monitor,
                     std::span<const tensor> inputs, bool is_adversarial,
                     detection_eval& eval, std::size_t threads = 0);

/// One query of an identified client stream (stateful-defense evaluation).
struct tagged_query {
  std::uint64_t client = 0;  ///< 0 = anonymous (tracker is bypassed)
  tensor input;              ///< batch-of-one tensor
  bool is_adversarial = false;
};

/// evaluate_tagged outcome: the per-verdict confusion statistics plus the
/// stateful-defense counters for the replayed stream.
struct tracked_eval {
  detection_eval eval;
  /// Queries short-circuited because their client was already banned —
  /// never measured, never scored (the stateful defense's whole point:
  /// a banned campaign stops costing PMU time).
  std::size_t banned_skipped = 0;
  /// Queries observed while their client was elevated (not yet banned).
  std::size_t escalated = 0;
};

/// Replays an identified query stream through the stateful defense and
/// the detector. Phase 1 walks `queries` in order, feeding each
/// (client, input) to the tracker — escalation/ban decisions are a pure
/// function of the stream. Phase 2 batch-measures the queries that were
/// not banned at observation time (bitwise thread-invariant), scores them
/// against `det`, and feeds each measurement's trace sketch back to the
/// tracker in stream order. Deterministic at any `threads` value.
tracked_eval evaluate_tagged(const detector& det, hpc::hpc_monitor& monitor,
                             track::query_tracker& tracker,
                             std::span<const tagged_query> queries,
                             std::size_t threads = 0);

/// A pinned set of known-benign calibration inputs with their
/// ground-truth labels, re-measured periodically as drift canaries.
struct canary_set {
  std::vector<tensor> inputs;  ///< each a batch-of-one tensor
  std::vector<std::size_t> labels;
};

/// Draws up to `per_class` correctly-classified examples of every class
/// from `d` (seeded shuffle, dataset order within a class). Deterministic
/// in (d, per_class, seed). Canaries must be inputs the deployment can
/// vouch for, so misclassified examples are skipped up front.
canary_set pick_canaries(nn::model& net, const data::dataset& d,
                         std::size_t per_class, std::uint64_t seed);

/// Measures the whole canary set through `monitor` (batched, bitwise
/// thread-invariant) and feeds every measurement to ctl.observe_canary.
/// Returns the number of canaries the controller accepted into its
/// reservoirs; the remainder were rejected by the poisoning guard.
std::size_t probe_canaries(drift_controller& ctl, hpc::hpc_monitor& monitor,
                           const canary_set& canaries, std::size_t threads = 0);

}  // namespace advh::core
