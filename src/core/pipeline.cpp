#include "core/pipeline.hpp"

#include <algorithm>
#include <filesystem>

#include "analysis/verifier.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "hpc/trace_sketch.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace advh::core {

namespace {

std::string cache_path(const std::string& cache_dir,
                       const data::scenario_spec& spec) {
  return cache_dir + "/" + spec.label + "_" + to_string(spec.arch) + ".advh";
}

}  // namespace

scenario_runtime prepare_scenario(data::scenario_id id,
                                  const std::string& cache_dir,
                                  std::uint64_t seed, bool verify) {
  scenario_runtime rt;
  rt.spec = data::get_scenario(id);

  rt.train = data::make_synthetic(rt.spec.dataset_spec, rt.spec.train_per_class);
  // Test/validation pool drawn from an independent sample stream of the
  // same task (same class prototypes, fresh jitter draws).
  auto test_spec = rt.spec.dataset_spec;
  test_spec.sample_seed = 1;
  rt.test = data::make_synthetic(test_spec, rt.spec.test_per_class);

  rt.net = nn::make_model(rt.spec.arch, rt.train.example_shape(),
                          rt.train.num_classes, seed);

  // Gate the run on the static verifier *before* training: a broken graph
  // fails in seconds here instead of after minutes of training (and the
  // load path re-verifies the deserialized parameters).
  if (verify) analysis::ensure_verified(*rt.net, rt.spec.label);

  const std::string path = cache_path(cache_dir, rt.spec);
  if (nn::is_state_file(path)) {
    log::info(rt.spec.label, ": loading cached model from ", path);
    nn::load_state(*rt.net, path, verify);
  } else {
    log::info(rt.spec.label, ": training ", to_string(rt.spec.arch), " (",
              rt.train.size(), " examples, ", rt.spec.train_epochs,
              " epochs)");
    nn::train_config cfg;
    cfg.epochs = rt.spec.train_epochs;
    cfg.shuffle_seed = seed ^ 0xbeefULL;
    cfg.on_epoch = [&](std::size_t epoch, double loss, double acc) {
      log::info(rt.spec.label, ": epoch ", epoch, " loss ", loss, " acc ",
                acc);
    };
    nn::train_classifier(*rt.net, rt.train.images, rt.train.labels, cfg);
    nn::save_state(*rt.net, path);
  }

  rt.clean_accuracy = rt.net->accuracy(rt.test.images, rt.test.labels);
  log::info(rt.spec.label, ": clean test accuracy ", rt.clean_accuracy);
  return rt;
}

benign_template collect_template(hpc::hpc_monitor& monitor,
                                 const detector_config& cfg,
                                 const data::dataset& d, std::size_t per_class,
                                 std::uint64_t seed, std::size_t threads) {
  ADVH_CHECK_MSG(!cfg.events.empty(), "detector needs at least one event");
  benign_template tpl(d.num_classes, cfg.events.size());
  tpl.set_requested_per_class(per_class);
  rng gen(seed);
  for (std::size_t cls = 0; cls < d.num_classes; ++cls) {
    auto pool = d.indices_of_class(cls);
    gen.shuffle(pool);
    // Measure candidates in chunks of the outstanding request. The chunk
    // boundaries — and therefore the monitor's noise-stream consumption —
    // depend only on which predictions matched, never on thread count.
    std::size_t accepted = 0;
    std::size_t cursor = 0;
    while (accepted < per_class && cursor < pool.size()) {
      const std::size_t take =
          std::min(per_class - accepted, pool.size() - cursor);
      std::vector<tensor> batch;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(nn::single_example(d.images, pool[cursor + i]));
      }
      const auto ms =
          monitor.measure_batch(batch, cfg.events, cfg.repeats, threads);
      for (const auto& m : ms) {
        // A misclassified "clean" image is not representative of its
        // category's computational behaviour; skip it.
        if (m.predicted != cls) continue;
        tpl.add_row(cls, m.mean_counts);
        ++accepted;
      }
      cursor += take;
    }
    if (accepted < per_class) {
      log::warn("template class ", cls, ": accepted ", accepted, " of ",
                per_class, " requested samples (pool of ", pool.size(),
                " exhausted); detector quality degrades below ~2 rows");
    }
  }
  return tpl;
}

void evaluate_inputs(const detector& det, hpc::hpc_monitor& monitor,
                     std::span<const tensor> inputs, bool is_adversarial,
                     detection_eval& eval, std::size_t threads) {
  if (eval.per_event.size() != det.config().events.size()) {
    eval.per_event.assign(det.config().events.size(), detection_confusion{});
  }
  const auto verdicts = det.classify_batch(monitor, inputs, threads);
  for (const verdict& v : verdicts) {
    for (std::size_t e = 0; e < v.flagged.size(); ++e) {
      eval.per_event[e].push(is_adversarial, v.flagged[e]);
    }
    eval.fused.push(is_adversarial, v.adversarial_any);
    if (!v.modeled) ++eval.unmodeled;
    if (v.degraded) ++eval.degraded;
    if (v.abstained) ++eval.abstained;
  }
}

void evaluate_inputs(drift_controller& ctl, hpc::hpc_monitor& monitor,
                     std::span<const tensor> inputs, bool is_adversarial,
                     detection_eval& eval, std::size_t threads) {
  const auto& cfg = ctl.det().config();
  if (eval.per_event.size() != cfg.events.size()) {
    eval.per_event.assign(cfg.events.size(), detection_confusion{});
  }
  const auto ms =
      monitor.measure_batch(inputs, cfg.events, cfg.repeats, threads);
  for (const auto& m : ms) {
    // The controller only counts quarantine-masked verdicts in aggregate;
    // diff the counter around the call to attribute it to this input.
    const std::uint64_t before = ctl.state().quarantined_verdicts;
    const verdict v = ctl.score_victim(m);
    for (std::size_t e = 0; e < v.flagged.size(); ++e) {
      eval.per_event[e].push(is_adversarial, v.flagged[e]);
    }
    eval.fused.push(is_adversarial, v.adversarial_any);
    if (!v.modeled) ++eval.unmodeled;
    if (v.degraded) ++eval.degraded;
    if (v.abstained) ++eval.abstained;
    if (ctl.state().quarantined_verdicts != before) ++eval.quarantined;
  }
}

tracked_eval evaluate_tagged(const detector& det, hpc::hpc_monitor& monitor,
                             track::query_tracker& tracker,
                             std::span<const tagged_query> queries,
                             std::size_t threads) {
  tracked_eval out;
  const auto& cfg = det.config();
  out.eval.per_event.assign(cfg.events.size(), detection_confusion{});

  // Phase 1: walk the stream in order, feeding every identified query to
  // the tracker. A query observed while its client is banned is dropped
  // here — it never reaches the measurement path, which is the stateful
  // defense's point: a banned campaign stops costing PMU time.
  std::vector<std::size_t> measured;
  measured.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const tagged_query& q = queries[i];
    if (q.client == 0) {
      measured.push_back(i);
      continue;
    }
    const track::track_decision d = tracker.observe(q.client, q.input);
    if (d.level == track::escalation::banned) {
      ++out.banned_skipped;
      continue;
    }
    if (d.level == track::escalation::elevated) ++out.escalated;
    measured.push_back(i);
  }

  // Phase 2: batch-measure the survivors (bitwise thread-invariant),
  // score them, and feed each trace sketch back in stream order.
  std::vector<tensor> inputs;
  inputs.reserve(measured.size());
  for (std::size_t i : measured) inputs.push_back(queries[i].input);
  const auto ms =
      monitor.measure_batch(inputs, cfg.events, cfg.repeats, threads);
  for (std::size_t k = 0; k < ms.size(); ++k) {
    const tagged_query& q = queries[measured[k]];
    const auto& m = ms[k];
    const verdict v = det.score(m.predicted, m.mean_counts, m.q.available);
    for (std::size_t e = 0; e < v.flagged.size(); ++e) {
      out.eval.per_event[e].push(q.is_adversarial, v.flagged[e]);
    }
    out.eval.fused.push(q.is_adversarial, v.adversarial_any);
    if (!v.modeled) ++out.eval.unmodeled;
    if (v.degraded) ++out.eval.degraded;
    if (v.abstained) ++out.eval.abstained;
    if (q.client != 0) {
      tracker.record_trace(q.client, hpc::sketch_measurement(m));
    }
  }
  return out;
}

canary_set pick_canaries(nn::model& net, const data::dataset& d,
                         std::size_t per_class, std::uint64_t seed) {
  canary_set canaries;
  rng gen(seed);
  for (std::size_t cls = 0; cls < d.num_classes; ++cls) {
    auto pool = d.indices_of_class(cls);
    gen.shuffle(pool);
    std::size_t accepted = 0;
    for (std::size_t idx : pool) {
      if (accepted == per_class) break;
      tensor x = nn::single_example(d.images, idx);
      if (net.predict_one(x) != cls) continue;
      canaries.inputs.push_back(std::move(x));
      canaries.labels.push_back(cls);
      ++accepted;
    }
    if (accepted < per_class) {
      log::warn("canary class ", cls, ": pinned ", accepted, " of ",
                per_class, " requested probes (pool exhausted)");
    }
  }
  return canaries;
}

std::size_t probe_canaries(drift_controller& ctl, hpc::hpc_monitor& monitor,
                           const canary_set& canaries, std::size_t threads) {
  ADVH_CHECK_MSG(canaries.inputs.size() == canaries.labels.size(),
                 "canary inputs and labels must pair up");
  const auto& cfg = ctl.det().config();
  const auto ms = monitor.measure_batch(canaries.inputs, cfg.events,
                                        cfg.repeats, threads);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    if (ctl.observe_canary(ms[i], canaries.labels[i])) ++accepted;
  }
  return accepted;
}

}  // namespace advh::core
