#include "core/roc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace advh::core {

double roc_curve::tpr_at_fpr(double max_fpr) const {
  double best = 0.0;
  for (const auto& p : points) {
    if (p.fpr <= max_fpr) best = std::max(best, p.tpr);
  }
  return best;
}

roc_curve compute_roc(std::span<const double> clean_scores,
                      std::span<const double> adversarial_scores) {
  ADVH_CHECK_MSG(!clean_scores.empty() && !adversarial_scores.empty(),
                 "ROC needs both populations");

  // Candidate thresholds: every observed score (plus sentinels).
  std::vector<double> thresholds(clean_scores.begin(), clean_scores.end());
  thresholds.insert(thresholds.end(), adversarial_scores.begin(),
                    adversarial_scores.end());
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  roc_curve curve;
  const auto n_clean = static_cast<double>(clean_scores.size());
  const auto n_adv = static_cast<double>(adversarial_scores.size());

  auto rate_above = [](std::span<const double> xs, double t) {
    std::size_t n = 0;
    for (double x : xs) {
      if (x > t) ++n;
    }
    return static_cast<double>(n);
  };

  // Descending threshold -> ascending FPR.
  for (auto it = thresholds.rbegin(); it != thresholds.rend(); ++it) {
    roc_point p;
    p.threshold = *it;
    p.fpr = rate_above(clean_scores, *it) / n_clean;
    p.tpr = rate_above(adversarial_scores, *it) / n_adv;
    curve.points.push_back(p);
  }
  // Sentinel endpoints (flag everything / nothing).
  curve.points.insert(curve.points.begin(),
                      roc_point{thresholds.back() + 1.0, 0.0, 0.0});
  curve.points.push_back(roc_point{thresholds.front() - 1.0, 1.0, 1.0});

  // Trapezoidal AUC over the FPR axis.
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    const auto& a = curve.points[i - 1];
    const auto& b = curve.points[i];
    auc += (b.fpr - a.fpr) * 0.5 * (a.tpr + b.tpr);
  }
  curve.auc = auc;
  return curve;
}

}  // namespace advh::core
