#include "core/drift.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace advh::core {

namespace {

/// Guards the standardisation against degenerate (constant-NLL) template
/// cells; residuals are then measured in absolute NLL units.
constexpr double kMinSigma = 1e-12;

/// Standard normal CDF.
double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

drift_status status_of(double stat, double warn, double alarm) {
  if (stat >= alarm) return drift_status::alarm;
  if (stat >= warn) return drift_status::warn;
  return drift_status::stable;
}

drift_status worst(drift_status a, drift_status b) {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a : b;
}

void check_policy(const drift_policy& p) {
  ADVH_CHECK_MSG(p.z_clamp > 0.0, "z_clamp must be positive");
  ADVH_CHECK_MSG(p.cusum_slack >= 0.0, "cusum_slack must be non-negative");
  ADVH_CHECK_MSG(p.cusum_warn > 0.0 && p.cusum_alarm >= p.cusum_warn,
                 "cusum thresholds must satisfy 0 < warn <= alarm");
  ADVH_CHECK_MSG(p.ph_delta >= 0.0, "ph_delta must be non-negative");
  ADVH_CHECK_MSG(p.ph_warn > 0.0 && p.ph_alarm >= p.ph_warn,
                 "Page-Hinkley thresholds must satisfy 0 < warn <= alarm");
  ADVH_CHECK_MSG(p.ks_window >= 2 && p.ks_min_samples >= 2 &&
                     p.ks_min_samples <= p.ks_window,
                 "KS window must hold >= 2 samples and cover ks_min_samples");
  ADVH_CHECK_MSG(p.ks_warn > 0.0 && p.ks_warn <= p.ks_alarm &&
                     p.ks_alarm <= 1.0,
                 "KS thresholds must satisfy 0 < warn <= alarm <= 1");
  ADVH_CHECK_MSG(p.min_refit_rows >= 2,
                 "min_refit_rows must be >= 2 (a GMM needs two rows)");
  ADVH_CHECK_MSG(p.reservoir_capacity >= p.min_refit_rows,
                 "reservoir_capacity must hold at least min_refit_rows rows");
}

}  // namespace

double ks_statistic(std::span<const double> sample, double mean,
                    double stddev) {
  ADVH_CHECK_MSG(!sample.empty(), "KS statistic needs a non-empty sample");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double sigma = std::max(stddev, kMinSigma);
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = normal_cdf((sorted[i] - mean) / sigma);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(f - lo, hi - f));
  }
  return d;
}

void cell_observe(drift_cell& cell, const drift_policy& policy, double nll,
                  double nll_mean, double nll_stddev) {
  const double sigma = std::max(nll_stddev, kMinSigma);
  const double z =
      std::clamp((nll - nll_mean) / sigma, -policy.z_clamp, policy.z_clamp);

  cell.samples += 1;
  if (cell.samples <= policy.burn_in) {
    // Burn-in: learn the stream's own centre instead of accumulating
    // evidence; a pinned canary set's fixed offset from the template-wide
    // mean must not read as drift.
    cell.ref_offset += (z - cell.ref_offset) / static_cast<double>(cell.samples);
  } else {
    const double zc = z - cell.ref_offset;
    cell.cusum_pos = std::max(0.0, cell.cusum_pos + zc - policy.cusum_slack);
    cell.cusum_neg = std::max(0.0, cell.cusum_neg - zc - policy.cusum_slack);

    const double n = static_cast<double>(cell.samples - policy.burn_in);
    cell.ph_mean += (zc - cell.ph_mean) / n;
    cell.ph_up += zc - cell.ph_mean - policy.ph_delta;
    cell.ph_up_min = std::min(cell.ph_up_min, cell.ph_up);
    cell.ph_down += zc - cell.ph_mean + policy.ph_delta;
    cell.ph_down_max = std::max(cell.ph_down_max, cell.ph_down);
  }

  cell.window.push_back(nll);
  if (cell.window.size() > policy.ks_window) {
    cell.window.erase(cell.window.begin());
  }
}

drift_status cell_status(const drift_cell& cell, const drift_policy& policy) {
  const double cusum = std::max(cell.cusum_pos, cell.cusum_neg);
  drift_status s = status_of(cusum, policy.cusum_warn, policy.cusum_alarm);

  const double ph = std::max(cell.ph_up - cell.ph_up_min,
                             cell.ph_down_max - cell.ph_down);
  s = worst(s, status_of(ph, policy.ph_warn, policy.ph_alarm));
  return s;
}

namespace {

/// Full three-detector verdict for a cell whose reference distribution is
/// known (the controller always has it via the event model).
drift_status cell_status_with_reference(const drift_cell& cell,
                                        const drift_policy& policy,
                                        double nll_mean, double nll_stddev) {
  drift_status s = cell_status(cell, policy);
  if (cell.window.size() >= policy.ks_min_samples) {
    const double d = ks_statistic(cell.window, nll_mean, nll_stddev);
    s = worst(s, status_of(d, policy.ks_warn, policy.ks_alarm));
  }
  return s;
}

}  // namespace

drift_controller::drift_controller(detector det, drift_policy policy)
    : det_(std::move(det)) {
  check_policy(policy);
  state_.policy = policy;
  const std::size_t classes = det_.num_classes();
  const std::size_t events = det_.config().events.size();
  state_.canary.assign(classes, std::vector<drift_cell>(events));
  state_.victim.assign(classes, std::vector<drift_cell>(events));
  state_.reservoir.assign(classes, {});
}

drift_controller::drift_controller(detector det, drift_state state)
    : det_(std::move(det)), state_(std::move(state)) {
  check_policy(state_.policy);
  validate_state_shape();
}

void drift_controller::validate_state_shape() const {
  const std::size_t classes = det_.num_classes();
  const std::size_t events = det_.config().events.size();
  ADVH_CHECK_MSG(state_.canary.size() == classes &&
                     state_.victim.size() == classes &&
                     state_.reservoir.size() == classes,
                 "drift state class dimension mismatch");
  for (std::size_t cls = 0; cls < classes; ++cls) {
    ADVH_CHECK_MSG(state_.canary[cls].size() == events &&
                       state_.victim[cls].size() == events,
                   "drift state event dimension mismatch");
    for (const auto& row : state_.reservoir[cls]) {
      ADVH_CHECK_MSG(row.size() == events,
                     "reservoir row width must equal event count");
    }
  }
}

bool drift_controller::observe_canary(const hpc::measurement& m,
                                      std::size_t label) {
  ADVH_CHECK(label < det_.num_classes());
  ADVH_CHECK_MSG(m.mean_counts.size() == det_.config().events.size(),
                 "measurement width must equal event count");
  // Poisoning guard: the reservoir rewrites the detector's notion of
  // benign, so only a canary that still behaves like its pinned label —
  // correct prediction, fully trusted measurement — may contribute.
  if (m.predicted != label || m.q.degraded()) {
    state_.canaries_rejected += 1;
    return false;
  }

  const std::size_t events = det_.config().events.size();
  auto& cells = state_.canary[label];
  bool class_was_quarantined = false;
  for (const drift_cell& c : cells) {
    class_was_quarantined = class_was_quarantined || c.quarantined != 0;
  }

  for (std::size_t e = 0; e < events; ++e) {
    const auto& em = det_.model_for(label, e);
    if (!em.has_value()) continue;
    drift_cell& cell = cells[e];
    cell_observe(cell, state_.policy, em->model.nll(m.mean_counts[e]),
                 em->nll_mean, em->nll_stddev);
    if (cell.quarantined == 0 &&
        cell_status_with_reference(cell, state_.policy, em->nll_mean,
                                   em->nll_stddev) == drift_status::alarm) {
      cell.quarantined = 1;
      if (!class_was_quarantined) {
        // First alarm of this episode: the rows gathered so far describe
        // the *old* baseline — restart the reservoir so the refit sees
        // only post-alarm (new-baseline) canaries.
        state_.reservoir[label].clear();
        class_was_quarantined = true;
      }
    }
  }

  auto& pool = state_.reservoir[label];
  pool.push_back(m.mean_counts);
  if (pool.size() > state_.policy.reservoir_capacity) {
    pool.erase(pool.begin());
  }
  state_.canaries_accepted += 1;
  return true;
}

verdict drift_controller::score_victim(const hpc::measurement& m) {
  ADVH_CHECK(m.predicted < det_.num_classes());
  ADVH_CHECK_MSG(m.mean_counts.size() == det_.config().events.size(),
                 "measurement width must equal event count");
  const std::size_t events = det_.config().events.size();

  // Quarantined cells are masked exactly like unavailable counters, so
  // the verdict inherits the fail-closed degraded/abstain policy from the
  // resilience layer while the refit is pending.
  std::vector<std::uint8_t> mask(events, 1);
  for (std::size_t e = 0; e < events; ++e) {
    if (!m.q.event_available(e)) mask[e] = 0;
  }
  bool quarantine_masked = false;
  for (std::size_t e = 0; e < events; ++e) {
    if (state_.canary[m.predicted][e].quarantined != 0 && mask[e] != 0) {
      mask[e] = 0;
      quarantine_masked = true;
    }
  }

  verdict v = det_.score(m.predicted, m.mean_counts, mask);

  // Victim-stream telemetry: the attack-vs-drift disambiguation needs the
  // victim NLL stream tracked with the same machinery. Never feeds the
  // reservoir and never triggers recalibration.
  for (std::size_t e = 0; e < events; ++e) {
    if (mask[e] == 0) continue;
    const auto& em = det_.model_for(m.predicted, e);
    if (!em.has_value()) continue;
    cell_observe(state_.victim[m.predicted][e], state_.policy, v.nll[e],
                 em->nll_mean, em->nll_stddev);
  }

  state_.victims_scored += 1;
  if (quarantine_masked) state_.quarantined_verdicts += 1;
  return v;
}

verdict drift_controller::classify(hpc::hpc_monitor& monitor, const tensor& x) {
  return score_victim(
      monitor.measure(x, det_.config().events, det_.config().repeats));
}

bool drift_controller::recalibration_due() const {
  for (std::size_t cls = 0; cls < det_.num_classes(); ++cls) {
    bool quarantined = false;
    for (const drift_cell& c : state_.canary[cls]) {
      quarantined = quarantined || c.quarantined != 0;
    }
    if (quarantined &&
        state_.reservoir[cls].size() >= state_.policy.min_refit_rows) {
      return true;
    }
  }
  return false;
}

std::vector<std::size_t> drift_controller::recalibrate(std::size_t threads) {
  std::vector<std::size_t> due;
  for (std::size_t cls = 0; cls < det_.num_classes(); ++cls) {
    bool quarantined = false;
    for (const drift_cell& c : state_.canary[cls]) {
      quarantined = quarantined || c.quarantined != 0;
    }
    if (quarantined &&
        state_.reservoir[cls].size() >= state_.policy.min_refit_rows) {
      due.push_back(cls);
    }
  }
  if (due.empty()) return due;

  const std::size_t events = det_.config().events.size();
  benign_template tpl(det_.num_classes(), events);
  for (const std::size_t cls : due) {
    for (const auto& row : state_.reservoir[cls]) tpl.add_row(cls, row);
  }
  // The refit rides the same threaded fit path as the offline phase, so
  // the recalibrated bank is bitwise identical at any thread count — but
  // with k_max forced to 1: the reservoir holds repeated probes of a few
  // pinned inputs, and a multi-component fit would place a tight mode on
  // each probe input and assign every other benign input an enormous
  // NLL. A pooled single Gaussian spans the canaries' cross-input spread
  // instead.
  detector_config refit_cfg = det_.config();
  refit_cfg.k_max = 1;
  const detector refit = detector::fit(tpl, refit_cfg, threads);

  std::vector<std::vector<std::optional<event_model>>> grid(
      det_.num_classes(), std::vector<std::optional<event_model>>(events));
  for (std::size_t cls = 0; cls < det_.num_classes(); ++cls) {
    for (std::size_t e = 0; e < events; ++e) {
      grid[cls][e] = det_.model_for(cls, e);
    }
  }
  for (const std::size_t cls : due) {
    for (std::size_t e = 0; e < events; ++e) {
      drift_cell& cell = state_.canary[cls][e];
      if (cell.quarantined == 0) continue;
      const auto& fresh = refit.model_for(cls, e);
      ADVH_CHECK_MSG(fresh.has_value(),
                     "refit produced no model for a quarantined cell");
      grid[cls][e] = fresh;
      // The reference distribution changed: both streams restart against
      // the new baseline.
      cell = drift_cell{};
      state_.victim[cls][e] = drift_cell{};
    }
  }
  det_ = detector::from_parts(det_.config(), std::move(grid));
  state_.recalibrations += due.size();
  return due;
}

drift_report drift_controller::report() const {
  drift_report r;
  r.canaries_accepted = state_.canaries_accepted;
  r.canaries_rejected = state_.canaries_rejected;
  r.victims_scored = state_.victims_scored;
  r.quarantined_verdicts = state_.quarantined_verdicts;
  r.recalibrations = state_.recalibrations;

  for (std::size_t cls = 0; cls < det_.num_classes(); ++cls) {
    for (std::size_t e = 0; e < det_.config().events.size(); ++e) {
      const auto& em = det_.model_for(cls, e);
      if (!em.has_value()) continue;
      r.cells += 1;
      const drift_status canary = cell_status_with_reference(
          state_.canary[cls][e], state_.policy, em->nll_mean, em->nll_stddev);
      const drift_status victim = cell_status_with_reference(
          state_.victim[cls][e], state_.policy, em->nll_mean, em->nll_stddev);
      if (canary == drift_status::warn) r.canary_warn += 1;
      if (canary == drift_status::alarm) r.canary_alarm += 1;
      if (victim == drift_status::warn) r.victim_warn += 1;
      if (victim == drift_status::alarm) r.victim_alarm += 1;
      const bool quarantined = state_.canary[cls][e].quarantined != 0;
      if (quarantined) r.quarantined_cells += 1;
      if (canary == drift_status::alarm || quarantined) {
        r.drift_suspected = true;
      }
      if (victim == drift_status::alarm && canary != drift_status::alarm &&
          !quarantined) {
        r.attack_suspected = true;
      }
    }
  }
  return r;
}

}  // namespace advh::core
