#include "core/metrics.hpp"

namespace advh::core {

void detection_confusion::push(bool actual_adversarial, bool flagged) noexcept {
  if (actual_adversarial) {
    if (flagged) {
      ++tp_;
    } else {
      ++fn_;
    }
  } else {
    if (flagged) {
      ++fp_;
    } else {
      ++tn_;
    }
  }
}

double detection_confusion::accuracy() const noexcept {
  const std::size_t n = total();
  return n ? static_cast<double>(tp_ + tn_) / static_cast<double>(n) : 0.0;
}

double detection_confusion::precision() const noexcept {
  const std::size_t denom = tp_ + fp_;
  return denom ? static_cast<double>(tp_) / static_cast<double>(denom) : 0.0;
}

double detection_confusion::recall() const noexcept {
  const std::size_t denom = tp_ + fn_;
  return denom ? static_cast<double>(tp_) / static_cast<double>(denom) : 0.0;
}

double detection_confusion::f1() const noexcept {
  const double p = precision();
  const double r = recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

void detection_confusion::merge(const detection_confusion& other) noexcept {
  tp_ += other.tp_;
  fp_ += other.fp_;
  tn_ += other.tn_;
  fn_ += other.fn_;
}

}  // namespace advh::core
