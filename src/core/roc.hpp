// ROC analysis over anomaly scores.
//
// The paper fixes the operating point with the three-sigma rule; ROC/AUC
// characterise the detector independently of that choice, which is how the
// ablation benches compare threshold rules and event sets.
#pragma once

#include <span>
#include <vector>

namespace advh::core {

struct roc_point {
  double threshold = 0.0;
  double fpr = 0.0;  ///< false-positive rate at this threshold
  double tpr = 0.0;  ///< true-positive rate (recall)
};

struct roc_curve {
  std::vector<roc_point> points;  ///< sorted by ascending FPR
  double auc = 0.0;

  /// TPR at the largest threshold whose FPR does not exceed `max_fpr`.
  double tpr_at_fpr(double max_fpr) const;
};

/// Builds the ROC of a score where *larger means more anomalous* (NLL).
/// `clean_scores` are negatives, `adversarial_scores` positives.
roc_curve compute_roc(std::span<const double> clean_scores,
                      std::span<const double> adversarial_scores);

}  // namespace advh::core
