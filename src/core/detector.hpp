// AdvHunter detector (Sections 5.2–5.4 of the paper).
//
// Offline: per output category c and HPC event n, the defender measures M
// clean validation inputs (R-repeat means), fits a univariate GMM with BIC
// order selection, and derives the three-sigma NLL threshold
// Delta_c^n = mu_L + 3 sigma_L over the template's NLL distribution L_c^n.
//
// Online: an unknown input is measured the same way; its NLL under the
// GMM of its *predicted* class is compared against Delta: above the
// threshold => flagged adversarial for that event.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "gmm/gmm.hpp"
#include "hpc/monitor.hpp"

namespace advh::core {

struct detector_config {
  std::vector<hpc::hpc_event> events;  ///< the N monitored events
  std::size_t repeats = 10;            ///< the paper's R
  std::size_t k_max = 4;               ///< BIC scan upper bound
  double sigma_multiplier = 3.0;       ///< three-sigma rule
  /// Verdict policy for predictions landing in a class without a fitted
  /// model (no template data): flag as adversarial (true, fail-closed) or
  /// pass as benign (false). An unmodelled class means the defender never
  /// observed that behaviour — the paper's threat model treats unknown
  /// behaviour as suspect, so fail-closed is the default.
  bool flag_unmodeled = true;
  /// Degraded-input policy: measurements may arrive with some configured
  /// events unavailable (lost counters, exhausted retries — see
  /// hpc::measurement::quality). Scoring proceeds over the surviving
  /// modelled subset; when fewer than this many modelled events survive,
  /// the detector abstains from an evidence-based call and the verdict
  /// follows flag_on_abstain.
  std::size_t min_events_for_verdict = 1;
  /// Verdict when the detector abstains: adversarial (true, fail-closed,
  /// mirroring flag_unmodeled) or benign (false).
  bool flag_on_abstain = true;
  gmm::em_config em{};
};

/// The offline dataset D_c: for each class, for each event, the M
/// per-image mean counts (one column of the paper's D_c matrix).
class benign_template {
 public:
  benign_template(std::size_t num_classes, std::size_t num_events);

  void add_row(std::size_t cls, std::span<const double> event_means);

  std::size_t num_classes() const noexcept { return classes_; }
  std::size_t num_events() const noexcept { return events_; }
  std::size_t rows(std::size_t cls) const;
  /// Column n of D_c.
  const std::vector<double>& column(std::size_t cls, std::size_t event) const;

  /// Per-class sample count the collector aimed for (0 when the template
  /// was assembled by hand). Lets benches report partial templates.
  std::size_t requested_per_class() const noexcept { return requested_; }
  void set_requested_per_class(std::size_t n) noexcept { requested_ = n; }
  /// Classes whose accepted row count fell short of the request.
  std::vector<std::size_t> underfilled_classes() const;

 private:
  std::size_t classes_;
  std::size_t events_;
  std::size_t requested_ = 0;
  // data_[cls][event] = vector of M mean counts
  std::vector<std::vector<std::vector<double>>> data_;
};

/// Gathers the benign template by measuring clean validation inputs
/// through a monitor. Inputs whose hard-label prediction disagrees with
/// their validation label are discarded (a misclassified "clean" image is
/// not representative of its category's computational behaviour).
class template_builder {
 public:
  template_builder(hpc::hpc_monitor& monitor, detector_config cfg,
                   std::size_t num_classes);

  /// Measures one clean validation image with known label; returns true if
  /// the sample was accepted into the template.
  bool add_sample(const tensor& x, std::size_t label);

  /// Number of accepted samples for a class so far.
  std::size_t accepted(std::size_t cls) const;

  benign_template build() const;
  const detector_config& config() const noexcept { return cfg_; }

 private:
  hpc::hpc_monitor& monitor_;
  detector_config cfg_;
  benign_template tpl_;
};

/// Per-(class, event) anomaly model: fitted GMM + threshold.
struct event_model {
  gmm::gmm1d model;
  double threshold = 0.0;
  double nll_mean = 0.0;
  double nll_stddev = 0.0;
  std::size_t template_size = 0;
};

/// Verdict for one unknown input.
struct verdict {
  std::size_t predicted = 0;
  std::vector<double> nll;        ///< per event
  std::vector<bool> flagged;      ///< per event: nll > threshold
  /// Overall call when fusing all events (any event flags => adversarial;
  /// an unmodelled prediction follows detector_config::flag_unmodeled).
  bool adversarial_any = false;
  /// False when the predicted class had no fitted models, in which case
  /// nll/flagged carry no information and adversarial_any is pure policy.
  bool modeled = true;
  /// True when at least one configured event was unavailable in the
  /// measurement: the verdict was scored over a strict subset of the
  /// configured events.
  bool degraded = false;
  /// True when fewer than detector_config::min_events_for_verdict
  /// modelled events were available; adversarial_any is then the
  /// flag_on_abstain policy, not measured evidence.
  bool abstained = false;
};

class detector {
 public:
  /// Fits all GMMs and thresholds from an offline template. Classes with
  /// fewer than 2 template rows get no model; how their predictions are
  /// judged is governed by detector_config::flag_unmodeled. Each
  /// (class, event) cell fits independently with its own seeded EM state,
  /// so the result is bitwise identical at any `threads` value
  /// (advh::resolve_threads semantics: 0 = ADVH_THREADS / hardware).
  static detector fit(const benign_template& tpl, const detector_config& cfg,
                      std::size_t threads = 0);

  /// Reassembles a detector from persisted parts (see core/detector_io).
  /// models[cls][event] must be num_classes x cfg.events.size().
  static detector from_parts(
      detector_config cfg,
      std::vector<std::vector<std::optional<event_model>>> models);

  /// Scores a pre-collected measurement (mean counts in config event
  /// order) under the predicted class's models. `available` is the
  /// per-event availability mask from hpc::measurement::quality (empty =
  /// every event available): unavailable events are skipped, so the
  /// any-event fusion — and with it the effective decision threshold —
  /// renormalises to the surviving (class, event) cells; too few
  /// survivors triggers the abstain policy (see detector_config).
  verdict score(std::size_t predicted_class,
                std::span<const double> mean_counts,
                std::span<const std::uint8_t> available = {}) const;

  /// Measures an unknown input through `monitor` and scores it, honouring
  /// the measurement's event-availability mask.
  verdict classify(hpc::hpc_monitor& monitor, const tensor& x) const;

  /// Deadline-budgeted variant: `repeats` (when nonzero) overrides the
  /// configured R — the serve layer's degradation ladder sheds repeats
  /// under load — and `budget` caps what the resilient measurement layer
  /// may spend on retries/backoff. Reduced-evidence measurements flow
  /// through the same availability-mask scoring, so shedding composes
  /// with the degraded/abstain fail-closed policy.
  verdict classify(hpc::hpc_monitor& monitor, const tensor& x,
                   std::size_t repeats,
                   const hpc::measure_budget& budget) const;

  /// Measures and scores a batch through hpc_monitor::measure_batch;
  /// out[i] corresponds to inputs[i] and is bitwise identical to serial
  /// `classify` calls in the same order.
  std::vector<verdict> classify_batch(hpc::hpc_monitor& monitor,
                                      std::span<const tensor> inputs,
                                      std::size_t threads = 0) const;

  /// Deadline-budgeted batch variant (see the budgeted `classify`).
  std::vector<verdict> classify_batch(hpc::hpc_monitor& monitor,
                                      std::span<const tensor> inputs,
                                      std::size_t threads, std::size_t repeats,
                                      const hpc::measure_budget& budget) const;

  const detector_config& config() const noexcept { return cfg_; }
  std::size_t num_classes() const noexcept { return models_.size(); }

  /// Fitted model for (class, event index), if that class had enough
  /// template data.
  const std::optional<event_model>& model_for(std::size_t cls,
                                              std::size_t event_idx) const;

 private:
  detector() = default;

  detector_config cfg_;
  // models_[cls][event]
  std::vector<std::vector<std::optional<event_model>>> models_;
};

}  // namespace advh::core
