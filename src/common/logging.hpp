// Lightweight leveled logging to stderr.
//
// Benches and examples use info-level progress lines; tests run with the
// level raised to `warn` to keep ctest output clean.
#pragma once

#include <sstream>
#include <string>

namespace advh::log {

enum class level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global threshold; messages below it are dropped.
void set_level(level lv) noexcept;
level get_level() noexcept;

/// Emits one formatted line `[level] message` to stderr.
void emit(level lv, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (get_level() <= level::debug)
    emit(level::debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void info(Args&&... args) {
  if (get_level() <= level::info)
    emit(level::info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void warn(Args&&... args) {
  if (get_level() <= level::warn)
    emit(level::warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void error(Args&&... args) {
  if (get_level() <= level::error)
    emit(level::error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace advh::log
