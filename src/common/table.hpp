// Plain-text and CSV table rendering for the bench harnesses.
//
// Every bench binary regenerates one table or figure from the paper; this
// helper prints the same rows the paper reports, aligned for terminals, and
// can also emit CSV for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace advh {

/// A simple column-aligned table with a title and header row.
class text_table {
 public:
  explicit text_table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; must be called before any add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; its width must match the header's.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders with box-drawing-free ASCII alignment.
  std::string to_string() const;

  /// Renders as CSV (header first); commas inside cells are quoted.
  std::string to_csv() const;

  /// Prints to_string() to the stream followed by a newline.
  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return header_.size(); }
  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::string>& row(std::size_t i) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes content to a file, creating parent directories if needed.
void write_file(const std::string& path, const std::string& content);

}  // namespace advh
