#include "common/rng.hpp"

#include <cmath>

namespace advh {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

rng::result_type rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded generation; bias is negligible for
  // the n used here but we reject to stay exact.
  if (n == 0) return 0;
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(n);
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is shifted away from zero to keep log() finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large lambda.
  const double v = normal(lambda, std::sqrt(lambda));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

bool rng::bernoulli(double p) noexcept { return uniform() < p; }

void rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

rng rng::split() noexcept {
  rng child = *this;
  child.has_cached_normal_ = false;
  child.jump();
  // Advance the parent as well so repeated split() calls give distinct
  // children.
  (*this)();
  return child;
}

rng rng::stream(std::uint64_t seed, std::uint64_t stream_index) noexcept {
  // Feed both words through the same splitmix64 sequence used by the
  // constructor; mixing the stream index through one splitmix step first
  // keeps adjacent indices far apart in the seeding space.
  std::uint64_t s = seed;
  std::uint64_t t = stream_index;
  s ^= splitmix64(t);
  rng g(s);
  g.jump();
  return g;
}

std::vector<std::size_t> rng::permutation(std::size_t n) noexcept {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  return idx;
}

}  // namespace advh
