// Error handling primitives shared by every AdvHunter module.
//
// Precondition violations throw advh::invariant_error; recoverable runtime
// failures (I/O, unavailable hardware backends, ...) throw domain-specific
// subclasses of advh::error. Per the C++ Core Guidelines we use exceptions
// for errors and keep destructors noexcept.
#pragma once

#include <stdexcept>
#include <string>

namespace advh {

/// Root of the AdvHunter exception hierarchy.
class error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a documented precondition or internal invariant is violated.
class invariant_error : public error {
 public:
  using error::error;
};

/// Thrown when shapes of tensors/matrices do not match an operation.
class shape_error : public error {
 public:
  using error::error;
};

/// Thrown when persisted state (model/detector files) cannot be read or
/// fails validation — corrupt bytes, truncation, out-of-range fields.
class io_error : public error {
 public:
  using error::error;
};

/// Thrown when a hardware backend (e.g. perf_event_open) is unavailable.
class backend_unavailable : public error {
 public:
  using error::error;
};

/// Thrown when a component lacks a statically-declared capability the
/// caller requires (e.g. a layer without shape inference under the static
/// verifier).
class unsupported_error : public error {
 public:
  using error::error;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  throw invariant_error(std::string(file) + ":" + std::to_string(line) +
                        ": check `" + expr + "` failed" +
                        (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace advh

/// Precondition/invariant check that always fires (release builds included).
#define ADVH_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::advh::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                      \
  } while (false)

/// Check with an explanatory message appended to the exception text.
#define ADVH_CHECK_MSG(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::advh::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                       \
  } while (false)
