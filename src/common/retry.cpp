#include "common/retry.hpp"

#include <cmath>
#include <thread>

namespace advh {

void cancel_token::cancel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
  }
  cv_.notify_all();
}

bool cancel_token::cancelled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_;
}

bool cancel_token::wait_for(std::chrono::milliseconds d) const {
  std::unique_lock<std::mutex> lock(mutex_);
  if (cancelled_) return true;
  if (d.count() <= 0) return false;
  return cv_.wait_for(lock, d, [this] { return cancelled_; });
}

std::chrono::milliseconds retry_policy::delay(
    std::size_t retry_index) const noexcept {
  if (base_delay.count() <= 0) return std::chrono::milliseconds{0};
  const double grown =
      static_cast<double>(base_delay.count()) *
      std::pow(multiplier > 1.0 ? multiplier : 1.0,
               static_cast<double>(retry_index));
  const double capped =
      std::min(grown, static_cast<double>(max_delay.count()));
  return std::chrono::milliseconds{
      static_cast<std::chrono::milliseconds::rep>(capped)};
}

std::size_t run_with_retry(const retry_policy& policy,
                           const std::function<bool(std::size_t)>& attempt,
                           const cancel_token* cancel) {
  for (std::size_t i = 0; i < policy.max_attempts; ++i) {
    if (i > 0) {
      if (cancel != nullptr) {
        if (cancel->wait_for(policy.delay(i - 1))) return 0;
      } else {
        std::this_thread::sleep_for(policy.delay(i - 1));
      }
    }
    if (attempt(i)) return i + 1;
  }
  return 0;
}

}  // namespace advh
