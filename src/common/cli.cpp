#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace advh {

cli_parser::cli_parser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void cli_parser::add_flag(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  ADVH_CHECK_MSG(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = flag{default_value, help, std::nullopt};
}

bool cli_parser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      return false;
    }
    ADVH_CHECK_MSG(arg.rfind("--", 0) == 0, "unexpected argument: " + arg);
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto it = flags_.find(arg);
    ADVH_CHECK_MSG(it != flags_.end(), "unknown flag --" + arg + "\n" + help());
    if (eq == std::string::npos) {
      // Boolean flags may omit the value; otherwise consume the next token.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return true;
}

std::string cli_parser::get(const std::string& name) const {
  auto it = flags_.find(name);
  ADVH_CHECK_MSG(it != flags_.end(), "flag not registered: " + name);
  return it->second.value.value_or(it->second.default_value);
}

int cli_parser::get_int(const std::string& name) const {
  return std::stoi(get(name));
}

double cli_parser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool cli_parser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::string cli_parser::help() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\nflags:\n";
  for (const auto& [name, f] : flags_) {
    os << "  --" << name << " (default: " << f.default_value << ")\n      "
       << f.help << "\n";
  }
  return os.str();
}

}  // namespace advh
