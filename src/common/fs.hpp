// Crash-safe filesystem primitives.
//
// Detector checkpoints are rewritten while the service is live; an
// overwrite-in-place interrupted by SIGKILL (or a full disk) would leave a
// truncated file that can neither be loaded nor distinguished from
// corruption. atomic_write_file gives the standard durability contract
// instead: the bytes land in a sibling temp file, are fsync'ed, and are
// renamed over the destination in one atomic step, so a reader at any
// point in time sees either the complete old content or the complete new
// content — never a torn mixture.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace advh {

/// The temp-file suffix atomic_write_file stages through (visible so
/// cleanup tooling and tests can recognise abandoned staging files).
inline constexpr const char* kAtomicTmpSuffix = ".tmp";

/// Atomically replaces (or creates) `path` with `bytes`: write to
/// `path + kAtomicTmpSuffix`, flush + fsync, rename over `path`, fsync
/// the parent directory and every ancestor directory this call created
/// (a fresh checkpoint tree must survive power loss as a unit). Parent
/// directories are created when missing. A
/// stale temp file from an earlier crash is silently overwritten. Throws
/// advh::io_error when any step fails; on failure the destination is left
/// untouched (the temp file may remain and will be reused next time).
void atomic_write_file(const std::string& path, std::string_view bytes);

/// CRC32C (Castagnoli, polynomial 0x1EDC6F41 reflected) over `bytes`,
/// continuing from `crc` so checksums can be computed incrementally:
/// crc32c(b, crc32c(a)) == crc32c(a + b). Portable table-driven software
/// implementation — every byte order produces the same value on every
/// platform, which is what lets range digests be compared across replicas
/// and what makes the on-disk checksum trailers byte-stable.
std::uint32_t crc32c(std::string_view bytes, std::uint32_t crc = 0);

/// Reads the whole file at `path` into a string. Throws advh::io_error
/// when the file does not exist or cannot be read.
std::string read_file_bytes(const std::string& path);

}  // namespace advh
