// Terminal rendering of the paper's figures.
//
// The bench binaries regenerate each figure's underlying series; these
// helpers render them as ASCII so "the same rows/series the paper reports"
// are visible directly in bench output (CSV files carry the raw numbers).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace advh::plot {

/// Renders overlapping frequency histograms of two samples (e.g. clean vs
/// adversarial HPC counts) over a shared range — the visual content of the
/// paper's Figures 3 and 5.
std::string dual_histogram(std::span<const double> a, std::span<const double> b,
                           const std::string& label_a,
                           const std::string& label_b, std::size_t bins = 40,
                           std::size_t height = 10);

/// Renders a horizontal bar chart, one bar per labelled value in [0, 1]
/// (e.g. per-attack F1 scores — Figure 4's bar content).
std::string bar_chart(std::span<const std::string> labels,
                      std::span<const double> values, double vmax = 1.0,
                      std::size_t width = 50);

/// Renders one or more y-series over a shared x-axis as a line plot
/// (e.g. F1 vs validation size — Figure 6). Optional per-point band
/// (std-dev) is printed alongside the values.
struct series {
  std::string name;
  std::vector<double> y;
  std::vector<double> band;  ///< optional; empty or same size as y
};

std::string line_plot(std::span<const double> x,
                      std::span<const series> curves, std::size_t width = 64,
                      std::size_t height = 16);

}  // namespace advh::plot
