// Descriptive statistics used across the GMM core, the noise model,
// experiment metrics, and the bench harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace advh::stats {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Population variance (divide by n); returns 0 for fewer than 1 element.
double variance(std::span<const double> xs) noexcept;

/// Sample variance (divide by n-1); returns 0 for fewer than 2 elements.
double sample_variance(std::span<const double> xs) noexcept;

/// Population standard deviation.
double stddev(std::span<const double> xs) noexcept;

/// Sample standard deviation.
double sample_stddev(std::span<const double> xs) noexcept;

/// Minimum value; requires a non-empty span.
double min(std::span<const double> xs);

/// Maximum value; requires a non-empty span.
double max(std::span<const double> xs);

/// Median (average of middle two for even sizes); requires non-empty.
double median(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1]; requires non-empty.
double quantile(std::span<const double> xs, double q);

/// Pearson correlation of two equally sized spans; requires size >= 2.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Numerically stable streaming mean/variance accumulator (Welford).
class running_stats {
 public:
  void push(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;         ///< population variance
  double sample_variance() const noexcept;  ///< n-1 denominator
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  void merge(const running_stats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi]; values outside are clamped to the
/// first/last bin so every observation is counted.
class histogram {
 public:
  histogram(double lo, double hi, std::size_t bins);

  void push(double x) noexcept;
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double bin_center(std::size_t bin) const;
  /// Normalised frequency (count / total); 0 if the histogram is empty.
  double frequency(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Builds a histogram whose range is derived from the data (min..max,
/// padded by 1% so extremes fall inside); requires non-empty data.
histogram auto_histogram(std::span<const double> xs, std::size_t bins);

}  // namespace advh::stats
