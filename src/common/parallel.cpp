#include "common/parallel.hpp"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace advh::parallel {

namespace {
// Sanity ceiling for the ADVH_THREADS override: far above any real
// machine, low enough to catch unit-confused values (e.g. a millicore
// count pasted from a container spec).
constexpr long kMaxThreadsEnv = 4096;
}  // namespace

std::size_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t default_threads() {
  const char* env = std::getenv("ADVH_THREADS");
  if (env == nullptr) return hardware_threads();
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  // A set-but-broken override fails loudly: silently dropping to the
  // hardware default would hide deployment-manifest typos.
  if (end == env || *end != '\0' || errno == ERANGE || v < 0 ||
      v > kMaxThreadsEnv) {
    throw std::invalid_argument(
        std::string("ADVH_THREADS=\"") + env +
        "\": expected an integer in [0, " + std::to_string(kMaxThreadsEnv) +
        "] (0 = all cores)");
  }
  return v == 0 ? hardware_threads() : static_cast<std::size_t>(v);
}

std::size_t resolve_threads(std::size_t requested) {
  return requested == 0 ? default_threads() : requested;
}

struct thread_pool::impl {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  // Dispatch state for the current run_chunks call.
  std::uint64_t generation = 0;
  std::size_t n = 0;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* fn =
      nullptr;
  std::size_t pending = 0;
  std::exception_ptr first_error;
  bool shutdown = false;
  std::vector<std::thread> threads;

  static void chunk_bounds(std::size_t n, std::size_t workers, std::size_t w,
                           std::size_t& begin, std::size_t& end) noexcept {
    begin = w * n / workers;
    end = (w + 1) * n / workers;
  }

  void run_one(std::size_t worker, std::size_t workers,
               const std::function<void(std::size_t, std::size_t,
                                        std::size_t)>& f,
               std::size_t total) {
    std::size_t begin = 0, end = 0;
    chunk_bounds(total, workers, worker, begin, end);
    if (begin < end) f(begin, end, worker);
  }

  void worker_loop(std::size_t worker, std::size_t workers) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t, std::size_t, std::size_t)>* f =
          nullptr;
      std::size_t total = 0;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock,
                     [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
        f = fn;
        total = n;
      }
      std::exception_ptr err;
      try {
        run_one(worker, workers, *f, total);
      } catch (...) {
        err = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        if (err && !first_error) first_error = err;
        if (--pending == 0) done_cv.notify_all();
      }
    }
  }
};

thread_pool::thread_pool(std::size_t workers)
    : impl_(new impl), workers_(workers == 0 ? 1 : workers) {
  impl_->threads.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    impl_->threads.emplace_back(
        [this, w] { impl_->worker_loop(w, workers_); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

void thread_pool::run_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& fn) {
  ADVH_CHECK_MSG(fn != nullptr, "thread_pool::run_chunks needs a callable");
  if (n == 0) return;
  if (workers_ == 1) {
    impl_->run_one(0, 1, fn, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->n = n;
    impl_->fn = &fn;
    impl_->pending = workers_ - 1;
    impl_->first_error = nullptr;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  // The calling thread is worker 0; its exception still lets the other
  // workers drain before rethrowing.
  std::exception_ptr caller_error;
  try {
    impl_->run_one(0, workers_, fn, n);
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->done_cv.wait(lock, [&] { return impl_->pending == 0; });
  impl_->fn = nullptr;
  std::exception_ptr err = caller_error ? caller_error : impl_->first_error;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  ADVH_CHECK_MSG(fn != nullptr, "parallel_for needs a callable");
  const std::size_t workers = resolve_threads(threads);
  if (workers <= 1 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  thread_pool pool(std::min(workers, n));
  pool.run_chunks(n, [&](std::size_t begin, std::size_t end, std::size_t w) {
    for (std::size_t i = begin; i < end; ++i) fn(i, w);
  });
}

}  // namespace advh::parallel
