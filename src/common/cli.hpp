// Minimal command-line flag parsing for example/bench binaries.
//
// Supports `--flag value`, `--flag=value`, and boolean `--flag` forms.
// Unknown flags raise an error listing the registered ones, so example
// binaries self-document.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace advh {

class cli_parser {
 public:
  /// `program` and `description` are used in help text.
  cli_parser(std::string program, std::string description);

  /// Registers a flag with a default value and a help string.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Returns false if --help was requested (help printed).
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  int get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  std::string help() const;

 private:
  struct flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, flag> flags_;
};

}  // namespace advh
