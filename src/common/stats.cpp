#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace advh::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 1) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double sample_stddev(std::span<const double> xs) noexcept {
  return std::sqrt(sample_variance(xs));
}

double min(std::span<const double> xs) {
  ADVH_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  ADVH_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  ADVH_CHECK(!xs.empty());
  ADVH_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  ADVH_CHECK(xs.size() == ys.size());
  ADVH_CHECK(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void running_stats::push(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double running_stats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double running_stats::sample_variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

void running_stats::merge(const running_stats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double total = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ADVH_CHECK(bins > 0);
  ADVH_CHECK(hi > lo);
}

void histogram::push(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t histogram::count(std::size_t bin) const {
  ADVH_CHECK(bin < counts_.size());
  return counts_[bin];
}

double histogram::bin_lo(std::size_t bin) const {
  ADVH_CHECK(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double histogram::bin_hi(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return bin_lo(bin) + width;
}

double histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

double histogram::frequency(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

histogram auto_histogram(std::span<const double> xs, std::size_t bins) {
  ADVH_CHECK(!xs.empty());
  double lo = min(xs);
  double hi = max(xs);
  if (lo == hi) {
    // Degenerate data: widen artificially so the histogram stays valid.
    lo -= 0.5;
    hi += 0.5;
  }
  const double pad = 0.01 * (hi - lo);
  return histogram(lo - pad, hi + pad, bins);
}

}  // namespace advh::stats
