// Deterministic parallel execution primitives.
//
// The measurement hot paths (template collection, evaluation sweeps, GMM
// bank fitting) are embarrassingly parallel over independent items. The
// engine here is intentionally work-stealing-free: parallel_for splits
// [0, n) into one contiguous chunk per worker, so which worker processes
// which item is a pure function of (n, workers) and never of timing. As
// long as each item's computation depends only on per-item state (the
// measurement engine derives per-sample RNG streams for exactly this
// reason), results are bitwise identical at any worker count, including 1.
#pragma once

#include <cstddef>
#include <functional>

namespace advh::parallel {

/// std::thread::hardware_concurrency with a floor of 1.
std::size_t hardware_threads() noexcept;

/// The ambient worker count: ADVH_THREADS when set (ADVH_THREADS=0 means
/// "all cores"), otherwise hardware_threads(). A set-but-invalid
/// ADVH_THREADS — negative, non-numeric, trailing garbage, or an
/// implausibly large count — throws std::invalid_argument instead of
/// silently falling back: a typo in a deployment manifest should fail
/// loudly, not quietly serialise the measurement engine.
std::size_t default_threads();

/// Resolves a user-requested thread count: 0 means default_threads()
/// (which honours — and validates — the ADVH_THREADS override), anything
/// else is taken literally.
std::size_t resolve_threads(std::size_t requested);

/// A fixed-size fork/join worker pool. Workers are spawned once and reused
/// across run_chunks calls; there is no task queue and no stealing — every
/// dispatch hands each worker one statically computed chunk.
class thread_pool {
 public:
  /// Spawns `workers - 1` threads (the caller's thread acts as worker 0).
  /// `workers` is clamped to at least 1.
  explicit thread_pool(std::size_t workers);
  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;
  ~thread_pool();

  std::size_t size() const noexcept { return workers_; }

  /// Invokes fn(begin, end, worker) once per worker, where [begin, end) is
  /// worker w's contiguous slice of [0, n): [w*n/W, (w+1)*n/W). Blocks
  /// until every worker finishes; the first exception thrown by any worker
  /// is rethrown on the calling thread after the join.
  void run_chunks(std::size_t n,
                  const std::function<void(std::size_t begin, std::size_t end,
                                           std::size_t worker)>& fn);

 private:
  struct impl;
  impl* impl_;
  std::size_t workers_;
};

/// One-shot chunked loop: fn(index, worker) for every index in [0, n),
/// partitioned across resolve_threads(threads) workers. Serial (worker 0,
/// no pool) when the resolved count is 1 or n < 2.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t index,
                                           std::size_t worker)>& fn);

}  // namespace advh::parallel
