#include "common/fs.hpp"

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <vector>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ADVH_POSIX_IO 1
#include <fcntl.h>
#include <unistd.h>
#else
#define ADVH_POSIX_IO 0
#include <cstdio>
#include <fstream>
#endif

namespace advh {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw io_error(path + ": " + what + " (" + std::strerror(errno) + ")");
}

#if ADVH_POSIX_IO
void write_all(int fd, std::string_view bytes, const std::string& path) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path, "write failed");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void fsync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) fail(path, "open for fsync failed");
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail(path, "fsync failed");
  }
  // A failed close can report a deferred write error the fsync missed;
  // swallowing it would claim durability the kernel never delivered.
  if (::close(fd) != 0) fail(path, "close after fsync failed");
}
#endif
}  // namespace

void atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::filesystem::path dest(path);
  // Ancestors that do not exist yet. Each new directory entry lives in its
  // parent, so after create_directories the whole created chain (plus the
  // first pre-existing ancestor) must be fsynced, or a power cut could drop
  // the entire new subtree — and the checkpoint inside it — after rename.
  std::vector<std::string> created_chain;
  if (dest.has_parent_path()) {
    std::error_code ec;
    for (std::filesystem::path p = dest.parent_path();
         !p.empty() && p != p.parent_path() &&
         !std::filesystem::exists(p, ec);
         p = p.parent_path()) {
      created_chain.push_back(p.string());
    }
    if (!created_chain.empty()) {
      const std::filesystem::path top =
          std::filesystem::path(created_chain.back()).parent_path();
      if (!top.empty()) created_chain.push_back(top.string());
    }
    std::filesystem::create_directories(dest.parent_path(), ec);
    if (ec) {
      throw io_error(path + ": cannot create parent directory (" +
                     ec.message() + ")");
    }
  }
  const std::string tmp = path + kAtomicTmpSuffix;

#if ADVH_POSIX_IO
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(tmp, "cannot open staging file");
  try {
    write_all(fd, bytes, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(tmp, "fsync failed");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail(tmp, "close failed");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail(path, "rename failed");
  }
  // Persist the rename itself: a power cut after rename but before the
  // directory entry hits disk could otherwise resurrect the old file.
  const std::string dir =
      dest.has_parent_path() ? dest.parent_path().string() : std::string(".");
  fsync_path(dir, O_RDONLY | O_DIRECTORY);
  for (const std::string& d : created_chain) {
    if (d != dir) fsync_path(d, O_RDONLY | O_DIRECTORY);
  }
#else
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.good()) throw io_error(tmp + ": cannot open staging file");
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os.good()) throw io_error(tmp + ": write failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, dest, ec);
  if (ec) throw io_error(path + ": rename failed (" + ec.message() + ")");
#endif
}

namespace {

// Table for CRC32C (Castagnoli), reflected polynomial 0x82F63B78. Built
// once at first use; byte-at-a-time is plenty for checkpoint-sized files
// and keeps the implementation portable (no SSE4.2 dependency).
const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32c(std::string_view bytes, std::uint32_t crc) {
  const auto& table = crc32c_table();
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw io_error(path + ": cannot open file");
  std::string bytes{std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>()};
  if (is.bad()) throw io_error(path + ": read failed");
  return bytes;
}

}  // namespace advh
