// Retry policy with capped exponential backoff.
//
// The resilient measurement layer (src/hpc/resilient_monitor) re-reads
// failed counter repetitions; real deployments also hit transient I/O
// (perf fd churn, NFS model caches). Both want the same shape of policy:
// a bounded number of attempts with delays that grow geometrically up to
// a cap. The policy itself is a pure value type — `delay(i)` is a
// deterministic function — so tests can verify retry schedules without
// sleeping.
//
// Backoff sleeps are cancellation-aware: a caller that needs to shut down
// (the serve layer's drain path, a deadline-budgeted measurement) hands in
// a cancel_token, and a pending backoff wait returns as soon as the token
// is cancelled instead of blocking for the remaining schedule.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

namespace advh {

/// Thread-safe one-shot cancellation flag with a waitable edge. cancel()
/// is sticky: once set, every current and future wait returns
/// immediately. Non-copyable — share by reference/pointer.
class cancel_token {
 public:
  cancel_token() = default;
  cancel_token(const cancel_token&) = delete;
  cancel_token& operator=(const cancel_token&) = delete;

  /// Sets the flag and wakes every thread blocked in wait_for.
  void cancel();

  bool cancelled() const;

  /// Blocks for up to `d` or until the token is cancelled, whichever
  /// comes first. Returns true when the token is (or becomes) cancelled —
  /// i.e. the wait was cut short — false when the full delay elapsed.
  bool wait_for(std::chrono::milliseconds d) const;

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool cancelled_ = false;
};

struct retry_policy {
  /// Total attempts, including the first try. 1 disables retrying.
  std::size_t max_attempts = 4;
  /// Delay before the first retry.
  std::chrono::milliseconds base_delay{1};
  /// Ceiling on any single delay.
  std::chrono::milliseconds max_delay{50};
  /// Geometric growth factor between consecutive retries.
  double multiplier = 2.0;

  /// Delay before retry number `retry_index` (0 = the first retry):
  /// min(base_delay * multiplier^retry_index, max_delay).
  std::chrono::milliseconds delay(std::size_t retry_index) const noexcept;
};

/// Runs `attempt(i)` for i = 0 .. policy.max_attempts - 1 until it returns
/// true, sleeping policy.delay(i) before each retry. Returns the number of
/// attempts consumed (1 = first try succeeded), or 0 when every attempt
/// returned false.
///
/// When `cancel` is non-null, a backoff sleep aborts as soon as the token
/// is cancelled and no further attempts run (the function returns 0, the
/// same as an exhausted budget). A token cancelled before the first call
/// still permits exactly one attempt: cancellation cuts waiting short, it
/// does not retroactively fail work that never needed a retry.
std::size_t run_with_retry(const retry_policy& policy,
                           const std::function<bool(std::size_t)>& attempt,
                           const cancel_token* cancel = nullptr);

}  // namespace advh
