// Retry policy with capped exponential backoff.
//
// The resilient measurement layer (src/hpc/resilient_monitor) re-reads
// failed counter repetitions; real deployments also hit transient I/O
// (perf fd churn, NFS model caches). Both want the same shape of policy:
// a bounded number of attempts with delays that grow geometrically up to
// a cap. The policy itself is a pure value type — `delay(i)` is a
// deterministic function — so tests can verify retry schedules without
// sleeping.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>

namespace advh {

struct retry_policy {
  /// Total attempts, including the first try. 1 disables retrying.
  std::size_t max_attempts = 4;
  /// Delay before the first retry.
  std::chrono::milliseconds base_delay{1};
  /// Ceiling on any single delay.
  std::chrono::milliseconds max_delay{50};
  /// Geometric growth factor between consecutive retries.
  double multiplier = 2.0;

  /// Delay before retry number `retry_index` (0 = the first retry):
  /// min(base_delay * multiplier^retry_index, max_delay).
  std::chrono::milliseconds delay(std::size_t retry_index) const noexcept;
};

/// Runs `attempt(i)` for i = 0 .. policy.max_attempts - 1 until it returns
/// true, sleeping policy.delay(i) before each retry. Returns the number of
/// attempts consumed (1 = first try succeeded), or 0 when every attempt
/// returned false.
std::size_t run_with_retry(const retry_policy& policy,
                           const std::function<bool(std::size_t)>& attempt);

}  // namespace advh
