// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (dataset synthesis, weight
// initialisation, attacks, measurement-noise models, GMM seeding) draw from
// advh::rng so that every experiment is reproducible from a single seed.
// The generator is xoshiro256++ seeded through splitmix64, which has good
// statistical quality and trivially supports independent streams via jump().
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace advh {

/// xoshiro256++ generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also be handed to
/// <random> distributions, although the built-in helpers are preferred
/// because their output is stable across standard-library versions.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via splitmix64.
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be positive.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal variate (Box–Muller with caching).
  double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Poisson variate (Knuth for small lambda, normal approx for large).
  std::uint64_t poisson(double lambda) noexcept;

  /// Bernoulli trial with probability `p` of returning true.
  bool bernoulli(double p) noexcept;

  /// Returns a generator whose stream is decorrelated from this one.
  /// Equivalent to 2^128 calls of operator(), so independent streams for
  /// parallel or per-component use never overlap in practice.
  rng split() noexcept;

  /// Stateless stream derivation: a generator that depends only on
  /// (seed, stream), not on how many draws any other generator has made.
  /// The state is seeded by splitmix64 over the pair and then advanced by
  /// one xoshiro jump, so distinct stream indices occupy decorrelated
  /// subsequences. This is what gives the measurement engine per-sample
  /// noise streams that are reorder- and thread-count-invariant.
  static rng stream(std::uint64_t seed, std::uint64_t stream_index) noexcept;

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n) noexcept;

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  void jump() noexcept;

  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace advh
