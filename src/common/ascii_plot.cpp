#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace advh::plot {

std::string dual_histogram(std::span<const double> a, std::span<const double> b,
                           const std::string& label_a,
                           const std::string& label_b, std::size_t bins,
                           std::size_t height) {
  ADVH_CHECK(!a.empty() && !b.empty());
  ADVH_CHECK(bins > 0 && height > 0);

  double lo = std::min(stats::min(a), stats::min(b));
  double hi = std::max(stats::max(a), stats::max(b));
  if (lo == hi) {
    lo -= 0.5;
    hi += 0.5;
  }
  stats::histogram ha(lo, hi, bins);
  stats::histogram hb(lo, hi, bins);
  for (double x : a) ha.push(x);
  for (double x : b) hb.push(x);

  double fmax = 0.0;
  for (std::size_t i = 0; i < bins; ++i) {
    fmax = std::max({fmax, ha.frequency(i), hb.frequency(i)});
  }
  if (fmax == 0.0) fmax = 1.0;

  // Character per cell: '#' = label_a only, 'o' = label_b only,
  // '%' = both populations reach this height.
  std::ostringstream os;
  os << "  [#] " << label_a << "   [o] " << label_b
     << "   [%] overlap   (normalized frequency)\n";
  for (std::size_t r = 0; r < height; ++r) {
    const double level =
        fmax * static_cast<double>(height - r) / static_cast<double>(height);
    os << "  |";
    for (std::size_t c = 0; c < bins; ++c) {
      const bool in_a = ha.frequency(c) >= level;
      const bool in_b = hb.frequency(c) >= level;
      os << (in_a && in_b ? '%' : in_a ? '#' : in_b ? 'o' : ' ');
    }
    os << "|\n";
  }
  os << "  +" << std::string(bins, '-') << "+\n";
  std::ostringstream lo_s, hi_s;
  lo_s.precision(4);
  hi_s.precision(4);
  lo_s << lo;
  hi_s << hi;
  const std::string left = lo_s.str();
  const std::string right = hi_s.str();
  os << "   " << left;
  const std::size_t pad =
      bins > left.size() + right.size() ? bins - left.size() - right.size() : 1;
  os << std::string(pad, ' ') << right << "\n";
  return os.str();
}

std::string bar_chart(std::span<const std::string> labels,
                      std::span<const double> values, double vmax,
                      std::size_t width) {
  ADVH_CHECK(labels.size() == values.size());
  ADVH_CHECK(vmax > 0.0 && width > 0);
  std::size_t lwidth = 0;
  for (const auto& l : labels) lwidth = std::max(lwidth, l.size());

  std::ostringstream os;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const double clamped = std::clamp(values[i], 0.0, vmax);
    const auto n =
        static_cast<std::size_t>(std::round(clamped / vmax * width));
    os << "  " << labels[i] << std::string(lwidth - labels[i].size(), ' ')
       << " |" << std::string(n, '#') << std::string(width - n, ' ') << "| ";
    os.setf(std::ios::fixed);
    os.precision(4);
    os << values[i] << "\n";
  }
  return os.str();
}

std::string line_plot(std::span<const double> x,
                      std::span<const series> curves, std::size_t width,
                      std::size_t height) {
  ADVH_CHECK(!x.empty());
  ADVH_CHECK(!curves.empty());
  for (const auto& s : curves) {
    ADVH_CHECK_MSG(s.y.size() == x.size(), "series length must match x");
    ADVH_CHECK_MSG(s.band.empty() || s.band.size() == x.size(),
                   "band length must match x");
  }

  double ymin = curves[0].y[0], ymax = curves[0].y[0];
  for (const auto& s : curves) {
    for (std::size_t i = 0; i < s.y.size(); ++i) {
      const double b = s.band.empty() ? 0.0 : s.band[i];
      ymin = std::min(ymin, s.y[i] - b);
      ymax = std::max(ymax, s.y[i] + b);
    }
  }
  if (ymin == ymax) {
    ymin -= 0.5;
    ymax += 0.5;
  }
  const double xmin = x.front();
  const double xmax = x.back() == x.front() ? x.front() + 1.0 : x.back();

  std::vector<std::string> grid(height, std::string(width, ' '));
  const char marks[] = {'*', 'o', '+', 'x', '@', '$'};
  auto col_of = [&](double xv) {
    const double t = (xv - xmin) / (xmax - xmin);
    return std::clamp<std::size_t>(
        static_cast<std::size_t>(std::round(t * static_cast<double>(width - 1))),
        0, width - 1);
  };
  auto row_of = [&](double yv) {
    const double t = (yv - ymin) / (ymax - ymin);
    const auto r = static_cast<std::size_t>(
        std::round((1.0 - t) * static_cast<double>(height - 1)));
    return std::clamp<std::size_t>(r, 0, height - 1);
  };

  for (std::size_t s = 0; s < curves.size(); ++s) {
    const char mark = marks[s % sizeof(marks)];
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (!curves[s].band.empty()) {
        const std::size_t r_lo = row_of(curves[s].y[i] - curves[s].band[i]);
        const std::size_t r_hi = row_of(curves[s].y[i] + curves[s].band[i]);
        for (std::size_t r = std::min(r_lo, r_hi); r <= std::max(r_lo, r_hi);
             ++r) {
          char& cell = grid[r][col_of(x[i])];
          if (cell == ' ') cell = '.';
        }
      }
      grid[row_of(curves[s].y[i])][col_of(x[i])] = mark;
    }
  }

  std::ostringstream os;
  os << "  legend:";
  for (std::size_t s = 0; s < curves.size(); ++s) {
    os << "  [" << marks[s % sizeof(marks)] << "] " << curves[s].name;
  }
  os << "   ('.' = +/- band)\n";
  os.setf(std::ios::fixed);
  os.precision(3);
  for (std::size_t r = 0; r < height; ++r) {
    if (r == 0) {
      os << ymax << " |";
    } else if (r == height - 1) {
      os << ymin << " |";
    } else {
      os << std::string(8, ' ') << "|";
    }
    os << grid[r] << "\n";
  }
  os << std::string(9, ' ') << "+" << std::string(width, '-') << "\n";
  os << std::string(10, ' ') << xmin << " .. " << xmax << "\n";
  return os.str();
}

}  // namespace advh::plot
