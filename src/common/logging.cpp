#include "common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace advh::log {

namespace {
std::atomic<level> g_level{level::info};
std::mutex g_mutex;

const char* level_name(level lv) {
  switch (lv) {
    case level::debug:
      return "debug";
    case level::info:
      return "info";
    case level::warn:
      return "warn";
    case level::error:
      return "error";
    case level::off:
      return "off";
  }
  return "?";
}
}  // namespace

void set_level(level lv) noexcept { g_level.store(lv); }

level get_level() noexcept { return g_level.load(); }

void emit(level lv, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(lv) << "] " << message << "\n";
}

}  // namespace advh::log
