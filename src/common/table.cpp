#include "common/table.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace advh {

void text_table::set_header(std::vector<std::string> header) {
  ADVH_CHECK_MSG(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void text_table::add_row(std::vector<std::string> row) {
  ADVH_CHECK_MSG(row.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string text_table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

const std::vector<std::string>& text_table::row(std::size_t i) const {
  ADVH_CHECK(i < rows_.size());
  return rows_[i];
}

std::string text_table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      if (c + 1 != row.size()) os << "  ";
    }
    os << "\n";
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string text_table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find(',') == std::string::npos &&
        cell.find('"') == std::string::npos) {
      return cell;
    }
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << quote(row[c]);
      if (c + 1 != row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void text_table::print(std::ostream& os) const { os << to_string() << "\n"; }

void write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(p);
  ADVH_CHECK_MSG(out.good(), "cannot open " + path + " for writing");
  out << content;
}

}  // namespace advh
