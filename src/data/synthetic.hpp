// Procedural class-conditional image synthesis.
//
// The offline environment has no access to FashionMNIST/CIFAR-10/GTSRB, so
// each benchmark dataset is replaced by a generator with the same tensor
// shape and class count. Every class owns a few smooth "prototype" images
// (random Gaussian blobs + oriented gratings drawn from a class-seeded
// stream); samples are prototypes under random shift, brightness jitter,
// and pixel noise. This preserves what AdvHunter needs from the real
// datasets: a learnable class structure whose per-class inputs drive
// consistent neuron-activation patterns during inference.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace advh::data {

struct synthetic_spec {
  std::string name = "synthetic";
  std::size_t channels = 3;
  std::size_t height = 32;
  std::size_t width = 32;
  std::size_t classes = 10;
  std::size_t prototypes_per_class = 2;
  std::size_t blobs_per_prototype = 4;
  /// Max absolute pixel shift applied per sample.
  std::size_t max_shift = 1;
  /// Std-dev of additive Gaussian pixel noise.
  double pixel_noise = 0.02;
  /// Per-blob positional jitter (pixels): structured intra-class noise
  /// that does not average out spatially, so twin classes whose blobs sit
  /// ~1px apart genuinely confuse the model.
  double blob_jitter = 1.2;
  /// Brightness jitter: per-sample scale in [1-b, 1+b].
  double brightness_jitter = 0.04;
  /// Classes come in confusable pairs: class 2k+1's prototypes are a
  /// `confusable_delta`-blend towards class 2k's (0 = identical twins,
  /// 1 = fully independent). This is what pulls model accuracy into the
  /// realistic 85-95% band while keeping per-class data flow tight.
  bool confusable_pairs = true;
  double confusable_delta = 0.1;
  /// Fraction of samples drawn under degraded conditions (heavy noise,
  /// larger displacement, stronger brightness swings) — the analogue of
  /// occluded/blurry benchmark images. These carry most of the model's
  /// classification errors and put Table-1 accuracies in the 85-97% band.
  double hard_fraction = 0.3;
  double hard_noise_multiplier = 2.5;
  std::size_t hard_extra_shift = 1;
  /// Seeds the class prototypes (the "task"). Two datasets with the same
  /// seed contain the same classes.
  std::uint64_t seed = 42;
  /// Seeds only the per-sample jitter stream: different sample_seed values
  /// give disjoint draws (train/val/test splits) of the *same* task.
  std::uint64_t sample_seed = 0;
  std::vector<std::string> class_names;  ///< optional; generated if empty
};

/// Generates `per_class` examples for every class.
dataset make_synthetic(const synthetic_spec& spec, std::size_t per_class);

/// Shape/class-count analogues of the paper's three benchmark datasets.
synthetic_spec fashion_mnist_like();  ///< 1x28x28, 10 classes
synthetic_spec cifar10_like();        ///< 3x32x32, 10 classes
synthetic_spec gtsrb_like();          ///< 3x32x32, 43 classes

}  // namespace advh::data
