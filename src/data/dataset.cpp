#include "data/dataset.hpp"

#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/trainer.hpp"

namespace advh::data {

shape dataset::example_shape() const {
  ADVH_CHECK(images.dims().rank() == 4);
  return shape{images.dims()[1], images.dims()[2], images.dims()[3]};
}

std::vector<std::size_t> dataset::indices_of_class(std::size_t label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) out.push_back(i);
  }
  return out;
}

dataset subset(const dataset& d, const std::vector<std::size_t>& indices) {
  dataset out;
  out.name = d.name;
  out.num_classes = d.num_classes;
  out.class_names = d.class_names;
  out.images = nn::gather_batch(d.images, indices);
  out.labels.reserve(indices.size());
  for (std::size_t i : indices) {
    ADVH_CHECK(i < d.labels.size());
    out.labels.push_back(d.labels[i]);
  }
  return out;
}

std::pair<dataset, dataset> stratified_split(const dataset& d,
                                             double first_fraction,
                                             std::uint64_t seed) {
  ADVH_CHECK(first_fraction > 0.0 && first_fraction < 1.0);
  rng gen(seed);

  std::map<std::size_t, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < d.labels.size(); ++i) {
    by_class[d.labels[i]].push_back(i);
  }

  std::vector<std::size_t> first_idx, second_idx;
  for (auto& [label, idx] : by_class) {
    gen.shuffle(idx);
    const auto cut = static_cast<std::size_t>(
        first_fraction * static_cast<double>(idx.size()) + 0.5);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      (i < cut ? first_idx : second_idx).push_back(idx[i]);
    }
  }
  return {subset(d, first_idx), subset(d, second_idx)};
}

}  // namespace advh::data
