// The paper's three evaluation scenarios (Table 1): dataset + architecture
// pairs, plus the target class each scenario uses for targeted attacks.
#pragma once

#include "data/synthetic.hpp"
#include "nn/models/models.hpp"

namespace advh::data {

enum class scenario_id { s1, s2, s3 };

struct scenario_spec {
  scenario_id id;
  std::string label;            ///< "S1" / "S2" / "S3"
  synthetic_spec dataset_spec;  ///< shape & class structure
  nn::architecture arch;
  std::size_t target_class;     ///< paper's targeted-attack class
  std::string target_class_name;
  std::size_t train_per_class;  ///< synthetic training-set size
  std::size_t test_per_class;
  std::size_t train_epochs;
};

/// Returns the spec for one of S1/S2/S3.
scenario_spec get_scenario(scenario_id id);

/// All three, in order.
std::vector<scenario_spec> all_scenarios();

std::string to_string(scenario_id id);
scenario_id scenario_from_string(const std::string& s);

}  // namespace advh::data
