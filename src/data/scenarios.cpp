#include "data/scenarios.hpp"

#include "common/error.hpp"

namespace advh::data {

scenario_spec get_scenario(scenario_id id) {
  switch (id) {
    case scenario_id::s1: {
      scenario_spec s;
      s.id = id;
      s.label = "S1";
      s.dataset_spec = fashion_mnist_like();
      s.arch = nn::architecture::efficientnet_lite;
      s.target_class = 6;  // 'shirt'
      s.target_class_name = "shirt";
      s.train_per_class = 150;
      s.test_per_class = 60;
      s.train_epochs = 6;
      return s;
    }
    case scenario_id::s2: {
      scenario_spec s;
      s.id = id;
      s.label = "S2";
      s.dataset_spec = cifar10_like();
      s.arch = nn::architecture::resnet_small;
      s.target_class = 6;  // 'frog'
      s.target_class_name = "frog";
      s.train_per_class = 150;
      s.test_per_class = 60;
      s.train_epochs = 6;
      return s;
    }
    case scenario_id::s3: {
      scenario_spec s;
      s.id = id;
      s.label = "S3";
      s.dataset_spec = gtsrb_like();
      s.arch = nn::architecture::densenet_small;
      s.target_class = 1;  // 'speed limit (30km/h)'
      s.target_class_name = "speed limit (30km/h)";
      s.train_per_class = 60;
      s.test_per_class = 25;
      s.train_epochs = 6;
      return s;
    }
  }
  throw invariant_error("unknown scenario");
}

std::vector<scenario_spec> all_scenarios() {
  return {get_scenario(scenario_id::s1), get_scenario(scenario_id::s2),
          get_scenario(scenario_id::s3)};
}

std::string to_string(scenario_id id) {
  switch (id) {
    case scenario_id::s1:
      return "S1";
    case scenario_id::s2:
      return "S2";
    case scenario_id::s3:
      return "S3";
  }
  return "?";
}

scenario_id scenario_from_string(const std::string& s) {
  if (s == "S1" || s == "s1") return scenario_id::s1;
  if (s == "S2" || s == "s2") return scenario_id::s2;
  if (s == "S3" || s == "s3") return scenario_id::s3;
  throw invariant_error("unknown scenario: " + s);
}

}  // namespace advh::data
