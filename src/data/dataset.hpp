// Labelled image dataset container and split utilities.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace advh::data {

struct dataset {
  std::string name;
  tensor images;  ///< (N, C, H, W), values in [0, 1]
  std::vector<std::size_t> labels;
  std::size_t num_classes = 0;
  std::vector<std::string> class_names;  ///< size num_classes

  std::size_t size() const noexcept { return labels.size(); }

  /// CHW shape of one example.
  shape example_shape() const;

  /// Returns indices of all examples with the given label.
  std::vector<std::size_t> indices_of_class(std::size_t label) const;
};

/// Deterministically splits a dataset into two parts with `first_fraction`
/// of each class in the first part (stratified).
std::pair<dataset, dataset> stratified_split(const dataset& d,
                                             double first_fraction,
                                             std::uint64_t seed);

/// Builds a new dataset from a subset of indices.
dataset subset(const dataset& d, const std::vector<std::size_t>& indices);

}  // namespace advh::data
