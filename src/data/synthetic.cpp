#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace advh::data {

namespace {

/// Parameters of one Gaussian blob within a prototype.
struct blob {
  double cy, cx;      // center (pixels)
  double sy, sx;      // spread
  double amp;         // amplitude, may be negative
  std::size_t channel;
};

/// Parameters of one oriented sinusoidal grating.
struct grating {
  double fy, fx;   // spatial frequency components
  double phase;
  double amp;
  std::size_t channel;
};

struct prototype {
  std::vector<blob> blobs;
  std::vector<grating> gratings;
  double base;  // background level
};

prototype make_prototype(const synthetic_spec& spec, rng& gen) {
  prototype p;
  p.base = gen.uniform(0.25, 0.55);
  for (std::size_t b = 0; b < spec.blobs_per_prototype; ++b) {
    blob bl;
    bl.cy = gen.uniform(0.15, 0.85) * static_cast<double>(spec.height);
    bl.cx = gen.uniform(0.15, 0.85) * static_cast<double>(spec.width);
    bl.sy = gen.uniform(0.08, 0.22) * static_cast<double>(spec.height);
    bl.sx = gen.uniform(0.08, 0.22) * static_cast<double>(spec.width);
    bl.amp = gen.uniform(0.25, 0.6) * (gen.bernoulli(0.35) ? -1.0 : 1.0);
    bl.channel = static_cast<std::size_t>(gen.uniform_index(spec.channels));
    p.blobs.push_back(bl);
  }
  const std::size_t n_gratings = 1 + gen.uniform_index(2);
  for (std::size_t g = 0; g < n_gratings; ++g) {
    grating gr;
    const double theta = gen.uniform(0.0, M_PI);
    const double freq = gen.uniform(1.0, 3.5);
    gr.fy = freq * std::sin(theta) / static_cast<double>(spec.height);
    gr.fx = freq * std::cos(theta) / static_cast<double>(spec.width);
    gr.phase = gen.uniform(0.0, 2.0 * M_PI);
    gr.amp = gen.uniform(0.08, 0.2);
    gr.channel = static_cast<std::size_t>(gen.uniform_index(spec.channels));
    p.gratings.push_back(gr);
  }
  return p;
}

/// Renders a prototype into an image buffer with the given pixel shift.
/// `gen` supplies the per-blob positional jitter.
void render(const prototype& p, const synthetic_spec& spec, double dy,
            double dx, double brightness, rng& gen, float* out) {
  const std::size_t plane = spec.height * spec.width;
  for (std::size_t c = 0; c < spec.channels; ++c) {
    for (std::size_t i = 0; i < plane; ++i) {
      out[c * plane + i] = static_cast<float>(p.base);
    }
  }
  for (const blob& b : p.blobs) {
    float* ch = out + b.channel * plane;
    const double jy = dy + gen.uniform(-spec.blob_jitter, spec.blob_jitter);
    const double jx = dx + gen.uniform(-spec.blob_jitter, spec.blob_jitter);
    for (std::size_t y = 0; y < spec.height; ++y) {
      const double ry = (static_cast<double>(y) - (b.cy + jy)) / b.sy;
      for (std::size_t x = 0; x < spec.width; ++x) {
        const double rx = (static_cast<double>(x) - (b.cx + jx)) / b.sx;
        ch[y * spec.width + x] += static_cast<float>(
            b.amp * std::exp(-0.5 * (ry * ry + rx * rx)));
      }
    }
  }
  for (const grating& g : p.gratings) {
    float* ch = out + g.channel * plane;
    for (std::size_t y = 0; y < spec.height; ++y) {
      for (std::size_t x = 0; x < spec.width; ++x) {
        const double arg = 2.0 * M_PI *
                               (g.fy * (static_cast<double>(y) + dy) +
                                g.fx * (static_cast<double>(x) + dx)) +
                           g.phase;
        ch[y * spec.width + x] += static_cast<float>(g.amp * std::sin(arg));
      }
    }
  }
  const std::size_t total = spec.channels * plane;
  for (std::size_t i = 0; i < total; ++i) {
    out[i] = std::clamp(out[i] * static_cast<float>(brightness), 0.0f, 1.0f);
  }
}

}  // namespace

dataset make_synthetic(const synthetic_spec& spec, std::size_t per_class) {
  ADVH_CHECK(spec.channels > 0 && spec.height > 0 && spec.width > 0);
  ADVH_CHECK(spec.classes > 1 && spec.prototypes_per_class > 0);
  ADVH_CHECK(per_class > 0);

  // Class prototypes come from a stream keyed only by (seed, class) so
  // train/val/test splits built with different per_class agree on classes.
  std::vector<std::vector<prototype>> protos(spec.classes);
  for (std::size_t c = 0; c < spec.classes; ++c) {
    rng class_gen(spec.seed * 0x9e3779b9ULL + c * 1000003ULL + 17ULL);
    for (std::size_t p = 0; p < spec.prototypes_per_class; ++p) {
      protos[c].push_back(make_prototype(spec, class_gen));
    }
  }

  // Confusable pairs: blend odd classes towards their even sibling so the
  // pair shares most visual structure but keeps a delta-scaled own part.
  if (spec.confusable_pairs) {
    const double d = std::clamp(spec.confusable_delta, 0.0, 1.0);
    for (std::size_t c = 1; c < spec.classes; c += 2) {
      for (std::size_t p = 0; p < spec.prototypes_per_class; ++p) {
        prototype& own = protos[c][p];
        const prototype& base = protos[c - 1][p];
        own.base = (1.0 - d) * base.base + d * own.base;
        const std::size_t nb = std::min(own.blobs.size(), base.blobs.size());
        for (std::size_t b = 0; b < nb; ++b) {
          own.blobs[b].cy = (1.0 - d) * base.blobs[b].cy + d * own.blobs[b].cy;
          own.blobs[b].cx = (1.0 - d) * base.blobs[b].cx + d * own.blobs[b].cx;
          own.blobs[b].sy = (1.0 - d) * base.blobs[b].sy + d * own.blobs[b].sy;
          own.blobs[b].sx = (1.0 - d) * base.blobs[b].sx + d * own.blobs[b].sx;
          own.blobs[b].amp =
              (1.0 - d) * base.blobs[b].amp + d * own.blobs[b].amp;
          own.blobs[b].channel = base.blobs[b].channel;
        }
        const std::size_t ng =
            std::min(own.gratings.size(), base.gratings.size());
        for (std::size_t g = 0; g < ng; ++g) {
          own.gratings[g].fy =
              (1.0 - d) * base.gratings[g].fy + d * own.gratings[g].fy;
          own.gratings[g].fx =
              (1.0 - d) * base.gratings[g].fx + d * own.gratings[g].fx;
          own.gratings[g].phase =
              (1.0 - d) * base.gratings[g].phase + d * own.gratings[g].phase;
          own.gratings[g].amp =
              (1.0 - d) * base.gratings[g].amp + d * own.gratings[g].amp;
          own.gratings[g].channel = base.gratings[g].channel;
        }
        own.gratings.resize(ng);
      }
    }
  }

  const std::size_t n = spec.classes * per_class;
  dataset out;
  out.name = spec.name;
  out.num_classes = spec.classes;
  out.images = tensor(shape{n, spec.channels, spec.height, spec.width});
  out.labels.resize(n);
  if (!spec.class_names.empty()) {
    ADVH_CHECK(spec.class_names.size() == spec.classes);
    out.class_names = spec.class_names;
  } else {
    for (std::size_t c = 0; c < spec.classes; ++c) {
      out.class_names.push_back("class" + std::to_string(c));
    }
  }

  rng sample_gen(spec.seed ^ 0xabcdef1234567ULL ^
                 (spec.sample_seed * 0x2545f4914f6cdd1dULL));
  const std::size_t example_numel =
      spec.channels * spec.height * spec.width;
  std::size_t idx = 0;
  for (std::size_t c = 0; c < spec.classes; ++c) {
    for (std::size_t m = 0; m < per_class; ++m, ++idx) {
      const auto& proto =
          protos[c][sample_gen.uniform_index(protos[c].size())];
      const bool hard = sample_gen.bernoulli(spec.hard_fraction);
      const double shift_range = static_cast<double>(
          spec.max_shift + (hard ? spec.hard_extra_shift : 0));
      const double dy = sample_gen.uniform(-shift_range, shift_range);
      const double dx = sample_gen.uniform(-shift_range, shift_range);
      const double jitter =
          spec.brightness_jitter * (hard ? 1.5 : 1.0);
      const double brightness = 1.0 + sample_gen.uniform(-jitter, jitter);
      const double noise =
          spec.pixel_noise * (hard ? spec.hard_noise_multiplier : 1.0);
      float* img = out.images.data().data() + idx * example_numel;
      render(proto, spec, dy, dx, brightness, sample_gen, img);
      for (std::size_t i = 0; i < example_numel; ++i) {
        img[i] = std::clamp(
            img[i] + static_cast<float>(sample_gen.normal(0.0, noise)), 0.0f,
            1.0f);
      }
      out.labels[idx] = c;
    }
  }
  return out;
}

synthetic_spec fashion_mnist_like() {
  synthetic_spec s;
  s.name = "fashion_mnist_like";
  s.channels = 1;
  s.height = 28;
  s.width = 28;
  s.classes = 10;
  s.confusable_delta = 0.1;
  s.seed = 101;
  s.class_names = {"t-shirt/top", "trouser", "pullover", "dress", "coat",
                   "sandal",      "shirt",   "sneaker",  "bag",   "ankle boot"};
  return s;
}

synthetic_spec cifar10_like() {
  synthetic_spec s;
  s.name = "cifar10_like";
  s.channels = 3;
  s.height = 32;
  s.width = 32;
  s.classes = 10;
  s.confusable_delta = 0.07;
  s.seed = 202;
  s.class_names = {"airplane", "automobile", "bird",  "cat",  "deer",
                   "dog",      "frog",       "horse", "ship", "truck"};
  return s;
}

synthetic_spec gtsrb_like() {
  synthetic_spec s;
  s.name = "gtsrb_like";
  s.channels = 3;
  s.height = 32;
  s.width = 32;
  s.classes = 43;
  s.confusable_delta = 0.3;
  s.hard_fraction = 0.08;
  s.seed = 303;
  // GTSRB class 1 is "speed limit (30km/h)" — the paper's target class.
  s.class_names = {"speed limit (20km/h)",
                   "speed limit (30km/h)",
                   "speed limit (50km/h)",
                   "speed limit (60km/h)",
                   "speed limit (70km/h)",
                   "speed limit (80km/h)",
                   "end of speed limit (80km/h)",
                   "speed limit (100km/h)",
                   "speed limit (120km/h)",
                   "no passing",
                   "no passing for heavy vehicles",
                   "right-of-way at next intersection",
                   "priority road",
                   "yield",
                   "stop",
                   "no vehicles",
                   "heavy vehicles prohibited",
                   "no entry",
                   "general caution",
                   "dangerous curve left",
                   "dangerous curve right",
                   "double curve",
                   "bumpy road",
                   "slippery road",
                   "road narrows on the right",
                   "road work",
                   "traffic signals",
                   "pedestrians",
                   "children crossing",
                   "bicycles crossing",
                   "beware of ice/snow",
                   "wild animals crossing",
                   "end of all limits",
                   "turn right ahead",
                   "turn left ahead",
                   "ahead only",
                   "go straight or right",
                   "go straight or left",
                   "keep right",
                   "keep left",
                   "roundabout mandatory",
                   "end of no passing",
                   "end of no passing (heavy vehicles)"};
  return s;
}

}  // namespace advh::data
