#include "serve/queue.hpp"

#include "common/error.hpp"

namespace advh::serve {

const char* to_string(priority p) noexcept {
  switch (p) {
    case priority::canary:
      return "canary";
    case priority::interactive:
      return "interactive";
    case priority::batch:
      return "batch";
  }
  return "?";
}

request_queue::request_queue(std::size_t capacity) : capacity_(capacity) {
  ADVH_CHECK_MSG(capacity_ >= 1, "queue capacity must be positive");
}

push_result request_queue::push(request& r) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Closed beats full: once drain has closed the queue no consumer is
    // guaranteed to come back, so admitting anything — canaries included —
    // would strand the request forever.
    if (closed_) {
      ++rejected_closed_;
      return push_result::rejected_closed;
    }
    const auto lane = static_cast<std::size_t>(r.prio);
    if (r.prio != priority::canary) {
      const std::size_t bounded =
          lanes_[static_cast<std::size_t>(priority::interactive)].size() +
          lanes_[static_cast<std::size_t>(priority::batch)].size();
      if (bounded >= capacity_) {
        ++rejected_full_;
        return push_result::rejected_full;
      }
    }
    lanes_[lane].push_back(std::move(r));
    ++accepted_;
  }
  cv_.notify_one();
  return push_result::accepted;
}

std::optional<request> request_queue::try_pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& lane : lanes_) {
    if (!lane.empty()) {
      request r = std::move(lane.front());
      lane.pop_front();
      return r;
    }
  }
  return std::nullopt;
}

std::optional<request> request_queue::pop_wait(
    std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, timeout, [&] {
    if (closed_) return true;
    for (const auto& lane : lanes_) {
      if (!lane.empty()) return true;
    }
    return false;
  });
  for (auto& lane : lanes_) {
    if (!lane.empty()) {
      request r = std::move(lane.front());
      lane.pop_front();
      return r;
    }
  }
  return std::nullopt;
}

void request_queue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t request_queue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_[static_cast<std::size_t>(priority::interactive)].size() +
         lanes_[static_cast<std::size_t>(priority::batch)].size();
}

std::size_t request_queue::depth(priority p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_[static_cast<std::size_t>(p)].size();
}

std::size_t request_queue::total_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane.size();
  return n;
}

std::uint64_t request_queue::rejected_full() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_full_;
}

std::uint64_t request_queue::rejected_closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_closed_;
}

std::uint64_t request_queue::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

}  // namespace advh::serve
