#include "serve/latency.hpp"

#include <algorithm>
#include <cmath>

namespace advh::serve {

namespace {

// A degenerate smoothing factor silently disables the estimator: alpha == 0
// freezes the estimate at `initial` forever (observations are multiplied by
// zero), and alpha == 1 discards all history, turning the "mean" into the
// last sample. The old closed clamp [0, 1] admitted both. Clamp into an
// open interval instead so every constructed tracker both learns and
// smooths; NaN falls back to the documented default.
constexpr double kAlphaMin = 1e-3;
constexpr double kAlphaMax = 1.0 - 1e-3;
constexpr double kAlphaDefault = 0.2;

double clamp_alpha(double alpha) noexcept {
  if (std::isnan(alpha)) return kAlphaDefault;
  return std::clamp(alpha, kAlphaMin, kAlphaMax);
}

}  // namespace

decaying_mean::decaying_mean(double alpha, double initial) noexcept
    : alpha_(clamp_alpha(alpha)), value_(initial) {}

void decaying_mean::observe(double v) noexcept {
  if (samples_ == 0 && value_ == 0.0) {
    value_ = v;  // an unseeded tracker adopts the first sample outright
  } else {
    value_ = (1.0 - alpha_) * value_ + alpha_ * v;
  }
  ++samples_;
}

latency_tracker::latency_tracker(double alpha, clock_duration initial_unit,
                                 clock_duration initial_fixed) noexcept
    : unit_(alpha, static_cast<double>(initial_unit.count())),
      fixed_(initial_fixed) {}

void latency_tracker::observe(clock_duration total, std::size_t repeats,
                              std::size_t events) noexcept {
  const std::size_t units = std::max<std::size_t>(repeats * events, 1);
  const auto spread = total - std::min(total, fixed_);
  unit_.observe(static_cast<double>(spread.count()) /
                static_cast<double>(units));
}

clock_duration latency_tracker::estimate(std::size_t repeats,
                                         std::size_t events) const noexcept {
  const std::size_t units = std::max<std::size_t>(repeats * events, 1);
  const double ns = unit_.value() * static_cast<double>(units);
  return fixed_ + clock_duration{static_cast<clock_duration::rep>(
                      std::max(ns, 0.0))};
}

}  // namespace advh::serve
