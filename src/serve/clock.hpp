// Injectable clocks for the serving layer.
//
// Every time-dependent decision in src/serve — admission feasibility,
// degradation-ladder transitions, circuit-breaker cooldowns, deadline
// misses — reads time through a clock_face. Production wires in
// steady_clock_face (monotonic wall time); tests and the overload bench
// wire in virtual_clock, which only moves when told to, so scheduling and
// shedding behaviour replays bit for bit — the serving analogue of the
// measurement engine's per-sample RNG streams.
#pragma once

#include <atomic>
#include <chrono>

namespace advh::serve {

/// Time since the clock's epoch. Nanoseconds keep the arithmetic exact:
/// virtual-time runs add durations, never scale them.
using clock_duration = std::chrono::nanoseconds;

/// A clock with no deadline: larger than any horizon a run can reach.
inline constexpr clock_duration no_deadline = clock_duration::max();

class clock_face {
 public:
  virtual ~clock_face() = default;

  /// Monotonic time since the clock's epoch.
  virtual clock_duration now() const = 0;
};

/// Deterministic manually-advanced clock. Thread-safe: readers may query
/// concurrently with an advancing driver, and time never goes backwards.
class virtual_clock final : public clock_face {
 public:
  clock_duration now() const override {
    return clock_duration{ns_.load(std::memory_order_acquire)};
  }

  /// Moves time forward by `d` (negative deltas are ignored).
  void advance(clock_duration d) {
    if (d.count() > 0) ns_.fetch_add(d.count(), std::memory_order_acq_rel);
  }

  /// Moves time forward to `t` if `t` is in the future; no-op otherwise
  /// (an open-loop driver replaying an arrival schedule may fall behind a
  /// busy server — arrivals then take effect at the server's current time).
  void advance_to(clock_duration t) {
    auto cur = ns_.load(std::memory_order_acquire);
    while (t.count() > cur &&
           !ns_.compare_exchange_weak(cur, t.count(),
                                      std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<clock_duration::rep> ns_{0};
};

/// Real monotonic time, with the epoch pinned at construction.
class steady_clock_face final : public clock_face {
 public:
  steady_clock_face() : epoch_(std::chrono::steady_clock::now()) {}

  clock_duration now() const override {
    return std::chrono::duration_cast<clock_duration>(
        std::chrono::steady_clock::now() - epoch_);
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace advh::serve
