// Per-backend circuit breaker for the measurement path.
//
// The resilient measurement layer (src/hpc/resilient_monitor) retries
// transient faults with backoff — exactly right for a healthy backend
// hitting occasional read failures, and exactly wrong for a dead one: each
// request would burn its whole deadline rediscovering the same outage.
// The breaker sits in front of the measurement path and composes with
// common/retry instead of replacing it:
//
//   closed     — requests flow; `failure_threshold` consecutive failures
//                trip the breaker open.
//   open       — requests shed instantly (rejected_breaker), preserving
//                their callers' deadlines; after `cooldown` the breaker
//                moves to half-open.
//   half-open  — up to `half_open_probes` requests are let through as
//                probes; that many consecutive successes close the
//                breaker, any failure re-opens it and restarts cooldown.
//
// Every admission is stamped with the breaker generation at admit time and
// outcome reports carry that stamp back. A report whose generation is not
// current is dropped: a probe admitted in one half-open window must not be
// able to decrement the next window's in-flight count or push its success
// tally over the threshold, which would double-transition the breaker
// (close it on evidence from a window that already failed).
//
// Time comes from the injected clock_face, so every transition is
// deterministic under a virtual clock.
#pragma once

#include <cstdint>
#include <mutex>

#include "serve/clock.hpp"

namespace advh::serve {

enum class breaker_state : std::uint8_t { closed = 0, open = 1, half_open = 2 };

const char* to_string(breaker_state s) noexcept;

/// Monotone generation counter, bumped on every state transition. An
/// admission's generation identifies the window (closed span or half-open
/// probe window) it belongs to.
using breaker_epoch = std::uint64_t;

struct breaker_config {
  /// Consecutive failures (in closed state) that trip the breaker.
  std::size_t failure_threshold = 5;
  /// Time the breaker stays open before probing again.
  clock_duration cooldown = std::chrono::milliseconds(100);
  /// Probe budget in half-open: this many in-flight probes at most, and
  /// this many consecutive successes close the breaker.
  std::size_t half_open_probes = 2;
};

class circuit_breaker {
 public:
  explicit circuit_breaker(const clock_face& clock,
                           breaker_config cfg = breaker_config{});

  /// True when a request may proceed to measurement. Transitions
  /// open -> half-open once the cooldown has elapsed; in half-open,
  /// admits at most `half_open_probes` outstanding probes. On admission,
  /// `*admitted` (when non-null) receives the generation stamp the caller
  /// must pass back to record_success/record_failure/release.
  bool allow(breaker_epoch* admitted = nullptr);

  /// Reports the outcome of a request previously admitted by allow().
  /// Reports stamped with a non-current generation are ignored — they
  /// describe a window that has already transitioned away.
  void record_success(breaker_epoch admitted);
  void record_failure(breaker_epoch admitted);

  /// Releases a half-open probe slot for a request that was admitted but
  /// never reached measurement (shed on deadline before service). Same
  /// staleness rule as the outcome reports.
  void release(breaker_epoch admitted);

  breaker_state state() const;
  std::uint64_t trips() const;

  /// Current generation (for tests and introspection).
  breaker_epoch epoch() const;

 private:
  void trip_open(clock_duration now);

  const clock_face& clock_;
  breaker_config cfg_;
  mutable std::mutex mutex_;
  breaker_state state_ = breaker_state::closed;
  breaker_epoch epoch_ = 0;
  std::size_t consecutive_failures_ = 0;
  std::size_t half_open_inflight_ = 0;
  std::size_t half_open_successes_ = 0;
  clock_duration opened_at_{0};
  std::uint64_t trips_ = 0;
};

}  // namespace advh::serve
