// Per-backend circuit breaker for the measurement path.
//
// The resilient measurement layer (src/hpc/resilient_monitor) retries
// transient faults with backoff — exactly right for a healthy backend
// hitting occasional read failures, and exactly wrong for a dead one: each
// request would burn its whole deadline rediscovering the same outage.
// The breaker sits in front of the measurement path and composes with
// common/retry instead of replacing it:
//
//   closed     — requests flow; `failure_threshold` consecutive failures
//                trip the breaker open.
//   open       — requests shed instantly (rejected_breaker), preserving
//                their callers' deadlines; after `cooldown` the breaker
//                moves to half-open.
//   half-open  — up to `half_open_probes` requests are let through as
//                probes; that many consecutive successes close the
//                breaker, any failure re-opens it and restarts cooldown.
//
// Time comes from the injected clock_face, so every transition is
// deterministic under a virtual clock.
#pragma once

#include <cstdint>
#include <mutex>

#include "serve/clock.hpp"

namespace advh::serve {

enum class breaker_state : std::uint8_t { closed = 0, open = 1, half_open = 2 };

const char* to_string(breaker_state s) noexcept;

struct breaker_config {
  /// Consecutive failures (in closed state) that trip the breaker.
  std::size_t failure_threshold = 5;
  /// Time the breaker stays open before probing again.
  clock_duration cooldown = std::chrono::milliseconds(100);
  /// Probe budget in half-open: this many in-flight probes at most, and
  /// this many consecutive successes close the breaker.
  std::size_t half_open_probes = 2;
};

class circuit_breaker {
 public:
  explicit circuit_breaker(const clock_face& clock,
                           breaker_config cfg = breaker_config{});

  /// True when a request may proceed to measurement. Transitions
  /// open -> half-open once the cooldown has elapsed; in half-open,
  /// admits at most `half_open_probes` outstanding probes.
  bool allow();

  /// Reports the outcome of a request previously admitted by allow().
  void record_success();
  void record_failure();

  /// Releases a half-open probe slot for a request that was admitted but
  /// never reached measurement (shed on deadline before service).
  void release();

  breaker_state state() const;
  std::uint64_t trips() const;

 private:
  void trip_open(clock_duration now);

  const clock_face& clock_;
  breaker_config cfg_;
  mutable std::mutex mutex_;
  breaker_state state_ = breaker_state::closed;
  std::size_t consecutive_failures_ = 0;
  std::size_t half_open_inflight_ = 0;
  std::size_t half_open_successes_ = 0;
  clock_duration opened_at_{0};
  std::uint64_t trips_ = 0;
};

}  // namespace advh::serve
