#include "serve/breaker.hpp"

#include "common/error.hpp"

namespace advh::serve {

const char* to_string(breaker_state s) noexcept {
  switch (s) {
    case breaker_state::closed:
      return "closed";
    case breaker_state::open:
      return "open";
    case breaker_state::half_open:
      return "half-open";
  }
  return "?";
}

circuit_breaker::circuit_breaker(const clock_face& clock, breaker_config cfg)
    : clock_(clock), cfg_(cfg) {
  ADVH_CHECK_MSG(cfg_.failure_threshold >= 1,
                 "breaker failure_threshold must be positive");
  ADVH_CHECK_MSG(cfg_.half_open_probes >= 1,
                 "breaker half_open_probes must be positive");
}

void circuit_breaker::trip_open(clock_duration now) {
  state_ = breaker_state::open;
  ++epoch_;
  opened_at_ = now;
  consecutive_failures_ = 0;
  half_open_inflight_ = 0;
  half_open_successes_ = 0;
  ++trips_;
}

bool circuit_breaker::allow(breaker_epoch* admitted) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = clock_.now();
  if (state_ == breaker_state::open) {
    if (now - opened_at_ < cfg_.cooldown) return false;
    state_ = breaker_state::half_open;
    ++epoch_;
    half_open_inflight_ = 0;
    half_open_successes_ = 0;
  }
  if (state_ == breaker_state::half_open) {
    if (half_open_inflight_ >= cfg_.half_open_probes) return false;
    ++half_open_inflight_;
  }
  if (admitted != nullptr) *admitted = epoch_;
  return true;
}

void circuit_breaker::record_success(breaker_epoch admitted) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A stale stamp means the window this request was admitted into has
  // already transitioned; counting it against the current window could
  // close the breaker on another window's evidence.
  if (admitted != epoch_) return;
  switch (state_) {
    case breaker_state::closed:
      consecutive_failures_ = 0;
      break;
    case breaker_state::half_open:
      if (half_open_inflight_ > 0) --half_open_inflight_;
      if (++half_open_successes_ >= cfg_.half_open_probes) {
        state_ = breaker_state::closed;
        ++epoch_;
        consecutive_failures_ = 0;
        half_open_inflight_ = 0;
        half_open_successes_ = 0;
      }
      break;
    case breaker_state::open:
      break;  // unreachable with a current stamp: trips bump the epoch
  }
}

void circuit_breaker::record_failure(breaker_epoch admitted) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (admitted != epoch_) return;
  const auto now = clock_.now();
  switch (state_) {
    case breaker_state::closed:
      if (++consecutive_failures_ >= cfg_.failure_threshold) trip_open(now);
      break;
    case breaker_state::half_open:
      trip_open(now);  // a failed probe re-opens immediately
      break;
    case breaker_state::open:
      break;
  }
}

void circuit_breaker::release(breaker_epoch admitted) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (admitted != epoch_) return;
  if (state_ == breaker_state::half_open && half_open_inflight_ > 0) {
    --half_open_inflight_;
  }
}

breaker_state circuit_breaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::uint64_t circuit_breaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

breaker_epoch circuit_breaker::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

}  // namespace advh::serve
