// Overload-resilient serving front-end for the detection pipeline.
//
// The ROADMAP's deployment target is a detector screening heavy query
// traffic; a security component that buffers without bound fails in the
// worst possible way — silently and late. detection_service is the layer
// that degrades predictably instead:
//
//   * bounded priority queue (serve/queue) — canary > interactive > batch,
//     explicit rejection instead of unbounded buffering;
//   * admission control — a request is rejected up front when the queue is
//     full or when its deadline is infeasible given the backlog and the
//     decaying service-time estimate (serve/latency), taken at full
//     fidelity so admission promises quality: reject early beats serve
//     late, and steady overload is turned away instead of being admitted
//     and served as single-repeat junk. Batch admission additionally
//     projects the interactive work that will overtake a batch request
//     while it waits (decaying inter-admission gap), and backpressure
//     keeps the batch tail shallow so queued batch can never drag the
//     degradation ladder down for the traffic that will be served;
//   * degradation ladder — as queue occupancy climbs, measurement repeats
//     shed (R = 10 -> 5 -> 3 -> 1), retry budgets tighten (deadline
//     budgets, hpc::measure_budget), and at the deepest rung optional HPC
//     events shed too. Reduced-evidence measurements are scored through
//     the detector's availability-mask path, so shedding composes with
//     the PR 3 fail-closed degraded/abstain policy: less evidence can
//     only make the verdict more conservative, never silently benign.
//     Canary probes never shed — drift monitoring (PR 4) keeps running at
//     full fidelity precisely when the system is stressed;
//   * circuit breaker (serve/breaker) — a dead measurement backend sheds
//     instantly instead of burning each request's deadline on
//     retry/backoff;
//   * stateful query-stream defense (src/track, optional) — identified
//     submissions are fingerprinted in admission order; clients replaying
//     near-duplicate probes are escalated to full-fidelity measurement
//     and, past the ban threshold, rejected up front (rejected_banned)
//     before consuming queue slots or PMU time;
//   * graceful drain — stop admitting, flush admitted work, cancellation
//     token cuts in-flight backoff short.
//
// Determinism: all scheduling state is sequential under a mutex and every
// time read goes through the injected clock. Under a virtual clock the
// service *charges* each request a deterministic simulated cost (advancing
// the clock itself), and measurement runs through the thread-invariant
// batch engine — so a whole overload run is bitwise identical at any
// worker-thread count, the serving analogue of the measurement engine's
// reproducibility contract.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "core/detector.hpp"
#include "serve/breaker.hpp"
#include "serve/latency.hpp"
#include "serve/queue.hpp"

namespace advh::track {
class query_tracker;
}  // namespace advh::track

namespace advh::serve {

/// One rung of the degradation ladder. Rung 0 must engage at occupancy 0
/// (the unloaded operating point); deeper rungs engage as the bounded
/// queue fills.
struct ladder_rung {
  /// Queue occupancy fraction (depth / capacity) at or above which this
  /// rung engages.
  double engage_occupancy = 0.0;
  /// Measurement repeats at this rung (the paper's R after shedding).
  std::size_t repeats = 10;
  /// Retry rounds the resilient layer may spend per sample at this rung
  /// (measure_budget::max_retry_rounds).
  std::size_t max_retry_rounds = hpc::measure_budget::unlimited;
  /// Whether retry backoff sleeps are still allowed at this rung.
  bool allow_backoff = true;
  /// Whether optional HPC events are shed at this rung (only the first
  /// serve_config::kept_events_when_shedding configured events are
  /// measured; the rest score as unavailable -> degraded verdicts).
  bool shed_events = false;
};

/// Deterministic simulated service-cost model (virtual-clock mode): one
/// request costs fixed + per_unit * repeats * events, with a bounded
/// per-request jitter keyed on the request id.
struct cost_model {
  clock_duration fixed = std::chrono::microseconds(200);
  clock_duration per_unit = std::chrono::microseconds(100);
  /// Relative jitter amplitude in [0, 1): cost scales by (1 + jitter * u)
  /// with u in [-1, 1) derived deterministically from the request id.
  double jitter = 0.10;
  std::uint64_t seed = 0x5e7ceULL;

  clock_duration cost(std::uint64_t request_id, std::size_t repeats,
                      std::size_t events) const;
};

struct serve_config {
  /// Bound on queued interactive + batch requests (canaries bypass it).
  std::size_t queue_capacity = 64;
  /// Deadline assigned to non-canary requests that submit without one.
  clock_duration default_deadline = std::chrono::milliseconds(50);
  /// Admission safety factor over the estimated wait + service time:
  /// absorbs estimate error and higher-priority arrivals that will jump
  /// ahead while the request queues.
  double admission_margin = 2.0;
  /// A rung disengages only once occupancy falls below its engage point
  /// minus this hysteresis, so the ladder doesn't flap at a threshold.
  double release_hysteresis = 0.15;
  /// Degradation ladder, shallowest first. Empty = default ladder derived
  /// from the detector's configured repeats R:
  /// occupancy {0, .5, .75, .9} -> repeats {R, R/2, 3R/10, R/10} (min 1).
  std::vector<ladder_rung> ladder;
  /// Events kept when a rung sheds events (the first N configured events;
  /// the paper's strongest detectors lead the event list).
  std::size_t kept_events_when_shedding = 1;
  /// Batch-priority backpressure: a batch request is admitted only while
  /// queue occupancy (after admission) stays at or below this fraction.
  /// Batch work that queues deeply is served last anyway — it sits behind
  /// every interactive arrival until its deadline expires, and meanwhile
  /// its queue slots drag the degradation ladder down for the interactive
  /// traffic that *will* be served. Set below the first degraded rung's
  /// engage occupancy so queued batch alone can never degrade fidelity;
  /// 1.0 disables backpressure.
  double batch_admit_occupancy = 1.0;
  /// Requests serviced per scheduling round (one measure_batch call).
  std::size_t batch_size = 4;
  /// Measurement worker threads per batch (thread-invariant results).
  std::size_t threads = 1;
  breaker_config breaker{};
  /// Decay factor of the service-time estimator.
  double latency_alpha = 0.2;
  /// Seeds for the estimator before the first completion.
  clock_duration initial_unit_cost = std::chrono::microseconds(100);
  clock_duration initial_fixed_cost = std::chrono::microseconds(200);
  /// Simulated cost model (virtual-clock mode only).
  cost_model sim_cost{};
};

/// Applies the strict environment overrides to `base` and returns it:
/// ADVH_QUEUE_DEPTH (positive integer) overrides queue_capacity and
/// ADVH_DEADLINE_MS (positive number) overrides default_deadline. A
/// set-but-malformed knob throws std::invalid_argument — a typo in a
/// deployment manifest must fail loudly, not silently misconfigure the
/// admission controller.
serve_config serve_config_from_env(serve_config base = serve_config{});

/// Resolves the effective degradation ladder: `cfg.ladder` verbatim when
/// non-empty, otherwise the default ladder derived from the detector's
/// full repeat count (occupancy {0, .5, .75, .9} -> repeats
/// {R, R/2, 3R/10, R/10}, min 1, deepest rung sheds events). This is
/// exactly the ladder detection_service will run, exposed so the
/// policy-consistency pass (analysis/policy_pass) can statically verify
/// the same ladder the service would serve.
std::vector<ladder_rung> resolve_ladder(const serve_config& cfg,
                                        std::size_t full_repeats);

/// Loads a serve_config from a `key = value` text file ('#' comments,
/// blank lines ignored). Recognised keys: queue_capacity,
/// default_deadline_ms, admission_margin, release_hysteresis,
/// kept_events_when_shedding, batch_admit_occupancy, batch_size, threads,
/// latency_alpha, initial_unit_cost_us, initial_fixed_cost_us; each
/// `rung = <engage> <repeats> <retry_rounds|unlimited> <backoff> <shed>`
/// line appends one ladder rung (shallowest first). Values are parsed
/// strictly — an unknown key or malformed value throws io_error; whether
/// the *parsed* config is serveable is the policy pass's judgement
/// (advh_check / detection_service construction), not the parser's.
serve_config load_serve_config(const std::string& path);

/// Admission decision for one submitted request.
enum class admit_status : std::uint8_t {
  admitted = 0,
  rejected_queue_full = 1,
  rejected_deadline = 2,
  rejected_breaker = 3,
  rejected_draining = 4,
  /// Batch-only: queue occupancy above serve_config::batch_admit_occupancy.
  rejected_backpressure = 5,
  /// The attached query tracker (src/track) has banned this client's
  /// query stream; the request is shed before consuming any queue slot.
  rejected_banned = 6,
};

const char* to_string(admit_status s) noexcept;

struct submit_result {
  std::uint64_t id = 0;
  admit_status status = admit_status::admitted;
  /// True when this submission is the one that crossed the attached
  /// tracker's ban threshold (the request itself is rejected_banned).
  /// Surfaced so a replicated deployment can externalise the ban decision
  /// — persist it and announce it fleet-wide — before any later query
  /// observes its effect.
  bool newly_banned = false;
  bool admitted() const noexcept { return status == admit_status::admitted; }
};

/// Terminal outcome of an admitted request.
struct response {
  enum class kind : std::uint8_t {
    served = 0,         ///< measured and scored
    shed_deadline = 1,  ///< admitted but infeasible by service time
    failed_backend = 2, ///< measurement path threw (breaker records it)
  };

  std::uint64_t id = 0;
  priority prio = priority::interactive;
  kind outcome = kind::served;
  core::verdict v;  ///< meaningful only when outcome == served
  clock_duration submitted{0};
  clock_duration completed{0};
  clock_duration deadline = no_deadline;
  std::uint32_t repeats_used = 0;
  std::size_t rung = 0;        ///< ladder rung the request ran under
  bool events_shed = false;
  /// Client identity the request was submitted under (0 = anonymous).
  std::uint64_t client = 0;
  /// Served at full fidelity because the tracker escalated the client.
  bool escalated = false;
  /// The submitter asked for a degraded-confidence verdict (fleet
  /// secondary serving a speculative re-route); echoed from the request.
  bool degraded_confidence = false;
  /// Completed after its deadline — the failure mode admission control
  /// exists to prevent; the overload bench gates on zero of these.
  bool deadline_missed = false;
};

/// Aggregate counters; every request lands in exactly one terminal bucket.
struct serve_stats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_breaker = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t rejected_backpressure = 0;
  /// Requests shed because the query tracker banned the client.
  std::uint64_t rejected_banned = 0;
  /// Requests admitted while their client was tracker-escalated (served
  /// at full fidelity regardless of the current ladder rung).
  std::uint64_t escalated_admitted = 0;
  std::uint64_t escalated_served = 0;
  /// Requests served under the degraded-confidence tag (fleet secondary
  /// speculative serving).
  std::uint64_t served_degraded_confidence = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t failed_backend = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t canary_submitted = 0;
  std::uint64_t canary_served = 0;
  /// Canary probes shed, rejected, degraded or run at reduced fidelity —
  /// must stay 0 (draining rejections excluded: shutdown stops canaries
  /// like everything else).
  std::uint64_t canary_shed = 0;
  std::uint64_t flagged_adversarial = 0;
  std::uint64_t degraded_verdicts = 0;
  std::uint64_t abstained_verdicts = 0;
  /// Sum over served requests of (full R - repeats used).
  std::uint64_t repeats_shed = 0;
  std::uint64_t events_shed_requests = 0;
  std::uint64_t breaker_trips = 0;
  /// Served verdicts the embedding layer retracted after the fact
  /// because the detector state backing them failed integrity
  /// verification (e.g. the fleet's corrupt-shard fence). Recorded via
  /// note_integrity_suppression(); the verdict still counted as served
  /// here — this tracks how many of those servings were unusable.
  std::uint64_t suppressed_integrity = 0;
  std::vector<std::uint64_t> served_by_rung;
  std::size_t max_rung_engaged = 0;
};

class detection_service {
 public:
  /// Simulation mode: time only moves when the service charges request
  /// costs (cfg.sim_cost) or the driver advances the clock. Bitwise
  /// deterministic at any cfg.threads.
  detection_service(const core::detector& det, hpc::hpc_monitor& monitor,
                    virtual_clock& clock, serve_config cfg);

  /// Wall-clock mode: costs are observed, not charged.
  detection_service(const core::detector& det, hpc::hpc_monitor& monitor,
                    const clock_face& clock, serve_config cfg);

  /// Submits one request. `deadline` is relative to now (nullopt: the
  /// configured default for interactive/batch, none for canaries). The
  /// input tensor is consumed only when the request is admitted.
  ///
  /// `client` names the submitting query stream for the stateful defense
  /// (src/track); 0 = anonymous/untracked. When a tracker is attached,
  /// every identified submission is fingerprinted in admission order
  /// (under the scheduler lock, so the tracker sees a deterministic
  /// stream regardless of measurement thread count): banned clients are
  /// rejected up front with rejected_banned, elevated clients' requests
  /// are flagged for full-fidelity service.
  ///
  /// `degraded_confidence` tags the eventual verdict as degraded (fleet
  /// secondary serving a speculative re-route of a silent primary); it
  /// changes nothing about measurement or scoring.
  submit_result submit(tensor input, priority prio,
                       std::optional<clock_duration> deadline = std::nullopt,
                       std::uint64_t client = 0,
                       bool degraded_confidence = false);

  /// Attaches the stateful query tracker. Must be called before traffic
  /// is submitted; the tracker must outlive the service. The service
  /// feeds it twice per identified request: the input fingerprint at
  /// submit, and the HPC trace sketch after a served measurement
  /// (corroboration signal for the escalation ladder).
  void attach_tracker(track::query_tracker& tracker);

  /// Services up to cfg.batch_size queued requests: picks the ladder rung
  /// from queue occupancy, sheds queued requests that can no longer meet
  /// their deadline, measures the rest (canaries at full fidelity) and
  /// scores them. Returns the completed responses, submission order
  /// within the round; empty when the queue is idle. Safe to call from
  /// multiple worker threads (rounds serialise on an internal mutex — the
  /// measurement backend multiplexes one physical PMU anyway).
  std::vector<response> service_batch();

  /// Simulation driver: runs service rounds until the virtual clock
  /// reaches `t` or the queue empties.
  std::vector<response> run_until(clock_duration t);

  /// Stops admitting (submissions return rejected_draining) and cancels
  /// in-flight retry backoff waits; already-admitted work stays queued.
  void drain();
  bool draining() const;

  /// Services the remaining queue to completion (drain() first for a
  /// clean shutdown; requests past their deadline shed rather than serve).
  std::vector<response> flush();

  /// Atomically replaces the detector the service scores with (fleet
  /// checkpoint apply / recalibration rollout). The new detector is run
  /// through the same policy-consistency gate as construction and must
  /// outlive the service; the degradation ladder is re-derived from its
  /// repeat count. Blocks until the in-flight service round (if any)
  /// completes, so no round ever scores with a mix of old and new models.
  void swap_detector(const core::detector& det);

  /// Records that an embedding layer retracted one served verdict on
  /// integrity grounds (see serve_stats::suppressed_integrity).
  void note_integrity_suppression();

  serve_stats stats() const;
  std::size_t rung() const;
  std::size_t queue_depth() const { return queue_.depth(); }
  breaker_state breaker() const { return breaker_.state(); }
  const serve_config& config() const noexcept { return cfg_; }
  const core::detector& detector_ref() const noexcept { return *det_; }
  const std::vector<ladder_rung>& ladder() const noexcept { return ladder_; }

 private:
  struct planned {
    request req;
    std::size_t rung = 0;
    std::size_t repeats = 0;
    std::size_t events = 0;  ///< events actually measured
    bool shed = false;       ///< deadline-shed before measurement
  };

  detection_service(const core::detector& det, hpc::hpc_monitor& monitor,
                    const clock_face& clock, virtual_clock* vclock,
                    serve_config cfg);

  /// Estimated service cost at a rung (full fidelity for canaries).
  clock_duration estimate_for(const ladder_rung& rung) const;
  clock_duration estimate_canary() const;
  void update_rung(double occupancy);
  response serve_one(const planned& p, const hpc::measurement* m,
                     bool backend_failed);

  const core::detector* det_;  ///< swappable via swap_detector, never null
  hpc::hpc_monitor& monitor_;
  const clock_face& clock_;
  virtual_clock* vclock_;  ///< non-null in simulation mode
  track::query_tracker* qtracker_ = nullptr;  ///< optional, not owned
  serve_config cfg_;
  std::vector<ladder_rung> ladder_;
  request_queue queue_;
  circuit_breaker breaker_;
  cancel_token drain_cancel_;

  mutable std::mutex state_mutex_;
  latency_tracker tracker_;
  /// Decaying gap between admitted interactive requests: batch admission
  /// projects how much higher-priority work will overtake a batch request
  /// during its wait. Under sustained interactive pressure that projection
  /// exceeds any batch deadline, so steady overload rejects batch up front
  /// instead of admitting it and shedding it later.
  decaying_mean interactive_gap_;
  clock_duration last_interactive_{0};
  bool have_interactive_ = false;
  serve_stats stats_;
  std::size_t rung_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t inflight_ = 0;  ///< requests popped but not yet completed
  bool draining_ = false;

  /// Serialises service rounds: measurement backends assign sample
  /// streams in call order, so concurrent rounds must not interleave.
  std::mutex service_mutex_;
};

}  // namespace advh::serve
