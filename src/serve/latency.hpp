// Decaying service-time estimation for admission control.
//
// The admission controller must answer "can this request still make its
// deadline?" before any measurement runs, which needs an estimate of how
// long one measurement takes at the ladder rung it would run under. A
// measurement's cost is dominated by its unit count — repeats x events —
// so the tracker maintains an exponentially-decaying mean of the observed
// per-unit cost plus a fixed per-request overhead estimate, and projects
// the cost of any (repeats, events) combination from those. Estimates are
// a pure function of the observation sequence: deterministic drivers get
// deterministic admission decisions.
#pragma once

#include <cstddef>
#include <cstdint>

#include "serve/clock.hpp"

namespace advh::serve {

/// Exponentially-decaying mean: value <- (1 - alpha) * value + alpha * v.
/// Before the first observation it reports its seed value. `alpha` is
/// clamped into the open interval [1e-3, 1 - 1e-3] (NaN falls back to the
/// default 0.2): the closed endpoints are degenerate — 0 freezes the
/// estimate at its seed forever, 1 disables smoothing entirely.
class decaying_mean {
 public:
  explicit decaying_mean(double alpha = 0.2, double initial = 0.0) noexcept;

  void observe(double v) noexcept;
  double value() const noexcept { return value_; }
  std::uint64_t samples() const noexcept { return samples_; }

 private:
  double alpha_;
  double value_;
  std::uint64_t samples_ = 0;
};

/// Per-unit measurement-cost tracker. One unit = one (repeat x event)
/// counter reading; a request's projected cost is
///   fixed_overhead + unit_cost * repeats * events.
class latency_tracker {
 public:
  /// `initial_unit` / `initial_fixed` seed the estimates so admission has
  /// something to reason with before the first completion.
  latency_tracker(double alpha, clock_duration initial_unit,
                  clock_duration initial_fixed) noexcept;

  /// Records one completed measurement of `repeats` x `events` units that
  /// took `total` (fixed overhead is attributed first, the remainder is
  /// spread over the units).
  void observe(clock_duration total, std::size_t repeats,
               std::size_t events) noexcept;

  /// Projected service time for one request at the given shape.
  clock_duration estimate(std::size_t repeats, std::size_t events) const
      noexcept;

  std::uint64_t samples() const noexcept { return unit_.samples(); }

 private:
  decaying_mean unit_;   ///< ns per (repeat x event) unit
  clock_duration fixed_; ///< per-request overhead, held constant
};

}  // namespace advh::serve
