// Bounded MPMC request queue with priority classes.
//
// The queue is the only buffer between traffic and the measurement path,
// and it is explicitly bounded: when it is full the push *fails* — callers
// get immediate backpressure instead of unbounded latency. Three priority
// classes exist, served strictly highest-first with FIFO order inside a
// class:
//
//   canary      — PR 4's drift probes. Never count against capacity and
//                 never shed: the drift monitor must keep functioning
//                 precisely when the system is under the most stress.
//   interactive — latency-sensitive user queries.
//   batch       — throughput traffic; first to starve under overload.
//
// The queue itself is a dumb, thread-safe container; all policy (admission
// control, deadline checks, shedding) lives in detection_service.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "serve/clock.hpp"
#include "tensor/tensor.hpp"

namespace advh::serve {

enum class priority : std::uint8_t { canary = 0, interactive = 1, batch = 2 };
inline constexpr std::size_t num_priorities = 3;

const char* to_string(priority p) noexcept;

/// One queued detection request.
struct request {
  std::uint64_t id = 0;
  tensor input;
  priority prio = priority::interactive;
  /// Absolute submission time (service clock).
  clock_duration submitted{0};
  /// Absolute deadline; no_deadline = none. Canary probes default to none.
  clock_duration deadline = no_deadline;
};

class request_queue {
 public:
  /// `capacity` bounds the queued interactive + batch requests. Canary
  /// probes bypass the bound (the pinned canary set is small by
  /// construction — see core::pick_canaries).
  explicit request_queue(std::size_t capacity);

  /// Enqueues `r`; returns false (leaving `r` untouched) when the bound
  /// is hit. Canary pushes always succeed.
  bool try_push(request& r);

  /// Pops the oldest request of the highest non-empty priority class.
  std::optional<request> try_pop();

  /// Like try_pop, but blocks up to `timeout` for a request to arrive.
  /// Wakes early when close() is called.
  std::optional<request> pop_wait(std::chrono::milliseconds timeout);

  /// Wakes all blocked pop_wait callers (drain/shutdown). The queue stays
  /// usable; close only interrupts waiting.
  void close();

  /// Queued interactive + batch requests (the capacity-bounded set).
  std::size_t depth() const;
  /// Queued requests of one class.
  std::size_t depth(priority p) const;
  /// Queued requests across all classes, canaries included.
  std::size_t total_depth() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::array<std::deque<request>, num_priorities> lanes_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace advh::serve
