// Bounded MPMC request queue with priority classes.
//
// The queue is the only buffer between traffic and the measurement path,
// and it is explicitly bounded: when it is full the push *fails* — callers
// get immediate backpressure instead of unbounded latency. Three priority
// classes exist, served strictly highest-first with FIFO order inside a
// class:
//
//   canary      — PR 4's drift probes. Never count against capacity and
//                 never shed: the drift monitor must keep functioning
//                 precisely when the system is under the most stress.
//   interactive — latency-sensitive user queries.
//   batch       — throughput traffic; first to starve under overload.
//
// Two hardening rules fell out of the serve/admission audit:
//
//   * a closed queue rejects every push, canaries included. Before, a
//     push racing close() could land a request in a queue whose blocked
//     consumers had already woken and left — admitted work stranded with
//     nobody to serve it. Rejection is typed (rejected_closed) so callers
//     can tell shutdown from backpressure.
//   * rejection counters live *inside* the queue, updated under the same
//     lock that makes the accept/reject decision. Callers that counted
//     rejections under their own lock could drift from the decisions
//     whenever a push raced a drain; these counters cannot.
//
// Capacity accounting is global across the two bounded lanes (interactive
// + batch share one bound; an exactly-full queue rejects either lane and
// still accepts canaries) — the regression tests pin the exact-full
// boundary. All policy (admission control, deadline checks, shedding)
// lives in detection_service.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "serve/clock.hpp"
#include "tensor/tensor.hpp"

namespace advh::serve {

enum class priority : std::uint8_t { canary = 0, interactive = 1, batch = 2 };
inline constexpr std::size_t num_priorities = 3;

const char* to_string(priority p) noexcept;

/// One queued detection request.
struct request {
  std::uint64_t id = 0;
  tensor input;
  priority prio = priority::interactive;
  /// Client identity for the stateful query-stream defense (src/track);
  /// 0 = anonymous/untracked.
  std::uint64_t client = 0;
  /// Set when the tracker escalated the client: served at full fidelity
  /// (rung-0 repeats and events) regardless of the current ladder rung.
  bool escalated = false;
  /// Set when the submitter asked for a degraded-confidence verdict — a
  /// fleet secondary serving a speculative re-route of a crashed
  /// primary's request. The flag rides through to the response so the
  /// caller can tag the verdict; it does not change how the request is
  /// measured or scored.
  bool degraded_confidence = false;
  /// Absolute submission time (service clock).
  clock_duration submitted{0};
  /// Absolute deadline; no_deadline = none. Canary probes default to none.
  clock_duration deadline = no_deadline;
  /// Circuit-breaker generation stamped at admission; outcome reports carry
  /// it back so a stale probe cannot double-transition the breaker.
  std::uint64_t breaker_epoch = 0;
};

/// Typed outcome of a push; the decision and its counter update happen
/// atomically under the queue lock.
enum class push_result : std::uint8_t {
  accepted = 0,
  rejected_full = 1,    ///< bounded lanes at capacity (non-canary only)
  rejected_closed = 2,  ///< queue closed (drain/shutdown); all classes
};

class request_queue {
 public:
  /// `capacity` bounds the queued interactive + batch requests. Canary
  /// probes bypass the bound (the pinned canary set is small by
  /// construction — see core::pick_canaries).
  explicit request_queue(std::size_t capacity);

  /// Enqueues `r`; `r` is left untouched on rejection. Canary pushes
  /// bypass the capacity bound but not close().
  push_result push(request& r);

  /// Compatibility shim: push(), reported as a bool.
  bool try_push(request& r) { return push(r) == push_result::accepted; }

  /// Pops the oldest request of the highest non-empty priority class.
  std::optional<request> try_pop();

  /// Like try_pop, but blocks up to `timeout` for a request to arrive.
  /// Wakes early when close() is called.
  std::optional<request> pop_wait(std::chrono::milliseconds timeout);

  /// Wakes all blocked pop_wait callers and rejects all further pushes
  /// (drain/shutdown). Already-queued requests stay poppable.
  void close();

  /// Queued interactive + batch requests (the capacity-bounded set).
  std::size_t depth() const;
  /// Queued requests of one class.
  std::size_t depth(priority p) const;
  /// Queued requests across all classes, canaries included.
  std::size_t total_depth() const;
  std::size_t capacity() const noexcept { return capacity_; }

  /// Pushes rejected at the capacity bound, exact by construction (same
  /// lock as the decision).
  std::uint64_t rejected_full() const;
  /// Pushes rejected because the queue was closed.
  std::uint64_t rejected_closed() const;
  /// Pushes accepted; accepted + rejected_full + rejected_closed equals
  /// the number of push() calls ever made.
  std::uint64_t accepted() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::array<std::deque<request>, num_priorities> lanes_;
  std::size_t capacity_;
  bool closed_ = false;
  std::uint64_t rejected_full_ = 0;
  std::uint64_t rejected_closed_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace advh::serve
