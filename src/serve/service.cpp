#include "serve/service.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/policy_pass.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "hpc/trace_sketch.hpp"
#include "track/tracker.hpp"

namespace advh::serve {

namespace {

/// Strict positive-number parsing for the serve env knobs, mirroring the
/// PR 4 convention (hpc/factory env_rate): the whole string must parse
/// and land in (0, max_value].
double env_positive(const char* name, const char* value, double max_value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE || !(v > 0.0) ||
      v > max_value) {
    throw std::invalid_argument(std::string(name) + "=\"" + value +
                                "\": expected a number in (0, " +
                                std::to_string(max_value) + "]");
  }
  return v;
}

}  // namespace

clock_duration cost_model::cost(std::uint64_t request_id, std::size_t repeats,
                                std::size_t events) const {
  const std::size_t units = std::max<std::size_t>(repeats * events, 1);
  double ns = static_cast<double>(fixed.count()) +
              static_cast<double>(per_unit.count()) *
                  static_cast<double>(units);
  if (jitter > 0.0) {
    // Keyed on the request id alone: the cost of request k never depends
    // on scheduling order or thread count.
    const double u = rng::stream(seed, request_id).uniform(-1.0, 1.0);
    ns *= 1.0 + jitter * u;
  }
  return clock_duration{
      static_cast<clock_duration::rep>(std::max(ns, 0.0))};
}

serve_config serve_config_from_env(serve_config base) {
  if (const char* env = std::getenv("ADVH_QUEUE_DEPTH")) {
    const double v = env_positive("ADVH_QUEUE_DEPTH", env, 1e6);
    const auto depth = static_cast<std::size_t>(v);
    if (static_cast<double>(depth) != v) {
      throw std::invalid_argument(std::string("ADVH_QUEUE_DEPTH=\"") + env +
                                  "\": expected a positive integer");
    }
    base.queue_capacity = depth;
  }
  if (const char* env = std::getenv("ADVH_DEADLINE_MS")) {
    const double ms = env_positive("ADVH_DEADLINE_MS", env, 1e7);
    base.default_deadline = std::chrono::duration_cast<clock_duration>(
        std::chrono::duration<double, std::milli>(ms));
  }
  return base;
}

std::vector<ladder_rung> resolve_ladder(const serve_config& cfg,
                                        std::size_t full_repeats) {
  if (!cfg.ladder.empty()) return cfg.ladder;
  // The issue ladder: R = 10 -> 5 -> 3 -> 1 for the paper's default R,
  // derived proportionally for any other configured repeats.
  const auto shed = [&](std::size_t num, std::size_t den) {
    return std::max<std::size_t>(full_repeats * num / den, 1);
  };
  // Every degraded rung keeps one backoff-free repair round: at one
  // repeat a single faulted read would otherwise erase the sample's
  // only evidence, and fail-closed scoring would flag it — correct for
  // the request, ruinous for clean-traffic accuracy under chaos.
  return {
      {0.00, full_repeats, hpc::measure_budget::unlimited, true, false},
      {0.50, shed(5, 10), 2, false, false},
      {0.75, shed(3, 10), 2, false, false},
      {0.90, shed(1, 10), 1, false, true},
  };
}

namespace {

[[noreturn]] void bad_config_line(const std::string& path, std::size_t lineno,
                                  const std::string& line,
                                  const std::string& why) {
  throw io_error(path + ":" + std::to_string(lineno) + ": " + why + " in \"" +
                 line + "\"");
}

double parse_number(const std::string& path, std::size_t lineno,
                    const std::string& line, const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE ||
      !(v == v)) {  // rejects empty, trailing junk, overflow and NaN
    bad_config_line(path, lineno, line, "malformed number \"" + token + "\"");
  }
  return v;
}

std::size_t parse_count(const std::string& path, std::size_t lineno,
                        const std::string& line, const std::string& token) {
  const double v = parse_number(path, lineno, line, token);
  const auto n = static_cast<std::size_t>(v);
  if (v < 0.0 || static_cast<double>(n) != v) {
    bad_config_line(path, lineno, line,
                    "expected a non-negative integer, got \"" + token + "\"");
  }
  return n;
}

}  // namespace

serve_config load_serve_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error(path + ": cannot open serve config");
  serve_config cfg;
  cfg.ladder.clear();
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line
    std::string eq;
    if (!(ls >> eq) || eq != "=") {
      bad_config_line(path, lineno, line, "expected \"key = value\"");
    }
    if (key == "rung") {
      std::string engage, repeats, rounds, backoff, shed, extra;
      if (!(ls >> engage >> repeats >> rounds >> backoff >> shed) ||
          (ls >> extra)) {
        bad_config_line(path, lineno, line,
                        "expected \"rung = <engage> <repeats> "
                        "<retry_rounds|unlimited> <backoff> <shed>\"");
      }
      ladder_rung r;
      r.engage_occupancy = parse_number(path, lineno, line, engage);
      r.repeats = parse_count(path, lineno, line, repeats);
      r.max_retry_rounds = rounds == "unlimited"
                               ? hpc::measure_budget::unlimited
                               : parse_count(path, lineno, line, rounds);
      r.allow_backoff = parse_count(path, lineno, line, backoff) != 0;
      r.shed_events = parse_count(path, lineno, line, shed) != 0;
      cfg.ladder.push_back(r);
      continue;
    }
    std::string value, extra;
    if (!(ls >> value) || (ls >> extra)) {
      bad_config_line(path, lineno, line, "expected a single value");
    }
    if (key == "queue_capacity") {
      cfg.queue_capacity = parse_count(path, lineno, line, value);
    } else if (key == "default_deadline_ms") {
      cfg.default_deadline = std::chrono::duration_cast<clock_duration>(
          std::chrono::duration<double, std::milli>(
              parse_number(path, lineno, line, value)));
    } else if (key == "admission_margin") {
      cfg.admission_margin = parse_number(path, lineno, line, value);
    } else if (key == "release_hysteresis") {
      cfg.release_hysteresis = parse_number(path, lineno, line, value);
    } else if (key == "kept_events_when_shedding") {
      cfg.kept_events_when_shedding = parse_count(path, lineno, line, value);
    } else if (key == "batch_admit_occupancy") {
      cfg.batch_admit_occupancy = parse_number(path, lineno, line, value);
    } else if (key == "batch_size") {
      cfg.batch_size = parse_count(path, lineno, line, value);
    } else if (key == "threads") {
      cfg.threads = parse_count(path, lineno, line, value);
    } else if (key == "latency_alpha") {
      cfg.latency_alpha = parse_number(path, lineno, line, value);
    } else if (key == "initial_unit_cost_us") {
      cfg.initial_unit_cost = std::chrono::duration_cast<clock_duration>(
          std::chrono::duration<double, std::micro>(
              parse_number(path, lineno, line, value)));
    } else if (key == "initial_fixed_cost_us") {
      cfg.initial_fixed_cost = std::chrono::duration_cast<clock_duration>(
          std::chrono::duration<double, std::micro>(
              parse_number(path, lineno, line, value)));
    } else {
      bad_config_line(path, lineno, line, "unknown key \"" + key + "\"");
    }
  }
  return cfg;
}

const char* to_string(admit_status s) noexcept {
  switch (s) {
    case admit_status::admitted:
      return "admitted";
    case admit_status::rejected_queue_full:
      return "rejected-queue-full";
    case admit_status::rejected_deadline:
      return "rejected-deadline";
    case admit_status::rejected_breaker:
      return "rejected-breaker";
    case admit_status::rejected_draining:
      return "rejected-draining";
    case admit_status::rejected_backpressure:
      return "rejected-backpressure";
    case admit_status::rejected_banned:
      return "rejected-banned";
  }
  return "?";
}

namespace {

/// Policy-consistency gate, run before any member (queue, breaker,
/// tracker) is built from the config: a contradictory serve/detector
/// configuration (fail-open evidence hole, unserveable deadline,
/// malformed ladder, zero-capacity queue) is rejected at construction
/// with the same ADVH-Exxx codes advh_check reports, not discovered
/// under the first overloaded request.
serve_config checked_config(serve_config cfg, const core::detector& det) {
  analysis::check_report report;
  report.target = "serve config";
  analysis::check_serve_policy(cfg, det.config(), report);
  if (report.has_errors()) throw analysis::check_error(std::move(report));
  return cfg;
}

}  // namespace

detection_service::detection_service(const core::detector& det,
                                     hpc::hpc_monitor& monitor,
                                     virtual_clock& clock, serve_config cfg)
    : detection_service(det, monitor, clock, &clock, std::move(cfg)) {}

detection_service::detection_service(const core::detector& det,
                                     hpc::hpc_monitor& monitor,
                                     const clock_face& clock, serve_config cfg)
    : detection_service(det, monitor, clock, nullptr, std::move(cfg)) {}

detection_service::detection_service(const core::detector& det,
                                     hpc::hpc_monitor& monitor,
                                     const clock_face& clock,
                                     virtual_clock* vclock, serve_config cfg)
    : det_(&det),
      monitor_(monitor),
      clock_(clock),
      vclock_(vclock),
      cfg_(checked_config(std::move(cfg), det)),
      queue_(cfg_.queue_capacity),
      breaker_(clock_, cfg_.breaker),
      tracker_(cfg_.latency_alpha, cfg_.initial_unit_cost,
               cfg_.initial_fixed_cost),
      interactive_gap_(cfg_.latency_alpha) {
  const std::size_t n_events = det_->config().events.size();
  cfg_.kept_events_when_shedding = std::clamp<std::size_t>(
      cfg_.kept_events_when_shedding, 1, std::max<std::size_t>(n_events, 1));
  ladder_ = resolve_ladder(cfg_, det_->config().repeats);
  stats_.served_by_rung.assign(ladder_.size(), 0);
}

clock_duration detection_service::estimate_for(const ladder_rung& rung) const {
  const std::size_t n_events = rung.shed_events
                                   ? cfg_.kept_events_when_shedding
                                   : det_->config().events.size();
  return tracker_.estimate(rung.repeats, n_events);
}

clock_duration detection_service::estimate_canary() const {
  return tracker_.estimate(det_->config().repeats, det_->config().events.size());
}

void detection_service::update_rung(double occupancy) {
  std::size_t target = 0;
  for (std::size_t r = 0; r < ladder_.size(); ++r) {
    if (occupancy >= ladder_[r].engage_occupancy) target = r;
  }
  if (target > rung_) {
    rung_ = target;  // engage immediately: overload is now
  } else if (target < rung_ &&
             occupancy <
                 ladder_[rung_].engage_occupancy - cfg_.release_hysteresis) {
    rung_ = target;  // release only once clearly below the engage point
  }
  stats_.max_rung_engaged = std::max(stats_.max_rung_engaged, rung_);
}

void detection_service::attach_tracker(track::query_tracker& tracker) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  qtracker_ = &tracker;
}

void detection_service::swap_detector(const core::detector& det) {
  // Taking the service mutex first means any in-flight service round
  // finishes scoring against the old detector before the swap; scheduler
  // state (ladder, rung counters) then updates under the state mutex.
  std::lock_guard<std::mutex> service_lock(service_mutex_);
  std::lock_guard<std::mutex> lock(state_mutex_);
  checked_config(cfg_, det);  // same policy gate as construction
  det_ = &det;
  const std::size_t n_events = det.config().events.size();
  cfg_.kept_events_when_shedding = std::clamp<std::size_t>(
      cfg_.kept_events_when_shedding, 1, std::max<std::size_t>(n_events, 1));
  ladder_ = resolve_ladder(cfg_, det.config().repeats);
  if (stats_.served_by_rung.size() != ladder_.size()) {
    stats_.served_by_rung.assign(ladder_.size(), 0);
  }
  rung_ = std::min(rung_, ladder_.size() - 1);
}

submit_result detection_service::submit(
    tensor input, priority prio, std::optional<clock_duration> deadline,
    std::uint64_t client, bool degraded_confidence) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  const auto now = clock_.now();
  submit_result res;
  res.id = next_id_++;
  ++stats_.submitted;
  const bool canary = prio == priority::canary;
  if (canary) ++stats_.canary_submitted;

  const auto reject = [&](admit_status why) {
    res.status = why;
    switch (why) {
      case admit_status::rejected_queue_full:
        ++stats_.rejected_queue_full;
        break;
      case admit_status::rejected_deadline:
        ++stats_.rejected_deadline;
        break;
      case admit_status::rejected_breaker:
        ++stats_.rejected_breaker;
        break;
      case admit_status::rejected_draining:
        ++stats_.rejected_draining;
        break;
      case admit_status::rejected_backpressure:
        ++stats_.rejected_backpressure;
        break;
      case admit_status::rejected_banned:
        ++stats_.rejected_banned;
        break;
      case admit_status::admitted:
        break;
    }
    // Draining rejects everything alike — that is shutdown, not shedding.
    if (canary && why != admit_status::rejected_draining &&
        why != admit_status::admitted) {
      ++stats_.canary_shed;
    }
    return res;
  };

  if (draining_) return reject(admit_status::rejected_draining);

  // Stateful query-stream defense: every identified submission is shown
  // to the tracker, including ones later rejected for depth or deadline —
  // an attacker cannot hide a campaign behind backpressure. Observation
  // happens here, under the scheduler lock, so the tracker sees queries
  // in admission order: its escalation and ban decisions are a pure
  // function of the submission sequence, bitwise reproducible at any
  // measurement thread count.
  bool escalated = false;
  if (qtracker_ != nullptr && client != 0 && !canary) {
    const track::track_decision d = qtracker_->observe(client, input);
    res.newly_banned = d.newly_banned;
    if (d.level == track::escalation::banned) {
      return reject(admit_status::rejected_banned);
    }
    escalated = d.level == track::escalation::elevated;
  }

  // Batch backpressure: batch work that queues deeply just sits behind
  // every interactive arrival until its deadline expires, while its queue
  // slots drag the degradation ladder down for the traffic that will be
  // served. Keep the batch tail shallow instead.
  if (prio == priority::batch && cfg_.batch_admit_occupancy < 1.0) {
    const double after =
        static_cast<double>(queue_.depth() + 1) /
        static_cast<double>(cfg_.queue_capacity);
    if (after > cfg_.batch_admit_occupancy) {
      return reject(admit_status::rejected_backpressure);
    }
  }

  request r;
  r.id = res.id;
  r.input = std::move(input);
  r.prio = prio;
  r.client = client;
  r.escalated = escalated;
  r.degraded_confidence = degraded_confidence;
  r.submitted = now;
  if (deadline.has_value()) {
    r.deadline = *deadline == no_deadline ? no_deadline : now + *deadline;
  } else {
    r.deadline = canary ? no_deadline : now + cfg_.default_deadline;
  }

  if (!canary) {
    // Deadline feasibility: everything queued at this priority or higher
    // is served first, plus whatever is in flight; the margin absorbs
    // estimate error and higher-priority arrivals that will overtake us.
    // The estimate is taken at FULL fidelity, not the current rung:
    // admission promises quality. Estimating at a degraded rung would be
    // self-defeating — the deeper the ladder sinks, the cheaper requests
    // look, and steady overload would be admitted wholesale and served as
    // single-repeat junk. Instead steady overload is rejected here, and
    // the ladder's job is absorbing bursts already admitted.
    if (r.deadline != no_deadline) {
      const clock_duration est = estimate_for(ladder_.front());
      clock_duration backlog =
          estimate_canary() * static_cast<clock_duration::rep>(
                                  queue_.depth(priority::canary));
      std::size_t ahead = inflight_;
      ahead += queue_.depth(priority::interactive);
      if (prio == priority::batch) ahead += queue_.depth(priority::batch);
      backlog += est * static_cast<clock_duration::rep>(ahead);
      double need_ns = cfg_.admission_margin *
                       static_cast<double>((backlog + est).count());
      const double window =
          static_cast<double>((r.deadline - now).count());
      if (prio == priority::batch && interactive_gap_.samples() > 0) {
        // Overtaking projection: every interactive arrival during this
        // request's wait is served first. A quiet spell since the last
        // interactive admission widens the effective gap, so a stale
        // burst estimate does not starve batch forever. Under sustained
        // interactive pressure the projection exceeds any batch deadline
        // and steady overload rejects batch here, honestly, instead of
        // admitting it and shedding it at dequeue.
        const double gap = std::max(
            interactive_gap_.value(),
            static_cast<double>((now - last_interactive_).count()));
        if (gap > 0.0) {
          need_ns += window / gap * static_cast<double>(est.count());
        }
      }
      if (window < need_ns) {
        return reject(admit_status::rejected_deadline);
      }
    }
  }

  // The breaker gate comes last so a rejection on depth/deadline never
  // consumes a half-open probe slot.
  breaker_epoch admitted_epoch = 0;
  if (!breaker_.allow(&admitted_epoch)) {
    return reject(admit_status::rejected_breaker);
  }
  r.breaker_epoch = admitted_epoch;

  const push_result pushed = queue_.push(r);
  if (pushed != push_result::accepted) {
    breaker_.release(admitted_epoch);
    // rejected_closed can only race ahead of the draining_ flag; report
    // it as the shutdown it is, not as backpressure.
    return reject(pushed == push_result::rejected_closed
                      ? admit_status::rejected_draining
                      : admit_status::rejected_queue_full);
  }
  ++stats_.admitted;
  if (escalated) ++stats_.escalated_admitted;
  if (prio == priority::interactive) {
    if (have_interactive_) {
      interactive_gap_.observe(
          static_cast<double>((now - last_interactive_).count()));
    }
    have_interactive_ = true;
    last_interactive_ = now;
  }
  return res;
}

response detection_service::serve_one(const planned& p,
                                      const hpc::measurement* m,
                                      bool backend_failed) {
  response out;
  out.id = p.req.id;
  out.prio = p.req.prio;
  out.submitted = p.req.submitted;
  out.deadline = p.req.deadline;
  out.rung = p.rung;
  out.repeats_used = static_cast<std::uint32_t>(p.repeats);
  out.events_shed = p.events < det_->config().events.size();
  out.client = p.req.client;
  out.escalated = p.req.escalated;
  out.degraded_confidence = p.req.degraded_confidence;

  if (p.shed) {
    out.outcome = response::kind::shed_deadline;
    out.completed = clock_.now();
    ++stats_.shed_deadline;
    if (p.req.prio == priority::canary) ++stats_.canary_shed;
    breaker_.release(p.req.breaker_epoch);
    return out;
  }

  // Charge the request's deterministic simulated cost (virtual mode);
  // in wall-clock mode the elapsed time was already real.
  clock_duration cost{0};
  if (vclock_ != nullptr) {
    cost = cfg_.sim_cost.cost(p.req.id, p.repeats, p.events);
    vclock_->advance(cost);
  }
  out.completed = clock_.now();

  if (backend_failed || m == nullptr) {
    out.outcome = response::kind::failed_backend;
    ++stats_.failed_backend;
    if (p.req.prio == priority::canary) ++stats_.canary_shed;
    breaker_.record_failure(p.req.breaker_epoch);
    return out;
  }

  if (vclock_ == nullptr) {
    cost = out.completed - p.req.submitted;  // upper bound: queue + service
  }
  tracker_.observe(cost, p.repeats, p.events);

  // Expand a shed-events measurement back to the detector's configured
  // event order: unmeasured events score as unavailable, which routes the
  // verdict through the degraded/abstain fail-closed policy.
  const std::size_t n_cfg = det_->config().events.size();
  if (p.events == n_cfg) {
    out.v = det_->score(m->predicted, m->mean_counts, m->q.available);
  } else {
    std::vector<double> means(n_cfg, 0.0);
    std::vector<std::uint8_t> avail(n_cfg, 0);
    for (std::size_t e = 0; e < p.events; ++e) {
      means[e] = m->mean_counts[e];
      avail[e] = m->q.available.empty() ? std::uint8_t{1} : m->q.available[e];
    }
    out.v = det_->score(m->predicted, means, avail);
  }

  out.outcome = response::kind::served;
  if (out.deadline != no_deadline && out.completed > out.deadline) {
    out.deadline_missed = true;
    ++stats_.deadline_misses;
  }
  ++stats_.served;
  ++stats_.served_by_rung[p.rung];
  if (p.req.prio == priority::canary) ++stats_.canary_served;
  if (p.req.escalated) ++stats_.escalated_served;
  if (p.req.degraded_confidence) ++stats_.served_degraded_confidence;

  // Feed the served measurement's HPC trace sketch back to the tracker:
  // near-identical consecutive computation signatures corroborate a
  // fingerprint-level campaign (weighted below a fingerprint hit, so the
  // chaos-exposed measurement path can accelerate elevation but never
  // decides a ban).
  if (qtracker_ != nullptr && p.req.client != 0) {
    qtracker_->record_trace(p.req.client, hpc::sketch_measurement(*m));
  }
  if (out.v.adversarial_any) ++stats_.flagged_adversarial;
  if (out.v.degraded) ++stats_.degraded_verdicts;
  if (out.v.abstained) ++stats_.abstained_verdicts;
  const std::size_t full = det_->config().repeats;
  stats_.repeats_shed += full > p.repeats ? full - p.repeats : 0;
  if (out.events_shed) ++stats_.events_shed_requests;

  // A measurement with no usable event at all is a backend-health signal
  // even though the verdict (abstain, fail closed) is still served.
  bool any_available = false;
  for (std::size_t e = 0; e < p.events && !any_available; ++e) {
    any_available = m->q.event_available(e);
  }
  if (any_available) {
    breaker_.record_success(p.req.breaker_epoch);
  } else {
    breaker_.record_failure(p.req.breaker_epoch);
  }
  return out;
}

std::vector<response> detection_service::service_batch() {
  std::lock_guard<std::mutex> service_lock(service_mutex_);

  std::vector<planned> plan;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    const auto now = clock_.now();
    const double occupancy = static_cast<double>(queue_.depth()) /
                             static_cast<double>(queue_.capacity());
    update_rung(occupancy);
    const auto& rung = ladder_[rung_];
    const std::size_t n_events = det_->config().events.size();

    clock_duration pending{0};
    for (std::size_t i = 0; i < cfg_.batch_size; ++i) {
      auto popped = queue_.try_pop();
      if (!popped.has_value()) break;
      planned p;
      p.req = std::move(*popped);
      const bool canary = p.req.prio == priority::canary;
      // Tracker-escalated clients are measured like canaries: rung 0,
      // full repeats, full events — suspicion buys scrutiny, and the
      // corroborating trace sketch needs full-fidelity evidence.
      const bool full_fidelity = canary || p.req.escalated;
      p.rung = full_fidelity ? 0 : rung_;
      p.repeats = full_fidelity ? det_->config().repeats : rung.repeats;
      p.events = (!full_fidelity && rung.shed_events)
                     ? cfg_.kept_events_when_shedding
                     : n_events;
      const clock_duration est = tracker_.estimate(p.repeats, p.events);
      if (!full_fidelity && p.req.deadline != no_deadline &&
          now + pending + est > p.req.deadline) {
        p.shed = true;  // cannot make it: shed now, cheaply
      } else {
        pending += est;
        ++inflight_;
      }
      plan.push_back(std::move(p));
    }
  }
  if (plan.empty()) return {};

  // Measure outside the scheduler lock: the full-fidelity group first
  // (canaries + tracker-escalated requests), then the traffic group at
  // the rung's parameters. Group composition is a pure function of pop
  // order, so the backend's sample streams — and with them every
  // measurement — replay deterministically.
  const auto& events = det_->config().events;
  const auto measure_group =
      [&](const std::vector<std::size_t>& idx, std::size_t repeats,
          std::size_t n_events, const hpc::measure_budget& budget)
      -> std::optional<std::vector<hpc::measurement>> {
    if (idx.empty()) return std::vector<hpc::measurement>{};
    std::vector<tensor> inputs;
    inputs.reserve(idx.size());
    for (std::size_t i : idx) inputs.push_back(plan[i].req.input);
    try {
      return monitor_.measure_batch(
          inputs, std::span<const hpc::hpc_event>(events.data(), n_events),
          repeats, cfg_.threads, budget);
    } catch (const std::exception& e) {
      log::warn("serve: measurement batch failed: ", e.what());
      return std::nullopt;
    }
  };

  std::vector<std::size_t> full_idx, traffic_idx;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (plan[i].shed) continue;
    const bool full_fidelity =
        plan[i].req.prio == priority::canary || plan[i].req.escalated;
    (full_fidelity ? full_idx : traffic_idx).push_back(i);
  }

  hpc::measure_budget full_budget;
  full_budget.cancel = &drain_cancel_;
  std::optional<std::vector<hpc::measurement>> full_ms = measure_group(
      full_idx, det_->config().repeats, events.size(), full_budget);

  std::optional<std::vector<hpc::measurement>> traffic_ms;
  if (!traffic_idx.empty()) {
    const auto& rung = ladder_[plan[traffic_idx.front()].rung];
    hpc::measure_budget budget;
    budget.max_retry_rounds = rung.max_retry_rounds;
    budget.allow_backoff = rung.allow_backoff;
    budget.cancel = &drain_cancel_;
    traffic_ms = measure_group(traffic_idx, plan[traffic_idx.front()].repeats,
                               plan[traffic_idx.front()].events, budget);
  } else {
    traffic_ms = std::vector<hpc::measurement>{};
  }

  std::vector<response> out;
  out.reserve(plan.size());
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    std::size_t c = 0, t = 0;
    for (const auto& p : plan) {
      const hpc::measurement* m = nullptr;
      bool failed = false;
      if (!p.shed) {
        if (p.req.prio == priority::canary || p.req.escalated) {
          if (full_ms.has_value()) {
            m = &(*full_ms)[c];
          } else {
            failed = true;
          }
          ++c;
        } else {
          if (traffic_ms.has_value()) {
            m = &(*traffic_ms)[t];
          } else {
            failed = true;
          }
          ++t;
        }
      }
      out.push_back(serve_one(p, m, failed));
      if (!p.shed && inflight_ > 0) --inflight_;
    }
    stats_.breaker_trips = breaker_.trips();
  }
  return out;
}

std::vector<response> detection_service::run_until(clock_duration t) {
  std::vector<response> out;
  while (clock_.now() < t) {
    auto batch = service_batch();
    if (batch.empty()) break;
    out.insert(out.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return out;
}

void detection_service::drain() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (draining_) return;
    draining_ = true;
  }
  // Cut in-flight retry backoff short: from here on measurements run on
  // first-read evidence (fail-closed scoring covers the quality gap).
  drain_cancel_.cancel();
  queue_.close();
}

bool detection_service::draining() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return draining_;
}

std::vector<response> detection_service::flush() {
  std::vector<response> out;
  for (;;) {
    auto batch = service_batch();
    if (batch.empty()) break;
    out.insert(out.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return out;
}

void detection_service::note_integrity_suppression() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  ++stats_.suppressed_integrity;
}

serve_stats detection_service::stats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return stats_;
}

std::size_t detection_service::rung() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return rung_;
}

}  // namespace advh::serve
