// k-means with k-means++ seeding, used to initialise EM.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"

namespace advh::gmm {

struct kmeans_result {
  std::vector<std::vector<double>> centroids;  ///< k x d
  std::vector<std::size_t> assignment;         ///< per point
  double inertia = 0.0;                        ///< sum squared distance
};

/// Clusters `points` (n x d, row-major flattened) into k clusters.
/// Guarantees every centroid owns at least one point (empty clusters are
/// re-seeded from the farthest point).
kmeans_result kmeans(std::span<const double> points, std::size_t dim,
                     std::size_t k, rng& gen, std::size_t max_iter = 50);

}  // namespace advh::gmm
