// Gaussian Mixture Models fitted by Expectation-Maximisation
// (Algorithm 1 of the paper), with BIC model-order selection.
//
// AdvHunter fits one *univariate* GMM per (output category, HPC event);
// gmm1d is that model. gmm_diag generalises to diagonal-covariance
// multivariate data and backs the joint-events extension detector.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"

namespace advh::gmm {

struct em_config {
  std::size_t max_iter = 200;
  double tolerance = 1e-7;     ///< relative log-likelihood change
  std::size_t restarts = 3;    ///< EM restarts, best likelihood kept
  double variance_floor_ratio = 1e-4;  ///< floor as fraction of data variance
  std::uint64_t seed = 7;
};

/// One univariate mixture component.
struct component1d {
  double weight = 0.0;
  double mean = 0.0;
  double variance = 1.0;
};

class gmm1d {
 public:
  gmm1d() = default;
  explicit gmm1d(std::vector<component1d> components);

  /// Fits a k-component mixture with EM (k-means++ initialised).
  static gmm1d fit(std::span<const double> data, std::size_t k,
                   const em_config& cfg = {});

  /// Fits k = 1..k_max and returns the model with the lowest BIC.
  static gmm1d fit_best_bic(std::span<const double> data, std::size_t k_max,
                            const em_config& cfg = {});

  std::size_t order() const noexcept { return components_.size(); }
  const std::vector<component1d>& components() const noexcept {
    return components_;
  }

  /// log p(x) under the mixture (log-sum-exp over components).
  double log_pdf(double x) const;

  /// Negative log-likelihood of one observation (the paper's score).
  double nll(double x) const { return -log_pdf(x); }

  /// Sum of log p over a dataset.
  double total_log_likelihood(std::span<const double> data) const;

  /// Bayesian Information Criterion: k*3-1 free parameters in 1-D.
  double bic(std::span<const double> data) const;

  /// Draws one sample.
  double sample(rng& gen) const;

 private:
  std::vector<component1d> components_;
};

/// Diagonal-covariance multivariate mixture (extension detector).
struct component_diag {
  double weight = 0.0;
  std::vector<double> mean;
  std::vector<double> variance;
};

class gmm_diag {
 public:
  gmm_diag() = default;

  static gmm_diag fit(std::span<const double> data, std::size_t dim,
                      std::size_t k, const em_config& cfg = {});
  static gmm_diag fit_best_bic(std::span<const double> data, std::size_t dim,
                               std::size_t k_max, const em_config& cfg = {});

  std::size_t order() const noexcept { return components_.size(); }
  std::size_t dim() const noexcept { return dim_; }
  const std::vector<component_diag>& components() const noexcept {
    return components_;
  }

  double log_pdf(std::span<const double> x) const;
  double nll(std::span<const double> x) const { return -log_pdf(x); }
  double total_log_likelihood(std::span<const double> data) const;
  double bic(std::span<const double> data) const;

 private:
  std::size_t dim_ = 0;
  std::vector<component_diag> components_;
};

}  // namespace advh::gmm
