#include "gmm/gmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "gmm/kmeans.hpp"

namespace advh::gmm {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

double log_normal_pdf(double x, double mean, double variance) {
  const double d = x - mean;
  return -0.5 * (kLog2Pi + std::log(variance) + d * d / variance);
}

/// log(sum(exp(v))) without overflow.
double log_sum_exp(std::span<const double> v) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double x : v) mx = std::max(mx, x);
  if (!std::isfinite(mx)) return mx;
  double acc = 0.0;
  for (double x : v) acc += std::exp(x - mx);
  return mx + std::log(acc);
}

}  // namespace

gmm1d::gmm1d(std::vector<component1d> components)
    : components_(std::move(components)) {
  ADVH_CHECK(!components_.empty());
  double total = 0.0;
  for (const auto& c : components_) {
    ADVH_CHECK(c.weight >= 0.0 && c.variance > 0.0);
    total += c.weight;
  }
  ADVH_CHECK_MSG(std::fabs(total - 1.0) < 1e-6, "weights must sum to 1");
}

gmm1d gmm1d::fit(std::span<const double> data, std::size_t k,
                 const em_config& cfg) {
  ADVH_CHECK_MSG(data.size() >= k && k > 0, "need at least k observations");

  const double data_var = std::max(stats::variance(data), 1e-12);
  const double floor = std::max(cfg.variance_floor_ratio * data_var, 1e-12);
  const auto n = data.size();

  std::vector<component1d> best;
  double best_ll = -std::numeric_limits<double>::infinity();

  rng seed_gen(cfg.seed);
  for (std::size_t restart = 0; restart < std::max<std::size_t>(cfg.restarts, 1);
       ++restart) {
    rng gen = seed_gen.split();

    // Initialise from k-means clusters.
    auto km = kmeans(data, 1, k, gen);
    std::vector<component1d> comps(k);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) ++counts[km.assignment[i]];
    for (std::size_t c = 0; c < k; ++c) {
      comps[c].mean = km.centroids[c][0];
      comps[c].weight =
          std::max(static_cast<double>(counts[c]) / static_cast<double>(n),
                   1e-6);
      double var = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (km.assignment[i] == c) {
          const double d = data[i] - comps[c].mean;
          var += d * d;
        }
      }
      comps[c].variance =
          std::max(counts[c] ? var / static_cast<double>(counts[c]) : data_var,
                   floor);
    }
    {
      double wsum = 0.0;
      for (auto& c : comps) wsum += c.weight;
      for (auto& c : comps) c.weight /= wsum;
    }

    // EM iterations (Algorithm 1).
    std::vector<double> resp(n * k);
    std::vector<double> logp(k);
    double prev_ll = -std::numeric_limits<double>::infinity();
    for (std::size_t iter = 0; iter < cfg.max_iter; ++iter) {
      // E-step: responsibilities gamma_ik.
      double ll = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t c = 0; c < k; ++c) {
          logp[c] = std::log(comps[c].weight) +
                    log_normal_pdf(data[i], comps[c].mean, comps[c].variance);
        }
        const double lse = log_sum_exp(logp);
        ll += lse;
        for (std::size_t c = 0; c < k; ++c) {
          resp[i * k + c] = std::exp(logp[c] - lse);
        }
      }

      // M-step.
      for (std::size_t c = 0; c < k; ++c) {
        double nk = 0.0, mu = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          nk += resp[i * k + c];
          mu += resp[i * k + c] * data[i];
        }
        nk = std::max(nk, 1e-10);
        mu /= nk;
        double var = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = data[i] - mu;
          var += resp[i * k + c] * d * d;
        }
        comps[c].weight = nk / static_cast<double>(n);
        comps[c].mean = mu;
        comps[c].variance = std::max(var / nk, floor);
      }

      if (std::isfinite(prev_ll) &&
          std::fabs(ll - prev_ll) <=
              cfg.tolerance * (std::fabs(prev_ll) + 1.0)) {
        prev_ll = ll;
        break;
      }
      prev_ll = ll;
    }

    if (prev_ll > best_ll) {
      best_ll = prev_ll;
      best = comps;
    }
  }

  return gmm1d(std::move(best));
}

gmm1d gmm1d::fit_best_bic(std::span<const double> data, std::size_t k_max,
                          const em_config& cfg) {
  ADVH_CHECK(k_max > 0);
  gmm1d best;
  double best_bic = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= k_max; ++k) {
    if (data.size() < 2 * k) break;  // too few points to support k modes
    gmm1d candidate = fit(data, k, cfg);
    const double b = candidate.bic(data);
    if (b < best_bic) {
      best_bic = b;
      best = std::move(candidate);
    }
  }
  ADVH_CHECK_MSG(best.order() > 0, "BIC scan produced no model");
  return best;
}

double gmm1d::log_pdf(double x) const {
  ADVH_CHECK_MSG(!components_.empty(), "model not fitted");
  std::vector<double> logp(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c) {
    logp[c] = std::log(std::max(components_[c].weight, 1e-300)) +
              log_normal_pdf(x, components_[c].mean, components_[c].variance);
  }
  return log_sum_exp(logp);
}

double gmm1d::total_log_likelihood(std::span<const double> data) const {
  double acc = 0.0;
  for (double x : data) acc += log_pdf(x);
  return acc;
}

double gmm1d::bic(std::span<const double> data) const {
  // Free parameters in 1-D: k means + k variances + (k-1) weights.
  const double params = static_cast<double>(3 * order() - 1);
  return params * std::log(static_cast<double>(data.size())) -
         2.0 * total_log_likelihood(data);
}

double gmm1d::sample(rng& gen) const {
  ADVH_CHECK(!components_.empty());
  double r = gen.uniform();
  std::size_t c = 0;
  for (; c + 1 < components_.size(); ++c) {
    r -= components_[c].weight;
    if (r <= 0.0) break;
  }
  return gen.normal(components_[c].mean, std::sqrt(components_[c].variance));
}

// ---------------------------------------------------------------------------
// Diagonal multivariate mixture.

gmm_diag gmm_diag::fit(std::span<const double> data, std::size_t dim,
                       std::size_t k, const em_config& cfg) {
  ADVH_CHECK(dim > 0 && data.size() % dim == 0);
  const std::size_t n = data.size() / dim;
  ADVH_CHECK_MSG(n >= k && k > 0, "need at least k observations");

  // Per-dimension variance floors.
  std::vector<double> dim_var(dim, 0.0);
  for (std::size_t d = 0; d < dim; ++d) {
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = data[i * dim + d];
    dim_var[d] = std::max(stats::variance(col), 1e-12);
  }

  rng gen(cfg.seed);
  auto km = kmeans(data, dim, k, gen);

  gmm_diag model;
  model.dim_ = dim;
  model.components_.assign(k, component_diag{});
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < n; ++i) ++counts[km.assignment[i]];
  for (std::size_t c = 0; c < k; ++c) {
    model.components_[c].mean = km.centroids[c];
    model.components_[c].weight = std::max(
        static_cast<double>(counts[c]) / static_cast<double>(n), 1e-6);
    model.components_[c].variance.assign(dim, 0.0);
  }
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t d = 0; d < dim; ++d) {
      double var = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (km.assignment[i] == c) {
          const double diff = data[i * dim + d] - model.components_[c].mean[d];
          var += diff * diff;
        }
      }
      model.components_[c].variance[d] = std::max(
          counts[c] ? var / static_cast<double>(counts[c]) : dim_var[d],
          cfg.variance_floor_ratio * dim_var[d]);
    }
  }
  {
    double wsum = 0.0;
    for (auto& c : model.components_) wsum += c.weight;
    for (auto& c : model.components_) c.weight /= wsum;
  }

  std::vector<double> resp(n * k);
  std::vector<double> logp(k);
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < cfg.max_iter; ++iter) {
    double ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < k; ++c) {
        double lp = std::log(model.components_[c].weight);
        for (std::size_t d = 0; d < dim; ++d) {
          lp += log_normal_pdf(data[i * dim + d],
                               model.components_[c].mean[d],
                               model.components_[c].variance[d]);
        }
        logp[c] = lp;
      }
      const double lse = log_sum_exp(logp);
      ll += lse;
      for (std::size_t c = 0; c < k; ++c) {
        resp[i * k + c] = std::exp(logp[c] - lse);
      }
    }

    for (std::size_t c = 0; c < k; ++c) {
      double nk = 0.0;
      for (std::size_t i = 0; i < n; ++i) nk += resp[i * k + c];
      nk = std::max(nk, 1e-10);
      for (std::size_t d = 0; d < dim; ++d) {
        double mu = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          mu += resp[i * k + c] * data[i * dim + d];
        }
        mu /= nk;
        double var = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double diff = data[i * dim + d] - mu;
          var += resp[i * k + c] * diff * diff;
        }
        model.components_[c].mean[d] = mu;
        model.components_[c].variance[d] =
            std::max(var / nk, cfg.variance_floor_ratio * dim_var[d]);
      }
      model.components_[c].weight = nk / static_cast<double>(n);
    }

    if (std::isfinite(prev_ll) &&
        std::fabs(ll - prev_ll) <= cfg.tolerance * (std::fabs(prev_ll) + 1.0)) {
      break;
    }
    prev_ll = ll;
  }
  return model;
}

gmm_diag gmm_diag::fit_best_bic(std::span<const double> data, std::size_t dim,
                                std::size_t k_max, const em_config& cfg) {
  ADVH_CHECK(k_max > 0);
  gmm_diag best;
  double best_bic = std::numeric_limits<double>::infinity();
  const std::size_t n = data.size() / std::max<std::size_t>(dim, 1);
  for (std::size_t k = 1; k <= k_max; ++k) {
    if (n < 2 * k) break;
    gmm_diag candidate = fit(data, dim, k, cfg);
    const double b = candidate.bic(data);
    if (b < best_bic) {
      best_bic = b;
      best = std::move(candidate);
    }
  }
  ADVH_CHECK_MSG(best.order() > 0, "BIC scan produced no model");
  return best;
}

double gmm_diag::log_pdf(std::span<const double> x) const {
  ADVH_CHECK_MSG(!components_.empty(), "model not fitted");
  ADVH_CHECK(x.size() == dim_);
  std::vector<double> logp(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c) {
    double lp = std::log(std::max(components_[c].weight, 1e-300));
    for (std::size_t d = 0; d < dim_; ++d) {
      lp += log_normal_pdf(x[d], components_[c].mean[d],
                           components_[c].variance[d]);
    }
    logp[c] = lp;
  }
  return log_sum_exp(logp);
}

double gmm_diag::total_log_likelihood(std::span<const double> data) const {
  ADVH_CHECK(data.size() % dim_ == 0);
  const std::size_t n = data.size() / dim_;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += log_pdf(data.subspan(i * dim_, dim_));
  }
  return acc;
}

double gmm_diag::bic(std::span<const double> data) const {
  const std::size_t n = data.size() / dim_;
  const double params =
      static_cast<double>(order() * (2 * dim_ + 1) - 1);
  return params * std::log(static_cast<double>(n)) -
         2.0 * total_log_likelihood(data);
}

}  // namespace advh::gmm
