#include "gmm/kmeans.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace advh::gmm {

namespace {

double sq_dist(std::span<const double> points, std::size_t dim, std::size_t i,
               const std::vector<double>& c) {
  double acc = 0.0;
  for (std::size_t d = 0; d < dim; ++d) {
    const double diff = points[i * dim + d] - c[d];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

kmeans_result kmeans(std::span<const double> points, std::size_t dim,
                     std::size_t k, rng& gen, std::size_t max_iter) {
  ADVH_CHECK(dim > 0 && points.size() % dim == 0);
  const std::size_t n = points.size() / dim;
  ADVH_CHECK_MSG(n >= k && k > 0, "need at least k points");

  kmeans_result res;
  res.centroids.reserve(k);

  // k-means++ seeding.
  std::vector<double> d2(n, std::numeric_limits<double>::max());
  {
    const std::size_t first = static_cast<std::size_t>(gen.uniform_index(n));
    res.centroids.push_back(std::vector<double>(
        points.begin() + static_cast<std::ptrdiff_t>(first * dim),
        points.begin() + static_cast<std::ptrdiff_t>((first + 1) * dim)));
  }
  while (res.centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], sq_dist(points, dim, i, res.centroids.back()));
      total += d2[i];
    }
    std::size_t chosen = 0;
    if (total <= 0.0) {
      chosen = static_cast<std::size_t>(gen.uniform_index(n));
    } else {
      double r = gen.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        r -= d2[i];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    res.centroids.push_back(std::vector<double>(
        points.begin() + static_cast<std::ptrdiff_t>(chosen * dim),
        points.begin() + static_cast<std::ptrdiff_t>((chosen + 1) * dim)));
  }

  // Lloyd iterations.
  res.assignment.assign(n, 0);
  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_dist(points, dim, i, res.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (res.assignment[i] != best) {
        res.assignment[i] = best;
        changed = true;
      }
    }

    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = res.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += points[i * dim + d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster from the point farthest from its centroid.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d =
              sq_dist(points, dim, i, res.centroids[res.assignment[i]]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        for (std::size_t d = 0; d < dim; ++d) {
          res.centroids[c][d] = points[far * dim + d];
        }
        res.assignment[far] = c;
        changed = true;
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        res.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }

  res.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    res.inertia += sq_dist(points, dim, i, res.centroids[res.assignment[i]]);
  }
  return res;
}

}  // namespace advh::gmm
