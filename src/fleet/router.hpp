// Deterministic fleet router (node 1): the single entry point for client
// traffic.
//
// The router maps each request's client id to its fingerprint-ring range,
// looks up the range owner under its installed view, and forwards the
// request stamped with that view's epoch — the first half of the epoch
// fence (the owner verifies the second half). Everything the router does
// is fail-closed:
//
//   * a banned client is rejected before any network hop (the router
//     learns bans from reliable ban announcements and re-reads the
//     durable ledgers on every view change);
//   * no live owner -> abstain_no_owner, immediately;
//   * a request whose primary has been silent for `speculate_after`
//     ticks is speculatively re-sent ONCE to another ownership slot of
//     its range under the router's current view — a crashed primary's
//     requests degrade to a secondary's tagged verdict instead of
//     burning the full timeout into an abstain. The first response in
//     network-delivery order wins; the loser finds no pending entry and
//     is dropped;
//   * no response within request_timeout ticks -> abstain_timeout. A
//     late response (crashed owner, re-routed range) finds no pending
//     entry and is dropped — a request resolves exactly once.
//
// Every resolution is journalled at a deterministic point of the tick
// loop, so the router's journal is the run's externally visible history.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "fleet/config.hpp"
#include "fleet/events.hpp"
#include "fleet/membership.hpp"
#include "fleet/net.hpp"

namespace advh::fleet {

class router {
 public:
  router(const fleet_config& cfg, const std::string& dir, sim_net& net,
         event_log& log);

  /// Submits one client request at `tick`; assigns and returns the fleet
  /// request id. Ban checks and ownerless views resolve immediately.
  std::uint64_t submit(std::uint64_t client, tensor input,
                       std::uint64_t tick);

  /// Delivers one network message (responses, beacons, ban announces).
  void enqueue(message m);

  /// Processes the inbox; called by the sim before arrivals each tick.
  void drain_inbox(std::uint64_t tick);

  /// Speculatively re-routes silent primaries' requests, then expires
  /// pending requests past request_timeout (fail-closed abstain_timeout),
  /// both in request-id order.
  void on_tick(std::uint64_t tick);

  const membership_view& view() const noexcept { return view_; }
  std::size_t pending() const noexcept { return pending_.size(); }
  bool banned(std::uint64_t client) const {
    return banned_.count(client) != 0;
  }

 private:
  struct pending_req {
    std::uint64_t client = 0;
    std::uint64_t deadline_tick = 0;
    /// Kept for the (at most one) speculative re-send.
    tensor input;
    std::uint32_t range = 0;
    std::uint32_t primary_dst = 0;
    std::uint64_t submitted = 0;
    bool speculated = false;
  };

  void resolve(std::uint64_t tick, std::uint64_t req_id, std::uint64_t client,
               req_outcome outcome, bool flagged, std::uint32_t served_by,
               bool degraded = false);
  void speculate(std::uint64_t tick);
  /// Re-sends req_id's request speculatively to the first ownership slot
  /// of its range that is not `avoid`. Returns true when an alternate
  /// slot existed and was tried. Shared by silence-driven speculation and
  /// the corrupt-abstain re-route.
  bool speculate_one(std::uint64_t req_id, pending_req& p, std::uint32_t avoid,
                     std::uint64_t tick);
  void reload_ledgers();

  const fleet_config& cfg_;
  std::string dir_;
  sim_net& net_;
  event_log& log_;

  membership_view view_;
  std::set<std::uint64_t> banned_;
  std::vector<message> inbox_;

  std::map<std::uint64_t, pending_req> pending_;
  std::uint64_t next_req_id_ = 1;
};

}  // namespace advh::fleet
