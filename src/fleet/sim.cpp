#include "fleet/sim.hpp"

#include <algorithm>

#include "fleet/corruption.hpp"

namespace advh::fleet {

fleet_sim::fleet_sim(const fleet_config& cfg, fleet_deps deps,
                     fault_plan plan)
    : cfg_(cfg),
      deps_(std::move(deps)),
      plan_(std::move(plan)),
      net_(cfg_, &plan_) {
  validate(cfg_);
  for (std::size_t j = 0; j < cfg_.controllers; ++j) {
    controllers_.push_back(
        std::make_unique<controller>(j, cfg_, deps_.dir, net_, log_));
  }
  // Controller 0 boots as the genesis leader with the initial view
  // already activated; the audit starts from it.
  audit_view_ = controllers_[0]->view();
  router_ = std::make_unique<router>(cfg_, deps_.dir, net_, log_);
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    replica_deps rd;
    rd.base = deps_.base;
    const std::size_t idx = i;
    rd.make_monitor = [this, idx]() { return deps_.make_monitor(idx); };
    rd.dir = deps_.dir;
    rd.canary_pool = deps_.canary_pool;
    replicas_.push_back(std::make_unique<replica>(i, cfg_, std::move(rd),
                                                  net_, plan_, log_));
    replicas_.back()->set_serve_probe(
        [this](std::uint32_t node, std::uint64_t client, bool degraded,
               std::uint64_t shard) {
          // A full-confidence verdict must come from the PRIMARY slot of
          // the elected leader's activated view; a degraded verdict from
          // any replicated slot. Anything else escaped the fence.
          const std::uint32_t range = range_of_client(client, cfg_);
          const auto slot =
              owner_slot(audit_view_, range, node, cfg_.replication);
          const bool legitimate =
              slot.has_value() && (*slot == 0 || degraded);
          if (!legitimate) {
            ++log_.stats().split_brain_serves;
            // Journalled so a failed zero-split-brain gate names the
            // exact verdict that escaped the fence.
            log_.line(tick_, "SPLIT-BRAIN node=" + std::to_string(node) +
                                 " client=" + std::to_string(client) +
                                 " range=" + std::to_string(range) +
                                 " degraded=" + (degraded ? "1" : "0") +
                                 " authoritative-epoch=" +
                                 std::to_string(audit_view_.epoch));
          }
          // Integrity invariant: a verdict backed by a corrupt-fenced
          // shard must never leave this replica at all — service_step
          // converts it to abstain_corrupt before the probe fires. Seen
          // here, it escaped the integrity fence.
          const std::size_t idx = node - 2;
          if (idx < replicas_.size() && replicas_[idx]->shard_fenced(shard)) {
            ++log_.stats().corrupt_full_conf_serves;
            log_.line(tick_, "CORRUPT-SERVE node=" + std::to_string(node) +
                                 " client=" + std::to_string(client) +
                                 " shard=" + std::to_string(shard) +
                                 " degraded=" + (degraded ? "1" : "0"));
          }
        });
  }
}

const controller* fleet_sim::acting_leader() const {
  for (const auto& c : controllers_) {
    if (c->up() && c->acting(tick_)) return c.get();
  }
  return nullptr;
}

void fleet_sim::deliver(std::uint64_t tick) {
  for (message& m : net_.deliver_until(tick)) {
    if (is_controller_node(m.dst)) {
      const std::size_t j = m.dst - kControllerBase;
      if (j >= controllers_.size() || !controllers_[j]->up()) {
        ++dropped_dst_down_;
        continue;
      }
      controllers_[j]->enqueue(std::move(m));
      continue;
    }
    if (m.dst == kRouterNode) {
      router_->enqueue(std::move(m));
      continue;
    }
    const std::size_t idx = m.dst - 2;
    if (idx >= replicas_.size() || !replicas_[idx]->up()) {
      ++dropped_dst_down_;
      continue;
    }
    replicas_[idx]->enqueue(std::move(m));
  }
}

void fleet_sim::run(std::vector<arrival> arrivals, std::uint64_t horizon) {
  // Stable sort: equal-tick arrivals keep their scheduled order.
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const arrival& a, const arrival& b) {
                     return a.tick < b.tick;
                   });
  std::size_t next_arrival = 0;
  const std::uint64_t end = tick_ + horizon;

  for (; tick_ < end; ++tick_) {
    const std::uint64_t t = tick_;

    // 1. fault injection: disk corruption first (the damage is in place
    // before any node acts this tick), then node faults
    for (const corruption_event& e : plan_.corruptions_at(t)) {
      apply_corruption(e, cfg_, deps_.dir, log_);
    }
    for (const fault_event& e : plan_.at(t)) {
      if (e.target == fault_target::controller) {
        if (e.replica >= controllers_.size()) continue;
        controller& c = *controllers_[e.replica];
        switch (e.kind) {
          case fault_kind::crash:
            c.crash(t);
            break;
          case fault_kind::recover:
            c.recover(t);
            break;
          case fault_kind::stall:
            c.stall(t);
            break;
          case fault_kind::unstall:
            c.unstall(t);
            break;
        }
        continue;
      }
      if (e.replica >= replicas_.size()) continue;
      replica& r = *replicas_[e.replica];
      switch (e.kind) {
        case fault_kind::crash:
          r.crash(t);
          break;
        case fault_kind::recover:
          r.recover(t);
          break;
        case fault_kind::stall:
          r.stall(t);
          break;
        case fault_kind::unstall:
          r.unstall(t);
          break;
      }
    }

    // 2. controllers: elections, failure detection, view beacons. The
    // audit view then advances to the max-epoch ACTIVATED view across
    // the group — before any replica serves this tick, so a verdict is
    // always checked against a view at least as fresh as any beacon the
    // serving replica could have acted on.
    for (auto& c : controllers_) c->on_tick(t);
    for (const auto& c : controllers_) {
      if (c->up() && c->view().epoch > audit_view_.epoch) {
        audit_view_ = c->view();
      }
    }
    // Record fresh ANNOUNCEMENTS with their announce tick, and activate
    // them for the audit on the same announce-anchored lease the
    // controller itself uses (membership_step). The sim keeps its own
    // ledger because a leader that crashes after announcing loses its
    // pending list — but the replicas anchored their acquisition graces
    // on the announce tick and legitimately begin serving when that
    // lease expires, so the audit's notion of authority must advance on
    // the same clock even with the announcer dead.
    for (const auto& c : controllers_) {
      if (!c->up()) continue;
      const membership_view& ann = c->announced();
      if (ann.epoch > last_announced_epoch_) {
        last_announced_epoch_ = ann.epoch;
        announced_.push_back({ann, t});
      }
    }
    while (!announced_.empty() &&
           !lease_held(t, announced_.front().at, cfg_.lease)) {
      if (announced_.front().view.epoch > audit_view_.epoch) {
        audit_view_ = announced_.front().view;
      }
      announced_.erase(announced_.begin());
    }

    // 3. network delivery
    deliver(t);

    // 4. router: settle delivered responses first, then inject arrivals
    router_->drain_inbox(t);
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].tick <= t) {
      arrival& a = arrivals[next_arrival++];
      router_->submit(a.client, std::move(a.input), t);
    }

    // 5. replicas, ascending node id
    for (auto& r : replicas_) r->on_tick(t);

    // 6. speculation + fail-closed timeouts
    router_->on_tick(t);
  }
}

fleet_stats fleet_sim::stats() const {
  fleet_stats out = log_.stats();
  out.net = net_.stats();
  out.net.dropped_dst_down = dropped_dst_down_;
  return out;
}

}  // namespace advh::fleet
