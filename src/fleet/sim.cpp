#include "fleet/sim.hpp"

#include <algorithm>

namespace advh::fleet {

namespace {

std::string live_list(const membership_view& v) {
  std::string out;
  for (std::size_t i = 0; i < v.live.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v.live[i]);
  }
  return out.empty() ? "-" : out;
}

}  // namespace

fleet_sim::fleet_sim(const fleet_config& cfg, fleet_deps deps,
                     fault_plan plan)
    : cfg_(cfg),
      deps_(std::move(deps)),
      plan_(std::move(plan)),
      net_(cfg_),
      controller_(cfg_) {
  validate(cfg_);
  router_ = std::make_unique<router>(cfg_, deps_.dir, net_, log_);
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    replica_deps rd;
    rd.base = deps_.base;
    const std::size_t idx = i;
    rd.make_monitor = [this, idx]() { return deps_.make_monitor(idx); };
    rd.dir = deps_.dir;
    rd.canary_pool = deps_.canary_pool;
    replicas_.push_back(std::make_unique<replica>(i, cfg_, std::move(rd),
                                                  net_, plan_, log_));
    replicas_.back()->set_serve_probe(
        [this](std::uint32_t node, std::uint64_t client) {
          const auto owner = range_owner(controller_.view(),
                                         range_of_client(client, cfg_));
          if (!owner.has_value() || *owner != node) {
            ++log_.stats().split_brain_serves;
            // Journalled so a failed zero-split-brain gate names the
            // exact verdict that escaped the fence.
            log_.line(tick_, "SPLIT-BRAIN node=" + std::to_string(node) +
                                 " client=" + std::to_string(client) +
                                 " range=" +
                                 std::to_string(range_of_client(client, cfg_)) +
                                 " authoritative-epoch=" +
                                 std::to_string(controller_.view().epoch));
          }
        });
  }
}

void fleet_sim::broadcast_view(std::uint64_t tick, bool reliable) {
  const auto send = [&](std::uint32_t dst) {
    message m;
    m.kind = msg_kind::view_beacon;
    m.src = kControllerNode;
    m.dst = dst;
    // Beacons carry the ANNOUNCED view: during a lease-transfer window
    // replicas already fence/acquire off the pending membership while the
    // authoritative view (the split-brain audit) flips only after the old
    // owner's lease has provably run out.
    m.view = controller_.announced();
    // Each replica's lease runs on the controller's acknowledgment of its
    // OWN heartbeats, so a replica the controller is about to declare
    // dead can never read a fresh lease out of a beacon that merely
    // happened to arrive.
    m.acked_hb = controller_.acked_heartbeat(dst);
    if (reliable) {
      net_.send_reliable(std::move(m), tick);
    } else {
      net_.send(std::move(m), tick);
    }
  };
  send(kRouterNode);
  for (std::size_t i = 0; i < cfg_.replicas; ++i) send(replica_node(i));
}

void fleet_sim::deliver(std::uint64_t tick) {
  for (message& m : net_.deliver_until(tick)) {
    if (m.dst == kControllerNode) {
      if (m.kind == msg_kind::heartbeat) {
        controller_.on_heartbeat(m.src, m.send_tick);
      }
      continue;
    }
    if (m.dst == kRouterNode) {
      router_->enqueue(std::move(m));
      continue;
    }
    const std::size_t idx = m.dst - 2;
    if (idx >= replicas_.size() || !replicas_[idx]->up()) {
      ++dropped_dst_down_;
      continue;
    }
    replicas_[idx]->enqueue(std::move(m));
  }
}

void fleet_sim::run(std::vector<arrival> arrivals, std::uint64_t horizon) {
  // Stable sort: equal-tick arrivals keep their scheduled order.
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const arrival& a, const arrival& b) {
                     return a.tick < b.tick;
                   });
  std::size_t next_arrival = 0;
  const std::uint64_t end = tick_ + horizon;

  for (; tick_ < end; ++tick_) {
    const std::uint64_t t = tick_;

    // 1. fault injection
    for (const fault_event& e : plan_.at(t)) {
      replica& r = *replicas_[e.replica];
      switch (e.kind) {
        case fault_kind::crash:
          r.crash(t);
          break;
        case fault_kind::recover:
          r.recover(t);
          break;
        case fault_kind::stall:
          r.stall(t);
          break;
        case fault_kind::unstall:
          r.unstall(t);
          break;
      }
    }

    // 2. failure detection + beacons
    if (const auto changed = controller_.step(t)) {
      ++log_.stats().view_changes;
      log_.line(t, "view epoch=" + std::to_string(changed->epoch) +
                       " live=" + live_list(*changed));
      broadcast_view(t, /*reliable=*/true);
    } else if (t % cfg_.hb_interval == 0) {
      // The lease is fed continuously: replicas fence themselves when
      // these stop arriving, which is exactly the point.
      broadcast_view(t, /*reliable=*/false);
    }

    // 3. network delivery
    deliver(t);

    // 4. router: settle delivered responses first, then inject arrivals
    router_->drain_inbox(t);
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].tick <= t) {
      arrival& a = arrivals[next_arrival++];
      router_->submit(a.client, std::move(a.input), t);
    }

    // 5. replicas, ascending node id
    for (auto& r : replicas_) r->on_tick(t);

    // 6. fail-closed timeouts
    router_->on_tick(t);
  }
}

fleet_stats fleet_sim::stats() const {
  fleet_stats out = log_.stats();
  out.net = net_.stats();
  out.net.dropped_dst_down = dropped_dst_down_;
  return out;
}

}  // namespace advh::fleet
