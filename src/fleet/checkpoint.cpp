#include "fleet/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/fs.hpp"

namespace advh::fleet {

namespace {

constexpr std::uint32_t kBanMagic = 0x4144424cU;  // "ADBL"
constexpr std::uint32_t kBanVersion = 1;

template <typename T>
void append_le(std::string& buf, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  buf.append(bytes, sizeof(T));
}

template <typename T>
T read_le(std::ifstream& is, const std::string& path, const char* what) {
  T v{};
  if (!is.read(reinterpret_cast<char*>(&v), sizeof(T))) {
    throw io_error("ban ledger " + path + ": truncated reading " + what);
  }
  return v;
}

[[noreturn]] void fence(const std::string& path, const std::string& why) {
  throw io_error("fleet checkpoint fenced: " + path + ": " + why);
}

}  // namespace

std::string shard_checkpoint_path(const std::string& dir, std::uint64_t shard,
                                  std::uint64_t content_version) {
  return dir + "/shard" + std::to_string(shard) + "_v" +
         std::to_string(content_version) + ".adet";
}

std::string shard_latest_path(const std::string& dir, std::uint64_t shard) {
  return dir + "/shard" + std::to_string(shard) + "_latest.adet";
}

std::string ban_ledger_path(const std::string& dir, std::uint32_t node) {
  return dir + "/bans_r" + std::to_string(node) + ".advhbans";
}

std::vector<std::vector<std::optional<core::event_model>>> models_of(
    const core::detector& det) {
  const std::size_t classes = det.num_classes();
  const std::size_t events = det.config().events.size();
  std::vector<std::vector<std::optional<core::event_model>>> out(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    out[c].resize(events);
    for (std::size_t e = 0; e < events; ++e) {
      out[c][e] = det.model_for(c, e);
    }
  }
  return out;
}

core::detector restrict_to_shard(const core::detector& det,
                                 std::uint64_t shard,
                                 const fleet_config& cfg) {
  auto models = models_of(det);
  for (std::size_t c = 0; c < models.size(); ++c) {
    if (shard_of_class(c, cfg) == shard) continue;
    for (auto& m : models[c]) m.reset();
  }
  return core::detector::from_parts(det.config(), std::move(models));
}

std::string stage_shard_checkpoint(const core::detector& det,
                                   const fleet_config& cfg,
                                   const std::string& dir, std::uint64_t shard,
                                   const core::checkpoint_meta& meta) {
  const core::detector restricted = restrict_to_shard(det, shard, cfg);
  const std::string versioned =
      shard_checkpoint_path(dir, shard, meta.content_version);
  core::save_detector(restricted, versioned, meta);
  return versioned;
}

std::string save_shard_checkpoint(const core::detector& det,
                                  const fleet_config& cfg,
                                  const std::string& dir, std::uint64_t shard,
                                  const core::checkpoint_meta& meta) {
  const core::detector restricted = restrict_to_shard(det, shard, cfg);
  const std::string versioned =
      shard_checkpoint_path(dir, shard, meta.content_version);
  core::save_detector(restricted, versioned, meta);
  // Publish-by-rename: the alias flips atomically from the previous
  // complete snapshot to this one.
  core::save_detector(restricted, shard_latest_path(dir, shard), meta);
  return versioned;
}

core::checkpoint load_shard_checkpoint(const std::string& path,
                                       std::uint64_t expected_shard,
                                       const fleet_config& cfg,
                                       std::uint64_t min_epoch,
                                       std::uint64_t min_version_exclusive) {
  core::checkpoint cp = core::load_checkpoint(path);
  if (!cp.meta.has_value()) {
    fence(path, "no fleet section (legacy or foreign detector file)");
  }
  const core::checkpoint_meta& m = *cp.meta;
  if (m.shard_count != cfg.class_shards) {
    fence(path, "foreign shard geometry (file has " +
                    std::to_string(m.shard_count) + " shards, fleet has " +
                    std::to_string(cfg.class_shards) + ")");
  }
  if (m.shard_index != expected_shard) {
    fence(path, "wrong shard (file carries shard " +
                    std::to_string(m.shard_index) + ", expected " +
                    std::to_string(expected_shard) + ")");
  }
  if (m.epoch < min_epoch) {
    fence(path, "epoch regression (file epoch " + std::to_string(m.epoch) +
                    " < fence epoch " + std::to_string(min_epoch) + ")");
  }
  if (m.content_version <= min_version_exclusive) {
    fence(path, "content version did not advance (file v" +
                    std::to_string(m.content_version) + " <= applied v" +
                    std::to_string(min_version_exclusive) + ")");
  }
  return cp;
}

void merge_shard(
    std::vector<std::vector<std::optional<core::event_model>>>& models,
    const core::detector& src, std::uint64_t shard, const fleet_config& cfg) {
  for (std::size_t c = 0; c < models.size(); ++c) {
    if (shard_of_class(c, cfg) != shard) continue;
    for (std::size_t e = 0; e < models[c].size(); ++e) {
      models[c][e] = src.model_for(c, e);
    }
  }
}

void write_ban_ledger(const std::string& path,
                      const std::vector<std::uint64_t>& clients) {
  std::string buf;
  buf.reserve(16 + clients.size() * 8);
  append_le(buf, kBanMagic);
  append_le(buf, kBanVersion);
  append_le(buf, static_cast<std::uint64_t>(clients.size()));
  for (const std::uint64_t c : clients) append_le(buf, c);
  atomic_write_file(path, buf);
}

std::vector<std::uint64_t> read_ban_ledger(const std::string& path) {
  if (!std::filesystem::exists(path)) return {};
  std::ifstream is(path, std::ios::binary);
  if (!is) throw io_error("ban ledger " + path + ": cannot open");
  if (read_le<std::uint32_t>(is, path, "magic") != kBanMagic) {
    throw io_error("ban ledger " + path + ": bad magic");
  }
  if (read_le<std::uint32_t>(is, path, "version") != kBanVersion) {
    throw io_error("ban ledger " + path + ": unsupported version");
  }
  const auto count = read_le<std::uint64_t>(is, path, "count");
  if (count > (1ULL << 32)) {
    throw io_error("ban ledger " + path + ": implausible count");
  }
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(read_le<std::uint64_t>(is, path, "client id"));
  }
  return out;
}

}  // namespace advh::fleet
