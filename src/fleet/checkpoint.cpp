#include "fleet/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/fs.hpp"

namespace advh::fleet {

namespace {

constexpr std::uint32_t kBanMagic = 0x4144424cU;  // "ADBL"
// Version 1: magic, version, count, then bare client u64s. Version 2
// appends a CRC32C to every record, computed over LE(record index) +
// LE(client id), so a flipped bit in any record is detected and a torn
// final write (crash mid-append) reads as "the ledger ends here" instead
// of poisoning the whole file. Readers accept both.
constexpr std::uint32_t kBanVersion = 2;
constexpr std::uint32_t kBanVersionLegacy = 1;

template <typename T>
void append_le(std::string& buf, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  buf.append(bytes, sizeof(T));
}

/// CRC32C for one ban record: binds the client id to its position so a
/// reordered or duplicated record cannot masquerade as valid.
std::uint32_t ban_record_crc(std::uint64_t index, std::uint64_t client) {
  std::string rec;
  rec.reserve(16);
  append_le(rec, index);
  append_le(rec, client);
  return crc32c(rec);
}

/// Cursor over an in-memory ledger image; read<T> returns nullopt at the
/// end of the bytes instead of throwing, so the caller decides whether a
/// short read is a torn tail (tolerated) or a broken header (typed error).
struct ban_cursor {
  std::string_view bytes;
  std::size_t off = 0;

  template <typename T>
  std::optional<T> read() {
    if (bytes.size() - off < sizeof(T)) return std::nullopt;
    T v{};
    std::memcpy(&v, bytes.data() + off, sizeof(T));
    off += sizeof(T);
    return v;
  }
};

[[noreturn]] void fence(const std::string& path, const std::string& why) {
  throw io_error("fleet checkpoint fenced: " + path + ": " + why);
}

}  // namespace

std::string shard_checkpoint_path(const std::string& dir, std::uint64_t shard,
                                  std::uint64_t content_version) {
  return dir + "/shard" + std::to_string(shard) + "_v" +
         std::to_string(content_version) + ".adet";
}

std::string shard_latest_path(const std::string& dir, std::uint64_t shard) {
  return dir + "/shard" + std::to_string(shard) + "_latest.adet";
}

std::string ban_ledger_path(const std::string& dir, std::uint32_t node) {
  return dir + "/bans_r" + std::to_string(node) + ".advhbans";
}

std::vector<std::vector<std::optional<core::event_model>>> models_of(
    const core::detector& det) {
  const std::size_t classes = det.num_classes();
  const std::size_t events = det.config().events.size();
  std::vector<std::vector<std::optional<core::event_model>>> out(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    out[c].resize(events);
    for (std::size_t e = 0; e < events; ++e) {
      out[c][e] = det.model_for(c, e);
    }
  }
  return out;
}

core::detector restrict_to_shard(const core::detector& det,
                                 std::uint64_t shard,
                                 const fleet_config& cfg) {
  auto models = models_of(det);
  for (std::size_t c = 0; c < models.size(); ++c) {
    if (shard_of_class(c, cfg) == shard) continue;
    for (auto& m : models[c]) m.reset();
  }
  return core::detector::from_parts(det.config(), std::move(models));
}

std::string stage_shard_checkpoint(const core::detector& det,
                                   const fleet_config& cfg,
                                   const std::string& dir, std::uint64_t shard,
                                   const core::checkpoint_meta& meta) {
  const core::detector restricted = restrict_to_shard(det, shard, cfg);
  const std::string versioned =
      shard_checkpoint_path(dir, shard, meta.content_version);
  core::save_detector(restricted, versioned, meta);
  return versioned;
}

std::string save_shard_checkpoint(const core::detector& det,
                                  const fleet_config& cfg,
                                  const std::string& dir, std::uint64_t shard,
                                  const core::checkpoint_meta& meta) {
  const core::detector restricted = restrict_to_shard(det, shard, cfg);
  const std::string versioned =
      shard_checkpoint_path(dir, shard, meta.content_version);
  core::save_detector(restricted, versioned, meta);
  // Publish-by-rename: the alias flips atomically from the previous
  // complete snapshot to this one.
  core::save_detector(restricted, shard_latest_path(dir, shard), meta);
  return versioned;
}

core::checkpoint load_shard_checkpoint(const std::string& path,
                                       std::uint64_t expected_shard,
                                       const fleet_config& cfg,
                                       std::uint64_t min_epoch,
                                       std::uint64_t min_version_exclusive) {
  core::checkpoint cp = core::load_checkpoint(path);
  if (!cp.meta.has_value()) {
    fence(path, "no fleet section (legacy or foreign detector file)");
  }
  const core::checkpoint_meta& m = *cp.meta;
  if (m.shard_count != cfg.class_shards) {
    fence(path, "foreign shard geometry (file has " +
                    std::to_string(m.shard_count) + " shards, fleet has " +
                    std::to_string(cfg.class_shards) + ")");
  }
  if (m.shard_index != expected_shard) {
    fence(path, "wrong shard (file carries shard " +
                    std::to_string(m.shard_index) + ", expected " +
                    std::to_string(expected_shard) + ")");
  }
  if (m.epoch < min_epoch) {
    fence(path, "epoch regression (file epoch " + std::to_string(m.epoch) +
                    " < fence epoch " + std::to_string(min_epoch) + ")");
  }
  if (m.content_version <= min_version_exclusive) {
    fence(path, "content version did not advance (file v" +
                    std::to_string(m.content_version) + " <= applied v" +
                    std::to_string(min_version_exclusive) + ")");
  }
  return cp;
}

void merge_shard(
    std::vector<std::vector<std::optional<core::event_model>>>& models,
    const core::detector& src, std::uint64_t shard, const fleet_config& cfg) {
  for (std::size_t c = 0; c < models.size(); ++c) {
    if (shard_of_class(c, cfg) != shard) continue;
    for (std::size_t e = 0; e < models[c].size(); ++e) {
      models[c][e] = src.model_for(c, e);
    }
  }
}

void write_ban_ledger(const std::string& path,
                      const std::vector<std::uint64_t>& clients) {
  std::string buf;
  buf.reserve(16 + clients.size() * 12);
  append_le(buf, kBanMagic);
  append_le(buf, kBanVersion);
  append_le(buf, static_cast<std::uint64_t>(clients.size()));
  for (std::size_t i = 0; i < clients.size(); ++i) {
    append_le(buf, clients[i]);
    append_le(buf, ban_record_crc(i, clients[i]));
  }
  atomic_write_file(path, buf);
}

ban_ledger_read read_ban_ledger_checked(const std::string& path) {
  ban_ledger_read out;
  if (!std::filesystem::exists(path)) return out;
  const std::string bytes = read_file_bytes(path);
  ban_cursor cur{bytes};

  const auto magic = cur.read<std::uint32_t>();
  const auto version = cur.read<std::uint32_t>();
  const auto count = cur.read<std::uint64_t>();
  if (!magic || *magic != kBanMagic || !version ||
      (*version != kBanVersion && *version != kBanVersionLegacy) || !count ||
      *count > (1ULL << 32)) {
    // The header itself is wrong: nothing in the file can be trusted,
    // not even a prefix — this is corruption, not a torn append.
    out.header_corrupt = true;
    return out;
  }
  out.clients.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto client = cur.read<std::uint64_t>();
    if (*version == kBanVersionLegacy) {
      if (!client) {
        // Legacy records carry no checksum; a short final record still
        // reads as "the ledger ends here".
        out.torn_tail = true;
        out.dropped_records = *count - i;
        break;
      }
      out.clients.push_back(*client);
      continue;
    }
    const auto crc = cur.read<std::uint32_t>();
    if (!client || !crc || *crc != ban_record_crc(i, *client)) {
      // Torn or corrupt record: everything from here on is untrusted.
      // The valid prefix survives — a crash mid-append must not void
      // every ban decision that landed before it.
      out.torn_tail = true;
      out.dropped_records = *count - i;
      break;
    }
    out.clients.push_back(*client);
  }
  return out;
}

std::vector<std::uint64_t> read_ban_ledger(const std::string& path) {
  ban_ledger_read r = read_ban_ledger_checked(path);
  if (r.header_corrupt) {
    throw io_error("ban ledger " + path +
                   ": corrupt header (bad magic, version, or count)");
  }
  return std::move(r.clients);
}

}  // namespace advh::fleet
