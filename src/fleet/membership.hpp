// Fleet membership: who is alive, who owns what, and the epoch fence.
//
// A `membership_view` is the unit of agreement in the fleet: a strictly
// increasing epoch plus the sorted list of live replica node ids. All
// ownership (template class shards and fingerprint-ring ranges) is a pure
// function of the view, so two nodes holding the same view compute the
// same owners with no further coordination — and two nodes holding
// *different* views are distinguished by the epoch, which every routed
// request and checkpoint carries.
//
// The controller (node 0) is the single view authority. It watches
// replica heartbeats, declares a replica dead after `failure_timeout`
// ticks of silence, readmits it on a fresh heartbeat, and bumps the epoch
// on every membership change. The controller itself never fails in the
// simulation — fleet availability under a *failing* coordinator is a
// consensus problem out of scope for this reproduction; the interesting
// failure surface here is the replicas that hold detection state.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fleet/config.hpp"

namespace advh::fleet {

/// Fixed node ids: the controller and router are infrastructure, replicas
/// start at id 2.
inline constexpr std::uint32_t kControllerNode = 0;
inline constexpr std::uint32_t kRouterNode = 1;
inline constexpr std::uint32_t replica_node(std::size_t replica_index) {
  return static_cast<std::uint32_t>(replica_index + 2);
}

/// splitmix64 finalizer — the same client-id mixer the track table uses,
/// so ring placement is uniform even for sequential client ids.
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct membership_view {
  /// Strictly increasing with every membership change; epoch 0 means "no
  /// view installed yet" and fences everything.
  std::uint64_t epoch = 0;
  /// Live replica node ids, sorted ascending.
  std::vector<std::uint32_t> live;

  friend bool operator==(const membership_view& a, const membership_view& b) {
    return a.epoch == b.epoch && a.live == b.live;
  }
};

/// Template shard of a predicted class.
inline std::uint64_t shard_of_class(std::size_t cls,
                                    const fleet_config& cfg) noexcept {
  return static_cast<std::uint64_t>(cls) % cfg.class_shards;
}

/// Fingerprint-ring range of a client: top bits of the mixed id, mapped
/// onto `ring_ranges` equal arcs.
inline std::uint32_t range_of_client(std::uint64_t client,
                                     const fleet_config& cfg) noexcept {
  // 128-bit multiply-high keeps the mapping exact for any range count.
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(mix64(client)) * cfg.ring_ranges;
  return static_cast<std::uint32_t>(wide >> 64);
}

/// Owner of template shard `shard` under `view`; nullopt when no replica
/// is live (the fleet abstains rather than guessing).
std::optional<std::uint32_t> shard_owner(const membership_view& view,
                                         std::uint64_t shard);

/// Owner of fingerprint-ring range `range` under `view`.
std::optional<std::uint32_t> range_owner(const membership_view& view,
                                         std::uint32_t range);

/// Ring ranges owned by `node` under `view`.
std::vector<std::uint32_t> ranges_owned(const membership_view& view,
                                        std::uint32_t node,
                                        std::uint32_t ring_ranges);

/// Template shards owned by `node` under `view`.
std::vector<std::uint64_t> shards_owned(const membership_view& view,
                                        std::uint32_t node,
                                        std::uint64_t class_shards);

/// The controller: heartbeat bookkeeping and view generation. Driven once
/// per simulation tick; deterministic by construction (no wall clock, no
/// randomness).
class controller {
 public:
  controller(const fleet_config& cfg);

  /// Records a heartbeat from `node` observed at `tick`.
  void on_heartbeat(std::uint32_t node, std::uint64_t tick);

  /// The last heartbeat tick the controller has RECEIVED from `node` (0
  /// if none, or while the node is declared dead). Every view beacon to a
  /// replica carries this value, and the replica's serving lease runs on
  /// it — NOT on beacon send times. That closes the asymmetric-loss hole:
  /// heartbeat silence (what failure detection watches) and beacon
  /// reception (what a send-time lease would watch) are independent
  /// channels under message loss, so a replica whose heartbeats are lost
  /// could otherwise stay unfenced while its ranges are reassigned. With
  /// the acked clock, death after `failure_timeout` of silence implies
  /// every beacon the replica can ever receive carries an ack at least
  /// `failure_timeout` old — provably past its `lease`, hence fenced.
  std::uint64_t acked_heartbeat(std::uint32_t node) const;

  /// Advances failure detection to `tick`. Returns the newly ANNOUNCED
  /// view when membership changed (epoch bumped), nullopt otherwise. The
  /// authoritative view() flips to an announced view only after it has
  /// been stable for `lease + 1` ticks — the lease-transfer barrier that
  /// keeps a stale-but-healthy previous owner's serving window disjoint
  /// from its successor's.
  std::optional<membership_view> step(std::uint64_t tick);

  /// The authoritative view: who may produce verdicts right now.
  const membership_view& view() const noexcept { return view_; }

  /// The announced view (the pending one during a lease-transfer window,
  /// the authoritative one otherwise) — what beacons carry.
  const membership_view& announced() const noexcept;

 private:
  const fleet_config& cfg_;
  membership_view view_;
  /// Announced but not yet authoritative (lease-transfer barrier).
  std::optional<membership_view> pending_;
  std::uint64_t activate_at_ = 0;
  /// Last heartbeat tick per replica node id; nullopt = currently dead.
  std::vector<std::optional<std::uint64_t>> last_heartbeat_;
};

}  // namespace advh::fleet
