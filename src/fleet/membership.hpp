// Fleet membership: who is alive, who owns what, and the epoch fence.
//
// A `membership_view` is the unit of agreement in the fleet: a strictly
// increasing epoch plus the sorted list of live replica node ids. All
// ownership (template class shards and fingerprint-ring ranges) is a pure
// function of the view, so two nodes holding the same view compute the
// same owners with no further coordination — and two nodes holding
// *different* views are distinguished by the epoch, which every routed
// request and checkpoint carries.
//
// The view authority is a REPLICATED controller group (default 3 nodes,
// ids kControllerBase..): at any instant at most one controller holds the
// leadership lease and may publish views. Leadership runs a lease-based
// quorum election over the same deterministic network seam as everything
// else:
//
//   * the leader beacons its term to its peers every hb_interval ticks
//     and holds the lease while a majority of controllers (itself
//     included) has acked the beacon within the last `ctl_lease` ticks;
//   * a standby that has heard nothing from any leader for
//     `ctl_failure_timeout + index * hb_interval` ticks (the per-index
//     stagger deterministically avoids split votes) becomes a candidate
//     for a fresh term and requests ballots; a voter grants at most one
//     ballot per term, and only while it too has heard no leader — a
//     live leader can never be deposed by an impatient standby;
//   * a candidate with a majority of grants is leader-elect, but may not
//     act (publish views, declare replicas dead) until
//     `ctl_lease + max_delay` ticks have passed: every grant in its
//     quorum came from a voter that stopped acking the old term, so the
//     old leader's lease — and with it any view beacon it could still
//     emit — has provably run out before the new leader's first word.
//
// View epochs compose the election term with a per-term sequence number
// (`view_epoch`), so a new leader's views lexicographically dominate
// every view any prior leader ever published with no epoch negotiation —
// the replicas' and checkpoints' plain `<` epoch fences keep working
// across leader changes unmodified.
//
// Ownership is replicated: `range_owner_k`/`shard_owner_k` give the k-th
// owner of a range (k = 0 is the primary, the `range_owner` of old). The
// router speculatively re-routes a silent primary's request to the
// secondary, which serves it under a degraded-confidence tag — a crashed
// shard degrades instead of abstaining.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fleet/config.hpp"

namespace advh::fleet {

// net.hpp includes this header (messages carry views); the controller
// only holds references, so forward declarations break the cycle.
struct message;
class sim_net;
class event_log;

struct membership_view {
  /// Strictly increasing with every membership change; epoch 0 means "no
  /// view installed yet" and fences everything. Composed from (election
  /// term, per-term sequence) — see view_epoch.
  std::uint64_t epoch = 0;
  /// Live replica node ids, sorted ascending.
  std::vector<std::uint32_t> live;

  friend bool operator==(const membership_view& a, const membership_view& b) {
    return a.epoch == b.epoch && a.live == b.live;
  }
};

/// Fixed node ids: the router is node 1, replicas start at id 2, and the
/// controller group lives at kControllerBase.. (above any replica id —
/// replicas are capped at 64).
inline constexpr std::uint32_t kRouterNode = 1;
inline constexpr std::uint32_t kControllerBase = 100;
inline constexpr std::uint32_t replica_node(std::size_t replica_index) {
  return static_cast<std::uint32_t>(replica_index + 2);
}
inline constexpr std::uint32_t controller_node(std::size_t ctl_index) {
  return kControllerBase + static_cast<std::uint32_t>(ctl_index);
}
inline constexpr bool is_controller_node(std::uint32_t node) {
  return node >= kControllerBase;
}

/// View epochs compose (election term, per-term sequence): a leader of a
/// higher term dominates every epoch any earlier leader could mint, so
/// plain uint64 `<` comparisons fence across leader changes.
inline constexpr std::uint64_t view_epoch(std::uint64_t term,
                                          std::uint64_t seq) noexcept {
  return (term << 32) | (seq & 0xffffffffULL);
}
inline constexpr std::uint64_t epoch_term(std::uint64_t epoch) noexcept {
  return epoch >> 32;
}
inline constexpr std::uint64_t epoch_seq(std::uint64_t epoch) noexcept {
  return epoch & 0xffffffffULL;
}

/// THE lease boundary, used by every lease in the fleet: a lease anchored
/// at `anchor` is held through tick `anchor + lease` INCLUSIVE and
/// expired — acquirable by a successor — from `anchor + lease + 1`. One
/// shared predicate instead of scattered >=/> comparisons, so the holder
/// side and the acquirer side can never both claim the boundary tick.
inline constexpr bool lease_held(std::uint64_t now, std::uint64_t anchor,
                                 std::uint64_t lease) noexcept {
  return now <= anchor + lease;
}

/// splitmix64 finalizer — the same client-id mixer the track table uses,
/// so ring placement is uniform even for sequential client ids.
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Template shard of a predicted class.
inline std::uint64_t shard_of_class(std::size_t cls,
                                    const fleet_config& cfg) noexcept {
  return static_cast<std::uint64_t>(cls) % cfg.class_shards;
}

/// Fingerprint-ring range of a client: top bits of the mixed id, mapped
/// onto `ring_ranges` equal arcs.
inline std::uint32_t range_of_client(std::uint64_t client,
                                     const fleet_config& cfg) noexcept {
  // 128-bit multiply-high keeps the mapping exact for any range count.
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(mix64(client)) * cfg.ring_ranges;
  return static_cast<std::uint32_t>(wide >> 64);
}

/// k-th owner of fingerprint-ring range `range` under `view` (k = 0 is
/// the primary); nullopt when fewer than k+1 replicas are live.
std::optional<std::uint32_t> range_owner_k(const membership_view& view,
                                           std::uint32_t range,
                                           std::uint32_t k);

/// k-th owner of template shard `shard` under `view`.
std::optional<std::uint32_t> shard_owner_k(const membership_view& view,
                                           std::uint64_t shard,
                                           std::uint32_t k);

/// Primary owner of template shard `shard` under `view`; nullopt when no
/// replica is live (the fleet abstains rather than guessing).
std::optional<std::uint32_t> shard_owner(const membership_view& view,
                                         std::uint64_t shard);

/// Primary owner of fingerprint-ring range `range` under `view`.
std::optional<std::uint32_t> range_owner(const membership_view& view,
                                         std::uint32_t range);

/// Replication slot `node` holds for `range` under `view` (0 = primary,
/// 1 = secondary, ...); nullopt when the node is not among the first
/// `replication` owners.
std::optional<std::uint32_t> owner_slot(const membership_view& view,
                                        std::uint32_t range,
                                        std::uint32_t node,
                                        std::uint32_t replication);

/// Ring ranges whose PRIMARY is `node` under `view`.
std::vector<std::uint32_t> ranges_owned(const membership_view& view,
                                        std::uint32_t node,
                                        std::uint32_t ring_ranges);

/// Template shards whose PRIMARY is `node` under `view`.
std::vector<std::uint64_t> shards_owned(const membership_view& view,
                                        std::uint32_t node,
                                        std::uint64_t class_shards);

/// Election role of one controller node.
enum class ctl_role : std::uint8_t {
  standby = 0,    ///< follows a leader (or waits out the stagger)
  candidate = 1,  ///< requesting ballots for a fresh term
  leader = 2,     ///< holds (or recently held) the leadership lease
};

const char* to_string(ctl_role r) noexcept;

/// One member of the replicated controller group: heartbeat bookkeeping,
/// view generation and leader election, driven once per simulation tick.
/// Deterministic by construction (no wall clock, no randomness).
///
/// Controller 0 boots as the genesis leader of term 1 with the initial
/// view installed — the deterministic convention every node shares —
/// while the others boot as standbys already committed to term 1. All
/// controllers record replica heartbeats all along (replicas heartbeat
/// the whole group), so a freshly elected leader starts failure
/// detection from a warm table instead of a blank one.
class controller {
 public:
  /// `dir` is the durable store: the controller persists the highest term
  /// it has voted for or led (`ctl<index>.term`, write-before-effect), so
  /// a crash-recovered controller can never grant a ballot — or mint view
  /// epochs — for a term the group already burned.
  controller(std::size_t index, const fleet_config& cfg, std::string dir,
             sim_net& net, event_log& log);

  std::uint32_t node() const noexcept { return controller_node(index_); }
  bool up() const noexcept { return up_; }
  bool is_stalled() const noexcept { return stalled_; }

  // Fault injection (sim tick loop). crash() drops all volatile election
  // and membership state; recover() reboots as a term-0 standby;
  // stall()/unstall() freeze and resume processing (the inbox keeps
  // buffering while stalled).
  void crash(std::uint64_t tick);
  void recover(std::uint64_t tick);
  void stall(std::uint64_t tick);
  void unstall(std::uint64_t tick);

  /// Delivers one network message (dropped when the controller is down).
  void enqueue(message m);

  /// One simulation tick: inbox (heartbeats, leader beacons/acks,
  /// ballots), election timers, and — while holding the leadership lease
  /// past the takeover fence — membership failure detection, two-phase
  /// view activation and view beacons.
  void on_tick(std::uint64_t tick);

  ctl_role role() const noexcept { return role_; }
  std::uint64_t term() const noexcept { return term_; }

  /// True while this controller holds the leadership lease at `tick`: it
  /// is the leader and a majority of the group (itself included) acked
  /// its term beacon within the last `ctl_lease` ticks.
  bool leading(std::uint64_t tick) const;

  /// True once `leading` AND the takeover fence has passed — the old
  /// leader's lease (plus in-flight beacons) has provably run out, so
  /// this leader may publish views and declare replicas dead.
  bool acting(std::uint64_t tick) const;

  /// The authoritative view this controller has ACTIVATED: who may
  /// produce verdicts, per this controller. The sim's split-brain audit
  /// takes the max-epoch activated view across the group — the elected
  /// leader's, by construction.
  const membership_view& view() const noexcept { return view_; }

  /// The announced view (the NEWEST pending one during a lease-transfer
  /// window, the authoritative one otherwise) — what beacons carry.
  const membership_view& announced() const noexcept;

  /// The last heartbeat tick this controller has RECEIVED from `node` (0
  /// if none, or while the node is declared dead). Every view beacon to a
  /// replica carries the leader's value, and the replica's serving lease
  /// runs on it — NOT on beacon send times. That closes the
  /// asymmetric-loss hole: heartbeat silence (what failure detection
  /// watches) and beacon reception (what a send-time lease would watch)
  /// are independent channels under message loss, so a replica whose
  /// heartbeats are lost could otherwise stay unfenced while its ranges
  /// are reassigned. With the acked clock, death after `failure_timeout`
  /// of silence implies every beacon the replica can ever receive carries
  /// an ack at least `failure_timeout` old — provably past its `lease`,
  /// hence fenced.
  std::uint64_t acked_heartbeat(std::uint32_t node) const;

 private:
  void boot(std::uint64_t tick, bool genesis);
  void handle(const message& m, std::uint64_t tick);
  void on_heartbeat(std::uint32_t node, std::uint64_t tick);
  void bump_voted_term(std::uint64_t term);
  void step_down(std::uint64_t term, std::uint64_t tick);
  void start_candidacy(std::uint64_t tick);
  void become_leader(std::uint64_t tick);
  void membership_step(std::uint64_t tick);
  void broadcast_view(std::uint64_t tick, bool reliable);

  std::size_t index_;
  const fleet_config& cfg_;
  std::string dir_;
  sim_net& net_;
  event_log& log_;

  bool up_ = false;
  bool stalled_ = false;
  std::vector<message> inbox_;

  // --- election state ---
  ctl_role role_ = ctl_role::standby;
  /// Term this controller leads (or last led). Meaningful for leaders and
  /// candidates; standbys track terms through voted_term_.
  std::uint64_t term_ = 0;
  /// Highest term this controller has voted for or acknowledged — the
  /// vote-once-per-term fence, and the ack fence that starves a deposed
  /// leader's lease.
  std::uint64_t voted_term_ = 0;
  /// Last tick a live leader was heard (its beacon acked). The candidacy
  /// stagger and the own-silence ballot precondition both run on it.
  std::uint64_t last_leader_signal_ = 0;
  /// Leader: last tick each peer acked our current term (self-ack is
  /// refreshed every beacon; nullopt = no ack this term yet). The
  /// leadership lease is a quorum of these within ctl_lease.
  std::vector<std::optional<std::uint64_t>> ack_tick_;
  /// Candidate: ballots granted for term_ (own vote included).
  std::uint64_t grants_ = 0;
  std::uint64_t candidacy_started_ = 0;
  /// Leader-elect takeover fence: acting() is false until this tick.
  std::uint64_t act_from_ = 0;

  // --- membership state (leader-only mutation) ---
  membership_view view_;
  struct announced_view {
    membership_view view;
    std::uint64_t announced_at = 0;
  };
  /// Announced but not yet authoritative views (lease-transfer barrier),
  /// oldest first. Each activates once the ownership lease anchored at
  /// ITS OWN announce tick has expired — further churn announces a new
  /// view but never delays an earlier one, mirroring the per-range
  /// acquisition/promotion graces on the replicas (both sides anchor on
  /// the same announce/send tick, so a successor's first verdict and the
  /// granting view's activation land on the same tick).
  std::vector<announced_view> pending_;
  std::uint64_t view_seq_ = 0;
  /// Last heartbeat tick per replica node id; nullopt = currently dead.
  std::vector<std::optional<std::uint64_t>> last_heartbeat_;
};

}  // namespace advh::fleet
